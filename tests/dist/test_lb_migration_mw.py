"""Tests for load balancing, migration, middleware, and MapReduce."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.loadbalance import Balancer, PlacementPolicy, compare_policies
from repro.dist.mapreduce import MapReduce, word_count
from repro.dist.middleware import NameService, RemoteError, RpcServer, rpc_proxy
from repro.dist.migration import (
    Cluster,
    MigratingProcess,
    MigrationPolicy,
    migration_sweep,
)
from repro.net import Address, Network


class TestLoadBalancing:
    def test_round_robin_even_on_uniform(self):
        report = Balancer(4, PlacementPolicy.ROUND_ROBIN).run([1.0] * 100)
        assert report.imbalance == pytest.approx(1.0)

    def test_least_loaded_best_on_heavy_tail(self):
        results = compare_policies(10, 500, seed=0, heavy_tail=True)
        assert (
            results["least-loaded"].max_load
            <= results["random"].max_load
        )

    def test_two_choices_close_to_least_loaded(self):
        results = compare_policies(10, 2000, seed=1, heavy_tail=False)
        assert results["two-choices"].max_load <= results["random"].max_load

    def test_weights_accumulate(self):
        balancer = Balancer(2, PlacementPolicy.ROUND_ROBIN)
        balancer.run([3.0, 5.0])
        assert balancer.loads == [3.0, 5.0]

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            Balancer(2).place(0.0)

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            Balancer(0)

    def test_assignments_recorded(self):
        balancer = Balancer(3, PlacementPolicy.ROUND_ROBIN)
        balancer.run([1.0] * 5)
        assert balancer.assignments == [0, 1, 2, 0, 1]

    @given(st.integers(1, 8), st.integers(1, 100))
    @settings(max_examples=40, deadline=None)
    def test_property_all_work_placed(self, servers, tasks):
        for policy in PlacementPolicy:
            report = Balancer(servers, policy, seed=3).run([1.0] * tasks)
            assert sum(report.loads) == pytest.approx(tasks)


class TestMigration:
    def _hotspot_cluster(self, policy, cost=1.0):
        cluster = Cluster(4, policy, transfer_cost_per_mem=cost)
        for pid in range(12):
            cluster.submit(MigratingProcess(pid, work=10.0, memory=1.0, home=0))
        return cluster

    def test_never_policy_leaves_hotspot(self):
        report = self._hotspot_cluster(MigrationPolicy.NEVER).run()
        assert report.migrations == 0
        assert report.final_loads[1] == 0.0

    def test_threshold_policy_relieves_hotspot(self):
        never = self._hotspot_cluster(MigrationPolicy.NEVER).run()
        threshold = self._hotspot_cluster(MigrationPolicy.THRESHOLD).run()
        assert threshold.makespan < never.makespan
        assert threshold.migrations > 0

    def test_transfer_cost_charged(self):
        report = self._hotspot_cluster(MigrationPolicy.THRESHOLD, cost=2.0).run()
        assert report.transfer_cost == pytest.approx(report.migrations * 2.0)

    def test_high_cost_can_make_greedy_worse(self):
        sweep = migration_sweep(transfer_costs=(0.0, 16.0))
        cheap, expensive = sweep[0][1], sweep[1][1]
        assert cheap["greedy"] < cheap["never"]
        assert expensive["greedy"] > cheap["greedy"]

    def test_work_conserved(self):
        report = self._hotspot_cluster(MigrationPolicy.GREEDY_REBALANCE).run()
        assert sum(report.final_loads) >= 12 * 10.0 - 1e-6

    def test_process_validation(self):
        with pytest.raises(ValueError):
            MigratingProcess(1, work=0.0)

    def test_submit_validates_node(self):
        cluster = Cluster(2)
        with pytest.raises(ValueError):
            cluster.submit(MigratingProcess(1, work=1.0), node=5)


class TestMiddleware:
    class Calc:
        def add(self, a, b):
            return a + b

        def boom(self):
            raise ValueError("remote failure")

        def _secret(self):
            return "hidden"

    def test_rpc_roundtrip(self):
        net = Network()
        with RpcServer(net, Address("svc", 9000), self.Calc()):
            proxy = rpc_proxy(net, Address("svc", 9000))
            assert proxy.add(2, 3) == 5
            assert proxy.add(a=1, b=2) == 3

    def test_remote_exception_marshalled(self):
        net = Network()
        with RpcServer(net, Address("svc", 9000), self.Calc()):
            proxy = rpc_proxy(net, Address("svc", 9000))
            with pytest.raises(RemoteError, match="remote failure"):
                proxy.boom()

    def test_private_methods_not_exported(self):
        net = Network()
        with RpcServer(net, Address("svc", 9000), self.Calc()):
            proxy = rpc_proxy(net, Address("svc", 9000))
            with pytest.raises(RemoteError):
                proxy._secret()

    def test_unknown_method(self):
        net = Network()
        with RpcServer(net, Address("svc", 9000), self.Calc()):
            proxy = rpc_proxy(net, Address("svc", 9000))
            with pytest.raises(RemoteError):
                proxy.no_such_method()

    def test_calls_served_counted(self):
        net = Network()
        with RpcServer(net, Address("svc", 9000), self.Calc()) as server:
            proxy = rpc_proxy(net, Address("svc", 9000))
            proxy.add(1, 1)
            proxy.add(2, 2)
            assert server.calls_served == 2

    def test_name_service_bind_lookup(self):
        ns = NameService()
        assert ns.lookup("calc") is None
        ns.register("calc", "svc", 9000)
        assert ns.lookup("calc") == ("svc", 9000)
        assert ns.services() == ["calc"]
        assert ns.unregister("calc")
        assert not ns.unregister("calc")

    def test_name_service_itself_over_rpc(self):
        """The registry is just an object: export it, then bind through it."""
        net = Network()
        ns = NameService()
        with RpcServer(net, Address("registry", 1), ns):
            with RpcServer(net, Address("svc", 9000), self.Calc()):
                registry = rpc_proxy(net, Address("registry", 1))
                registry.register("calc", "svc", 9000)
                host, port = registry.lookup("calc")
                calc = rpc_proxy(net, Address(host, port))
                assert calc.add(20, 22) == 42


class TestMapReduce:
    def test_word_count(self):
        counts = word_count(["the cat sat", "the dog sat", "the cat ran"])
        assert counts == {"the": 3, "cat": 2, "sat": 2, "dog": 1, "ran": 1}

    def test_stats_populated(self):
        job = MapReduce(
            lambda doc: [(w, 1) for w in doc.split()],
            lambda _k, vs: sum(vs),
            num_partitions=4,
        )
        job.run(["a b", "b c", "c d"])
        assert job.stats.map_tasks == 3
        assert job.stats.intermediate_pairs == 6
        assert job.stats.partitions == 4
        assert job.stats.shuffle_skew >= 1.0

    def test_custom_reduce(self):
        job = MapReduce(
            lambda n: [(n % 2, n)],
            lambda _k, vs: max(vs),
            num_workers=2,
        )
        result = job.run(list(range(10)))
        assert result == {0: 8, 1: 9}

    def test_empty_input(self):
        job = MapReduce(lambda x: [(x, 1)], lambda _k, vs: sum(vs))
        assert job.run([]) == {}

    def test_validates_config(self):
        with pytest.raises(ValueError):
            MapReduce(lambda x: [], lambda k, v: None, num_workers=0)

    @given(st.lists(st.text(alphabet="ab ", max_size=12), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_serial_count(self, docs):
        serial = {}
        for doc in docs:
            for word in doc.split():
                serial[word] = serial.get(word, 0) + 1
        assert word_count(docs, num_workers=3) == serial

"""Tests for consistency checkers and eventual consistency."""

import pytest

from repro.dist.consistency import (
    EventuallyConsistentStore,
    HistoryEvent,
    is_linearizable,
    is_sequentially_consistent,
)


def _w(proc, reg, val, start, end):
    return HistoryEvent(proc, "w", reg, val, start, end)


def _r(proc, reg, val, start, end):
    return HistoryEvent(proc, "r", reg, val, start, end)


class TestLinearizability:
    def test_simple_write_then_read(self):
        history = [_w(0, "x", 1, 0, 1), _r(1, "x", 1, 2, 3)]
        assert is_linearizable(history)

    def test_stale_read_after_write_completes(self):
        history = [_w(0, "x", 1, 0, 1), _r(1, "x", None, 2, 3)]
        assert not is_linearizable(history)

    def test_overlapping_ops_flexible(self):
        # Read overlaps the write: may see either old or new value.
        old = [_w(0, "x", 1, 0, 10), _r(1, "x", None, 1, 2)]
        new = [_w(0, "x", 1, 0, 10), _r(1, "x", 1, 1, 2)]
        assert is_linearizable(old)
        assert is_linearizable(new)

    def test_two_registers(self):
        history = [
            _w(0, "x", 1, 0, 1),
            _w(0, "y", 2, 2, 3),
            _r(1, "y", 2, 4, 5),
            _r(1, "x", 1, 6, 7),
        ]
        assert is_linearizable(history)

    def test_initial_value_configurable(self):
        history = [_r(0, "x", 0, 0, 1)]
        assert is_linearizable(history, initial=0)
        assert not is_linearizable(history, initial=None)

    def test_size_limit(self):
        big = [_w(0, "x", i, i, i + 0.5) for i in range(10)]
        with pytest.raises(ValueError):
            is_linearizable(big)


class TestSequentialConsistency:
    def test_sc_but_not_linearizable(self):
        """The classic separator: a read returning the initial value after
        a write completed in real time is SC (reorder across processes)
        but not linearizable."""
        history = [_w(0, "x", 1, 0, 1), _r(1, "x", None, 2, 3)]
        assert is_sequentially_consistent(history)
        assert not is_linearizable(history)

    def test_program_order_still_binds(self):
        # One process reads y=new then x=old, with writes x then y by the
        # other process in program order: not SC.
        history = [
            _w(0, "x", 1, 0, 1),
            _w(0, "y", 1, 2, 3),
            _r(1, "y", 1, 4, 5),
            _r(1, "x", None, 6, 7),
        ]
        assert not is_sequentially_consistent(history)

    def test_linearizable_implies_sc(self):
        history = [_w(0, "x", 1, 0, 1), _r(1, "x", 1, 2, 3)]
        assert is_linearizable(history)
        assert is_sequentially_consistent(history)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            HistoryEvent(0, "z", "x", 1, 0, 1)
        with pytest.raises(ValueError):
            HistoryEvent(0, "r", "x", 1, 5, 2)


class TestEventualConsistency:
    def test_converges(self):
        store = EventuallyConsistentStore(5)
        store.write(0, "x", "a", timestamp=1.0)
        store.write(3, "x", "b", timestamp=2.0)
        assert not store.converged()
        rounds = store.converge()
        assert store.converged()
        assert rounds <= 5

    def test_last_writer_wins(self):
        store = EventuallyConsistentStore(3)
        store.write(0, "x", "old", timestamp=1.0)
        store.write(2, "x", "new", timestamp=5.0)
        store.converge()
        assert all(store.read(r, "x") == "new" for r in range(3))

    def test_timestamp_tie_broken_by_replica(self):
        store = EventuallyConsistentStore(3)
        store.write(0, "x", "from0", timestamp=1.0)
        store.write(2, "x", "from2", timestamp=1.0)
        store.converge()
        assert all(store.read(r, "x") == "from2" for r in range(3))

    def test_reads_may_be_stale_before_convergence(self):
        store = EventuallyConsistentStore(4)
        store.write(0, "x", "v", timestamp=1.0)
        assert store.read(2, "x") is None  # not yet propagated
        store.converge()
        assert store.read(2, "x") == "v"

    def test_multiple_registers(self):
        store = EventuallyConsistentStore(3)
        store.write(0, "x", 1, timestamp=1.0)
        store.write(1, "y", 2, timestamp=1.0)
        store.converge()
        for r in range(3):
            assert store.read(r, "x") == 1
            assert store.read(r, "y") == 2

    def test_single_replica_trivially_converged(self):
        store = EventuallyConsistentStore(1)
        store.write(0, "x", 1, timestamp=1.0)
        assert store.converged()

    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            EventuallyConsistentStore(0)

"""Tests for Chandy-Lamport snapshots and two-phase commit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.commit import (
    Coordinator,
    Participant,
    ParticipantState,
    TwoPcOutcome,
)
from repro.dist.snapshot import TokenSystem


class TestTokenSystem:
    def test_transfer_conserves_total(self):
        sys = TokenSystem([10, 20, 30])
        sys.transfer(2, 0, 5)
        assert sys.total == 60
        sys.deliver_all()
        assert sys.balances == [15, 20, 25]

    def test_invalid_transfer(self):
        sys = TokenSystem([5, 5])
        with pytest.raises(ValueError):
            sys.transfer(0, 1, 10)
        with pytest.raises(ValueError):
            sys.transfer(0, 1, 0)

    def test_fifo_channels(self):
        sys = TokenSystem([10, 0])
        sys.transfer(0, 1, 3)
        sys.transfer(0, 1, 4)
        assert sys.deliver_one(0, 1) == 3
        assert sys.deliver_one(0, 1) == 4


class TestChandyLamport:
    def test_quiescent_snapshot_trivial(self):
        sys = TokenSystem([10, 20])
        sys.start_snapshot(0)
        sys.deliver_all()
        snap = sys.snapshot()
        assert snap.process_states == {0: 10, 1: 20}
        assert snap.channel_states == {}
        assert snap.total == 30

    def test_in_flight_message_recorded(self):
        """The defining case: a transfer is mid-flight when the snapshot
        starts; it must appear as channel state, not be lost."""
        sys = TokenSystem([10, 10])
        sys.transfer(0, 1, 4)  # in flight on (0, 1)
        sys.start_snapshot(1)  # 1 records BEFORE receiving the tokens
        sys.deliver_all()
        snap = sys.snapshot()
        assert snap.total == 20  # conservation holds in the snapshot
        assert snap.channel_states.get((0, 1)) == [4]
        assert snap.process_states[1] == 10  # pre-delivery balance

    def test_snapshot_while_trading_conserves_total(self):
        sys = TokenSystem([25, 25, 25, 25])
        sys.transfer(0, 1, 5)
        sys.transfer(1, 2, 7)
        sys.transfer(3, 0, 2)
        sys.start_snapshot(2)
        # More traffic after the snapshot begins:
        sys.transfer(2, 3, 1)
        sys.deliver_all()
        snap = sys.snapshot()
        assert snap.total == 100
        assert sys.total == 100

    def test_snapshot_not_done_raises(self):
        sys = TokenSystem([1, 1])
        sys.start_snapshot(0)
        with pytest.raises(RuntimeError):
            sys.snapshot()

    def test_needs_processes(self):
        with pytest.raises(ValueError):
            TokenSystem([])

    @given(
        st.lists(st.integers(10, 50), min_size=2, max_size=5),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_snapshot_conserves_total(self, balances, data):
        sys = TokenSystem(balances)
        n = len(balances)
        total = sum(balances)
        # Random pre-snapshot transfers.
        for _ in range(data.draw(st.integers(0, 6))):
            src = data.draw(st.integers(0, n - 1))
            dst = data.draw(st.integers(0, n - 1))
            if src != dst and sys.balances[src] > 0:
                amount = data.draw(st.integers(1, sys.balances[src]))
                sys.transfer(src, dst, amount)
        sys.start_snapshot(data.draw(st.integers(0, n - 1)))
        sys.deliver_all()
        snap = sys.snapshot()
        assert snap.total == total
        assert sys.total == total


class TestTwoPhaseCommit:
    def test_unanimous_yes_commits(self):
        parts = [Participant(f"p{i}") for i in range(3)]
        outcome = Coordinator(parts).run()
        assert outcome.committed
        assert all(p.state is ParticipantState.COMMITTED for p in parts)
        assert outcome.messages == Coordinator.message_complexity(3)

    def test_single_no_aborts_everyone(self):
        parts = [
            Participant("a"),
            Participant("b", will_vote_yes=False),
            Participant("c"),
        ]
        outcome = Coordinator(parts).run()
        assert not outcome.committed
        assert parts[0].state is ParticipantState.ABORTED
        assert parts[2].state is ParticipantState.ABORTED

    def test_crash_before_vote_counts_as_no(self):
        parts = [Participant("a"), Participant("b", crash_before_vote=True)]
        outcome = Coordinator(parts).run()
        assert not outcome.committed
        assert outcome.votes["b"] is None
        assert outcome.messages < Coordinator.message_complexity(2)

    def test_crash_after_yes_blocks_until_recovery(self):
        """2PC's blocking window: a prepared-then-crashed participant is
        stuck holding locks until it learns the verdict."""
        blocked = Participant("b", crash_after_vote=True)
        parts = [Participant("a"), blocked]
        outcome = Coordinator(parts).run()
        assert outcome.committed  # it DID vote yes before crashing
        assert outcome.blocked_participants == ["b"]
        assert blocked.state is ParticipantState.CRASHED
        blocked.recover(outcome)
        assert blocked.state is ParticipantState.COMMITTED

    def test_recovery_after_abort(self):
        blocked = Participant("b", crash_after_vote=True)
        parts = [Participant("a", will_vote_yes=False), blocked]
        outcome = Coordinator(parts).run()
        assert not outcome.committed
        blocked.recover(outcome)
        assert blocked.state is ParticipantState.ABORTED

    def test_validation(self):
        with pytest.raises(ValueError):
            Coordinator([])
        with pytest.raises(ValueError):
            Coordinator([Participant("x"), Participant("x")])

    @given(st.lists(st.booleans(), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_property_commit_iff_unanimous(self, votes):
        parts = [
            Participant(f"p{i}", will_vote_yes=v) for i, v in enumerate(votes)
        ]
        outcome = Coordinator(parts).run()
        assert outcome.committed == all(votes)
        # Atomicity: nobody commits unless everyone does.
        committed = [p for p in parts if p.state is ParticipantState.COMMITTED]
        assert len(committed) in (0, len(parts))

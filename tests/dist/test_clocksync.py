"""Tests for physical clock synchronization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.clocksync import DriftingClock, berkeley_sync, cristian_sync


class TestDriftingClock:
    def test_read_with_drift(self):
        clock = DriftingClock("c", offset=10.0, rate=1.001)
        assert clock.read(1000.0) == pytest.approx(10.0 + 1001.0)

    def test_adjust_shifts_offset_only(self):
        clock = DriftingClock("c", offset=5.0, rate=2.0)
        clock.adjust(-5.0)
        assert clock.read(0.0) == 0.0
        assert clock.read(1.0) == 2.0  # rate error persists


class TestCristian:
    def test_residual_within_bound(self):
        client = DriftingClock("client", offset=37.0)
        server = DriftingClock("server", offset=0.0)
        residual, bound = cristian_sync(client, server, true_time=100.0, rtt=0.4)
        assert bound == pytest.approx(0.2)
        assert residual <= bound + 1e-9

    def test_zero_rtt_exact(self):
        client = DriftingClock("client", offset=-12.0)
        server = DriftingClock("server", offset=3.0)
        residual, _ = cristian_sync(client, server, true_time=50.0, rtt=0.0)
        assert residual == pytest.approx(0.0)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            cristian_sync(DriftingClock("a"), DriftingClock("b"), 0.0, -1.0)

    @given(
        st.floats(-1000, 1000),
        st.floats(-1000, 1000),
        st.floats(0.0, 2.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_bound_always_holds(self, client_off, server_off, rtt):
        client = DriftingClock("c", offset=client_off)
        server = DriftingClock("s", offset=server_off)
        residual, bound = cristian_sync(client, server, 10.0, rtt)
        assert residual <= bound + 1e-6


class TestBerkeley:
    def _fleet(self):
        return [
            DriftingClock("master", offset=0.0),
            DriftingClock("a", offset=12.0),
            DriftingClock("b", offset=-8.0),
            DriftingClock("c", offset=3.0),
        ]

    def test_spread_collapses(self):
        clocks = self._fleet()
        report = berkeley_sync(clocks, true_time=500.0)
        assert report.spread_before == pytest.approx(20.0)
        assert report.spread_after == pytest.approx(0.0, abs=1e-9)

    def test_converges_to_average_not_master(self):
        clocks = self._fleet()
        berkeley_sync(clocks, true_time=0.0)
        # Average offset of {0, 12, -8, 3} is 1.75.
        assert clocks[0].read(0.0) == pytest.approx(1.75)

    def test_outlier_discarded_from_average_but_fixed(self):
        clocks = self._fleet() + [DriftingClock("broken", offset=10_000.0)]
        report = berkeley_sync(clocks, true_time=0.0, outlier_threshold=100.0)
        assert report.discarded == ["broken"]
        # Average excludes the outlier...
        assert report.average_adjustment == pytest.approx(1.75)
        # ...but the outlier still gets slewed onto the group.
        assert clocks[-1].read(0.0) == pytest.approx(1.75)

    def test_master_included_in_average(self):
        clocks = [DriftingClock("m", offset=10.0), DriftingClock("x", offset=0.0)]
        berkeley_sync(clocks, true_time=0.0)
        assert clocks[0].read(0.0) == pytest.approx(5.0)
        assert clocks[1].read(0.0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            berkeley_sync([], 0.0)
        with pytest.raises(ValueError):
            berkeley_sync([DriftingClock("x")], 0.0, master_index=5)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_property_spread_never_grows(self, offsets):
        clocks = [DriftingClock(f"c{i}", offset=o) for i, o in enumerate(offsets)]
        report = berkeley_sync(clocks, true_time=42.0)
        assert report.spread_after <= report.spread_before + 1e-6
        assert report.spread_after == pytest.approx(0.0, abs=1e-6)

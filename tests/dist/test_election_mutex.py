"""Tests for leader election and distributed mutual exclusion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.election import bully_election, ring_election
from repro.dist.mutex import (
    MutexAlgorithm,
    message_complexity_table,
    simulate_mutex,
)


class TestRingElection:
    def test_highest_id_wins(self):
        result = ring_election(list(range(8)), initiator=3)
        assert result.leader == 7

    def test_crashed_highest_skipped(self):
        result = ring_election(list(range(8)), initiator=3, crashed={7})
        assert result.leader == 6

    def test_messages_bounded_by_three_laps(self):
        # Election token: up to 2n hops (worst case: the initiator sits
        # just after the max), coordinator circulation: n hops.
        n = 10
        result = ring_election(list(range(n)), initiator=0)
        assert n <= result.messages <= 3 * n

    def test_best_position_initiator_cheapest(self):
        n = 10
        best = ring_election(list(range(n)), initiator=n - 1)  # the max itself
        worst = ring_election(list(range(n)), initiator=0)
        assert best.messages < worst.messages

    def test_initiator_must_be_alive(self):
        with pytest.raises(ValueError):
            ring_election([0, 1, 2], initiator=1, crashed={1})

    def test_unordered_ring_ids(self):
        result = ring_election([5, 2, 9, 1], initiator=2)
        assert result.leader == 9

    @given(
        st.integers(min_value=2, max_value=12),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_leader_is_max_live(self, n, data):
        crashed = data.draw(
            st.sets(st.integers(0, n - 1), max_size=n - 1)
        )
        live = [p for p in range(n) if p not in crashed]
        initiator = data.draw(st.sampled_from(live))
        result = ring_election(list(range(n)), initiator, crashed)
        assert result.leader == max(live)


class TestBullyElection:
    def test_highest_id_wins(self):
        assert bully_election(list(range(8)), initiator=0).leader == 7

    def test_crashed_leader_replaced(self):
        result = bully_election(list(range(8)), initiator=0, crashed={7})
        assert result.leader == 6

    def test_top_initiator_cheapest(self):
        low = bully_election(list(range(8)), initiator=0)
        high = bully_election(list(range(8)), initiator=7)
        assert high.messages < low.messages

    def test_messages_include_dead_challenges(self):
        # Initiator 6 challenges only 7; 7 is dead -> 1 election message,
        # 0 OKs, then coordinator to all lower live.
        result = bully_election(list(range(8)), initiator=6, crashed={7})
        assert result.leader == 6
        assert result.messages == 1 + 6

    @given(st.integers(min_value=2, max_value=10), st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_same_winner_as_ring(self, n, data):
        crashed = data.draw(st.sets(st.integers(0, n - 1), max_size=n - 1))
        live = [p for p in range(n) if p not in crashed]
        initiator = data.draw(st.sampled_from(live))
        ring = ring_election(list(range(n)), initiator, crashed)
        bully = bully_election(list(range(n)), initiator, crashed)
        assert ring.leader == bully.leader == max(live)


class TestDistributedMutex:
    REQUESTS = [(1, 0), (2, 3), (3, 1), (4, 2)]

    def test_lamport_message_count(self):
        r = simulate_mutex(5, self.REQUESTS, MutexAlgorithm.LAMPORT)
        assert r.messages == 4 * 3 * 4  # 3(n-1) per entry

    def test_ricart_agrawala_message_count(self):
        r = simulate_mutex(5, self.REQUESTS, MutexAlgorithm.RICART_AGRAWALA)
        assert r.messages == 4 * 2 * 4

    def test_token_ring_counts_hops(self):
        r = simulate_mutex(4, [(1, 1), (2, 2), (3, 3)], MutexAlgorithm.TOKEN_RING)
        # holder 0 -> 1 (1 hop), 1 -> 2 (1), 2 -> 3 (1)
        assert r.messages == 3

    def test_token_ring_wraps(self):
        r = simulate_mutex(4, [(1, 3), (2, 1)], MutexAlgorithm.TOKEN_RING)
        assert r.messages == 3 + 2  # 0->3 then 3->0->1

    def test_entry_order_identical_across_algorithms(self):
        orders = {
            algo: simulate_mutex(5, self.REQUESTS, algo).entry_order
            for algo in MutexAlgorithm
        }
        assert len(set(orders.values())) == 1
        assert orders[MutexAlgorithm.LAMPORT] == tuple(sorted(self.REQUESTS))

    def test_duplicate_requests_rejected(self):
        with pytest.raises(ValueError):
            simulate_mutex(3, [(1, 0), (1, 0)])

    def test_process_range_validated(self):
        with pytest.raises(ValueError):
            simulate_mutex(3, [(1, 5)])

    def test_needs_two_processes(self):
        with pytest.raises(ValueError):
            simulate_mutex(1, [(1, 0)])

    def test_complexity_table_ordering(self):
        rows = {r["algorithm"]: r["per_entry"] for r in message_complexity_table(8)}
        assert rows["lamport"] == 21.0
        assert rows["ricart-agrawala"] == 14.0
        assert rows["token-ring"] < rows["ricart-agrawala"]

    @given(st.integers(2, 10), st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_lamport_is_3_halves_of_ra(self, n, data):
        k = data.draw(st.integers(1, 6))
        requests = [(t + 1, data.draw(st.integers(0, n - 1))) for t in range(k)]
        requests = list(dict.fromkeys(requests))
        lam = simulate_mutex(n, requests, MutexAlgorithm.LAMPORT)
        ra = simulate_mutex(n, requests, MutexAlgorithm.RICART_AGRAWALA)
        assert lam.messages * 2 == ra.messages * 3

"""Leader election unit tests: the fault-free baselines.

The happy paths live here on purpose: ``tests/faults/`` re-runs these
algorithms *under* crash faults, and a fault-variant test is only
meaningful against a green fault-free baseline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.election import ElectionResult, bully_election, ring_election


class TestRingElection:
    def test_highest_id_wins(self):
        result = ring_election(list(range(8)), initiator=3)
        assert result.leader == 7

    def test_crashed_highest_skipped(self):
        result = ring_election(list(range(8)), initiator=3, crashed={7})
        assert result.leader == 6

    def test_messages_bounded_by_three_laps(self):
        # Election token: up to 2n hops (worst case: the initiator sits
        # just after the max), coordinator circulation: n hops.
        n = 10
        result = ring_election(list(range(n)), initiator=0)
        assert n <= result.messages <= 3 * n

    def test_best_position_initiator_cheapest(self):
        n = 10
        best = ring_election(list(range(n)), initiator=n - 1)  # the max itself
        worst = ring_election(list(range(n)), initiator=0)
        assert best.messages < worst.messages

    def test_initiator_must_be_alive(self):
        with pytest.raises(ValueError):
            ring_election([0, 1, 2], initiator=1, crashed={1})

    def test_unordered_ring_ids(self):
        result = ring_election([5, 2, 9, 1], initiator=2)
        assert result.leader == 9

    def test_two_processes(self):
        result = ring_election([0, 1], initiator=0)
        assert result.leader == 1
        assert result.rounds == 2

    def test_deterministic_rerun(self):
        # Pure simulation: identical inputs, identical accounting — the
        # property the chaos suite's digest checks extend run-wide.
        a = ring_election(list(range(9)), initiator=4, crashed={6})
        b = ring_election(list(range(9)), initiator=4, crashed={6})
        assert a == b == ElectionResult(a.leader, a.messages, a.rounds)

    @given(
        st.integers(min_value=2, max_value=12),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_leader_is_max_live(self, n, data):
        crashed = data.draw(
            st.sets(st.integers(0, n - 1), max_size=n - 1)
        )
        live = [p for p in range(n) if p not in crashed]
        initiator = data.draw(st.sampled_from(live))
        result = ring_election(list(range(n)), initiator, crashed)
        assert result.leader == max(live)


class TestBullyElection:
    def test_highest_id_wins(self):
        assert bully_election(list(range(8)), initiator=0).leader == 7

    def test_crashed_leader_replaced(self):
        result = bully_election(list(range(8)), initiator=0, crashed={7})
        assert result.leader == 6

    def test_top_initiator_cheapest(self):
        low = bully_election(list(range(8)), initiator=0)
        high = bully_election(list(range(8)), initiator=7)
        assert high.messages < low.messages

    def test_messages_include_dead_challenges(self):
        # Initiator 6 challenges only 7; 7 is dead -> 1 election message,
        # 0 OKs, then coordinator to all lower live.
        result = bully_election(list(range(8)), initiator=6, crashed={7})
        assert result.leader == 6
        assert result.messages == 1 + 6

    def test_single_process_elects_itself(self):
        result = bully_election([3], initiator=3)
        assert result.leader == 3
        assert result.messages == 0

    def test_deterministic_rerun(self):
        a = bully_election(list(range(7)), initiator=2, crashed={5})
        b = bully_election(list(range(7)), initiator=2, crashed={5})
        assert a == b

    @given(st.integers(min_value=2, max_value=10), st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_same_winner_as_ring(self, n, data):
        crashed = data.draw(st.sets(st.integers(0, n - 1), max_size=n - 1))
        live = [p for p in range(n) if p not in crashed]
        initiator = data.draw(st.sampled_from(live))
        ring = ring_election(list(range(n)), initiator, crashed)
        bully = bully_election(list(range(n)), initiator, crashed)
        assert ring.leader == bully.leader == max(live)

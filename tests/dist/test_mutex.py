"""Distributed mutual exclusion unit tests: the fault-free baselines.

Split out of the combined election/mutex file so the chaos suite
(``tests/faults/``) has a clean per-algorithm baseline to diff its
fault-variant runs against.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.mutex import (
    MutexAlgorithm,
    message_complexity_table,
    simulate_mutex,
)


class TestDistributedMutex:
    REQUESTS = [(1, 0), (2, 3), (3, 1), (4, 2)]

    def test_lamport_message_count(self):
        r = simulate_mutex(5, self.REQUESTS, MutexAlgorithm.LAMPORT)
        assert r.messages == 4 * 3 * 4  # 3(n-1) per entry

    def test_ricart_agrawala_message_count(self):
        r = simulate_mutex(5, self.REQUESTS, MutexAlgorithm.RICART_AGRAWALA)
        assert r.messages == 4 * 2 * 4

    def test_token_ring_counts_hops(self):
        r = simulate_mutex(4, [(1, 1), (2, 2), (3, 3)], MutexAlgorithm.TOKEN_RING)
        # holder 0 -> 1 (1 hop), 1 -> 2 (1), 2 -> 3 (1)
        assert r.messages == 3

    def test_token_ring_wraps(self):
        r = simulate_mutex(4, [(1, 3), (2, 1)], MutexAlgorithm.TOKEN_RING)
        assert r.messages == 3 + 2  # 0->3 then 3->0->1

    def test_entry_order_identical_across_algorithms(self):
        orders = {
            algo: simulate_mutex(5, self.REQUESTS, algo).entry_order
            for algo in MutexAlgorithm
        }
        assert len(set(orders.values())) == 1
        assert orders[MutexAlgorithm.LAMPORT] == tuple(sorted(self.REQUESTS))

    def test_entry_order_is_timestamp_order(self):
        shuffled = [(4, 0), (1, 2), (3, 1)]
        r = simulate_mutex(3, shuffled)
        assert r.entry_order == ((1, 2), (3, 1), (4, 0))

    def test_messages_per_entry_consistent(self):
        r = simulate_mutex(5, self.REQUESTS, MutexAlgorithm.LAMPORT)
        assert r.messages_per_entry == r.messages / len(self.REQUESTS)

    def test_single_request(self):
        r = simulate_mutex(3, [(1, 1)], MutexAlgorithm.RICART_AGRAWALA)
        assert r.entry_order == ((1, 1),)
        assert r.messages == 2 * 2  # 2(n-1)

    def test_duplicate_requests_rejected(self):
        with pytest.raises(ValueError):
            simulate_mutex(3, [(1, 0), (1, 0)])

    def test_process_range_validated(self):
        with pytest.raises(ValueError):
            simulate_mutex(3, [(1, 5)])

    def test_needs_two_processes(self):
        with pytest.raises(ValueError):
            simulate_mutex(1, [(1, 0)])

    def test_complexity_table_ordering(self):
        rows = {r["algorithm"]: r["per_entry"] for r in message_complexity_table(8)}
        assert rows["lamport"] == 21.0
        assert rows["ricart-agrawala"] == 14.0
        assert rows["token-ring"] < rows["ricart-agrawala"]

    @given(st.integers(2, 10), st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_lamport_is_3_halves_of_ra(self, n, data):
        k = data.draw(st.integers(1, 6))
        requests = [(t + 1, data.draw(st.integers(0, n - 1))) for t in range(k)]
        requests = list(dict.fromkeys(requests))
        lam = simulate_mutex(n, requests, MutexAlgorithm.LAMPORT)
        ra = simulate_mutex(n, requests, MutexAlgorithm.RICART_AGRAWALA)
        assert lam.messages * 2 == ra.messages * 3

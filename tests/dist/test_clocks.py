"""Tests for logical clocks and happens-before."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.clocks import (
    LamportClock,
    VectorClock,
    concurrent,
    happens_before,
    run_message_trace,
)


class TestLamport:
    def test_tick_monotone(self):
        clock = LamportClock()
        stamps = [clock.tick() for _ in range(5)]
        assert stamps == [1, 2, 3, 4, 5]

    def test_receive_jumps_past_message(self):
        clock = LamportClock()
        clock.tick()  # 1
        assert clock.on_receive(10) == 11

    def test_receive_of_old_message_still_advances(self):
        clock = LamportClock()
        for _ in range(5):
            clock.tick()
        assert clock.on_receive(2) == 6

    def test_send_receive_ordering(self):
        a, b = LamportClock(), LamportClock()
        ts = a.stamp_send()
        assert b.on_receive(ts) > ts


class TestVector:
    def test_tick_advances_own_component(self):
        v = VectorClock(1, 3)
        assert v.tick() == (0, 1, 0)

    def test_receive_merges_and_advances(self):
        v = VectorClock(0, 3)
        v.tick()  # (1,0,0)
        assert v.on_receive((0, 5, 2)) == (2, 5, 2)

    def test_pid_validation(self):
        with pytest.raises(ValueError):
            VectorClock(3, 3)

    def test_snapshot_immutable(self):
        v = VectorClock(0, 2)
        snap = v.tick()
        v.tick()
        assert snap == (1, 0)


class TestHappensBefore:
    def test_strict_componentwise(self):
        assert happens_before((1, 0), (2, 1))
        assert not happens_before((2, 1), (1, 0))

    def test_equal_not_ordered(self):
        assert not happens_before((1, 1), (1, 1))

    def test_concurrent(self):
        assert concurrent((1, 0), (0, 1))
        assert not concurrent((1, 0), (2, 0))
        assert not concurrent((1, 1), (1, 1))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            happens_before((1,), (1, 2))


class TestTrace:
    def test_causal_chain_ordered_by_vectors(self):
        events = run_message_trace(
            3, [("msg", 0, 1), ("msg", 1, 2)]
        )
        send0, recv1, send1, recv2 = events
        assert happens_before(send0.vector, recv2.vector)
        assert recv2.lamport > send0.lamport

    def test_concurrent_events_detected(self):
        events = run_message_trace(2, [("local", 0, 0), ("local", 1, 0)])
        assert concurrent(events[0].vector, events[1].vector)

    def test_lamport_consistent_with_causality(self):
        """a -> b implies L(a) < L(b) on every pair of trace events."""
        events = run_message_trace(
            3,
            [("local", 0, 0), ("msg", 0, 1), ("local", 2, 0),
             ("msg", 1, 2), ("msg", 2, 0)],
        )
        for a in events:
            for b in events:
                if happens_before(a.vector, b.vector):
                    assert a.lamport < b.lamport

    def test_lamport_converse_fails_somewhere(self):
        """The lecture point: L(a) < L(b) does NOT imply a -> b."""
        events = run_message_trace(
            3, [("local", 0, 0), ("local", 0, 0), ("local", 1, 0)]
        )
        found = any(
            a.lamport < b.lamport and not happens_before(a.vector, b.vector)
            for a in events
            for b in events
        )
        assert found

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            run_message_trace(2, [("teleport", 0, 1)])


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("local"), st.integers(0, 2), st.just(0)),
            st.tuples(st.just("msg"), st.integers(0, 2), st.integers(0, 2)),
        ),
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_clock_condition(actions):
    """Vector happens-before always implies strictly smaller Lamport time."""
    actions = [a for a in actions if not (a[0] == "msg" and a[1] == a[2])]
    events = run_message_trace(3, actions)
    for a in events:
        for b in events:
            if happens_before(a.vector, b.vector):
                assert a.lamport < b.lamport

"""Tracer: span/instant events, Chrome-trace export, deterministic digest."""

import json

from repro.runtime import RunContext, Tracer, VirtualClock


class TestEmission:
    def test_span_emits_begin_end(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("work", cat="test", tid="t0"):
            tracer.instant("tick", cat="test", tid="t0")
        phases = [(e.ph, e.name) for e in tracer.events()]
        assert phases == [("B", "work"), ("i", "tick"), ("E", "work")]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(clock=VirtualClock(), enabled=False)
        with tracer.span("work"):
            tracer.instant("tick")
        assert len(tracer) == 0

    def test_seq_is_per_tid(self):
        tracer = Tracer(clock=VirtualClock())
        tracer.instant("a", tid="t0")
        tracer.instant("b", tid="t1")
        tracer.instant("c", tid="t0")
        seqs = {(e.tid, e.name): e.seq for e in tracer.events()}
        assert seqs[("t0", "a")] == 0
        assert seqs[("t1", "b")] == 0
        assert seqs[("t0", "c")] == 1

    def test_explicit_ts_override(self):
        tracer = Tracer(clock=VirtualClock())
        tracer.instant("sim", tid="sched", ts_us=42)
        assert tracer.events()[0].ts == 42

    def test_virtual_clock_timestamps(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        tracer.instant("a", tid="t")
        clock.advance(0.001)
        tracer.instant("b", tid="t")
        ts = [e.ts for e in tracer.events()]
        assert ts == [0, 1000]


class TestExport:
    def test_chrome_trace_shape(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("outer", tid="t0", args={"k": 1}):
            pass
        doc = tracer.to_chrome_trace()
        assert "traceEvents" in doc
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert metadata[0]["args"]["name"] == "t0"
        spans = [e for e in doc["traceEvents"] if e["ph"] in "BE"]
        assert [e["ph"] for e in spans] == ["B", "E"]
        assert all(isinstance(e["tid"], int) for e in spans)

    def test_canonical_bytes_is_valid_json(self):
        tracer = Tracer(clock=VirtualClock())
        tracer.instant("x", tid="t")
        doc = json.loads(tracer.canonical_bytes())
        assert doc["traceEvents"]

    def test_digest_stable_for_same_events(self):
        def build():
            tracer = Tracer(clock=VirtualClock())
            with tracer.span("a", tid="t0"):
                tracer.instant("b", tid="t0", args={"n": 1})
            return tracer

        assert build().digest() == build().digest()

    def test_digest_differs_for_different_events(self):
        t1 = Tracer(clock=VirtualClock())
        t1.instant("a", tid="t")
        t2 = Tracer(clock=VirtualClock())
        t2.instant("b", tid="t")
        assert t1.digest() != t2.digest()

    def test_write_files(self, tmp_path):
        tracer = Tracer(clock=VirtualClock())
        tracer.instant("x", tid="t")
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        tracer.write_chrome_trace(str(chrome))
        tracer.write_jsonl(str(jsonl))
        assert json.loads(chrome.read_text())["traceEvents"]
        lines = jsonl.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "x"


class TestNesting:
    def test_well_formed_nesting_passes(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("outer", tid="t"):
            with tracer.span("inner", tid="t"):
                pass
        assert tracer.validate_nesting() == []

    def test_unclosed_span_reported(self):
        tracer = Tracer(clock=VirtualClock())
        tracer.begin("leak", tid="t")
        assert any("never closed" in p for p in tracer.validate_nesting())

    def test_mismatched_close_reported(self):
        tracer = Tracer(clock=VirtualClock())
        tracer.begin("a", tid="t")
        tracer.end("b", tid="t")
        problems = tracer.validate_nesting()
        assert any("closes open span" in p for p in problems)


class TestRunContext:
    def test_deterministic_context_uses_virtual_clock(self):
        ctx = RunContext.deterministic(seed=3)
        assert isinstance(ctx.clock, VirtualClock)
        assert ctx.rng.root_seed == 3

    def test_payload_size_counts_unpicklable(self):
        ctx = RunContext.deterministic()
        ctx.payload_size({"ok": 1})
        ctx.payload_size(lambda: None)
        assert ctx.snapshot()["runtime.unpicklable"] == 1

    def test_report_and_save(self, tmp_path):
        ctx = RunContext.deterministic(seed=9, label="demo")
        ctx.registry.counter("net.messages").inc()
        ctx.tracer.instant("x", tid="t")
        report = ctx.report()
        assert report["seed"] == 9
        assert report["metrics"]["net.messages"] == 1
        assert report["trace_events"] == 1
        paths = ctx.save(str(tmp_path / "out"))
        metrics = json.loads(open(paths["metrics"]).read())
        assert metrics["label"] == "demo"
        assert json.loads(open(paths["trace"]).read())["traceEvents"]
        assert open(paths["trace_jsonl"]).read().strip()

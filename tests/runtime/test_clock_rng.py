"""Clock abstraction and the named-stream RNG service."""

import threading
import time

import numpy as np
import pytest

from repro.runtime import MonotonicClock, RngService, VirtualClock


class TestMonotonicClock:
    def test_now_advances(self):
        clock = MonotonicClock()
        a = clock.now()
        time.sleep(0.01)
        assert clock.now() > a

    def test_wait_on_notified(self):
        clock = MonotonicClock()
        cond = threading.Condition()

        def notifier():
            with cond:
                cond.notify_all()

        with cond:
            threading.Timer(0.02, notifier).start()
            assert clock.wait_on(cond, timeout=5.0) is True


class TestVirtualClock:
    def test_starts_where_told_and_only_moves_on_advance(self):
        clock = VirtualClock(start=10.0)
        assert clock.now() == 10.0
        time.sleep(0.01)
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_sleep_advances_instantly(self):
        clock = VirtualClock()
        start = time.monotonic()  # pdc-lint: disable=PDC210 -- measuring that VirtualClock does NOT consume wall time
        clock.sleep(1000.0)
        assert time.monotonic() - start < 1.0  # no real kilosecond  # pdc-lint: disable=PDC210 -- same wall-time measurement
        assert clock.now() == 1000.0

    def test_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.sleep(-1)

    def test_wait_on_times_out_in_virtual_time(self):
        clock = VirtualClock()
        cond = threading.Condition()

        def advancer():
            clock.advance(10.0)

        with cond:
            threading.Timer(0.05, advancer).start()
            # Virtual deadline is 5s; the advancer jumps past it.
            assert clock.wait_on(cond, timeout=5.0) is False

    def test_wait_on_wakes_on_notify(self):
        clock = VirtualClock()
        cond = threading.Condition()

        def notifier():
            with cond:
                cond.notify_all()

        with cond:
            threading.Timer(0.02, notifier).start()
            assert clock.wait_on(cond, timeout=60.0) is True


class TestRngService:
    def test_same_name_same_stream_instance(self):
        rng = RngService(seed=1)
        assert rng.stream("net.drops") is rng.stream("net.drops")

    def test_streams_reproducible_across_services(self):
        a = RngService(seed=7).stream("net.drops")
        b = RngService(seed=7).stream("net.drops")
        assert list(a.random(5)) == list(b.random(5))

    def test_streams_independent_by_name(self):
        svc = RngService(seed=7)
        a = svc.stream("net.drops").random(5)
        b = svc.stream("dist.loadbalance").random(5)
        assert list(a) != list(b)

    def test_seed_changes_streams(self):
        a = RngService(seed=1).stream("s").random(3)
        b = RngService(seed=2).stream("s").random(3)
        assert list(a) != list(b)

    def test_fresh_stream_restarts(self):
        svc = RngService(seed=3)
        first = svc.fresh_stream("x").random(4)
        again = svc.fresh_stream("x").random(4)
        assert list(first) == list(again)

    def test_seed_for_is_stable(self):
        assert RngService(5).seed_for("a") == RngService(5).seed_for("a")
        assert RngService(5).seed_for("a") != RngService(5).seed_for("b")

    def test_child_service_derives(self):
        child = RngService(5).child("lab1")
        other = RngService(5).child("lab2")
        assert child.root_seed != other.root_seed
        assert isinstance(child.stream("s"), np.random.Generator)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngService(0).stream("")

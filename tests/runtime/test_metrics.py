"""MetricRegistry: typed instruments, hierarchical names, snapshots."""

import threading

import pytest

from repro.runtime import MetricRegistry, RegistryStats, payload_size


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricRegistry()
        c = reg.counter("net.messages")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("")

    def test_thread_safety(self):
        reg = MetricRegistry()
        c = reg.counter("hot")

        def worker():
            for _ in range(5_000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 20_000


class TestGaugeHistogram:
    def test_gauge_set_add(self):
        g = MetricRegistry().gauge("queue.depth")
        g.set(3)
        g.add(-1)
        assert g.value == 2.0

    def test_histogram_summary(self):
        h = MetricRegistry().histogram("sched.turnaround")
        for v in (1.0, 2.0, 9.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 9.0
        assert s["mean"] == pytest.approx(4.0)

    def test_empty_histogram_summary(self):
        s = MetricRegistry().histogram("h").summary()
        assert s == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


class TestSnapshot:
    def test_snapshot_reads_everything(self):
        reg = MetricRegistry()
        reg.counter("net.messages").inc(2)
        reg.gauge("lab.score").set(0.5)
        reg.histogram("sched.waiting").observe(7.0)
        snap = reg.snapshot()
        assert snap["net.messages"] == 2
        assert snap["lab.score"] == 0.5
        assert snap["sched.waiting"]["count"] == 1

    def test_prefix_filter(self):
        reg = MetricRegistry()
        reg.counter("net.messages")
        reg.counter("net.bytes")
        reg.counter("gpu.launches")
        assert set(reg.snapshot("net")) == {"net.messages", "net.bytes"}
        # Prefix match is per dotted segment, not per character.
        reg.counter("netx.other")
        assert "netx.other" not in reg.snapshot("net")


class _DemoStats(RegistryStats):
    fields = ("hits", "misses")
    default_prefix = "demo"


class TestRegistryStats:
    def test_fields_read_write_like_attributes(self):
        s = _DemoStats()
        s.hits += 1
        s.hits += 1
        s.misses = 5
        assert s.hits == 2
        assert s.misses == 5
        assert s.as_dict() == {"hits": 2, "misses": 5}

    def test_shared_registry_exposes_fields(self):
        reg = MetricRegistry()
        s = _DemoStats(registry=reg)
        s.hits += 3
        assert reg.snapshot()["demo.hits"] == 3

    def test_equality_by_values(self):
        a, b = _DemoStats(), _DemoStats()
        assert a == b
        a.hits += 1
        assert a != b

    def test_repr_shows_values(self):
        s = _DemoStats()
        s.hits += 1
        assert "hits=1" in repr(s)


class TestPayloadSize:
    def test_picklable_payload(self):
        assert payload_size({"a": 1}) > 0

    def test_unpicklable_invokes_callback_and_still_sizes(self):
        calls = []
        size = payload_size(lambda: None, on_unpicklable=lambda: calls.append(1))
        assert size > 0
        assert calls == [1]

"""End-to-end RunContext integration across the simulation subsystems.

Covers the acceptance criteria of the runtime substrate:

- a ``dist`` lab (RPC + name service + lossy datagrams) runs under one
  :class:`~repro.runtime.RunContext` and exports a well-formed
  Chrome-trace JSON whose spans nest;
- two runs with the same root seed produce identical trace digests;
- all six legacy stats surfaces land in one ``MetricRegistry.snapshot``;
- a same-seed ``mp`` + ``net`` lab double run is byte-identical;
- ``run_spmd`` honours its deadline in *virtual* time.
"""

import json
import threading

import pytest

from repro.arch.cache import Cache, CacheConfig
from repro.dist.middleware import NameService, RpcServer, rpc_proxy
from repro.gpu import Device, GlobalArray, launch
from repro.mp.runtime import World, run_spmd
from repro.net.simnet import Address, Network
from repro.net.sockets import DatagramSocket
from repro.oskernel.process import Process
from repro.oskernel.scheduler import RoundRobin, simulate
from repro.runtime import RunContext


class _KvStore:
    """The classic middleware-lab exported object."""

    def __init__(self):
        self._data = {}
        self._lock = threading.Lock()

    def put(self, key, value):
        with self._lock:
            self._data[key] = value
        return True

    def get(self, key):
        with self._lock:
            return self._data.get(key)


def _run_dist_lab(seed: int) -> RunContext:
    """RPC calls through a name service plus a lossy datagram burst."""
    ctx = RunContext.deterministic(seed=seed, label="dist-lab")
    network = Network(drop_rate=0.3, context=ctx)

    names = NameService(context=ctx)
    names.register("kv", "server", 9000)

    with RpcServer(network, Address("server", 9000), _KvStore(), context=ctx):
        host, port = names.lookup("kv")
        client = rpc_proxy(network, Address(host, port))
        for i in range(4):
            client.put(f"k{i}", i * i)
        assert client.get("k3") == 9
        client._close()

    # Lossy datagrams: the drop decisions come from the seeded stream.
    sink = DatagramSocket(network, Address("sink", 1))
    src = DatagramSocket(network, Address("src", 1))
    for i in range(20):
        src.sendto({"n": i}, Address("sink", 1))
    sink.close()
    src.close()
    return ctx


class TestDistLab:
    def test_trace_is_well_formed_chrome_json(self):
        ctx = _run_dist_lab(seed=11)
        doc = json.loads(ctx.tracer.canonical_bytes())
        events = doc["traceEvents"]
        assert events, "lab produced no trace events"
        for e in events:
            assert e["ph"] in ("B", "E", "i", "M")
            if e["ph"] != "M":
                assert isinstance(e["tid"], int)
                assert isinstance(e["ts"], int)
        # The RPC spans made it onto the unified timeline.
        assert any(e.get("name", "").startswith("rpc.") for e in events)
        assert any(e.get("name") == "net.drop" for e in events)

    def test_spans_nest(self):
        ctx = _run_dist_lab(seed=11)
        assert ctx.tracer.validate_nesting() == []

    def test_same_seed_same_digest(self):
        assert _run_dist_lab(seed=42).tracer.digest() == \
            _run_dist_lab(seed=42).tracer.digest()

    def test_different_seed_different_digest(self):
        # Different drop decisions reshape the datagram trace.
        assert _run_dist_lab(seed=1).tracer.digest() != \
            _run_dist_lab(seed=2).tracer.digest()

    def test_metrics_account_the_lab(self):
        snap = _run_dist_lab(seed=11).snapshot()
        assert snap["dist.rpc.calls"] == 5  # 4 puts + 1 get
        assert snap["dist.nameservice.lookups"] == 1
        assert snap["net.dropped"] > 0
        assert snap["net.messages"] > 0


def _saxpy(ctx, out):
    i = ctx.global_id()
    out[i] = 2.0 * float(i)


class TestSixSurfacesOneSnapshot:
    def test_all_legacy_stats_in_one_registry(self):
        ctx = RunContext.deterministic(seed=5, label="omni")

        # 1. net: NetworkStats
        network = Network(context=ctx)
        network.record_delivery({"hello": 1})

        # 2. gpu: KernelStats
        device = Device(context=ctx)
        out = GlobalArray.zeros(64)
        launch(device, _saxpy, grid=2, block=32)(out)

        # 3. oskernel: scheduler Metrics
        simulate(
            [Process(1, 0, 5), Process(2, 1, 3)],
            RoundRobin(quantum=2),
            context=ctx,
        )

        # 4. mp: World message trace
        def ring(comm):
            right = (comm.rank + 1) % comm.size
            comm.send(comm.rank, dest=right)
            return comm.recv()

        run_spmd(3, ring, context=ctx)

        # 5. dist.middleware: RPC counters
        with RpcServer(
            network, Address("s", 1), _KvStore(), context=ctx
        ):
            proxy = rpc_proxy(network, Address("s", 1))
            proxy.put("a", 1)
            proxy._close()

        # 6. arch: CacheStats
        cache = Cache(CacheConfig(), context=ctx)
        for addr in (0, 64, 0):
            cache.access(addr)

        snap = ctx.snapshot()
        assert snap["net.messages"] >= 1
        assert snap["gpu.kernel._saxpy.threads"] == 64
        assert snap["gpu.launches"] == 1
        assert snap["sched.runs"] == 1
        assert snap["sched.turnaround"]["count"] == 2
        assert snap["mp.messages"] == 3
        assert snap["dist.rpc.calls"] >= 1
        assert snap["arch.cache.accesses"] == 3
        assert snap["arch.cache.hits"] == 1

        # Legacy attribute reads still work and agree with the registry.
        assert network.stats.messages == snap["net.messages"]
        assert cache.stats.accesses == 3
        assert device.last_stats().threads == 64


def _run_mp_net_lab(seed: int) -> RunContext:
    """A ring exchange whose payloads also cross the simulated network."""
    ctx = RunContext.deterministic(seed=seed, label="mp-net-lab")
    network = Network(drop_rate=0.25, context=ctx)

    def ring(comm):
        right = (comm.rank + 1) % comm.size
        comm.send({"from": comm.rank}, dest=right)
        return comm.recv()["from"]

    results = run_spmd(4, ring, context=ctx)
    assert sorted(results) == [0, 1, 2, 3]

    box = DatagramSocket(network, Address("box", 7))
    tx = DatagramSocket(network, Address("tx", 7))
    for i in range(12):
        tx.sendto(i, Address("box", 7))
    box.close()
    tx.close()
    return ctx


class TestMpNetDeterminism:
    def test_same_seed_byte_identical_traces(self):
        a = _run_mp_net_lab(seed=7)
        b = _run_mp_net_lab(seed=7)
        assert a.tracer.canonical_bytes() == b.tracer.canonical_bytes()
        assert a.tracer.digest() == b.tracer.digest()

    def test_exports_round_trip(self, tmp_path):
        ctx = _run_mp_net_lab(seed=7)
        paths = ctx.save(str(tmp_path))
        doc = json.loads(open(paths["trace"]).read())
        assert any(e.get("name") == "mp.run_spmd" for e in doc["traceEvents"])
        metrics = json.loads(open(paths["metrics"]).read())
        assert metrics["metrics"]["mp.messages"] == 4


class TestVirtualDeadline:
    def test_run_spmd_times_out_in_virtual_time(self):
        ctx = RunContext.deterministic(seed=0)
        release = threading.Event()

        def stuck(comm):
            release.wait(timeout=30)

        # Real time barely passes; the Timer jumps the virtual clock past
        # the deadline while the driver waits on the join condition.
        timer = threading.Timer(0.05, ctx.clock.advance, args=(10.0,))
        timer.start()
        try:
            with pytest.raises(TimeoutError):
                run_spmd(2, stuck, timeout=5.0, context=ctx)
        finally:
            release.set()
            timer.cancel()


class TestUnpicklableAccounting:
    def test_datagram_with_unpicklable_payload_is_counted(self):
        ctx = RunContext.deterministic(seed=0)
        network = Network(context=ctx)
        box = DatagramSocket(network, Address("b", 1))
        tx = DatagramSocket(network, Address("t", 1))
        assert tx.sendto(lambda: None, Address("b", 1)) is True
        assert network.stats.unpicklable == 1
        assert network.stats.messages == 1
        assert network.stats.bytes > 0
        box.close()
        tx.close()

"""Tests for task DAGs and the work-span model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dag import TaskDag, brent_bound, greedy_schedule


class TestWorkSpan:
    def test_chain(self):
        dag = TaskDag.chain(10)
        assert dag.work == 10
        assert dag.span == 10
        assert dag.parallelism == 1.0

    def test_fully_parallel(self):
        dag = TaskDag.fully_parallel(8)
        assert dag.work == 8
        assert dag.span == 1
        assert dag.parallelism == 8.0

    def test_fork_join_tree(self):
        dag = TaskDag.fork_join_tree(3)  # 1 + 2 + 4 + 8 + 1 join
        assert dag.work == 16
        assert dag.span == 5  # root + 3 levels + join

    def test_weighted_span(self):
        dag = TaskDag()
        dag.add_task("a", 1).add_task("b", 10).add_task("c", 2)
        dag.add_dep("a", "b")
        dag.add_dep("a", "c")
        assert dag.span == 11
        assert dag.work == 13

    def test_critical_path_tasks(self):
        dag = TaskDag()
        dag.add_task("a", 1).add_task("slow", 10).add_task("fast", 1)
        dag.add_task("z", 1)
        dag.add_dep("a", "slow")
        dag.add_dep("a", "fast")
        dag.add_dep("slow", "z")
        dag.add_dep("fast", "z")
        assert dag.critical_path() == ["a", "slow", "z"]

    def test_cycle_rejected(self):
        dag = TaskDag.chain(3)
        with pytest.raises(ValueError):
            dag.add_dep(2, 0)

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ValueError):
            TaskDag().add_task("x", 0)

    def test_empty_dag(self):
        dag = TaskDag()
        assert dag.work == 0 and dag.span == 0
        assert dag.critical_path() == []


class TestGreedySchedule:
    def test_one_processor_equals_work(self):
        dag = TaskDag.fork_join_tree(2)
        assert greedy_schedule(dag, 1).makespan == dag.work

    def test_infinite_processors_equal_span(self):
        dag = TaskDag.fork_join_tree(3)
        assert greedy_schedule(dag, 64).makespan == dag.span

    def test_makespan_monotone_in_processors(self):
        dag = TaskDag.fork_join_tree(3)
        spans = [greedy_schedule(dag, p).makespan for p in (1, 2, 4, 8)]
        assert spans == sorted(spans, reverse=True)

    def test_respects_dependencies(self):
        dag = TaskDag.chain(5)
        result = greedy_schedule(dag, 4)
        start = {t: s for t, _p, s, _e in result.timeline}
        end = {t: e for t, _p, _s, e in result.timeline}
        for i in range(1, 5):
            assert start[i] >= end[i - 1]

    def test_no_processor_overlap(self):
        dag = TaskDag.fork_join_tree(3)
        result = greedy_schedule(dag, 3)
        by_proc = {}
        for task, proc, s, e in result.timeline:
            by_proc.setdefault(proc, []).append((s, e))
        for intervals in by_proc.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2

    def test_brent_bound_function(self):
        assert brent_bound(100, 10, 10) == 20.0
        with pytest.raises(ValueError):
            brent_bound(1, 1, 0)

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            greedy_schedule(TaskDag.chain(2), 0)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_brent_inequality_on_random_dags(self, data):
        """Any greedy schedule satisfies T_p <= T_1/p + T_inf."""
        n = data.draw(st.integers(1, 12))
        dag = TaskDag()
        for i in range(n):
            dag.add_task(i, data.draw(st.integers(1, 5)))
        for i in range(n):
            for j in range(i + 1, n):
                if data.draw(st.booleans()) and data.draw(st.booleans()):
                    dag.add_dep(i, j)
        p = data.draw(st.integers(1, 6))
        result = greedy_schedule(dag, p)
        assert result.satisfies_brent(dag.work, dag.span)
        # Also the universal lower bounds:
        assert result.makespan >= dag.span - 1e-9
        assert result.makespan >= dag.work / p - 1e-9

"""Tests for sorting, scans, reductions, matrix, and graph algorithms."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dnc import fork_join
from repro.algorithms.graph import connected_components, parallel_bfs
from repro.algorithms.matrix import blocked_matmul, matmul_loop_orders, parallel_matmul
from repro.algorithms.reduction import reduce_depth, tree_reduce
from repro.algorithms.scan import blelloch_scan, hillis_steele_scan, sequential_scan
from repro.algorithms.sorting import (
    merge,
    parallel_mergesort,
    parallel_quicksort,
    serial_mergesort,
)


class TestForkJoin:
    def test_sum_via_fork_join(self):
        result, stats = fork_join(
            list(range(100)),
            is_base=lambda xs: len(xs) <= 10,
            solve_base=sum,
            split=lambda xs: (xs[: len(xs) // 2], xs[len(xs) // 2 :]),
            combine=sum,
            parallel_depth=2,
        )
        assert result == 4950
        assert stats.forked_tasks > 0
        assert stats.max_depth >= 2

    def test_depth_zero_fully_sequential(self):
        _result, stats = fork_join(
            list(range(64)),
            is_base=lambda xs: len(xs) <= 8,
            solve_base=sum,
            split=lambda xs: (xs[:32], xs[32:]) if len(xs) > 32 else (xs[:len(xs)//2], xs[len(xs)//2:]),
            combine=sum,
            parallel_depth=0,
        )
        assert stats.forked_tasks == 0

    def test_exception_propagates(self):
        def bad_base(xs):
            raise RuntimeError("base failure")

        with pytest.raises(RuntimeError, match="base failure"):
            fork_join(
                [1, 2, 3, 4],
                is_base=lambda xs: len(xs) <= 1,
                solve_base=bad_base,
                split=lambda xs: (xs[: len(xs) // 2], xs[len(xs) // 2 :]),
                combine=lambda parts: None,
                parallel_depth=1,
            )


class TestSorting:
    def test_merge_stable_ordered(self):
        assert merge([1, 3, 5], [2, 3, 4]) == [1, 2, 3, 3, 4, 5]
        assert merge([], [1]) == [1]

    def test_serial_mergesort(self):
        data = [5, 2, 8, 1, 9, 3]
        assert serial_mergesort(data) == sorted(data)
        assert serial_mergesort([]) == []

    def test_parallel_mergesort_matches(self):
        rng = np.random.default_rng(0)
        data = list(rng.integers(0, 10_000, 1000))
        result, stats = parallel_mergesort(data)
        assert result == sorted(data)
        assert stats.forked_tasks > 0

    def test_parallel_quicksort_matches(self):
        rng = np.random.default_rng(1)
        data = list(rng.integers(0, 100, 800))  # heavy duplicates
        result, _ = parallel_quicksort(data)
        assert result == sorted(data)

    def test_quicksort_all_equal_terminates(self):
        result, _ = parallel_quicksort([7] * 500)
        assert result == [7] * 500

    def test_quicksort_sorted_input(self):
        result, _ = parallel_quicksort(list(range(300)))
        assert result == list(range(300))

    def test_mergesort_reverse_input(self):
        result, _ = parallel_mergesort(list(range(300, 0, -1)))
        assert result == list(range(1, 301))

    @given(st.lists(st.integers(-1000, 1000), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_property_sorts_agree(self, data):
        expected = sorted(data)
        assert serial_mergesort(data) == expected
        assert parallel_mergesort(data, parallel_depth=1)[0] == expected
        assert parallel_quicksort(data, parallel_depth=1)[0] == expected


class TestScans:
    def test_all_three_agree(self):
        x = np.random.default_rng(2).random(100)
        seq, _ = sequential_scan(x)
        hs, _ = hillis_steele_scan(x)
        bl, _ = blelloch_scan(x)
        assert np.allclose(seq, np.cumsum(x))
        assert np.allclose(hs, seq)
        assert np.allclose(bl + x, seq)  # exclusive + element = inclusive

    def test_hillis_steele_step_count(self):
        x = np.ones(64)
        _, stats = hillis_steele_scan(x)
        assert stats.steps == 6  # log2(64)

    def test_blelloch_step_count(self):
        x = np.ones(64)
        _, stats = blelloch_scan(x)
        assert stats.steps == 12  # 2 * log2(64)

    def test_work_efficiency_comparison(self):
        """Blelloch does Θ(n) work; Hillis-Steele Θ(n log n)."""
        x = np.ones(1024)
        _, hs = hillis_steele_scan(x)
        _, bl = blelloch_scan(x)
        assert bl.work < hs.work
        assert bl.work <= 2 * 1024
        assert hs.work >= 1024 * 9  # ~ n log n - n

    def test_non_power_of_two(self):
        x = np.arange(100.0)
        bl, _ = blelloch_scan(x)
        assert np.allclose(bl, np.cumsum(x) - x)

    def test_empty_and_single(self):
        empty, _ = blelloch_scan(np.array([]))
        assert empty.size == 0
        single, _ = blelloch_scan(np.array([5.0]))
        assert single.tolist() == [0.0]

    @given(st.lists(st.floats(-100, 100, allow_nan=False), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_property_scans_match_cumsum(self, values):
        x = np.array(values)
        hs, _ = hillis_steele_scan(x)
        bl, _ = blelloch_scan(x)
        assert np.allclose(hs, np.cumsum(x), atol=1e-6)
        assert np.allclose(bl, np.cumsum(x) - x if x.size else x, atol=1e-6)


class TestReduction:
    def test_tree_reduce_sum(self):
        total, stats = tree_reduce(np.arange(1000.0))
        assert total == pytest.approx(499500.0)
        assert stats.combines == 999

    def test_step_count_logarithmic(self):
        _, stats = tree_reduce(np.ones(128))
        assert stats.steps == reduce_depth(128) == 7

    def test_odd_sizes(self):
        for n in (1, 3, 7, 100, 127):
            total, _ = tree_reduce(np.ones(n))
            assert total == n

    def test_other_ops(self):
        top, _ = tree_reduce(np.array([3.0, 9.0, 1.0]), op=np.maximum)
        assert top == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_reduce(np.array([]))

    def test_reduce_depth_validation(self):
        assert reduce_depth(1) == 0
        with pytest.raises(ValueError):
            reduce_depth(0)


class TestMatrix:
    def test_blocked_matches_numpy(self):
        rng = np.random.default_rng(3)
        a, b = rng.random((20, 14)), rng.random((14, 9))
        assert np.allclose(blocked_matmul(a, b, block=5), a @ b)

    def test_blocked_validates(self):
        with pytest.raises(ValueError):
            blocked_matmul(np.ones((2, 3)), np.ones((4, 2)))
        with pytest.raises(ValueError):
            blocked_matmul(np.ones((2, 2)), np.ones((2, 2)), block=0)

    def test_parallel_matches_numpy(self):
        rng = np.random.default_rng(4)
        a, b = rng.random((33, 17)), rng.random((17, 8))
        c, rows = parallel_matmul(a, b, num_threads=4)
        assert np.allclose(c, a @ b)
        assert sum(rows.values()) == 33

    def test_loop_order_cache_behaviour(self):
        rates = matmul_loop_orders(16)
        assert rates["ikj"] < rates["ijk"]  # the lecture's punchline
        assert set(rates) == {"ijk", "ikj", "jik"}

    @given(st.integers(1, 24), st.integers(1, 24), st.integers(1, 24))
    @settings(max_examples=20, deadline=None)
    def test_property_blocked_any_shape(self, n, m, p):
        rng = np.random.default_rng(n * 100 + m * 10 + p)
        a, b = rng.random((n, m)), rng.random((m, p))
        assert np.allclose(blocked_matmul(a, b, block=4), a @ b)


class TestGraph:
    def test_bfs_grid_distances(self):
        g = nx.grid_2d_graph(5, 5)
        result = parallel_bfs(g, (0, 0))
        assert result.distances[(4, 4)] == 8
        assert result.distances[(0, 0)] == 0
        assert result.levels == 9

    def test_bfs_frontier_shape(self):
        g = nx.grid_2d_graph(10, 10)
        result = parallel_bfs(g, (0, 0))
        assert result.frontier_sizes[0] == 1
        assert result.max_parallelism == 10  # the anti-diagonal

    def test_bfs_matches_networkx(self):
        g = nx.gnp_random_graph(50, 0.1, seed=7)
        g.add_node(999)  # isolated
        result = parallel_bfs(g, 0)
        expected = nx.single_source_shortest_path_length(g, 0)
        assert result.distances == dict(expected)

    def test_bfs_unknown_source(self):
        with pytest.raises(KeyError):
            parallel_bfs(nx.Graph(), "missing")

    def test_components_match_networkx(self):
        g = nx.gnp_random_graph(40, 0.05, seed=8)
        labels, _rounds = connected_components(g)
        for comp in nx.connected_components(g):
            comp_labels = {labels[n] for n in comp}
            assert len(comp_labels) == 1

    def test_components_rounds_bounded_by_diameter(self):
        g = nx.path_graph(20)
        _labels, rounds = connected_components(g)
        assert rounds <= 21

    def test_isolated_nodes_self_labeled(self):
        g = nx.Graph()
        g.add_nodes_from([1, 2, 3])
        labels, _ = connected_components(g)
        assert labels == {1: 1, 2: 2, 3: 3}

"""Property tests for the clock algebra and FastTrack's read state.

Hypothesis-driven statements of the laws the race detector's soundness
rests on, complementing the example-based tests in ``test_vc.py``:

- ``vc_merge`` is a join (least upper bound) on the sparse-clock
  lattice: commutative, associative, idempotent, with the empty clock
  as identity — and it really is *least* among upper bounds;
- ``vc_leq`` is a partial order and ticking a component strictly
  increases a clock;
- the epoch fast path is equivalence, not approximation:
  ``epoch_leq((t, c), vc)`` agrees with the full comparison of the
  singleton clock ``{t: c}`` for every epoch and clock;
- FastTrack's read state round-trips: concurrent readers promote the
  epoch to exactly the readers' clock components (in any arrival
  order), happens-before-ordered readers never promote, and a write
  that joins all readers demotes back to the epoch representation
  without spurious races.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sanitizers.fasttrack import FastTrackDetector
from repro.sanitizers.sites import AccessSite
from repro.sanitizers.vc import (
    epoch_leq,
    vc_concurrent,
    vc_get,
    vc_leq,
    vc_merge,
)

# Sparse clocks over a small tid universe; counts start at 1 so dict
# equality is canonical (no explicit-zero components to confound it).
TIDS = st.integers(min_value=0, max_value=7)
clocks = st.dictionaries(TIDS, st.integers(min_value=1, max_value=32), max_size=6)
epochs = st.tuples(TIDS, st.integers(min_value=0, max_value=32))


def joined(a, b):
    out = dict(a)
    vc_merge(out, b)
    return out


class TestJoinLattice:
    @given(a=clocks, b=clocks)
    def test_commutative(self, a, b):
        assert joined(a, b) == joined(b, a)

    @given(a=clocks, b=clocks, c=clocks)
    def test_associative(self, a, b, c):
        assert joined(joined(a, b), c) == joined(a, joined(b, c))

    @given(a=clocks)
    def test_idempotent(self, a):
        assert joined(a, a) == a

    @given(a=clocks)
    def test_empty_clock_is_identity(self, a):
        assert joined(a, {}) == a
        assert joined({}, a) == a

    @given(a=clocks, b=clocks)
    def test_join_is_an_upper_bound(self, a, b):
        j = joined(a, b)
        assert vc_leq(a, j)
        assert vc_leq(b, j)

    @given(a=clocks, b=clocks, c=clocks)
    def test_join_is_the_least_upper_bound(self, a, b, c):
        if vc_leq(a, c) and vc_leq(b, c):
            assert vc_leq(joined(a, b), c)


class TestOrderLaws:
    @given(a=clocks)
    def test_reflexive(self, a):
        assert vc_leq(a, a)

    @given(a=clocks, b=clocks)
    def test_antisymmetric(self, a, b):
        if vc_leq(a, b) and vc_leq(b, a):
            assert a == b

    @given(a=clocks, b=clocks, c=clocks)
    def test_transitive(self, a, b, c):
        if vc_leq(a, b) and vc_leq(b, c):
            assert vc_leq(a, c)

    @given(a=clocks, t=TIDS)
    def test_tick_strictly_increases(self, a, t):
        ticked = dict(a)
        ticked[t] = vc_get(ticked, t) + 1
        assert vc_leq(a, ticked)
        assert not vc_leq(ticked, a)

    @given(a=clocks, b=clocks)
    def test_concurrency_is_symmetric_and_irreflexive(self, a, b):
        assert vc_concurrent(a, b) == vc_concurrent(b, a)
        assert not vc_concurrent(a, a)
        if vc_leq(a, b) or vc_leq(b, a):
            assert not vc_concurrent(a, b)


class TestEpochFastPath:
    @given(e=epochs, vc=clocks)
    def test_epoch_leq_equals_singleton_clock_leq(self, e, vc):
        tid, count = e
        assert epoch_leq(e, vc) == vc_leq({tid: count}, vc)

    @given(e=epochs, vc=clocks)
    def test_epoch_leq_is_one_component_lookup(self, e, vc):
        tid, count = e
        assert epoch_leq(e, vc) == (count <= vc_get(vc, tid))

    @given(vc=clocks)
    def test_none_epoch_is_bottom(self, vc):
        assert epoch_leq(None, vc)
        assert vc_leq({}, vc)


def _read_as(det, tid, var="x", site=None):
    det.push_logical(tid)
    try:
        det.read(var, site=site)
    finally:
        det.pop_logical()


class TestReadSharePromotion:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_concurrent_readers_promote_to_exact_clock(self, data):
        # Any arrival order of >= 2 concurrent readers yields the same
        # read-shared clock: one component per reader, at its epoch.
        n = data.draw(st.integers(min_value=2, max_value=5))
        order = data.draw(st.permutations(list(range(n))))
        det = FastTrackDetector()
        kids = [det.fork_child(f"r{i}") for i in range(n)]
        for i in order:
            _read_as(det, kids[i])
        epoch, read_vc = det.read_state_of("x")
        assert epoch is None
        assert read_vc == {kid: 1 for kid in kids}
        assert det.races == []
        # Same-epoch re-reads are the fast path: state is unchanged.
        for i in data.draw(st.lists(st.integers(0, n - 1), max_size=4)):
            _read_as(det, kids[i])
        assert det.read_state_of("x") == (None, {kid: 1 for kid in kids})

    @settings(max_examples=50, deadline=None)
    @given(reps=st.integers(min_value=1, max_value=4))
    def test_single_reader_stays_epoch(self, reps):
        det = FastTrackDetector()
        kid = det.fork_child("r0")
        for _ in range(reps):
            _read_as(det, kid)
        epoch, read_vc = det.read_state_of("x")
        assert epoch == (kid, 1)
        assert read_vc is None

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=2, max_value=5))
    def test_ordered_readers_never_promote(self, n):
        # Readers chained by a lock release->acquire edge are totally
        # ordered, so the epoch just advances to the latest reader —
        # FastTrack's fast path covers the whole history.
        det = FastTrackDetector()
        kids = [det.fork_child(f"r{i}") for i in range(n)]
        for kid in kids:
            det.push_logical(kid)
            try:
                det.acquire("L")
                det.read("x")
                det.release("L")
            finally:
                det.pop_logical()
        epoch, read_vc = det.read_state_of("x")
        assert epoch == (kids[-1], 1)
        assert read_vc is None
        assert det.races == []

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_write_after_join_demotes_round_trip(self, data):
        # epoch -> read-shared -> (join-all, write) -> epoch again,
        # with no race reported anywhere: the full promotion round-trip.
        n = data.draw(st.integers(min_value=2, max_value=5))
        order = data.draw(st.permutations(list(range(n))))
        det = FastTrackDetector()
        kids = [det.fork_child(f"r{i}") for i in range(n)]
        for i in order:
            _read_as(det, kids[i])
        assert det.read_state_of("x")[1] is not None  # promoted
        for kid in kids:
            det.join_child(kid)
        det.write("x")
        assert det.read_state_of("x") == (None, None)  # demoted
        assert det.races == []
        det.read("x")
        epoch, read_vc = det.read_state_of("x")
        assert read_vc is None
        assert epoch is not None
        tid, count = epoch
        assert det.clock_of(tid).get(tid) == count

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=2, max_value=4))
    def test_unjoined_write_races_with_every_reader(self, n):
        # The read-shared slow path exists to catch exactly this: a
        # write unordered with the promoted readers must report a
        # read-write race per reader (distinct sites defeat dedup).
        det = FastTrackDetector()
        kids = [det.fork_child(f"r{i}") for i in range(n)]
        for i, kid in enumerate(kids):
            _read_as(det, kid, site=AccessSite(f"<reader{i}>", i + 1))
        det.write("x", site=AccessSite("<writer>", 99))
        assert len(det.races) == n
        assert {r.kind for r in det.races} == {"read-write"}
        assert {r.prior.path for r in det.races} == {
            f"<reader{i}>" for i in range(n)
        }

"""The Sanitizer facade: hook-bus wiring into the live primitives."""

import pytest

from repro.net.simnet import Address, Network
from repro.runtime import RunContext
from repro.sanitizers import Sanitizer
from repro.sanitizers.msgrace import MessageRaceSanitizer, digest_crosscheck
from repro.smp.deadlock import DeadlockDetected, WaitForGraph
from repro.smp.locks import InstrumentedLock
from repro.smp.racedetect import LocksetRaceDetector, SharedVariable


class TestDeadlockIntegration:
    def test_waitforgraph_cycle_becomes_pdc302(self):
        san = Sanitizer()
        with san.activate():
            graph = WaitForGraph()
            graph.acquire("T1", "A")
            graph.acquire("T2", "B")
            graph.acquire("T1", "B")  # T1 waits for T2
            with pytest.raises(DeadlockDetected):
                graph.acquire("T2", "A")  # closes the cycle
        findings = san.findings()
        assert [f.rule for f in findings] == ["PDC302"]
        assert "T1" in findings[0].message and "T2" in findings[0].message

    def test_finding_survives_the_caught_exception(self):
        # The exception is caught and discarded; the report is not.
        san = Sanitizer()
        with san.activate():
            graph = WaitForGraph()
            graph.acquire("T1", "A")
            graph.acquire("T2", "B")
            graph.acquire("T1", "B")
            try:
                graph.acquire("T2", "A")
            except DeadlockDetected:
                pass
        assert "PDC302" in {f.rule for f in san.findings()}


class TestMessageRaceIntegration:
    def test_concurrent_datagram_senders_yield_pdc303(self):
        san = Sanitizer()
        with san.activate():
            net = Network()
            box = Address("box", 9)
            net.bind_datagram(box)
            net.send_datagram(Address("alpha", 1), box, "from-a")
            net.send_datagram(Address("beta", 1), box, "from-b")
        findings = san.findings()
        assert [f.rule for f in findings] == ["PDC303"]
        assert "alpha" in findings[0].message and "beta" in findings[0].message

    def test_single_sender_never_races_with_itself(self):
        san = Sanitizer()
        with san.activate():
            net = Network()
            box = Address("box", 9)
            net.bind_datagram(box)
            for i in range(5):
                net.send_datagram(Address("solo", 1), box, i)
        assert san.findings() == []

    def test_duplicate_pair_reported_once(self):
        tracker = MessageRaceSanitizer()
        a, b, box = Address("a", 1), Address("b", 1), Address("box", 9)
        tracker.record(a, box, "datagram")
        tracker.record(b, box, "datagram")
        tracker.record(a, box, "datagram")
        tracker.record(b, box, "datagram")
        assert len(tracker.reports) == 1


class TestRealThreads:
    def test_sanitizer_thread_flags_unsynchronized_counter(self):
        san = Sanitizer()
        with san.activate():
            detector = LocksetRaceDetector()
            cell = SharedVariable("cell", 0, detector)

            def bump():
                for _ in range(3):
                    cell.write(cell.read() + 1)

            # Both forks snapshot the parent clock *before* either runs:
            # the executions are concurrent in logical time even though
            # the joins below serialize them in real time.
            t1 = san.thread(bump)
            t2 = san.thread(bump)
            t1.start()
            t1.join()
            t2.start()
            t2.join()
        assert "PDC301" in {f.rule for f in san.findings()}

    def test_lock_protected_threads_are_clean(self):
        san = Sanitizer()
        with san.activate():
            detector = LocksetRaceDetector()
            cell = SharedVariable("cell", 0, detector)
            mutex = InstrumentedLock("mutex")

            def bump():
                for _ in range(3):
                    mutex.acquire()
                    cell.write(cell.read() + 1)
                    mutex.release()

            t1 = san.thread(bump)
            t2 = san.thread(bump)
            t1.start()
            t1.join()
            t2.start()
            t2.join()
        assert san.findings() == []
        assert cell.read() == 6


class TestRunContextObservability:
    def test_races_land_in_the_metric_registry_and_trace(self):
        context = RunContext(seed=7)
        san = Sanitizer(context=context)
        t1 = san.fasttrack.fork_child()
        t2 = san.fasttrack.fork_child()
        san.fasttrack.push_logical(t1)
        san.on_write("x")
        san.fasttrack.pop_logical()
        san.fasttrack.push_logical(t2)
        san.on_write("x")
        san.fasttrack.pop_logical()
        assert context.registry.counter("san.races").value == 1

    def test_deadlock_cycles_are_counted(self):
        context = RunContext(seed=7)
        san = Sanitizer(context=context)
        san.on_deadlock_cycle(["T1", "T2"])
        assert context.registry.counter("san.deadlocks").value == 1


class TestDigestCrosscheck:
    @staticmethod
    def _scenario(context):
        # ts_us is pinned: the digest should reflect *behavior* (the
        # seed-derived value), not the wall clock of this test run.
        value = context.rng.stream("lab").random()
        context.tracer.instant(
            "step", cat="lab", args={"v": round(value, 6)}, ts_us=0
        )

    def test_same_seed_same_digest(self):
        first = digest_crosscheck(self._scenario, seeds=[11, 22])
        second = digest_crosscheck(self._scenario, seeds=[11, 22])
        assert first == second

    def test_seed_dependent_behavior_diverges(self):
        digests = digest_crosscheck(self._scenario, seeds=[11, 22])
        assert digests[11] != digests[22]

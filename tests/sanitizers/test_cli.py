"""The ``pdc-san`` CLI: modes, formats, exit codes."""

import json

import pytest

from repro.sanitizers.__main__ import main

RACY = """\
import threading

counter = 0

def worker():
    global counter
    counter += 1

def main():
    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
"""


class TestListRules:
    def test_lists_the_dynamic_rule_table(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "PDC301" in out and "PDC302" in out and "PDC303" in out
        assert "dynamic-data-race" in out


class TestFixtureMode:
    def test_racy_fixture_exits_one(self, capsys):
        assert main(["--fixture", "racy_counter_twin"]) == 1
        assert "PDC301" in capsys.readouterr().out

    def test_locked_fixture_exits_zero(self, capsys):
        assert main(["--fixture", "locked_counter_twin"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_corpus_mode_runs_every_runnable_fixture(self, capsys):
        assert main(["--corpus", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "pdc-san"
        assert payload["summary"].get("PDC301", 0) >= 1
        assert payload["summary"].get("PDC302", 0) >= 1


class TestPathMode:
    def test_instruments_and_runs_a_file(self, tmp_path, capsys):
        target = tmp_path / "prog.py"
        target.write_text(RACY)
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "PDC301" in out and str(target) in out

    def test_missing_file_exits_two(self, capsys):
        assert main([str("/no/such/file.py")]) == 2
        assert "error:" in capsys.readouterr().out

    def test_no_inputs_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2


class TestSarifOutput:
    def test_sarif_log_is_valid_and_complete(self, capsys):
        assert main(["--fixture", "racy_counter_twin", "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "pdc-san"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"PDC301", "PDC302", "PDC303"} <= rule_ids
        assert run["results"]
        result = run["results"][0]
        assert result["ruleId"] == "PDC301"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


class TestCrossvalMode:
    def test_text_table_exits_zero_when_corpus_agrees(self, capsys):
        assert main(["--crossval"]) == 0
        out = capsys.readouterr().out
        assert "EXONERATED" in out and "precision=" in out

    def test_json_payload(self, capsys):
        assert main(["--crossval", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_ok"] is True
        assert "forkjoin_handoff_twin" in payload["exonerated"]

    def test_sarif_is_rejected_for_crossval(self):
        with pytest.raises(SystemExit) as exc:
            main(["--crossval", "--format", "sarif"])
        assert exc.value.code == 2

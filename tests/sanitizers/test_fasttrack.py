"""FastTrack detector internals: epochs, promotion, HB edges, race kinds.

The tests drive the detector directly through *logical* threads
(``fork_child`` + ``push_logical``), so every interleaving is explicit
and the verdicts are schedule-independent — the same device the runner
uses to make whole-program sanitizing deterministic.
"""

import pytest

from repro.sanitizers.fasttrack import FastTrackDetector
from repro.sanitizers.sites import AccessSite


def _in(det, tid, fn):
    """Run ``fn`` as logical thread ``tid``."""
    det.push_logical(tid)
    try:
        fn()
    finally:
        det.pop_logical()


class TestRaceKinds:
    def test_concurrent_writes_are_a_write_write_race(self):
        det = FastTrackDetector()
        t1, t2 = det.fork_child(), det.fork_child()
        _in(det, t1, lambda: det.write("x"))
        _in(det, t2, lambda: det.write("x"))
        assert len(det.races) == 1
        race = det.races[0]
        assert race.variable == "x"
        assert race.kind == "write-write"

    def test_write_then_concurrent_read_is_write_read(self):
        det = FastTrackDetector()
        t1, t2 = det.fork_child(), det.fork_child()
        _in(det, t1, lambda: det.write("x"))
        _in(det, t2, lambda: det.read("x"))
        assert [r.kind for r in det.races] == ["write-read"]

    def test_read_then_concurrent_write_is_read_write(self):
        det = FastTrackDetector()
        t1, t2 = det.fork_child(), det.fork_child()
        _in(det, t1, lambda: det.read("x"))
        _in(det, t2, lambda: det.write("x"))
        assert [r.kind for r in det.races] == ["read-write"]

    def test_racy_variables_names_the_cell(self):
        det = FastTrackDetector()
        t1, t2 = det.fork_child(), det.fork_child()
        _in(det, t1, lambda: det.write("hot"))
        _in(det, t2, lambda: det.write("hot"))
        _in(det, t1, lambda: det.write("cold"))  # same thread: no race
        assert det.racy_variables == {"hot"}

    def test_message_names_both_sites_and_threads(self):
        det = FastTrackDetector()
        t1 = det.fork_child(name="writer-a")
        t2 = det.fork_child(name="writer-b")
        site_a = AccessSite("lab.py", 10, "writer-a")
        site_b = AccessSite("lab.py", 20, "writer-b")
        _in(det, t1, lambda: det.write("x", site=site_a))
        _in(det, t2, lambda: det.write("x", site=site_b))
        msg = det.races[0].message
        assert "lab.py:10" in msg and "lab.py:20" in msg
        assert "writer-a" in msg and "writer-b" in msg


class TestEpochFastPaths:
    def test_same_thread_repeated_accesses_never_race(self):
        det = FastTrackDetector()
        for _ in range(10):
            det.write("x")
            det.read("x")
        assert det.races == []

    def test_same_epoch_read_does_not_promote(self):
        det = FastTrackDetector()
        det.read("x")
        det.read("x")  # same epoch: the O(1) fast path
        _epoch, vc = det.read_state_of("x")
        assert vc is None  # still exclusive — never promoted


class TestReadSharedPromotion:
    def _shared_readers(self):
        det = FastTrackDetector()
        det.write("x")  # parent initializes
        t1, t2 = det.fork_child(), det.fork_child()
        _in(det, t1, lambda: det.read("x"))
        _in(det, t2, lambda: det.read("x"))
        return det, t1, t2

    def test_concurrent_reads_promote_to_shared_vc(self):
        det, t1, t2 = self._shared_readers()
        assert det.races == []  # reads never race with reads
        _epoch, vc = det.read_state_of("x")
        assert vc is not None
        assert set(vc) == {t1, t2}

    def test_unjoined_write_races_against_shared_readers(self):
        det, _t1, _t2 = self._shared_readers()
        det.write("x")  # parent write, children not joined
        kinds = {r.kind for r in det.races}
        assert kinds == {"read-write"}

    def test_write_after_joins_is_ordered_and_demotes(self):
        det, t1, t2 = self._shared_readers()
        det.join_child(t1)
        det.join_child(t2)
        det.write("x")
        assert det.races == []
        epoch, vc = det.read_state_of("x")
        assert epoch is None and vc is None  # write reset the read state


class TestHappensBeforeEdges:
    def test_lock_handoff_orders_the_accesses(self):
        det = FastTrackDetector()
        lock = object()
        t1, t2 = det.fork_child(), det.fork_child()

        def writer():
            det.acquire(lock)
            det.write("x")
            det.release(lock)

        def reader():
            det.acquire(lock)
            det.read("x")
            det.release(lock)

        _in(det, t1, writer)
        _in(det, t2, reader)
        assert det.races == []

    def test_unlocked_twin_of_the_same_schedule_races(self):
        det = FastTrackDetector()
        t1, t2 = det.fork_child(), det.fork_child()
        _in(det, t1, lambda: det.write("x"))
        _in(det, t2, lambda: det.read("x"))
        assert len(det.races) == 1

    def test_semaphore_post_wait_publishes(self):
        det = FastTrackDetector()
        sem = object()
        t1, t2 = det.fork_child(), det.fork_child()

        def producer():
            det.write("payload")
            det.sem_post(sem)

        def consumer():
            det.sem_wait(sem)
            det.read("payload")

        _in(det, t1, producer)
        _in(det, t2, consumer)
        assert det.races == []

    def test_barrier_separates_phases(self):
        det = FastTrackDetector()
        bar = object()
        t1, t2 = det.fork_child(), det.fork_child()

        def phase_one():
            det.write("grid")
            det.barrier_arrive(bar)
            det.barrier_depart(bar)

        def phase_two():
            det.barrier_arrive(bar)
            det.barrier_depart(bar)
            det.read("grid")

        _in(det, t1, phase_one)
        _in(det, t2, phase_two)
        assert det.races == []

    def test_fork_orders_parent_before_child(self):
        det = FastTrackDetector()
        det.write("x")
        child = det.fork_child()
        _in(det, child, lambda: det.write("x"))
        assert det.races == []

    def test_join_orders_child_before_parent(self):
        det = FastTrackDetector()
        child = det.fork_child()
        _in(det, child, lambda: det.write("x"))
        det.join_child(child)
        det.write("x")
        assert det.races == []

    def test_fork_snapshot_excludes_later_parent_work(self):
        det = FastTrackDetector()
        child = det.fork_child()
        det.write("x")  # parent writes *after* the fork snapshot
        _in(det, child, lambda: det.write("x"))
        assert len(det.races) == 1

    def test_child_clock_covers_parent_at_fork(self):
        det = FastTrackDetector()
        parent_clock = dict(det.clock_of())
        child = det.fork_child()
        child_clock = det.clock_of(child)
        for tid, clock in parent_clock.items():
            assert child_clock.get(tid, 0) >= clock


class TestReporting:
    def test_identical_race_reported_once(self):
        det = FastTrackDetector()
        t1, t2, t3 = det.fork_child(), det.fork_child(), det.fork_child()
        w = AccessSite("prog.py", 5)
        r = AccessSite("prog.py", 9)
        _in(det, t1, lambda: det.write("x", site=w))
        _in(det, t2, lambda: det.read("x", site=r))
        _in(det, t3, lambda: det.read("x", site=r))  # same pair of sites
        assert len(det.races) == 1

    def test_on_race_callback_fires(self):
        observed = []
        det = FastTrackDetector(on_race=observed.append)
        t1, t2 = det.fork_child(), det.fork_child()
        _in(det, t1, lambda: det.write("x"))
        _in(det, t2, lambda: det.write("x"))
        assert len(observed) == 1
        assert observed[0].variable == "x"

    def test_thread_names_are_stable(self):
        det = FastTrackDetector()
        tid = det.fork_child(name="worker")
        assert det.thread_name(tid) == "worker"

    def test_push_pop_restores_the_ambient_thread(self):
        det = FastTrackDetector()
        det.write("x")
        tid = det.fork_child()
        det.push_logical(tid)
        det.pop_logical()
        det.write("x")  # back on the original thread: same epoch lineage
        assert det.races == []

"""Unit tests for the sparse vector-clock / epoch primitives."""

from repro.sanitizers.vc import (
    epoch_leq,
    vc_concurrent,
    vc_get,
    vc_leq,
    vc_merge,
)


class TestVcGet:
    def test_present_component(self):
        assert vc_get({1: 4}, 1) == 4

    def test_absent_component_is_zero(self):
        assert vc_get({1: 4}, 2) == 0

    def test_empty_clock(self):
        assert vc_get({}, 7) == 0


class TestVcMerge:
    def test_pointwise_max(self):
        into = {1: 3, 2: 1}
        vc_merge(into, {1: 2, 2: 5, 3: 4})
        assert into == {1: 3, 2: 5, 3: 4}

    def test_merge_none_is_noop(self):
        into = {1: 3}
        vc_merge(into, None)
        assert into == {1: 3}

    def test_merge_empty_is_noop(self):
        into = {1: 3}
        vc_merge(into, {})
        assert into == {1: 3}

    def test_merge_into_empty(self):
        into = {}
        vc_merge(into, {5: 2})
        assert into == {5: 2}


class TestVcLeq:
    def test_reflexive(self):
        assert vc_leq({1: 2, 2: 3}, {1: 2, 2: 3})

    def test_strictly_less(self):
        assert vc_leq({1: 1}, {1: 2, 2: 9})

    def test_missing_component_means_zero(self):
        assert vc_leq({}, {1: 1})
        assert not vc_leq({1: 1}, {})

    def test_incomparable(self):
        assert not vc_leq({1: 2}, {2: 2})


class TestVcConcurrent:
    def test_ordered_clocks_are_not_concurrent(self):
        assert not vc_concurrent({1: 1}, {1: 2})
        assert not vc_concurrent({1: 2}, {1: 1})

    def test_equal_clocks_are_not_concurrent(self):
        assert not vc_concurrent({1: 2}, {1: 2})

    def test_disjoint_clocks_are_concurrent(self):
        assert vc_concurrent({1: 1}, {2: 1})

    def test_crossed_components_are_concurrent(self):
        assert vc_concurrent({1: 2, 2: 1}, {1: 1, 2: 2})


class TestEpochLeq:
    def test_none_epoch_precedes_everything(self):
        assert epoch_leq(None, {})
        assert epoch_leq(None, {1: 5})

    def test_covered_epoch(self):
        assert epoch_leq((1, 3), {1: 3})
        assert epoch_leq((1, 3), {1: 4, 2: 1})

    def test_uncovered_epoch(self):
        assert not epoch_leq((1, 3), {1: 2})
        assert not epoch_leq((1, 3), {2: 9})

"""The static-vs-dynamic cross-validation over the twin corpus.

This is the PR's measurement claim, pinned as a snapshot: the lockset
analysis (PDC101) over-approximates, FastTrack (PDC301) exonerates the
known false positives, and both agree with the corpus ground truth on
every fixture.
"""

import pytest

from repro.sanitizers.crossval import (
    ConfusionMatrix,
    cross_validate,
    render_crossval_text,
)


@pytest.fixture(scope="module")
def report():
    return cross_validate()


class TestGroundTruthAgreement:
    def test_every_fixture_matches_expectations(self, report):
        bad = [
            v.name
            for v in report.verdicts
            if not (v.static_ok and v.dynamic_ok)
        ]
        assert bad == []
        assert report.all_ok

    def test_unexecuted_fixtures_pass_vacuously(self, report):
        not_run = [v for v in report.verdicts if not v.executed]
        assert not_run  # the corpus does contain non-runnable fixtures
        assert all(v.dynamic_ok for v in not_run)


class TestExoneration:
    def test_fasttrack_clears_the_lockset_false_positives(self, report):
        assert "forkjoin_handoff_twin" in report.exonerated
        assert "lock_handoff_twin" in report.exonerated

    def test_exonerated_fixtures_were_statically_flagged(self, report):
        by_name = {v.name: v for v in report.verdicts}
        for name in report.exonerated:
            v = by_name[name]
            assert "PDC101" in v.static_rules
            assert v.known_false_positive
            assert "PDC301" not in v.dynamic_rules


class TestConfusionMatrices:
    def test_static_matrix_snapshot(self, report):
        m = report.static_races
        assert (m.tp, m.fp, m.fn, m.tn) == (1, 3, 0, 15)
        assert m.recall == 1.0
        assert m.precision == pytest.approx(0.25)

    def test_dynamic_matrix_snapshot(self, report):
        m = report.dynamic_races
        assert (m.tp, m.fp, m.fn, m.tn) == (1, 2, 0, 7)
        assert m.recall == 1.0

    def test_fasttrack_is_more_precise_than_the_lockset(self, report):
        assert (
            report.dynamic_races.precision > report.static_races.precision
        )

    def test_empty_matrix_degenerates_to_perfect_scores(self):
        m = ConfusionMatrix(tp=0, fp=0, fn=0, tn=4)
        assert m.precision == 1.0 and m.recall == 1.0


class TestDeterminismAndRendering:
    def test_cross_validation_is_reproducible(self, report):
        assert cross_validate().to_dict() == report.to_dict()

    def test_text_table_shows_the_verdict_columns(self, report):
        text = render_crossval_text(report)
        assert "fixture" in text and "static" in text and "dynamic" in text
        assert "EXONERATED" in text
        assert "MISMATCH" not in text
        assert "precision=" in text and "recall=" in text

    def test_json_payload_is_self_describing(self, report):
        payload = report.to_dict()
        assert payload["all_ok"] is True
        assert set(payload["exonerated"]) >= {
            "forkjoin_handoff_twin", "lock_handoff_twin",
        }
        names = {f["name"] for f in payload["fixtures"]}
        assert "racy_counter_twin" in names

"""Whole-program sanitizing: run_source / run_fixture verdicts."""

import pytest

from repro.sanitizers.runner import run_fixture, run_source
from repro.smp.fixtures import fixture

RACY = """\
import threading

counter = 0

def worker():
    global counter
    for _ in range(3):
        counter += 1

def main():
    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return counter
"""

LOCKED = RACY.replace(
    "counter = 0",
    "counter = 0\nmutex = threading.Lock()",
).replace(
    "        counter += 1",
    "        with mutex:\n            counter += 1",
)


class TestRaceVerdicts:
    def test_racy_program_yields_pdc301(self):
        run = run_source(RACY, path="racy.py")
        assert "PDC301" in run.rules
        assert run.exit_code == 1

    def test_locked_twin_is_clean(self):
        run = run_source(LOCKED, path="locked.py")
        assert run.findings == []
        assert run.exit_code == 0

    def test_inline_execution_preserves_semantics(self):
        assert run_source(RACY).value == 6
        assert run_source(LOCKED).value == 6

    def test_shared_names_are_reported(self):
        run = run_source(RACY)
        assert "counter" in run.shared

    def test_finding_anchors_to_the_racing_line(self):
        run = run_source(RACY, path="racy.py")
        race = next(f for f in run.findings if f.rule == "PDC301")
        assert race.path == "racy.py"
        assert RACY.splitlines()[race.line - 1].strip() == "counter += 1"


class TestDeterminism:
    def test_same_source_same_findings(self):
        def snapshot():
            run = run_source(RACY, path="racy.py")
            return [
                (f.rule, f.path, f.line, f.message) for f in run.findings
            ]

        assert snapshot() == snapshot()

    def test_corpus_runs_are_deterministic(self):
        fix = fixture("racy_counter_twin")
        first = [(f.rule, f.line, f.message) for f in run_fixture(fix).findings]
        second = [(f.rule, f.line, f.message) for f in run_fixture(fix).findings]
        assert first == second and first  # identical and non-empty


class TestLockOrder:
    def test_inverted_acquisition_order_yields_pdc302(self):
        source = (
            "import threading\n"
            "a = threading.Lock()\n"
            "b = threading.Lock()\n"
            "def main():\n"
            "    with a:\n"
            "        with b:\n"
            "            pass\n"
            "    with b:\n"
            "        with a:\n"
            "            pass\n"
        )
        run = run_source(source, path="abba.py")
        assert "PDC302" in run.rules
        assert any("lock-order" in f.message for f in run.findings)

    def test_consistent_order_is_clean(self):
        source = (
            "import threading\n"
            "a = threading.Lock()\n"
            "b = threading.Lock()\n"
            "def main():\n"
            "    for _ in range(2):\n"
            "        with a:\n"
            "            with b:\n"
            "                pass\n"
        )
        assert run_source(source).findings == []


class TestSuppressions:
    def test_disable_pdc301_suppresses_the_observed_race(self):
        suppressed = RACY.replace(
            "        counter += 1",
            "        counter += 1  # pdc-lint: disable=PDC301 -- demo race",
        )
        run = run_source(suppressed, path="sup.py")
        assert "PDC301" not in run.rules
        assert any(f.rule == "PDC301" for f in run.suppressed)

    def test_disable_pdc101_does_not_silence_pdc301(self):
        # The static suppression does not answer the dynamic verdict.
        suppressed = RACY.replace(
            "        counter += 1",
            "        counter += 1  # pdc-lint: disable=PDC101 -- static only",
        )
        run = run_source(suppressed, path="sup.py")
        assert "PDC301" in run.rules


class TestEdgeCases:
    def test_syntax_error_is_an_error_not_a_crash(self):
        run = run_source("def broken(:\n", path="bad.py")
        assert run.errors
        assert run.exit_code == 2

    def test_missing_entry_runs_module_only(self):
        run = run_source("x = 1\n", entry="nonexistent")
        assert run.findings == []
        assert run.value is None

    def test_target_exceptions_are_collected_not_raised(self):
        source = (
            "def main():\n"
            "    raise ValueError('boom')\n"
        )
        run = run_source(source)
        assert any("boom" in e for e in run.errors)


class TestFixtureRuns:
    def test_racy_twin_flags_and_locked_twin_does_not(self):
        assert "PDC301" in run_fixture(fixture("racy_counter_twin")).rules
        assert run_fixture(fixture("locked_counter_twin")).findings == []

    def test_entrypoints_fixture_detects_the_abba_deadlock(self):
        run = run_fixture(fixture("abba_deadlock_twin"))
        assert "PDC302" in run.rules

    def test_fixture_without_entry_is_rejected(self):
        with pytest.raises(ValueError):
            run_fixture(fixture("bare_acquire"))


class TestRunProgram:
    """Multi-module execution under one shared detector."""

    def _fixture(self, name):
        from repro.smp.fixtures import multifile_fixture

        return multifile_fixture(name)

    def test_cross_module_race_is_observed(self):
        from repro.sanitizers.runner import run_program

        fix = self._fixture("crossmod_racy_pair")
        run = run_program(fix.modules(), fix.entry_module)
        assert "PDC301" in run.rules
        assert run.errors == []
        # Variables are module-qualified so twins in different modules
        # never alias in the detector.
        assert any("shared_state." in s for s in run.shared)

    def test_fork_join_handoff_is_exonerated(self):
        from repro.sanitizers.runner import run_program

        fix = self._fixture("crossmod_handoff_pair")
        run = run_program(fix.modules(), fix.entry_module)
        assert "PDC301" not in run.rules
        assert run.errors == []

    def test_import_cycles_do_not_recurse(self):
        from repro.sanitizers.runner import run_program

        run = run_program(
            {
                "alpha": "import beta\n\n\ndef main():\n    return beta.X\n",
                "beta": "import alpha\n\nX = 1\n",
            },
            "alpha",
        )
        assert run.errors == []
        assert "PDC301" not in run.rules

    def test_syntax_error_is_reported_not_raised(self):
        from repro.sanitizers.runner import run_program

        run = run_program({"broken": "def oops(:\n"}, "broken")
        assert run.errors
        assert run.findings == []

    def test_suppressions_apply_per_module(self):
        from repro.sanitizers.runner import run_program

        fix = self._fixture("crossmod_racy_pair")
        modules = {
            name: src.replace(
                "counter += 1",
                "counter += 1  # pdc-san: disable=PDC301 -- test corpus",
            )
            for name, src in fix.modules().items()
        }
        run = run_program(modules, fix.entry_module)
        assert "PDC301" not in run.rules
        assert len(run.suppressed) >= 1

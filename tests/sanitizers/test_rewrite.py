"""The AST instrumenter: event placement without semantic change."""

import ast

from repro.sanitizers.rewrite import instrument_source, shared_names


class _Recorder:
    """A ``__pdcsan__`` stand-in that just logs events."""

    def __init__(self):
        self.events = []

    def rd(self, name):
        self.events.append(("rd", name))

    def wr(self, name):
        self.events.append(("wr", name))


def _run(source, call=None):
    tree, shared = instrument_source(source)
    recorder = _Recorder()
    namespace = {"__pdcsan__": recorder}
    exec(compile(tree, "<test>", "exec"), namespace)
    if call is not None:
        namespace[call]()
    return recorder, namespace, shared


class TestSharedNames:
    def test_module_assignments_are_shared(self):
        tree = ast.parse("x = 0\ny, z = 1, 2\n")
        assert shared_names(tree) == {"x", "y", "z"}

    def test_global_declarations_are_shared(self):
        tree = ast.parse("def f():\n    global flag\n    flag = True\n")
        assert shared_names(tree) == {"flag"}

    def test_function_locals_are_not_shared(self):
        tree = ast.parse("def f():\n    local = 1\n    return local\n")
        assert shared_names(tree) == set()


class TestEventEmission:
    def test_augassign_emits_read_then_write(self):
        recorder, ns, _ = _run(
            "counter = 0\n"
            "def bump():\n"
            "    global counter\n"
            "    counter += 1\n",
            call="bump",
        )
        # Module body writes counter once; bump() reads then writes it.
        assert recorder.events[-2:] == [("rd", "counter"), ("wr", "counter")]
        assert ns["counter"] == 1

    def test_plain_read_emits_read_only(self):
        recorder, _, _ = _run(
            "x = 5\n"
            "def peek():\n"
            "    return x + 1\n",
            call="peek",
        )
        assert recorder.events[-1] == ("rd", "x")

    def test_store_through_subscript_is_a_base_write(self):
        recorder, ns, _ = _run(
            "table = {}\n"
            "def put():\n"
            "    table['k'] = 1\n",
            call="put",
        )
        assert ("wr", "table") in recorder.events
        assert ns["table"] == {"k": 1}

    def test_while_header_rereads_each_iteration(self):
        recorder, ns, _ = _run(
            "n = 0\n"
            "def spin():\n"
            "    global n\n"
            "    while n < 3:\n"
            "        n += 1\n",
            call="spin",
        )
        reads = [e for e in recorder.events if e == ("rd", "n")]
        # Initial header read + one re-read per completed iteration, plus
        # the AugAssign reads: strictly more than one read total.
        assert len(reads) >= 4
        assert ns["n"] == 3

    def test_local_shadow_suppresses_events(self):
        recorder, ns, _ = _run(
            "x = 10\n"
            "def shadowed():\n"
            "    x = 1\n"
            "    return x\n",
            call="shadowed",
        )
        assert ("rd", "x") not in recorder.events[1:]  # only module-level wr
        assert ns["x"] == 10

    def test_parameters_shadow_shared_names(self):
        recorder, _, _ = _run(
            "x = 10\n"
            "def takes(x):\n"
            "    return x\n",
        )
        ns_events_before = list(recorder.events)
        recorder.events.clear()
        # Re-exec the call path only: call with the function from a fresh run.
        recorder2, ns, _ = _run(
            "x = 10\n"
            "def takes(x):\n"
            "    return x\n",
        )
        ns["takes"](99)
        assert ("rd", "x") not in recorder2.events[len(ns_events_before):]


class TestSemanticsPreserved:
    def test_results_match_uninstrumented_execution(self):
        source = (
            "total = 0\n"
            "def accumulate(values):\n"
            "    global total\n"
            "    for v in values:\n"
            "        total += v\n"
            "    return total\n"
        )
        _, ns, _ = _run(source)
        plain = {}
        exec(compile(source, "<plain>", "exec"), plain)
        assert ns["accumulate"]([1, 2, 3]) == plain["accumulate"]([1, 2, 3])
        assert ns["total"] == plain["total"] == 6

    def test_events_carry_the_original_line_numbers(self):
        source = (
            "x = 0\n"
            "def f():\n"
            "    global x\n"
            "    x = 1\n"
        )
        tree, _ = instrument_source(source)
        event_lines = [
            node.lineno
            for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "__pdcsan__"
        ]
        assert set(event_lines) <= {1, 4}  # only real statement lines

    def test_lambda_bodies_are_not_instrumented(self):
        recorder, ns, _ = _run(
            "x = 1\n"
            "def make():\n"
            "    return lambda: x\n",
            call="make",
        )
        # The lambda's deferred read of x emits no event at definition time.
        assert ("rd", "x") not in recorder.events[1:]

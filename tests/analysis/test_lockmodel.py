"""Tests for lock discovery and the lockset dataflow."""

import ast
import textwrap

from repro.analysis.lockmodel import LockModel, dotted_name, own_nodes


def _model(src: str) -> LockModel:
    return LockModel(ast.parse(textwrap.dedent(src)))


def _func(model_src: str, name: str):
    tree = ast.parse(textwrap.dedent(model_src))
    model = LockModel(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return model, node
    raise AssertionError(f"no function {name}")


def _lockset_at(model, func, lineno):
    locksets = model.locksets(func)
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.stmt) and stmt.lineno == lineno:
            return locksets[id(stmt)]
    raise AssertionError(f"no statement at line {lineno}")


class TestDiscovery:
    def test_module_level_lock(self):
        model = _model("import threading\nm = threading.Lock()\n")
        assert "m" in model.locks
        assert model.locks["m"].kind == "lock"
        assert not model.locks["m"].reentrant

    def test_rlock_is_reentrant(self):
        model = _model("import threading\nm = threading.RLock()\n")
        assert model.locks["m"].reentrant

    def test_self_attribute_lock(self):
        model = _model(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
            """
        )
        assert "self._lock" in model.locks

    def test_condition_wrapping_external_lock(self):
        model = _model(
            """
            import threading
            m = threading.Lock()
            cv = threading.Condition(m)
            """
        )
        assert model.locks["cv"].external_lock

    def test_plain_assignments_are_not_locks(self):
        model = _model("import threading\nx = 3\ny = list()\n")
        assert "x" not in model.locks
        assert "y" not in model.locks


class TestLocksets:
    SRC = """
        import threading

        m = threading.Lock()

        def f():
            a = 1
            with m:
                b = 2
            c = 3
    """

    def test_with_body_holds_the_lock(self):
        model, func = _func(self.SRC, "f")
        assert _lockset_at(model, func, 9) == frozenset({"m"})  # b = 2

    def test_before_and_after_are_empty(self):
        model, func = _func(self.SRC, "f")
        assert _lockset_at(model, func, 7) == frozenset()  # a = 1
        assert _lockset_at(model, func, 10) == frozenset()  # c = 3

    def test_acquire_release_pair(self):
        src = """
            import threading
            m = threading.Lock()

            def f():
                m.acquire()
                inside = 1
                m.release()
                outside = 2
        """
        model, func = _func(src, "f")
        assert _lockset_at(model, func, 7) == frozenset({"m"})
        assert _lockset_at(model, func, 9) == frozenset()

    def test_nonblocking_acquire_adds_nothing(self):
        src = """
            import threading
            m = threading.Lock()

            def f():
                m.acquire(False)
                maybe = 1
        """
        model, func = _func(src, "f")
        # acquire(False) may fail; "certainly held" must not include m.
        assert _lockset_at(model, func, 7) == frozenset()

    def test_branch_meet_is_intersection(self):
        src = """
            import threading
            m = threading.Lock()

            def f(x):
                if x:
                    m.acquire()
                after = 1
        """
        model, func = _func(src, "f")
        assert _lockset_at(model, func, 8) == frozenset()


class TestAcquisitions:
    def test_nested_with_records_held_before(self):
        src = """
            import threading
            a = threading.Lock()
            b = threading.Lock()

            def f():
                with a:
                    with b:
                        pass
        """
        model, func = _func(src, "f")
        acqs = {acq.lock: acq for acq in model.acquisitions(func)}
        assert acqs["a"].held_before == frozenset()
        assert acqs["b"].held_before == frozenset({"a"})

    def test_unknown_context_managers_are_ignored(self):
        src = """
            def f(path):
                with open(path) as fh:
                    return fh.read()
        """
        model, func = _func(src, "f")
        assert list(model.acquisitions(func)) == []


class TestHelpers:
    def test_dotted_name(self):
        expr = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(expr) == "a.b.c"
        call = ast.parse("f()", mode="eval").body
        assert dotted_name(call) is None

    def test_own_nodes_stops_at_nested_statements(self):
        stmt = ast.parse("with m:\n    counter += 1\n").body[0]
        names = {
            n.id for n in own_nodes(stmt) if isinstance(n, ast.Name)
        }
        assert "m" in names
        assert "counter" not in names  # belongs to the nested statement

"""Tests for the per-function CFG builder and the dataflow solver."""

import ast

import pytest

from repro.analysis.cfg import NodeKind, build_cfg, solve_forward


def _func(src: str) -> ast.FunctionDef:
    tree = ast.parse(src)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in source")


def _stmt_lines(cfg) -> dict:
    return {
        n.stmt.lineno: n
        for n in cfg.statement_nodes()
        if n.stmt is not None
    }


class TestStructure:
    def test_straight_line(self):
        cfg = build_cfg(_func("def f():\n    a = 1\n    b = 2\n"))
        lines = _stmt_lines(cfg)
        assert lines[3].index in lines[2].succ
        assert cfg.exit in lines[3].succ

    def test_if_joins_at_follow(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    c = 3\n"
        ))
        lines = _stmt_lines(cfg)
        assert {lines[3].index, lines[5].index} <= set(lines[2].succ)
        assert lines[6].index in lines[3].succ
        assert lines[6].index in lines[5].succ

    def test_while_loops_back_and_exits(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    while x:\n"
            "        x -= 1\n"
            "    done = 1\n"
        ))
        lines = _stmt_lines(cfg)
        assert lines[3].index in lines[2].succ  # into the body
        assert lines[4].index in lines[2].succ  # loop exit
        assert lines[2].index in lines[3].succ  # back edge

    def test_break_targets_loop_exit(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    while x:\n"
            "        break\n"
            "    done = 1\n"
        ))
        lines = _stmt_lines(cfg)
        assert lines[4].index in lines[3].succ
        assert lines[2].index not in lines[3].succ

    def test_with_gets_synthetic_exit(self):
        cfg = build_cfg(_func(
            "def f(m):\n"
            "    with m:\n"
            "        a = 1\n"
            "    b = 2\n"
        ))
        exits = [n for n in cfg.nodes if n.kind is NodeKind.WITH_EXIT]
        assert len(exits) == 1
        lines = _stmt_lines(cfg)
        assert exits[0].index in lines[3].succ  # body falls out via the exit
        assert lines[4].index in exits[0].succ

    def test_try_edges_reach_handler_and_finally(self):
        cfg = build_cfg(_func(
            "def f():\n"
            "    try:\n"
            "        a = 1\n"
            "    except ValueError:\n"
            "        b = 2\n"
            "    finally:\n"
            "        c = 3\n"
        ))
        lines = _stmt_lines(cfg)
        assert {lines[3].index, lines[5].index} <= set(lines[2].succ)
        assert lines[7].index in lines[3].succ
        assert lines[7].index in lines[5].succ

    def test_return_jumps_to_exit(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"
        ))
        lines = _stmt_lines(cfg)
        assert lines[3].succ == [cfg.exit]
        assert lines[4].succ == [cfg.exit]

    def test_nested_defs_are_opaque(self):
        cfg = build_cfg(_func(
            "def f():\n"
            "    def g():\n"
            "        hidden = 1\n"
            "    return g\n"
        ))
        lines = _stmt_lines(cfg)
        assert 3 not in lines  # g's body is not in f's CFG

    def test_rejects_non_body_node(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1").body[0].targets[0])


class TestSolver:
    def _solve(self, src, gen_at, kill_at):
        """Toy must-analysis: lines in gen_at add 'fact', kill_at remove."""
        func = _func(src)
        cfg = build_cfg(func)

        def transfer(node, facts):
            line = getattr(node.stmt, "lineno", None)
            if node.kind is NodeKind.STMT and line in gen_at:
                return facts | {"fact"}
            if node.kind is NodeKind.STMT and line in kill_at:
                return facts - {"fact"}
            return facts

        in_ = solve_forward(cfg, transfer)
        return cfg, in_

    def test_fact_flows_forward(self):
        cfg, in_ = self._solve(
            "def f():\n    a = 1\n    b = 2\n", gen_at={2}, kill_at=set()
        )
        lines = _stmt_lines(cfg)
        assert "fact" not in in_[lines[2].index]
        assert "fact" in in_[lines[3].index]

    def test_meet_is_intersection_over_branches(self):
        cfg, in_ = self._solve(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    c = 3\n",
            gen_at={3},  # only the then-branch generates
            kill_at=set(),
        )
        lines = _stmt_lines(cfg)
        assert "fact" not in in_[lines[6].index]  # not on *every* path

    def test_loop_reaches_fixpoint(self):
        cfg, in_ = self._solve(
            "def f(x):\n"
            "    while x:\n"
            "        a = 1\n"
            "    b = 2\n",
            gen_at={3},
            kill_at=set(),
        )
        lines = _stmt_lines(cfg)
        # The while header joins entry (no fact) and the body (fact):
        # intersection drops it, and so does the loop exit.
        assert "fact" not in in_[lines[2].index]
        assert "fact" not in in_[lines[4].index]

"""Static-vs-dynamic cross-validation.

Three agreements, per the issue:

- every scripted program in :mod:`repro.smp.interleave` has a source-level
  twin fixture, and the static analyzer's race verdict agrees with the
  exhaustive explorer's (the one documented disagreement — literal
  Peterson — is tagged ``known_false_positive`` and asserted *as* a
  disagreement, pinning the Eraser trade-off down);
- replaying a deadlock twin's entry points through the dynamic
  :class:`repro.smp.deadlock.LockGraph` yields the same cyclicity verdict
  as static PDC102;
- the clean twins stay clean under both analyses.
"""

import pytest

from repro.analysis import analyze_source
from repro.smp.fixtures import (
    all_fixtures,
    fixture,
    replay_lock_trace,
    scripted_twins,
)
from repro.smp.interleave import explore, peterson_program, racy_counter_program


def _static_rules(fix):
    return {f.rule for f in analyze_source(fix.source, path=fix.name)}


class TestTwinCoverage:
    def test_every_scripted_program_has_a_twin(self):
        twins = scripted_twins()
        assert set(twins) == {"racy_counter_program", "peterson_program"}
        assert all(twins.values())


class TestRaceAgreement:
    def test_explorer_exhibits_the_lost_update(self):
        a, b = racy_counter_program()
        result = explore(a, b, {"counter": 0})
        assert 1 in result.final_values("counter")  # an update was lost

    def test_static_agrees_racy_counter_is_racy(self):
        assert "PDC101" in _static_rules(fixture("racy_counter_twin"))

    def test_static_agrees_locked_counter_is_clean(self):
        assert "PDC101" not in _static_rules(fixture("locked_counter_twin"))

    def test_explorer_proves_peterson_safe(self):
        a, b = peterson_program()
        result = explore(
            a, b, {"flag0": 0, "flag1": 0, "turn": 0, "counter": 0}
        )
        assert result.mutual_exclusion_held
        assert result.final_values("counter") == {2}
        assert result.deadlocked_schedules == 0

    def test_static_agrees_on_lock_based_peterson(self):
        assert "PDC101" not in _static_rules(fixture("peterson_lock_twin"))

    def test_literal_peterson_is_the_documented_disagreement(self):
        """The explorer proves it safe; lockset analysis flags it anyway.

        This is the Eraser trade-off (ad-hoc synchronization is invisible
        to lockset reasoning), asserted on purpose: if the analyzer ever
        *stops* flagging this, the fixture's ``known_false_positive`` tag
        — and the lab material built on it — must be revisited.
        """
        fix = fixture("peterson_literal_twin")
        assert fix.known_false_positive
        assert "PDC101" in _static_rules(fix)

    def test_known_false_positives_are_the_only_disagreements(self):
        for name, twins in scripted_twins().items():
            for fix in twins:
                if not fix.known_false_positive:
                    continue
                assert fix.expect_rules, (
                    f"{fix.name} tagged known_false_positive but expects "
                    "no findings"
                )


class TestDeadlockAgreement:
    @pytest.mark.parametrize(
        "name", [f.name for f in all_fixtures() if f.entrypoints]
    )
    def test_static_and_dynamic_cyclicity_agree(self, name):
        fix = fixture(name)
        static_cycle = "PDC102" in _static_rules(fix)
        dynamic_safe = replay_lock_trace(fix).is_safe()
        assert static_cycle == (not dynamic_safe), (
            f"{name}: static PDC102={static_cycle} but dynamic "
            f"is_safe={dynamic_safe}"
        )

    def test_abba_replay_records_the_cycle(self):
        graph = replay_lock_trace(fixture("abba_deadlock_twin"))
        assert not graph.is_safe()
        assert graph.order_violations()

    def test_ordered_replay_is_safe(self):
        graph = replay_lock_trace(fixture("ordered_locks_twin"))
        assert graph.is_safe()
        assert graph.suggest_order() is not None

    def test_replay_requires_entrypoints(self):
        with pytest.raises(ValueError):
            replay_lock_trace(fixture("racy_counter_twin"))

"""The repo whole-program-lints itself: the lift finds nothing to flag.

Same contract as :mod:`tests.analysis.test_selflint`, one rung up the
ladder: linking all of ``src/repro`` into one program and running the
summary/fixpoint phase must come back clean — any cross-module finding
in the substrate is a real bug to fix, not an accepted cost.
"""

import os

from repro.analysis.engine.passes import LintPass
from repro.analysis.ip.engine import WholeProgramEngine

SRC = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src", "repro")
)


class TestWholeProgramSelfLint:
    def test_src_repro_is_clean_at_whole_program_scope(self):
        engine = WholeProgramEngine(LintPass())
        report = engine.run_paths([SRC])
        assert report.errors == []
        assert report.findings == [], "\n".join(
            f"{f.location()}: {f.rule} {f.message}" for f in report.findings
        )

    def test_the_link_actually_spanned_the_tree(self):
        engine = WholeProgramEngine(LintPass())
        engine.run_paths([SRC])
        stats = engine.stats()
        assert stats["analysis.ip.modules"] > 50
        assert stats["analysis.ip.scc.count"] > 10

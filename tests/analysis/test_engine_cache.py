"""Cache correctness: the ways an incremental cache can lie, tested.

A findings cache that serves a stale, corrupted, or mis-rebased entry
is worse than no cache — it silently changes analyzer verdicts.  Each
test here is one way that can happen: corrupted entry files, entries
written by an older analyzer version, identical content living at two
paths, and the mutation test (edit one file out of many, exactly that
file re-analyzes).
"""

import json
import os

from repro.analysis.engine import (
    AnalysisEngine,
    FindingsCache,
    LintPass,
    MemoryCache,
    WorkUnit,
    content_digest,
    scope_id,
)
from repro.smp.fixtures import fixture

RACY = fixture("racy_counter_twin").source
CLEAN = fixture("locked_counter_twin").source


def entry_files(cache_root):
    found = []
    for root, _dirs, names in os.walk(cache_root):
        found.extend(
            os.path.join(root, n)
            for n in names
            if n.endswith(".json") and n != "meta.json"
        )
    return found


class TestCorruption:
    def test_corrupted_entry_degrades_to_a_miss_and_heals(self, tmp_path):
        path = tmp_path / "prog.py"
        path.write_text(RACY)
        cache = FindingsCache(str(tmp_path / "cache"))
        first = AnalysisEngine(LintPass(), cache=cache)
        reference = first.run_paths([str(path)])
        (entry,) = entry_files(str(tmp_path / "cache"))
        with open(entry, "w") as fh:
            fh.write("{ this is not json")
        second = AnalysisEngine(LintPass(), cache=cache)
        report = second.run_paths([str(path)])
        assert report.findings == reference.findings
        stats = second.stats()
        assert stats["engine.cache.hits"] == 0
        assert stats["engine.files.analyzed"] == 1
        # The corrupted entry was rewritten: the next run hits again.
        third = AnalysisEngine(LintPass(), cache=cache)
        assert third.run_paths([str(path)]).findings == reference.findings
        assert third.stats()["engine.cache.hits"] == 1

    def test_wrong_shaped_entry_is_a_miss(self, tmp_path):
        path = tmp_path / "prog.py"
        path.write_text(RACY)
        cache = FindingsCache(str(tmp_path / "cache"))
        AnalysisEngine(LintPass(), cache=cache).run_paths([str(path)])
        (entry,) = entry_files(str(tmp_path / "cache"))
        with open(entry, "w") as fh:
            json.dump({"schema": 999, "outcome": {}}, fh)
        engine = AnalysisEngine(LintPass(), cache=cache)
        report = engine.run_paths([str(path)])
        assert {f.rule for f in report.findings} == {"PDC101"}
        assert engine.stats()["engine.cache.hits"] == 0


class TestVersionInvalidation:
    def test_stale_analyzer_version_scope_is_pruned(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "prog.py"
        path.write_text(RACY)
        root = str(tmp_path / "cache")
        cache = FindingsCache(root)
        AnalysisEngine(LintPass(), cache=cache).run_paths([str(path)])
        old_scope = os.path.join(root, "pdc-lint", scope_id(LintPass()))
        assert os.path.isdir(old_scope)

        monkeypatch.setattr(LintPass, "version", "999-test")
        engine = AnalysisEngine(LintPass(), cache=cache)
        # Construction invalidates the old-version scope explicitly.
        assert not os.path.isdir(old_scope)
        report = engine.run_paths([str(path)])
        assert {f.rule for f in report.findings} == {"PDC101"}
        assert engine.stats()["engine.cache.hits"] == 0
        assert engine.stats()["engine.files.analyzed"] == 1

    def test_same_version_other_config_survives_pruning(self, tmp_path):
        path = tmp_path / "prog.py"
        path.write_text(RACY)
        cache = FindingsCache(str(tmp_path / "cache"))
        AnalysisEngine(LintPass(), cache=cache).run_paths([str(path)])
        AnalysisEngine(LintPass(select=["PDC2"]), cache=cache).run_paths(
            [str(path)]
        )
        # Re-opening either config still hits: neither pruned the other.
        again = AnalysisEngine(LintPass(), cache=cache)
        again.run_paths([str(path)])
        assert again.stats()["engine.cache.hits"] == 1


class TestContentAddressing:
    def test_identical_content_at_two_paths_shares_one_entry(self, tmp_path):
        a = tmp_path / "a_first.py"
        b = tmp_path / "z_second.py"
        a.write_text(RACY)
        b.write_text(RACY)
        cache = FindingsCache(str(tmp_path / "cache"))
        engine = AnalysisEngine(LintPass(), cache=cache)
        report = engine.run_paths([str(a), str(b)])
        # One analysis, one hit — but findings cite each file's own path.
        assert engine.stats()["engine.files.analyzed"] == 1
        assert engine.stats()["engine.cache.hits"] == 1
        assert [f.path for f in report.findings] == [str(a), str(b)]
        assert len({f.line for f in report.findings}) == 1

    def test_digest_is_content_plus_salt(self):
        assert content_digest(b"x") == content_digest(b"x")
        assert content_digest(b"x") != content_digest(b"y")
        assert content_digest(b"x", "salt") != content_digest(b"x")

    def test_memory_cache_rebases_like_disk(self):
        pass_ = LintPass()
        cache = MemoryCache()
        engine = AnalysisEngine(pass_, cache=cache)
        first = engine.run([WorkUnit.source("<sub:ex1>", RACY)])
        second = engine.run([WorkUnit.source("<sub:ex2>", RACY)])
        assert engine.stats()["engine.cache.hits"] == 1
        assert [f.path for f in first.findings] == ["<sub:ex1>"]
        assert [f.path for f in second.findings] == ["<sub:ex2>"]


class TestMutation:
    def test_editing_one_file_reanalyzes_exactly_that_file(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        n = 12
        for i in range(n):
            (tree / f"mod_{i:02d}.py").write_text(
                CLEAN.replace("counter", f"counter_{i}")
            )
        cache = FindingsCache(str(tmp_path / "cache"))
        AnalysisEngine(LintPass(), cache=cache).run_paths([str(tree)])

        target = tree / "mod_07.py"
        target.write_text(RACY.replace("counter", "counter_7"))
        engine = AnalysisEngine(LintPass(), cache=cache)
        report = engine.run_paths([str(tree)])
        stats = engine.stats()
        assert stats["engine.files.analyzed"] == 1
        assert stats["engine.cache.hits"] == n - 1
        assert [f.path for f in report.findings] == [str(target)]

    def test_touch_without_edit_still_hits(self, tmp_path):
        path = tmp_path / "prog.py"
        path.write_text(CLEAN)
        cache = FindingsCache(str(tmp_path / "cache"))
        AnalysisEngine(LintPass(), cache=cache).run_paths([str(path)])
        os.utime(path)  # mtime changes, bytes do not
        engine = AnalysisEngine(LintPass(), cache=cache)
        engine.run_paths([str(path)])
        assert engine.stats()["engine.cache.hits"] == 1

"""Baseline workflow: adopt a legacy codebase without fixing it first.

``--baseline write`` captures today's findings; ``--baseline check``
reports only what is *new* relative to the capture.  The satellite
contract: the captured file is plain reviewable JSON, checking drops
exactly the captured findings (counted as suppressed, so totals still
add up), and new findings still fail the run.
"""

import json

from repro.analysis.__main__ import main
from repro.analysis.engine.cli import apply_baseline
from repro.analysis.engine.core import AnalysisEngine
from repro.analysis.engine.passes import LintPass
from repro.smp.fixtures import fixture

RACY = fixture("racy_counter_twin").source
CLEAN = fixture("locked_counter_twin").source


def _report(path):
    return AnalysisEngine(LintPass()).run_paths([str(path)])


class TestApplyBaseline:
    def test_write_then_check_drops_the_capture(self, tmp_path):
        prog = tmp_path / "legacy.py"
        prog.write_text(RACY)
        baseline = tmp_path / "baseline.json"
        report = _report(prog)
        assert report.findings

        apply_baseline(report, "write", str(baseline))
        payload = json.loads(baseline.read_text())
        assert len(payload["findings"]) == len(report.findings)

        checked = apply_baseline(_report(prog), "check", str(baseline))
        assert checked.findings == []
        assert checked.suppressed == len(report.findings)

    def test_new_findings_survive_the_check(self, tmp_path):
        prog = tmp_path / "legacy.py"
        prog.write_text(CLEAN)
        baseline = tmp_path / "baseline.json"
        apply_baseline(_report(prog), "write", str(baseline))

        prog.write_text(RACY)  # regression after the capture
        checked = apply_baseline(_report(prog), "check", str(baseline))
        assert checked.findings  # still reported: not in the baseline

    def test_write_does_not_mutate_the_report(self, tmp_path):
        prog = tmp_path / "legacy.py"
        prog.write_text(RACY)
        report = _report(prog)
        out = apply_baseline(report, "write", str(tmp_path / "b.json"))
        assert out is report


class TestCli:
    def test_write_exits_zero_despite_findings(self, tmp_path, capsys):
        prog = tmp_path / "legacy.py"
        prog.write_text(RACY)
        baseline = tmp_path / "baseline.json"
        code = main(
            [str(prog), "--no-cache", "--baseline", "write", str(baseline)]
        )
        capsys.readouterr()
        assert code == 0
        assert baseline.exists()

    def test_check_is_clean_until_a_regression(self, tmp_path, capsys):
        prog = tmp_path / "legacy.py"
        prog.write_text(RACY)
        baseline = tmp_path / "baseline.json"
        main([str(prog), "--no-cache", "--baseline", "write", str(baseline)])
        capsys.readouterr()

        code = main(
            [str(prog), "--no-cache", "--baseline", "check", str(baseline)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "suppressed" in out

        # Baselines match exactly (path, line, rule, ...): shifting the
        # file by one line makes the old finding "new" again.
        prog.write_text("# preamble\n" + RACY)
        code = main(
            [str(prog), "--no-cache", "--baseline", "check", str(baseline)]
        )
        capsys.readouterr()
        assert code == 1

    def test_bad_mode_is_rejected(self, tmp_path):
        prog = tmp_path / "legacy.py"
        prog.write_text(CLEAN)
        try:
            main([str(prog), "--no-cache", "--baseline", "frob", "x.json"])
        except SystemExit as exc:
            assert "write" in str(exc)
        else:
            raise AssertionError("invalid --baseline mode was accepted")

    def test_whole_program_findings_can_be_baselined(self, tmp_path, capsys):
        from repro.smp.fixtures import multifile_fixture

        fix = multifile_fixture("crossmod_racy_pair")
        tree = tmp_path / "prog"
        tree.mkdir()
        for name, src in fix.files:
            (tree / name).write_text(src)
        baseline = tmp_path / "baseline.json"
        args = [str(tree), "--no-cache", "--whole-program"]
        assert main(args + ["--baseline", "write", str(baseline)]) == 0
        capsys.readouterr()
        assert main(args + ["--baseline", "check", str(baseline)]) == 0
        capsys.readouterr()

"""Phase 1 of whole-program analysis: per-module summaries.

A summary is the *only* thing phase 2 ever sees of a module, so every
interface fact the fixpoint relies on — locks defined, globals touched
(with sites and locksets), spawn/blocking/acquisition sites, the
suppression table — must survive extraction and the cache's wire
round-trip bit-for-bit.
"""

from repro.analysis.ip.cache import MemorySummaryCache, SummaryCache
from repro.analysis.ip.summaries import (
    SUMMARY_VERSION,
    ModuleSummary,
    summarize_chunk,
    summarize_module,
)

MODULE = """\
import threading
import helpers
from helpers import tick as short_tick

counter = 0
lock = threading.Lock()


def bump():
    global counter
    with lock:
        counter += 1


def sloppy():
    global counter
    counter -= 1  # pdc: disable=PDC101 -- exercised by the tests


def wait_for(worker):
    worker.join()


def main():
    t = threading.Thread(target=bump)
    t.start()
    helpers.run(short_tick)
"""


class TestSummarizeModule:
    def test_locks_globals_and_sites(self):
        s = summarize_module("app.py", MODULE)
        assert s.version == SUMMARY_VERSION
        assert s.path == "app.py"
        assert "counter" in s.module_globals
        assert s.global_lines["counter"] == 5
        assert list(s.locks) == ["lock"]
        assert {f.name for f in s.functions} >= {
            "bump",
            "sloppy",
            "wait_for",
            "main",
        }
        writes = [
            a for a in s.accesses if a.parts[-1] == "counter" and a.write
        ]
        assert writes, "global writes must be summarized"
        locked = [a for a in writes if a.lockset]
        bare = [a for a in writes if not a.lockset]
        assert locked and bare, "locksets are recorded per site"

    def test_imports_spawns_blocking_suppressions(self):
        s = summarize_module("app.py", MODULE)
        assert s.imports["helpers"] == "helpers"
        assert s.imports["short_tick"] == "helpers.tick"
        assert len(s.spawns) == 1
        assert s.spawns[0].target.endswith("bump")
        assert any(b.kind == "join" for b in s.blocking)
        assert s.suppressions == {17: ("PDC101",)}

    def test_syntax_error_degrades_to_empty(self):
        # Phase 1 already reported the parse error; phase 2 must not
        # crash or double-report, just see an inert module.
        empty = ModuleSummary.empty("broken.py")
        assert empty.functions == ()
        assert empty.accesses == ()

    def test_chunk_matches_individual_runs(self):
        # summarize_chunk is the worker-process entry point: bytes in,
        # wire dicts out, matching the in-process path exactly.
        pairs = [("a.py", MODULE), ("b.py", "x = 1\n")]
        chunked = summarize_chunk(
            [(p, src.encode("utf-8")) for p, src in pairs]
        )
        for (path, source), wire in zip(pairs, chunked):
            assert wire == summarize_module(path, source).to_wire()


class TestWireFormat:
    def test_round_trip_is_identity(self):
        s = summarize_module("app.py", MODULE)
        assert ModuleSummary.from_wire(s.to_wire()) == s

    def test_wire_is_json_plain(self):
        import json

        s = summarize_module("app.py", MODULE)
        encoded = json.dumps(s.to_wire(), sort_keys=True)
        assert ModuleSummary.from_wire(json.loads(encoded)) == s


class TestSummaryCache:
    def test_disk_round_trip_rebases_the_path(self, tmp_path):
        cache = SummaryCache(str(tmp_path / "cache"), "1")
        s = summarize_module("app.py", MODULE)
        assert cache.get_summary("deadbeef", "app.py") is None
        cache.put_summary("deadbeef", s)
        again = SummaryCache(str(tmp_path / "cache"), "1")
        hit = again.get_summary("deadbeef", "elsewhere/app.py")
        assert hit is not None
        assert hit.path == "elsewhere/app.py"
        hit.path = s.path
        assert hit == s

    def test_ip_version_bump_prunes_the_old_scope(self, tmp_path):
        cache = SummaryCache(str(tmp_path / "cache"), "1")
        cache.put_summary("deadbeef", summarize_module("app.py", MODULE))
        other = SummaryCache(str(tmp_path / "cache"), "2")
        assert other.get_summary("deadbeef", "app.py") is None
        # ...and the stale scope directory is actually gone from disk.
        reopened = SummaryCache(str(tmp_path / "cache"), "1")
        assert reopened.get_summary("deadbeef", "app.py") is None

    def test_memory_cache_mirrors_disk(self):
        cache = MemorySummaryCache()
        s = summarize_module("app.py", MODULE)
        cache.put_summary("deadbeef", s)
        hit = cache.get_summary("deadbeef", "app.py")
        assert hit == s
        assert cache.get_summary("feedface", "app.py") is None

"""The ``pdc-lint`` CLI: exit codes, formats, selection, suppressions."""

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.report import (
    Finding,
    Severity,
    apply_suppressions,
    parse_suppressions,
)
from repro.smp.fixtures import fixture


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.py"
    path.write_text(fixture("racy_counter_twin").source)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(fixture("locked_counter_twin").source)
    return str(path)


class TestExitCodes:
    def test_clean_exits_zero(self, clean_file, capsys):
        assert main([clean_file]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, racy_file, capsys):
        assert main([racy_file]) == 1
        assert "PDC101" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "no such file" in capsys.readouterr().out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        assert main([str(path)]) == 2
        assert "syntax error" in capsys.readouterr().out

    def test_no_paths_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestFormats:
    def test_text_lines_are_clickable(self, racy_file, capsys):
        main([racy_file])
        out = capsys.readouterr().out
        assert f"{racy_file}:" in out  # path:line:col prefix
        assert "[error]" in out

    def test_json_payload_shape(self, racy_file, capsys):
        assert main([racy_file, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "pdc-lint"
        assert payload["files"] == 1
        assert payload["summary"] == {"PDC101": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "PDC101"
        assert finding["severity"] == "error"
        assert finding["symbol"] == "counter"

    def test_directory_walk(self, tmp_path, racy_file, clean_file, capsys):
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 2


class TestSelection:
    def test_select_skips_other_rules(self, racy_file, capsys):
        assert main([racy_file, "--select", "PDC2"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_select_prefix_family(self, tmp_path, capsys):
        path = tmp_path / "two.py"
        path.write_text(
            fixture("bare_acquire").source
            + "\n"
            + fixture("spin_wait_flag").source.replace("import threading\n", "")
        )
        assert main([str(path), "--select", "PDC201", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["summary"]) == {"PDC201"}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("PDC101", "PDC102", "PDC208"):
            assert rule_id in out


class TestSuppressions:
    def test_parse_specific_rules(self):
        table = parse_suppressions(
            "x = 1  # pdc-lint: disable=PDC101,PDC202 -- reason\n"
        )
        assert table == {1: {"PDC101", "PDC202"}}

    def test_parse_all(self):
        table = parse_suppressions("x = 1  # pdc-lint: disable=all\n")
        assert table == {1: None}

    def test_apply_splits_kept_and_suppressed(self):
        src = "a = 1\nb = 2  # pdc-lint: disable=PDC101 -- demo\n"
        f1 = Finding("p", 1, 0, "PDC101", "m", Severity.ERROR)
        f2 = Finding("p", 2, 0, "PDC101", "m", Severity.ERROR)
        f3 = Finding("p", 2, 0, "PDC202", "m", Severity.WARNING)
        kept, suppressed = apply_suppressions([f1, f2, f3], src)
        assert kept == [f1, f3]  # wrong line / wrong rule stay
        assert suppressed == [f2]

    def test_suppressed_file_exits_zero_but_is_counted(
        self, tmp_path, capsys
    ):
        path = tmp_path / "suppressed.py"
        path.write_text(fixture("suppressed_racy_counter").source)
        assert main([str(path)]) == 0
        assert "(1 suppressed)" in capsys.readouterr().out

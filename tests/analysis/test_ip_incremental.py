"""Whole-program incrementality: summaries re-used, cones replayed.

Mirrors the phase-1 mutation test (edit one of 12 files, exactly one
re-analyzes) at whole-program scope: editing one module of a 12-file
import chain re-summarizes exactly that module and re-links only the
SCC cones that can see it — while every output format stays
byte-identical to a from-scratch run on the same tree.
"""

import os

from repro.analysis.engine.cache import FindingsCache
from repro.analysis.engine.cli import render_report
from repro.analysis.engine.core import AnalysisEngine
from repro.analysis.engine.passes import LintPass
from repro.analysis.ip.analyzer import IP_VERSION
from repro.analysis.ip.cache import SummaryCache
from repro.analysis.ip.engine import WholeProgramEngine

N = 12

TAIL = """\
counter = 0


def step():
    global counter
    counter += 1
"""

LINK = """\
import mod_{next:02d}


def step():
    mod_{next:02d}.step()
"""

HEAD = """\
import threading

import mod_01


def main():
    workers = [
        threading.Thread(target=mod_01.step) for _ in range(2)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
"""


def build_chain(root):
    """mod_00 spawns, mod_01..mod_10 forward, mod_11 owns the global."""
    os.makedirs(root, exist_ok=True)
    for i in range(N):
        if i == 0:
            src = HEAD
        elif i == N - 1:
            src = TAIL
        else:
            src = LINK.format(next=i + 1)
        with open(
            os.path.join(root, f"mod_{i:02d}.py"), "w", encoding="utf-8"
        ) as fh:
            fh.write(src)
    return root


def make_engine(tmp_path, jobs=1, cold=False):
    suffix = "cold" if cold else "warm"
    cache_root = str(tmp_path / f"cache-{suffix}" if cold else tmp_path / "cache")
    return WholeProgramEngine(
        LintPass(),
        cache=FindingsCache(cache_root),
        summary_cache=SummaryCache(cache_root, IP_VERSION),
        jobs=jobs,
    )


def renders(report):
    pass_ = LintPass()
    return {
        fmt: render_report(pass_, fmt, report)
        for fmt in ("text", "json", "sarif")
    }


class TestIncremental:
    def test_edit_one_of_twelve(self, tmp_path):
        root = build_chain(str(tmp_path / "tree"))
        cold = make_engine(tmp_path)
        cold_report = cold.run_paths([root])
        stats = cold.stats()
        assert stats["analysis.ip.summary.misses"] == N
        assert stats["analysis.ip.summary.hits"] == 0
        assert stats["analysis.ip.scc.analyzed"] == N
        assert stats["analysis.ip.modules"] == N
        assert stats["analysis.ip.scc.count"] == N
        assert [f.rule for f in cold_report.findings] == ["PDC101"]

        warm = make_engine(tmp_path)
        warm.run_paths([root])
        stats = warm.stats()
        assert stats["analysis.ip.summary.hits"] == N
        assert stats["analysis.ip.summary.misses"] == 0
        assert stats["analysis.ip.scc.hits"] == N
        assert stats["analysis.ip.scc.analyzed"] == 0
        assert stats["engine.cache.hits"] == N

        # Edit mod_07: modules 00..07 can see it (they import it,
        # transitively); 08..11 cannot and must replay from cache.
        target = os.path.join(root, "mod_07.py")
        with open(target, "a", encoding="utf-8") as fh:
            fh.write("\n\nEDITED = True\n")
        touched = make_engine(tmp_path)
        touched.run_paths([root])
        stats = touched.stats()
        assert stats["engine.files.analyzed"] == 1
        assert stats["analysis.ip.summary.misses"] == 1
        assert stats["analysis.ip.summary.hits"] == N - 1
        assert stats["analysis.ip.scc.analyzed"] == 8
        assert stats["analysis.ip.scc.hits"] == N - 8

    def test_touch_without_edit_replays_everything(self, tmp_path):
        root = build_chain(str(tmp_path / "tree"))
        make_engine(tmp_path).run_paths([root])
        os.utime(os.path.join(root, "mod_07.py"))
        engine = make_engine(tmp_path)
        engine.run_paths([root])
        stats = engine.stats()
        assert stats["analysis.ip.summary.hits"] == N
        assert stats["analysis.ip.scc.analyzed"] == 0


class TestByteIdentity:
    def test_cold_warm_parallel_agree_in_every_format(self, tmp_path):
        root = build_chain(str(tmp_path / "tree"))
        cold = make_engine(tmp_path)
        reference = renders(cold.run_paths([root]))
        assert '"PDC101"' in reference["json"]

        warm = make_engine(tmp_path)
        assert renders(warm.run_paths([root])) == reference

        parallel = WholeProgramEngine(LintPass(), jobs=4)
        assert renders(parallel.run_paths([root])) == reference

    def test_incremental_equals_from_scratch_after_an_edit(self, tmp_path):
        root = build_chain(str(tmp_path / "tree"))
        make_engine(tmp_path).run_paths([root])
        # The edit adds a second, unlocked writer module to the chain.
        target = os.path.join(root, "mod_07.py")
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(
                "import mod_08\n"
                "import mod_11\n\n\n"
                "def step():\n"
                "    mod_11.counter -= 1\n"
                "    mod_08.step()\n"
            )
        incremental = make_engine(tmp_path)
        got = renders(incremental.run_paths([root]))
        assert incremental.stats()["analysis.ip.summary.misses"] == 1

        scratch = WholeProgramEngine(LintPass())
        assert renders(scratch.run_paths([root])) == got

"""Whole-program lift: findings no single file can justify.

Every test here builds a small on-disk program tree and runs both
engines over it.  The load-bearing assertions come in pairs: the
per-file :class:`AnalysisEngine` must stay silent (no module shows the
bug alone) while :class:`WholeProgramEngine` reports it — that delta
*is* the interprocedural lift.
"""

import os

from repro.analysis.engine.core import AnalysisEngine
from repro.analysis.engine.passes import LintPass
from repro.analysis.ip.engine import WholeProgramEngine
from repro.smp.fixtures import multifile_fixture


def write_tree(root, files):
    os.makedirs(root, exist_ok=True)
    for filename, source in files:
        path = os.path.join(root, filename)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(source)
    return root


def per_file(root):
    return AnalysisEngine(LintPass()).run_paths([root])


def whole(root):
    return WholeProgramEngine(LintPass()).run_paths([root])


class TestCrossModuleRace:
    def test_racy_pair_needs_the_lift(self, tmp_path):
        fix = multifile_fixture("crossmod_racy_pair")
        root = write_tree(str(tmp_path / "prog"), fix.files)
        assert per_file(root).findings == []  # no single file shows it
        report = whole(root)
        assert [f.rule for f in report.findings] == ["PDC101"]
        (race,) = report.findings
        assert "cross-module" in race.message
        assert race.symbol == "shared_state.counter"

    def test_trace_walks_decl_spawn_and_accesses(self, tmp_path):
        fix = multifile_fixture("crossmod_racy_pair")
        root = write_tree(str(tmp_path / "prog"), fix.files)
        (race,) = whole(root).findings
        files = {os.path.basename(s.path) for s in race.trace}
        # Evidence spans the declaring/accessing and spawning modules
        # (worker.py only forwards the call; the write site is bump's).
        assert {"shared_state.py", "main.py"} <= files
        notes = " ".join(s.note for s in race.trace)
        assert "spawned" in notes and "defined" in notes and "write" in notes

    def test_locked_variant_is_clean(self, tmp_path):
        fix = multifile_fixture("crossmod_racy_pair")
        locked = [
            (
                name,
                src.replace(
                    "    global counter\n    counter += 1\n",
                    "    global counter\n"
                    "    with lock:\n        counter += 1\n",
                ),
            )
            for name, src in fix.files
        ]
        assert any("with lock" in src for _, src in locked)
        root = write_tree(str(tmp_path / "prog"), locked)
        assert whole(root).findings == []

    def test_handoff_pair_is_still_a_static_positive(self, tmp_path):
        # The handoff twin is statically indistinguishable from a race;
        # only the dynamic sanitizer exonerates it (see crossval).
        fix = multifile_fixture("crossmod_handoff_pair")
        root = write_tree(str(tmp_path / "prog"), fix.files)
        assert per_file(root).findings == []
        assert [f.rule for f in whole(root).findings] == ["PDC101"]


LOCKS = """\
import threading

a = threading.Lock()
b = threading.Lock()
"""

FORWARD = """\
import locks


def forward():
    with locks.a:
        with locks.b:
            pass
"""

BACKWARD = """\
import locks


def backward():
    with locks.b:
        with locks.a:
            pass
"""

LINKER = """\
import bwd
import fwd


def main():
    fwd.forward()
    bwd.backward()
"""


class TestCrossModuleLockOrder:
    def test_abba_across_files(self, tmp_path):
        # The opposite orders live in sibling modules; the cycle only
        # exists in programs that link both — app.py's cone does.
        root = write_tree(
            str(tmp_path / "prog"),
            [
                ("locks.py", LOCKS),
                ("fwd.py", FORWARD),
                ("bwd.py", BACKWARD),
                ("app.py", LINKER),
            ],
        )
        assert per_file(root).findings == []
        report = whole(root)
        assert [f.rule for f in report.findings] == ["PDC102"]
        (cycle,) = report.findings
        assert "locks.a" in cycle.symbol and "locks.b" in cycle.symbol

    def test_unlinked_orders_are_not_a_cycle(self, tmp_path):
        # Without a module importing both, no program runs both orders:
        # the cone model deliberately stays silent.
        root = write_tree(
            str(tmp_path / "prog"),
            [
                ("locks.py", LOCKS),
                ("fwd.py", FORWARD),
                ("bwd.py", BACKWARD),
            ],
        )
        assert whole(root).findings == []

    def test_own_lock_abba_is_not_double_reported(self, tmp_path):
        # Locks and both orders in one module: phase 1 already owns
        # that cycle, so the whole-program pass must not re-report it.
        both = LOCKS + "\n\n" + (
            "def forward():\n"
            "    with a:\n"
            "        with b:\n"
            "            pass\n"
            "\n\n"
            "def backward():\n"
            "    with b:\n"
            "        with a:\n"
            "            pass\n"
        )
        root = write_tree(str(tmp_path / "prog"), [("app.py", both)])
        local = per_file(root)
        assert [f.rule for f in local.findings] == ["PDC102"]
        lifted = whole(root)
        assert [f.rule for f in lifted.findings] == ["PDC102"]
        assert lifted.findings == local.findings

    def test_imported_lock_abba_in_one_file_needs_the_lift(self, tmp_path):
        # Both orders in one module but over *imported* locks: the
        # per-file lock model never discovers them, so the lift owns it.
        both = FORWARD + "\n\n" + BACKWARD.replace("import locks\n\n\n", "")
        root = write_tree(
            str(tmp_path / "prog"),
            [("locks.py", LOCKS), ("app.py", both)],
        )
        assert per_file(root).findings == []
        assert [f.rule for f in whole(root).findings] == ["PDC102"]


BLOCKING_HELPER = """\
def do_work():
    return input()
"""

JOINY_HELPER = """\
def wait_for(worker):
    worker.join()
"""

CALLER_UNDER_LOCK = """\
import threading

import helper

lock = threading.Lock()


def tick(worker):
    with lock:
        helper.{callee}
"""


class TestTransitiveBlocking:
    def test_blocking_call_behind_a_call_is_pdc209(self, tmp_path):
        root = write_tree(
            str(tmp_path / "prog"),
            [
                ("helper.py", BLOCKING_HELPER),
                (
                    "app.py",
                    CALLER_UNDER_LOCK.format(callee="do_work()"),
                ),
            ],
        )
        assert per_file(root).findings == []
        report = whole(root)
        assert [f.rule for f in report.findings] == ["PDC209"]
        (f,) = report.findings
        assert os.path.basename(f.path) == "app.py"  # blame the call site
        leafs = [s for s in f.trace if "helper.py" in s.path]
        assert leafs, "trace reaches the blocking leaf"

    def test_join_behind_a_call_is_pdc206(self, tmp_path):
        root = write_tree(
            str(tmp_path / "prog"),
            [
                ("helper.py", JOINY_HELPER),
                (
                    "app.py",
                    CALLER_UNDER_LOCK.format(callee="wait_for(worker)"),
                ),
            ],
        )
        assert per_file(root).findings == []
        assert [f.rule for f in whole(root).findings] == ["PDC206"]


class TestEndpointSuppression:
    def _root(self, tmp_path, mutate):
        fix = multifile_fixture("crossmod_racy_pair")
        files = [(name, mutate(name, src)) for name, src in fix.files]
        return write_tree(str(tmp_path / "prog"), files)

    def test_suppression_at_the_declaration_end(self, tmp_path):
        def mutate(name, src):
            if name == "shared_state.py":
                return src.replace(
                    "counter = 0",
                    "counter = 0  # pdc: disable=PDC101 -- test corpus",
                )
            return src

        report = whole(self._root(tmp_path, mutate))
        assert report.findings == []
        assert report.suppressed == 1

    def test_suppression_at_the_access_end(self, tmp_path):
        def mutate(name, src):
            if name == "shared_state.py":
                return src.replace(
                    "counter += 1",
                    "counter += 1  # pdc: disable=PDC101 -- test corpus",
                )
            return src

        report = whole(self._root(tmp_path, mutate))
        assert report.findings == []
        assert report.suppressed == 1

    def test_unrelated_rule_does_not_suppress(self, tmp_path):
        def mutate(name, src):
            if name == "shared_state.py":
                return src.replace(
                    "counter += 1",
                    "counter += 1  # pdc: disable=PDC102 -- wrong rule",
                )
            return src

        report = whole(self._root(tmp_path, mutate))
        assert [f.rule for f in report.findings] == ["PDC101"]
        assert report.suppressed == 0

"""The engine's hard invariant: cold == warm == parallel, byte for byte.

Every test here renders full text/JSON/SARIF reports and compares the
*strings*: a cache hit or a worker handoff is allowed to change wall
clock and nothing else.  The legacy sequential pipeline
(:func:`repro.analysis.analyzer.analyze_paths` + renderers) is the
reference the engine must reproduce exactly.
"""

import os

import pytest

from repro.analysis import analyze_paths, render_json, render_sarif, render_text
from repro.analysis.engine import (
    AnalysisEngine,
    FindingsCache,
    LintPass,
    SanitizePass,
    WorkUnit,
)
from repro.analysis.engine.cli import render_report
from repro.analysis.rules import default_registry
from repro.sanitizers.runner import run_fixture
from repro.smp.fixtures import all_fixtures, fixture

SRC = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src", "repro")
)
FORMATS = ("text", "json", "sarif")


@pytest.fixture
def corpus_tree(tmp_path):
    """Every twin-corpus fixture written out as a real file tree."""
    root = tmp_path / "corpus"
    root.mkdir()
    for fix in all_fixtures():
        (root / f"{fix.name}.py").write_text(fix.source)
    return str(root)


def legacy_lint(paths, fmt):
    """The classic sequential pipeline, rendered."""
    result = analyze_paths(paths)
    kwargs = dict(
        files=result.files,
        suppressed=result.suppressed,
        errors=result.errors,
    )
    if fmt == "sarif":
        rules = [(r.id, r.name, r.summary) for r in default_registry().rules()]
        return render_sarif(result.findings, rules=rules, **kwargs)
    if fmt == "json":
        return render_json(result.findings, **kwargs)
    return render_text(result.findings, **kwargs)


def engine_lint(paths, fmt, cache=None, jobs=1):
    pass_ = LintPass()
    engine = AnalysisEngine(pass_, cache=cache, jobs=jobs)
    return render_report(pass_, fmt, engine.run_paths(paths)), engine


class TestLintByteIdentity:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_cold_warm_parallel_match_legacy_over_corpus(
        self, corpus_tree, tmp_path, fmt
    ):
        reference = legacy_lint([corpus_tree], fmt)
        cache = FindingsCache(str(tmp_path / "cache"))
        cold, cold_engine = engine_lint([corpus_tree], fmt, cache=cache)
        warm, warm_engine = engine_lint([corpus_tree], fmt, cache=cache)
        parallel, _ = engine_lint([corpus_tree], fmt, jobs=4)
        assert cold == reference
        assert warm == reference
        assert parallel == reference
        stats = warm_engine.stats()
        assert stats["engine.files.analyzed"] == 0
        assert stats["engine.cache.hits"] == stats["engine.files.planned"] > 0
        assert cold_engine.stats()["engine.cache.hits"] == 0

    def test_selflint_cold_warm_parallel_match_legacy(self, tmp_path):
        """The acceptance run: ``src/repro`` itself, all three modes."""
        reference = legacy_lint([SRC], "json")
        cache = FindingsCache(str(tmp_path / "cache"))
        cold, _ = engine_lint([SRC], "json", cache=cache)
        warm, warm_engine = engine_lint([SRC], "json", cache=cache)
        parallel, _ = engine_lint([SRC], "json", jobs=4)
        assert cold == reference == warm == parallel
        stats = warm_engine.stats()
        assert stats["engine.files.analyzed"] == 0
        assert stats["engine.files.planned"] > 50

    def test_missing_path_and_syntax_error_match_legacy(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        paths = [str(tmp_path), str(tmp_path / "nope.py")]
        for fmt in FORMATS:
            got, engine = engine_lint(paths, fmt)
            assert got == legacy_lint(paths, fmt)
        report = engine.run_paths(paths)
        assert report.exit_code == 2


class TestSanByteIdentity:
    def san_units(self):
        return [
            WorkUnit.fixture(f.name)
            for f in all_fixtures()
            if f.dynamic_entry or f.entrypoints
        ]

    def reference_san(self, fmt):
        """What the pre-engine pdc-san pipeline produced for --corpus."""
        runs = [
            run_fixture(f)
            for f in all_fixtures()
            if f.dynamic_entry or f.entrypoints
        ]
        findings, errors, suppressed = [], [], 0
        for run in runs:
            findings.extend(run.findings)
            errors.extend(run.errors)
            suppressed += len(run.suppressed)
        pass_ = SanitizePass()
        kwargs = dict(files=len(runs), suppressed=suppressed, errors=errors)
        if fmt == "sarif":
            return render_sarif(
                sorted(findings),
                tool="pdc-san",
                rules=pass_.sarif_rules(),
                **kwargs,
            )
        if fmt == "json":
            return render_json(sorted(findings), tool="pdc-san", **kwargs)
        return render_text(sorted(findings), **kwargs)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_corpus_cold_warm_parallel(self, tmp_path, fmt):
        reference = self.reference_san(fmt)
        pass_ = SanitizePass()
        cache = FindingsCache(str(tmp_path / "cache"))
        units = self.san_units()
        cold = render_report(
            pass_, fmt, AnalysisEngine(pass_, cache=cache).run(units)
        )
        warm_engine = AnalysisEngine(pass_, cache=cache)
        warm = render_report(pass_, fmt, warm_engine.run(units))
        parallel = render_report(
            pass_, fmt, AnalysisEngine(pass_, jobs=4).run(units)
        )
        assert cold == reference
        assert warm == reference
        assert parallel == reference
        assert warm_engine.stats()["engine.files.analyzed"] == 0


class TestDeterministicMergeOrder:
    def test_parallel_results_merge_in_planned_order_not_completion(
        self, corpus_tree
    ):
        """Planned order is path order; a pool can't reorder findings."""
        sequential = AnalysisEngine(LintPass()).run_paths([corpus_tree])
        parallel = AnalysisEngine(LintPass(), jobs=3).run_paths([corpus_tree])
        assert [u.key for u in sequential.units] == [
            u.key for u in parallel.units
        ]
        assert sequential.findings == parallel.findings
        assert [f.path for f in parallel.findings] == sorted(
            f.path for f in parallel.findings
        )


class TestStatsFlag:
    def test_stats_json_snapshot_and_quiet_stdout(
        self, corpus_tree, tmp_path, capsys, monkeypatch
    ):
        """--stats telemetry must never contaminate the findings stream."""
        import json as _json

        from repro.analysis.__main__ import main

        monkeypatch.setenv("PDC_CACHE_DIR", str(tmp_path / "cache"))
        stats_file = tmp_path / "stats.json"
        main([corpus_tree, "--format", "json", "--stats",
              "--stats-json", str(stats_file)])
        out, err = capsys.readouterr()
        _json.loads(out)  # stdout is pure report JSON
        assert "[pdc-lint stats]" in err
        snapshot = _json.loads(stats_file.read_text())
        assert snapshot["engine.files.planned"] == len(all_fixtures())
        assert snapshot["engine.cache.misses"] > 0
        assert any(k.startswith("engine.rule.PDC") for k in snapshot)
        assert "engine.wall_seconds" in snapshot

    def test_select_scopes_cache_and_stats(self, tmp_path):
        """Different --select configurations never share cache entries."""
        path = tmp_path / "prog.py"
        path.write_text(fixture("racy_counter_twin").source)
        cache = FindingsCache(str(tmp_path / "cache"))
        full = AnalysisEngine(LintPass(), cache=cache)
        full_report = full.run_paths([str(path)])
        narrowed = AnalysisEngine(LintPass(select=["PDC2"]), cache=cache)
        narrow_report = narrowed.run_paths([str(path)])
        assert {f.rule for f in full_report.findings} == {"PDC101"}
        assert narrow_report.findings == []
        assert narrowed.stats()["engine.cache.hits"] == 0


class TestWholeProgramStatsFlag:
    def test_stats_json_gains_the_ip_subtree(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        from repro.analysis.__main__ import main
        from repro.smp.fixtures import multifile_fixture

        fix = multifile_fixture("crossmod_racy_pair")
        tree = tmp_path / "prog"
        tree.mkdir()
        for name, src in fix.files:
            (tree / name).write_text(src)
        monkeypatch.setenv("PDC_CACHE_DIR", str(tmp_path / "cache"))
        stats_file = tmp_path / "stats.json"
        main([str(tree), "--whole-program", "--format", "json", "--stats",
              "--stats-json", str(stats_file)])
        out, err = capsys.readouterr()
        json.loads(out)  # stdout is still pure report JSON
        assert "whole-program:" in err
        assert "summaries:" in err

        snapshot = json.loads(stats_file.read_text())
        assert snapshot["analysis.ip.modules"] == len(fix.files)
        assert snapshot["analysis.ip.summary.misses"] == len(fix.files)
        assert snapshot["analysis.ip.scc.count"] > 0
        assert snapshot["analysis.ip.findings"] == 1

        # Warm run: summaries and cones all replay from the cache.
        main([str(tree), "--whole-program", "--format", "json", "--stats",
              "--stats-json", str(stats_file)])
        capsys.readouterr()
        snapshot = json.loads(stats_file.read_text())
        assert snapshot["analysis.ip.summary.hits"] == len(fix.files)
        assert snapshot["analysis.ip.summary.misses"] == 0
        assert snapshot["analysis.ip.scc.analyzed"] == 0

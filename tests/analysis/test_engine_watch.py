"""The warm ``--watch`` loop: stat-gated, hash-verified, in-memory hot.

The watcher's contract: a cycle with no filesystem changes does no
analysis and produces no report; a changed file re-analyzes exactly
itself; the merged report after any change is byte-equivalent to a
fresh full run over the same tree.
"""

import os

from repro.analysis.engine import (
    AnalysisEngine,
    FindingsCache,
    LintPass,
    Watcher,
)
from repro.analysis.engine.cli import render_report
from repro.smp.fixtures import fixture

RACY = fixture("racy_counter_twin").source
CLEAN = fixture("locked_counter_twin").source


def make_tree(tmp_path, n=6):
    tree = tmp_path / "tree"
    tree.mkdir()
    for i in range(n):
        (tree / f"mod_{i}.py").write_text(
            CLEAN.replace("counter", f"counter_{i}")
        )
    return tree


class TestWatcher:
    def test_first_cycle_reports_then_idle_cycles_do_nothing(self, tmp_path):
        tree = make_tree(tmp_path)
        engine = AnalysisEngine(LintPass())
        watcher = Watcher(engine, [str(tree)])
        first = watcher.run_cycle()
        assert first is not None
        assert first.files == 6
        analyzed_after_first = engine.stats()["engine.files.analyzed"]
        assert watcher.run_cycle() is None
        assert watcher.run_cycle() is None
        assert engine.stats()["engine.files.analyzed"] == analyzed_after_first

    def test_change_reanalyzes_only_the_changed_file(self, tmp_path):
        tree = make_tree(tmp_path)
        engine = AnalysisEngine(LintPass())
        watcher = Watcher(engine, [str(tree)])
        watcher.run_cycle()
        before = engine.stats()["engine.files.analyzed"]

        target = tree / "mod_3.py"
        target.write_text(RACY.replace("counter", "counter_3"))
        os.utime(target)
        report = watcher.run_cycle()
        assert report is not None
        assert engine.stats()["engine.files.analyzed"] == before + 1
        assert [f.path for f in report.findings] == [str(target)]

    def test_watch_report_matches_a_fresh_full_run(self, tmp_path):
        tree = make_tree(tmp_path)
        engine = AnalysisEngine(LintPass())
        watcher = Watcher(engine, [str(tree)])
        watcher.run_cycle()
        (tree / "mod_1.py").write_text(RACY.replace("counter", "counter_1"))
        (tree / "mod_9.py").write_text(RACY.replace("counter", "counter_9"))
        report = watcher.run_cycle()
        fresh = AnalysisEngine(LintPass()).run_paths([str(tree)])
        for fmt in ("text", "json", "sarif"):
            assert render_report(LintPass(), fmt, report) == render_report(
                LintPass(), fmt, fresh
            )

    def test_touch_without_content_change_skips_reanalysis(self, tmp_path):
        tree = make_tree(tmp_path)
        engine = AnalysisEngine(LintPass())
        watcher = Watcher(engine, [str(tree)])
        watcher.run_cycle()
        before = engine.stats()["engine.files.analyzed"]
        target = tree / "mod_2.py"
        os.utime(target, (0, 0))  # force a different stat, same bytes
        assert watcher.run_cycle() is None
        assert engine.stats()["engine.files.analyzed"] == before

    def test_deleted_file_drops_out_of_the_report(self, tmp_path):
        tree = make_tree(tmp_path)
        engine = AnalysisEngine(LintPass())
        watcher = Watcher(engine, [str(tree)])
        first = watcher.run_cycle()
        assert first.files == 6
        os.remove(tree / "mod_0.py")
        report = watcher.run_cycle()
        assert report is not None
        assert report.files == 5

    def test_run_forever_is_bounded_and_injectable(self, tmp_path):
        tree = make_tree(tmp_path, n=2)
        engine = AnalysisEngine(LintPass())
        watcher = Watcher(engine, [str(tree)])
        naps = []
        watcher.run_forever(interval=0.01, max_cycles=3, sleep=naps.append)
        assert naps == [0.01, 0.01]

    def test_watcher_shares_the_disk_cache(self, tmp_path):
        """A watcher warmed by a previous run analyzes nothing cold."""
        tree = make_tree(tmp_path)
        cache = FindingsCache(str(tmp_path / "cache"))
        AnalysisEngine(LintPass(), cache=cache).run_paths([str(tree)])
        engine = AnalysisEngine(LintPass(), cache=cache)
        watcher = Watcher(engine, [str(tree)])
        watcher.run_cycle()
        stats = engine.stats()
        assert stats["engine.files.analyzed"] == 0
        assert stats["engine.cache.hits"] == 6

"""The interprocedural crossval gate: static lift vs dynamic truth.

The multi-file twin corpus carries three machine-checkable ground
truths per fixture; this suite pins the corpus-level claims the issue
demands: the racy pair's cross-module PDC101 is confirmed dynamically,
the handoff pair's is exonerated by fork/join happens-before, and
single-file mode provably misses both.
"""

import json

from repro.analysis.ip.crossval import (
    cross_validate_ip,
    render_ip_crossval_text,
    run_ip_crossval_cli,
)
from repro.smp.fixtures import all_multifile_fixtures


class TestCorpus:
    def test_every_fixture_carries_full_ground_truth(self):
        fixtures = all_multifile_fixtures()
        assert len(fixtures) >= 2
        for fix in fixtures:
            assert len(fix.files) >= 2, fix.name
            assert fix.entry_module in fix.modules(), fix.name

    def test_all_three_analyses_match_ground_truth(self):
        report = cross_validate_ip()
        assert report.all_ok, json.dumps(report.to_dict(), indent=2)

    def test_racy_pair_is_dynamically_confirmed(self):
        report = cross_validate_ip()
        assert "crossmod_racy_pair" in report.confirmed

    def test_handoff_pair_is_dynamically_exonerated(self):
        report = cross_validate_ip()
        assert "crossmod_handoff_pair" in report.exonerated

    def test_single_file_mode_misses_the_lift(self):
        # The load-bearing claim: no fixture's bug is visible per-file.
        for v in cross_validate_ip().verdicts:
            assert v.lift_is_load_bearing, v.name
            assert "PDC101" not in v.single_file_rules, v.name
            assert "PDC101" in v.whole_program_rules, v.name


class TestRendering:
    def test_text_table_names_the_verdicts(self):
        text = render_ip_crossval_text(cross_validate_ip())
        assert "ok (confirmed)" in text
        assert "ok (exonerated)" in text
        assert "all ok: True" in text

    def test_cli_exit_codes_and_json(self, capsys):
        assert run_ip_crossval_cli("json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_ok"] is True
        assert payload["confirmed"] == ["crossmod_racy_pair"]
        assert payload["exonerated"] == ["crossmod_handoff_pair"]

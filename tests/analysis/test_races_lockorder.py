"""Unit tests for the static Eraser (PDC101) and lock-order pass (PDC102)."""

import textwrap

import networkx as nx

from repro.analysis import analyze_source
from repro.analysis.analyzer import ModuleContext
from repro.analysis.lockorder import build_lock_order_graph
from repro.analysis.races import collect_accesses


def _ctx(src: str) -> ModuleContext:
    return ModuleContext.build("<test>", textwrap.dedent(src))


def _rules(src: str):
    return {f.rule for f in analyze_source(textwrap.dedent(src))}


class TestAccessCollection:
    SRC = """
        import threading

        counter = 0

        def worker():
            global counter
            counter += 1

        def main():
            threading.Thread(target=worker).start()
    """

    def test_global_write_is_recorded(self):
        table = collect_accesses(_ctx(self.SRC))
        accesses = table[("global", "counter")]
        assert any(a.write and a.func == "worker" for a in accesses)

    def test_locks_are_not_data(self):
        src = """
            import threading
            m = threading.Lock()

            def worker():
                with m:
                    pass

            def main():
                threading.Thread(target=worker).start()
        """
        table = collect_accesses(_ctx(src))
        assert ("global", "m") not in table

    def test_self_attributes_are_keyed_by_class(self):
        src = """
            import threading

            class Box:
                def __init__(self):
                    self.n = 0

                def bump(self):
                    self.n += 1
        """
        table = collect_accesses(_ctx(src))
        accesses = table[("attr", "Box", "n")]
        init = [a for a in accesses if a.func == "__init__"]
        assert init and all(a.in_init for a in init)


class TestStaticRace:
    def test_no_threads_means_no_race(self):
        """Sequential code writing globals is not concurrent code."""
        assert "PDC101" not in _rules(
            """
            total = 0

            def add(x):
                global total
                total += x
            """
        )

    def test_single_spawn_single_writer_is_not_shared(self):
        assert "PDC101" not in _rules(
            """
            import threading

            state = 0

            def worker():
                global state
                state = 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
            """
        )

    def test_loop_spawned_worker_races_with_itself(self):
        assert "PDC101" in _rules(
            """
            import threading

            state = 0

            def worker():
                global state
                state += 1

            def main():
                for _ in range(4):
                    threading.Thread(target=worker).start()
            """
        )

    def test_distinct_locks_do_not_protect(self):
        """Empty intersection even though every access holds *a* lock."""
        assert "PDC101" in _rules(
            """
            import threading

            a = threading.Lock()
            b = threading.Lock()
            state = 0

            def writer_a():
                global state
                with a:
                    state += 1

            def writer_b():
                global state
                with b:
                    state += 1

            def main():
                threading.Thread(target=writer_a).start()
                threading.Thread(target=writer_b).start()
            """
        )

    def test_common_lock_protects(self):
        assert "PDC101" not in _rules(
            """
            import threading

            m = threading.Lock()
            state = 0

            def writer_1():
                global state
                with m:
                    state += 1

            def writer_2():
                global state
                with m:
                    state += 1

            def main():
                threading.Thread(target=writer_1).start()
                threading.Thread(target=writer_2).start()
            """
        )

    def test_race_reaches_through_helper_calls(self):
        """The concurrent set is the call-graph closure of the targets."""
        assert "PDC101" in _rules(
            """
            import threading

            state = 0

            def bump():
                global state
                state += 1

            def worker():
                bump()

            def main():
                for _ in range(2):
                    threading.Thread(target=worker).start()
            """
        )


class TestLockOrder:
    ABBA = """
        import threading

        a = threading.Lock()
        b = threading.Lock()

        def fwd():
            with a:
                with b:
                    pass

        def rev():
            with b:
                with a:
                    pass
    """

    def test_graph_edges_carry_sites(self):
        graph = build_lock_order_graph(_ctx(self.ABBA))
        assert set(graph.edges) == {("a", "b"), ("b", "a")}
        assert all(graph.edges[e]["sites"] for e in graph.edges)

    def test_abba_is_a_cycle(self):
        graph = build_lock_order_graph(_ctx(self.ABBA))
        assert not nx.is_directed_acyclic_graph(graph)
        assert "PDC102" in _rules(self.ABBA)

    def test_consistent_order_is_acyclic(self):
        src = self.ABBA.replace(
            "with b:\n                with a:",
            "with a:\n                with b:",
        )
        graph = build_lock_order_graph(_ctx(src))
        assert nx.is_directed_acyclic_graph(graph)
        assert "PDC102" not in _rules(src)

    def test_three_lock_cycle(self):
        assert "PDC102" in _rules(
            """
            import threading

            a = threading.Lock()
            b = threading.Lock()
            c = threading.Lock()

            def f():
                with a:
                    with b:
                        pass

            def g():
                with b:
                    with c:
                        pass

            def h():
                with c:
                    with a:
                        pass
            """
        )

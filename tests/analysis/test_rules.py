"""The fixture corpus: every seeded defect caught, every clean twin silent.

This encodes the issue's acceptance bar directly: a corpus of >= 10 seeded
race / deadlock / hygiene examples, detected with **zero false negatives**,
plus clean variants the analyzer must not flag (no false positives beyond
the one documented, ``known_false_positive``-tagged Eraser limitation).
"""

import pytest

from repro.analysis import analyze_source, default_registry
from repro.analysis.report import Severity
from repro.smp.fixtures import all_fixtures, fixture

ALL = all_fixtures()


class TestCorpus:
    def test_corpus_is_large_enough(self):
        seeded = [f for f in ALL if f.expect_rules]
        assert len(seeded) >= 10

    @pytest.mark.parametrize("fix", ALL, ids=lambda f: f.name)
    def test_expected_rules_exactly(self, fix):
        """Each fixture's findings match its expectation — both directions.

        ``expect_rules`` ⊆ found catches false negatives; found ⊆
        ``expect_rules`` catches false positives on the clean twins.
        """
        found = {f.rule for f in analyze_source(fix.source, path=fix.name)}
        assert found == set(fix.expect_rules), (
            f"{fix.name}: expected {sorted(fix.expect_rules)}, got {sorted(found)}"
        )

    def test_every_rule_has_a_seeded_example(self):
        """No rule ships without a fixture proving it fires."""
        covered = set()
        for fix in ALL:
            covered |= set(fix.expect_rules)
        all_rules = {rule.id for rule in default_registry().selected(None)}
        assert covered == all_rules


class TestRuleDetails:
    def test_race_finding_is_an_error_with_symbol(self):
        findings = analyze_source(fixture("racy_counter_twin").source)
        (f,) = [f for f in findings if f.rule == "PDC101"]
        assert f.severity is Severity.ERROR
        assert f.symbol == "counter"
        assert "lock" in f.message

    def test_deadlock_finding_names_the_cycle(self):
        findings = analyze_source(fixture("abba_deadlock_twin").source)
        (f,) = [f for f in findings if f.rule == "PDC102"]
        assert f.severity is Severity.ERROR
        assert "lock_a" in f.message and "lock_b" in f.message

    def test_select_restricts_to_prefix(self):
        src = fixture("racy_counter_twin").source
        assert analyze_source(src, select=["PDC2"]) == []
        assert {f.rule for f in analyze_source(src, select=["PDC101"])} == {
            "PDC101"
        }

    def test_suppression_comment_silences_the_line(self):
        assert analyze_source(fixture("suppressed_racy_counter").source) == []

    def test_rlock_relock_is_allowed(self):
        """PDC208 only fires on non-reentrant locks."""
        src = fixture("relock_self_deadlock").source.replace(
            "threading.Lock()", "threading.RLock()"
        )
        assert not any(f.rule == "PDC208" for f in analyze_source(src))

    def test_str_join_is_not_thread_join(self):
        src = (
            "import threading\n"
            "m = threading.Lock()\n"
            "def render(parts):\n"
            "    with m:\n"
            "        return ', '.join(parts)\n"
        )
        assert not any(f.rule == "PDC206" for f in analyze_source(src))

    def test_acquire_with_try_finally_is_clean(self):
        src = (
            "import threading\n"
            "m = threading.Lock()\n"
            "state = []\n"
            "def update(x):\n"
            "    m.acquire()\n"
            "    try:\n"
            "        state.append(x)\n"
            "    finally:\n"
            "        m.release()\n"
        )
        assert not any(f.rule == "PDC201" for f in analyze_source(src))

    def test_registry_rejects_duplicate_ids(self):
        from repro.analysis.rules import Rule, RuleRegistry

        class Dup(Rule):
            id = "PDC999"
            summary = "x"

            def check(self, ctx):
                return []

        reg = RuleRegistry()
        reg.register(Dup)
        with pytest.raises(ValueError):
            reg.register(Dup)

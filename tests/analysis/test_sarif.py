"""SARIF 2.1.0 output: the renderer and the pdc-lint CLI wiring."""

import json

from repro.analysis import render_sarif
from repro.analysis.__main__ import main
from repro.analysis.report import Finding, Severity

BARE_ACQUIRE = """\
import threading

lock = threading.Lock()

def touch():
    lock.acquire()
    return 1
"""


def _finding(rule="PDC101", severity=Severity.ERROR, line=3, col=4):
    return Finding(
        path="lab.py",
        line=line,
        col=col,
        rule=rule,
        message=f"{rule} fired",
        severity=severity,
        symbol="x",
    )


class TestRenderSarif:
    def test_envelope_and_driver(self):
        log = json.loads(render_sarif([_finding()], files=1))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "pdc-lint"
        assert [r["id"] for r in driver["rules"]] == ["PDC101"]

    def test_severity_maps_to_sarif_levels(self):
        findings = [
            _finding("PDC101", Severity.ERROR, line=1),
            _finding("PDC201", Severity.WARNING, line=2),
            _finding("PDC207", Severity.ADVICE, line=3),
        ]
        results = json.loads(render_sarif(findings))["runs"][0]["results"]
        assert [r["level"] for r in results] == ["error", "warning", "note"]

    def test_columns_are_one_based(self):
        # Finding columns are 0-based; SARIF regions are 1-based.
        result = json.loads(render_sarif([_finding(col=0)]))
        region = result["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startColumn"] == 1
        assert region["startLine"] == 3

    def test_line_zero_findings_stay_in_range(self):
        # Whole-file findings anchor at line 0; SARIF requires >= 1.
        result = json.loads(render_sarif([_finding(line=0)]))
        region = result["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startLine"] == 1

    def test_rules_metadata_is_used_when_given(self):
        log = json.loads(render_sarif(
            [_finding("PDC101")],
            rules=[("PDC101", "shared-write-race", "unsynchronized write")],
        ))
        rule = log["runs"][0]["tool"]["driver"]["rules"][0]
        assert rule["name"] == "shared-write-race"
        assert rule["shortDescription"]["text"] == "unsynchronized write"

    def test_errors_become_tool_notifications(self):
        log = json.loads(render_sarif([], errors=["boom.py: unreadable"]))
        invocation = log["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        notes = invocation["toolExecutionNotifications"]
        assert notes[0]["message"]["text"] == "boom.py: unreadable"

    def test_clean_run_is_successful_with_no_results(self):
        log = json.loads(render_sarif([], files=3, suppressed=2))
        run = log["runs"][0]
        assert run["results"] == []
        assert run["invocations"][0]["executionSuccessful"] is True
        assert run["properties"] == {"files": 3, "suppressed": 2}


class TestCliSarif:
    def test_pdc_lint_emits_a_valid_sarif_log(self, tmp_path, capsys):
        target = tmp_path / "lab.py"
        target.write_text(BARE_ACQUIRE)
        assert main([str(target), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "pdc-lint"
        assert {r["ruleId"] for r in run["results"]} == {"PDC201"}
        # The full static rule table rides along as driver metadata.
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"PDC101", "PDC201", "PDC209", "PDC210"} <= rule_ids

    def test_clean_file_exits_zero_with_empty_results(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main([str(target), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []


def _traced_finding():
    from repro.analysis.report import TraceStep

    return Finding(
        path="main.py",
        line=9,
        col=0,
        rule="PDC101",
        message="cross-module race on `shared.counter`",
        severity=Severity.ERROR,
        symbol="shared.counter",
        trace=(
            TraceStep("shared.py", 3, "`shared.counter` defined here"),
            TraceStep("main.py", 9, "`run` spawned as a thread here"),
            TraceStep("shared.py", 7, "write in `shared.bump` under no lock"),
        ),
    )


class TestSarifCodeFlows:
    def test_trace_becomes_related_locations(self):
        result = json.loads(render_sarif([_traced_finding()]))["runs"][0][
            "results"
        ][0]
        related = result["relatedLocations"]
        assert [r["physicalLocation"]["artifactLocation"]["uri"]
                for r in related] == ["shared.py", "main.py", "shared.py"]
        assert related[0]["message"]["text"] == (
            "`shared.counter` defined here"
        )

    def test_trace_becomes_one_ordered_thread_flow(self):
        result = json.loads(render_sarif([_traced_finding()]))["runs"][0][
            "results"
        ][0]
        (flow,) = result["codeFlows"]
        (thread,) = flow["threadFlows"]
        lines = [
            loc["location"]["physicalLocation"]["region"]["startLine"]
            for loc in thread["locations"]
        ]
        assert lines == [3, 9, 7]  # evidence order, not source order

    def test_untraced_findings_omit_the_flow_keys(self):
        result = json.loads(render_sarif([_finding()]))["runs"][0][
            "results"
        ][0]
        assert "codeFlows" not in result
        assert "relatedLocations" not in result


class TestFindingRoundTrip:
    def test_traced_finding_survives_as_dict_from_dict(self):
        f = _traced_finding()
        assert Finding.from_dict(f.as_dict()) == f
        assert Finding.from_dict(f.as_dict()).trace == f.trace

    def test_round_trip_survives_json(self):
        f = _traced_finding()
        thawed = Finding.from_dict(json.loads(json.dumps(f.as_dict())))
        assert thawed == f and thawed.trace == f.trace
        assert thawed.message == f.message
        assert thawed.severity is Severity.ERROR

    def test_untraced_finding_serializes_without_a_trace_key(self):
        payload = _finding().as_dict()
        assert "trace" not in payload
        assert Finding.from_dict(payload).trace == ()

"""The repo lints itself: ``pdc-lint src/repro`` must come back clean.

This is the issue's acceptance gate (and CI runs the same check): any
finding in the substrate is either a real concurrency bug to fix or a
documented limitation to suppress inline — never left dangling.
"""

import os

from repro.analysis import analyze_paths
from repro.analysis.report import parse_suppressions

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src", "repro")


class TestSelfLint:
    def test_src_repro_is_clean(self):
        result = analyze_paths([os.path.normpath(SRC)])
        assert result.errors == []
        assert result.findings == [], "\n".join(
            f"{f.location()}: {f.rule} {f.message}" for f in result.findings
        )
        assert result.exit_code == 0

    def test_the_walk_actually_found_the_tree(self):
        """Guard against a path typo making the clean run vacuous."""
        result = analyze_paths([os.path.normpath(SRC)])
        assert result.files > 50

    def test_suppressions_are_justified(self):
        """Every inline suppression in the tree carries a `--` reason."""
        bad = []
        for root, dirs, names in os.walk(os.path.normpath(SRC)):
            dirs[:] = [d for d in dirs if d != "__pycache__"]
            for name in names:
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                with open(path, "r", encoding="utf-8") as fh:
                    source = fh.read()
                lines = source.splitlines()
                for lineno in parse_suppressions(source):
                    if "--" not in lines[lineno - 1]:
                        bad.append(f"{path}:{lineno}")
        assert bad == []

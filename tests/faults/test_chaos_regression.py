"""The chaos regression suite: resilience properties under scripted faults.

Every scenario runs on a :class:`~repro.runtime.clock.VirtualClock` and is
parameterized over several seeds — locally the fixed trio ``{0, 1, 2}``,
in CI also the matrix seed from ``CHAOS_SEED``.  When ``CHAOS_TRACE_DIR``
is set, each digest scenario writes its canonical trace there so CI can
upload the artifacts.

The four properties (the issue's acceptance list):

a. elections re-elect after a leader crash and converge after a
   partition heals;
b. 2PC blocks under a coordinator crash, but participants holding a
   timeout policy abort cleanly when any peer can rule out COMMIT;
c. retry-with-backoff delivers through bursty loss within its budget;
d. same-seed fault runs are trace-digest-identical.
"""

import os
import pathlib

import pytest

from repro.dist.commit import Coordinator, Participant, cooperative_termination
from repro.dist.election import bully_election, ring_election
from repro.faults import (
    Crash,
    Delay,
    FaultPlan,
    MessageLoss,
    Partition,
    Retry,
    RetryBudgetExceeded,
    Timeout,
    Unavailable,
)
from repro.net.simnet import Address, Network
from repro.runtime import RunContext

SEEDS = sorted({0, 1, 2} | (
    {int(os.environ["CHAOS_SEED"])} if os.environ.get("CHAOS_SEED") else set()
))


def _dump_trace(ctx: RunContext, name: str, seed: int) -> None:
    """Write the canonical trace for CI artifact upload, when asked to."""
    trace_dir = os.environ.get("CHAOS_TRACE_DIR")
    if not trace_dir:
        return
    out = pathlib.Path(trace_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{name}-seed{seed}.json").write_bytes(ctx.tracer.canonical_bytes())


# -- (a) election under crash and partition ----------------------------------
@pytest.mark.parametrize("seed", SEEDS)
class TestElectionUnderFaults:
    def test_reelection_after_leader_crash(self, seed):
        ctx = RunContext.deterministic(seed=seed)
        ids = list(range(8))
        plan = FaultPlan(Crash(node="7", start=1.0), context=ctx)

        before = ring_election(
            ids, initiator=seed % 8,
            crashed={int(n) for n in plan.crashed_nodes()},
        )
        assert before.leader == 7

        ctx.clock.sleep(1.5)  # the leader dies
        crashed = {int(n) for n in plan.crashed_nodes()}
        assert crashed == {7}
        after = ring_election(ids, initiator=seed % 7, crashed=crashed)
        assert after.leader == 6
        # The bully agrees — re-election is algorithm-independent.
        assert bully_election(ids, seed % 7, crashed).leader == 6

    def test_partitioned_sides_diverge_then_converge_on_heal(self, seed):
        ctx = RunContext.deterministic(seed=seed)
        plan = FaultPlan(
            Partition(groups=(("0", "1", "2"), ("3", "4")), stop=4.0),
            context=ctx,
        )
        ids = list(range(5))

        # During the partition each side can only elect among itself.
        assert plan.partitioned("0", "4")
        majority = ring_election([0, 1, 2], initiator=0)
        minority = ring_election([3, 4], initiator=3)
        assert majority.leader == 2
        assert minority.leader == 4  # split brain: two leaders

        ctx.clock.sleep(4.0)  # heal
        assert not plan.partitioned("0", "4")
        merged = ring_election(ids, initiator=seed % 5)
        assert merged.leader == 4  # one cluster, one leader again


# -- (b) 2PC under coordinator crash ------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
class TestTwoPcUnderCoordinatorCrash:
    def test_all_prepared_cohort_blocks(self, seed):
        ctx = RunContext.deterministic(seed=seed)
        ps = [Participant(f"p{i}") for i in range(3)]
        outcome = Coordinator(ps, crash_after_prepare=True).run()
        assert outcome.coordinator_crashed
        assert outcome.blocked_participants == ["p0", "p1", "p2"]

        # Even after the timeout fires, a unanimously-PREPARED cohort
        # cannot rule out COMMIT: nobody is released.  The blocking
        # window is real.
        released = cooperative_termination(
            ps, Timeout(2.0, clock=ctx.clock)
        )
        assert released == []
        assert ctx.clock.now() >= 2.0  # the wait really happened
        assert [p.state.value for p in ps] == ["prepared"] * 3

    def test_timeout_policy_aborts_cleanly_when_abort_is_safe(self, seed):
        ctx = RunContext.deterministic(seed=seed)
        ps = [
            Participant("p0"),
            Participant("p1"),
            Participant("p2", will_vote_yes=False),  # the living witness
        ]
        outcome = Coordinator(ps, crash_after_prepare=True).run()
        assert outcome.coordinator_crashed
        assert not outcome.committed
        assert outcome.blocked_participants == ["p0", "p1"]

        released = cooperative_termination(
            ps, Timeout(1.0, clock=ctx.clock)
        )
        assert released == ["p0", "p1"]
        assert all(p.state.value == "aborted" for p in ps)
        assert ctx.clock.now() >= 1.0


# -- (c) retry through bursty loss --------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
class TestRetryThroughBurstyLoss:
    def test_retry_delivers_within_budget(self, seed):
        ctx = RunContext.deterministic(seed=seed)
        net = Network(context=ctx)
        net.attach_fault_plan(
            FaultPlan(MessageLoss(rate=0.3, burst=2))
        )
        box = net.bind_datagram(Address("srv", 1))
        src, dst = Address("cli", 9), Address("srv", 1)

        def send_once(payload):
            if not net.send_datagram(src, dst, payload):
                raise Unavailable("datagram lost")
            return True

        resilient = Retry(
            attempts=20, base_delay=0.05, backoff=1.5, context=ctx
        )(send_once)
        delivered = sum(bool(resilient(i)) for i in range(20))
        assert delivered == 20
        received = []
        while True:
            item = box.try_get()
            if item is None:
                break
            received.append(item[1])
        assert received == list(range(20))  # every payload, in order
        retries = ctx.registry.counter("faults.retries").value
        assert retries > 0  # the loss actually bit
        assert ctx.registry.counter("faults.giveups").value == 0

    def test_hopeless_loss_exhausts_budget(self, seed):
        ctx = RunContext.deterministic(seed=seed)
        net = Network(context=ctx)
        net.attach_fault_plan(FaultPlan(MessageLoss(rate=1.0)))
        net.bind_datagram(Address("srv", 1))

        def send_once():
            if not net.send_datagram(Address("cli", 9), Address("srv", 1), 0):
                raise Unavailable("datagram lost")

        with pytest.raises(RetryBudgetExceeded):
            Retry(attempts=4, base_delay=0.05, context=ctx)(send_once)()
        assert ctx.registry.counter("faults.giveups").value == 1


# -- (d) same-seed chaos runs are digest-identical ----------------------------
def _chaos_scenario(seed: int) -> RunContext:
    """A run exercising every fault type; returns its context."""
    ctx = RunContext.deterministic(seed=seed)
    net = Network(context=ctx)
    net.attach_fault_plan(FaultPlan(
        MessageLoss(rate=0.3, burst=2),
        Delay(seconds=0.01, jitter=0.02, src="cli"),
        Partition(groups=(("cli",), ("far",)), start=0.5, stop=1.5),
        Crash(node="flaky", start=1.0, restart_at=2.0),
    ))
    for port, host in ((1, "srv"), (2, "far"), (3, "flaky")):
        net.bind_datagram(Address(host, port))
    targets = [Address("srv", 1), Address("far", 2), Address("flaky", 3)]
    for i in range(40):
        net.send_datagram(Address("cli", 9), targets[i % 3], i)
        if i % 10 == 9:
            ctx.clock.sleep(0.25)
    return ctx


@pytest.mark.parametrize("seed", SEEDS)
class TestDeterministicChaos:
    def test_same_seed_same_digest(self, seed):
        a = _chaos_scenario(seed)
        b = _chaos_scenario(seed)
        assert a.tracer.digest() == b.tracer.digest()
        _dump_trace(a, "chaos", seed)

    def test_same_seed_same_metrics(self, seed):
        a = _chaos_scenario(seed).registry.snapshot()
        b = _chaos_scenario(seed).registry.snapshot()
        assert a == b


def test_different_seeds_differ():
    # Not a tautology: it proves the loss/jitter decisions actually come
    # from the seeded streams, not from something constant.
    assert _chaos_scenario(0).tracer.digest() != _chaos_scenario(1).tracer.digest()

"""Resilience policies on virtual time: timeout, retry, circuit breaker."""

import threading

import pytest

from repro.faults import (
    CircuitBreaker,
    CircuitOpen,
    Retry,
    RetryBudgetExceeded,
    Timeout,
    Unavailable,
)
from repro.runtime import RunContext, VirtualClock


class TestTimeout:
    def test_expires_on_virtual_clock(self):
        clock = VirtualClock()
        t = Timeout(2.0, clock=clock).start()
        assert not t.expired
        assert t.remaining() == 2.0
        clock.sleep(2.0)
        assert t.expired
        assert t.remaining() == 0.0

    def test_wait_advances_to_deadline(self):
        clock = VirtualClock()
        t = Timeout(3.0, clock=clock).start()
        clock.sleep(1.0)
        t.wait()
        assert clock.now() == 3.0

    def test_auto_arms_on_first_query(self):
        clock = VirtualClock()
        t = Timeout(1.0, clock=clock)
        assert not t.expired  # armed here
        clock.sleep(1.0)
        assert t.expired

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)


class TestRetry:
    def _flaky(self, failures, exc=Unavailable):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc("transient")
            return calls["n"]

        return fn, calls

    def test_recovers_within_attempts(self):
        ctx = RunContext.deterministic(seed=0)
        fn, calls = self._flaky(2)
        assert Retry(attempts=4, base_delay=0.1, context=ctx)(fn)() == 3
        assert calls["n"] == 3
        assert ctx.registry.counter("faults.retries").value == 2

    def test_backoff_advances_virtual_time_exponentially(self):
        ctx = RunContext.deterministic(seed=0)
        fn, _ = self._flaky(3)
        Retry(attempts=4, base_delay=0.1, backoff=2.0, context=ctx)(fn)()
        # Slept 0.1 + 0.2 + 0.4 before attempts 2..4.
        assert ctx.clock.now() == pytest.approx(0.7)

    def test_gives_up_with_budget_exceeded(self):
        ctx = RunContext.deterministic(seed=0)
        fn, calls = self._flaky(10)
        with pytest.raises(RetryBudgetExceeded) as info:
            Retry(attempts=3, base_delay=0.1, context=ctx)(fn)()
        assert calls["n"] == 3
        assert isinstance(info.value.__cause__, Unavailable)
        assert ctx.registry.counter("faults.giveups").value == 1

    def test_total_delay_budget_caps_before_attempts(self):
        ctx = RunContext.deterministic(seed=0)
        fn, calls = self._flaky(10)
        with pytest.raises(RetryBudgetExceeded):
            Retry(
                attempts=10, base_delay=1.0, backoff=2.0,
                max_total_delay=4.0, context=ctx,
            )(fn)()
        # Delays 1, 2 fit (3.0 total); the next 4.0 would blow the budget.
        assert calls["n"] == 3
        assert ctx.clock.now() == pytest.approx(3.0)

    def test_non_retryable_exception_propagates(self):
        ctx = RunContext.deterministic(seed=0)

        def broken():
            raise KeyError("logic bug, not an outage")

        with pytest.raises(KeyError):
            Retry(attempts=3, base_delay=0.0, context=ctx)(broken)()

    def test_jitter_is_seeded_and_deterministic(self):
        def elapsed(seed):
            ctx = RunContext.deterministic(seed=seed)
            fn, _ = self._flaky(3)
            Retry(
                attempts=5, base_delay=0.1, jitter=0.05, context=ctx
            )(fn)()
            return ctx.clock.now()

        assert elapsed(9) == elapsed(9)
        assert elapsed(9) > 0.7  # jitter added something

    def test_validation(self):
        with pytest.raises(ValueError):
            Retry(attempts=0)
        with pytest.raises(ValueError):
            Retry(backoff=0.5)
        with pytest.raises(ValueError):
            Retry(base_delay=-1)


class TestCircuitBreaker:
    def _dead(self):
        def fn():
            raise Unavailable("down")

        return fn

    def test_trips_after_threshold(self):
        ctx = RunContext.deterministic(seed=0)
        cb = CircuitBreaker(failure_threshold=3, reset_timeout=1.0, context=ctx)
        guarded = cb(self._dead())
        for _ in range(3):
            with pytest.raises(Unavailable):
                guarded()
        assert cb.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpen):
            guarded()  # fail-fast, no call to the dependency
        assert ctx.registry.counter("faults.breaker.trips").value == 1
        assert ctx.registry.gauge("faults.breaker.state").value == 1

    def test_half_open_probe_success_closes(self):
        ctx = RunContext.deterministic(seed=0)
        cb = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, context=ctx)
        state = {"up": False}

        def dep():
            if not state["up"]:
                raise Unavailable("down")
            return "value"

        guarded = cb(dep)
        with pytest.raises(Unavailable):
            guarded()
        assert cb.state == CircuitBreaker.OPEN
        ctx.clock.sleep(1.0)
        assert cb.state == CircuitBreaker.HALF_OPEN
        state["up"] = True
        assert guarded() == "value"  # the probe
        assert cb.state == CircuitBreaker.CLOSED
        assert ctx.registry.gauge("faults.breaker.state").value == 0

    def test_half_open_probe_failure_reopens(self):
        ctx = RunContext.deterministic(seed=0)
        cb = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, context=ctx)
        guarded = cb(self._dead())
        with pytest.raises(Unavailable):
            guarded()
        ctx.clock.sleep(1.0)
        with pytest.raises(Unavailable):
            guarded()  # probe admitted, fails
        assert cb.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpen):
            guarded()
        assert ctx.registry.counter("faults.breaker.trips").value == 2

    def test_success_resets_failure_streak(self):
        ctx = RunContext.deterministic(seed=0)
        cb = CircuitBreaker(failure_threshold=2, context=ctx)
        flip = {"fail": True}

        def dep():
            if flip["fail"]:
                raise Unavailable("down")
            return True

        guarded = cb(dep)
        with pytest.raises(Unavailable):
            guarded()
        flip["fail"] = False
        assert guarded()
        flip["fail"] = True
        with pytest.raises(Unavailable):
            guarded()  # streak restarted: still closed
        assert cb.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_concurrent_probe(self):
        # The half-open race: with a probe already in flight, a second
        # caller arriving before the first records its outcome must fail
        # fast with CircuitOpen, not become a second probe.  The
        # interleaving is forced with events, so the test is
        # deterministic: the first probe is provably inside the
        # dependency when the second call is attempted.
        ctx = RunContext.deterministic(seed=0)
        cb = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, context=ctx)
        entered = threading.Event()
        release = threading.Event()
        calls = {"n": 0}
        admitted = []
        rejected = []

        def dep():
            calls["n"] += 1
            entered.set()
            release.wait(timeout=5.0)
            return "recovered"

        guarded = cb(dep)
        with pytest.raises(Unavailable):
            cb(self._dead())()  # trip the breaker
        ctx.clock.sleep(1.0)
        assert cb.state == CircuitBreaker.HALF_OPEN

        def probe():
            try:
                admitted.append(guarded())
            except CircuitOpen:
                rejected.append(True)

        first = threading.Thread(target=probe)
        first.start()
        assert entered.wait(timeout=5.0)  # probe one is inside dep
        with pytest.raises(CircuitOpen):
            guarded()  # probe two: same half-open window, must be refused
        release.set()
        first.join(timeout=5.0)
        assert admitted == ["recovered"]
        assert not rejected
        assert calls["n"] == 1  # the dependency saw exactly one probe
        assert cb.state == CircuitBreaker.CLOSED

    def test_half_open_reprobes_after_failed_probe_window(self):
        # A failed probe reopens the circuit and clears the in-flight
        # flag; after the next reset window a fresh probe is admitted.
        ctx = RunContext.deterministic(seed=0)
        cb = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, context=ctx)
        state = {"up": False}

        def dep():
            if not state["up"]:
                raise Unavailable("down")
            return "value"

        guarded = cb(dep)
        with pytest.raises(Unavailable):
            guarded()
        ctx.clock.sleep(1.0)
        with pytest.raises(Unavailable):
            guarded()  # failed probe: reopens, must not wedge probing
        ctx.clock.sleep(1.0)
        state["up"] = True
        assert guarded() == "value"
        assert cb.state == CircuitBreaker.CLOSED

    def test_policies_compose(self):
        # Retry around a breaker: once the breaker opens, the retries see
        # CircuitOpen (an Unavailable) and the whole stack gives up fast.
        ctx = RunContext.deterministic(seed=0)
        cb = CircuitBreaker(failure_threshold=2, reset_timeout=60.0, context=ctx)
        calls = {"n": 0}

        def dep():
            calls["n"] += 1
            raise Unavailable("down")

        stack = Retry(attempts=5, base_delay=0.1, context=ctx)(cb(dep))
        with pytest.raises(RetryBudgetExceeded):
            stack()
        assert calls["n"] == 2  # breaker shielded attempts 3..5

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)

"""FaultPlan: spec validation, activity windows, query semantics."""

import pytest

from repro.faults import (
    Crash,
    Delay,
    FaultPlan,
    MessageLoss,
    Partition,
    Reorder,
    SlowNode,
)
from repro.runtime import RunContext


class TestSpecValidation:
    def test_loss_rate_range(self):
        with pytest.raises(ValueError):
            MessageLoss(rate=1.5)
        with pytest.raises(ValueError):
            MessageLoss(rate=-0.1)
        with pytest.raises(ValueError):
            MessageLoss(rate=float("nan"))

    def test_burst_must_be_positive(self):
        with pytest.raises(ValueError):
            MessageLoss(rate=0.5, burst=0)

    def test_delay_non_negative(self):
        with pytest.raises(ValueError):
            Delay(seconds=-1.0)
        with pytest.raises(ValueError):
            Delay(seconds=0.1, jitter=-0.5)

    def test_reorder_rate_range(self):
        with pytest.raises(ValueError):
            Reorder(rate=2.0)

    def test_partition_groups_disjoint(self):
        with pytest.raises(ValueError):
            Partition(groups=(("a", "b"), ("b", "c")))

    def test_crash_needs_node(self):
        with pytest.raises(ValueError):
            Crash()

    def test_crash_restart_after_start(self):
        with pytest.raises(ValueError):
            Crash(node="x", start=5.0, restart_at=1.0)

    def test_slow_node_penalty_non_negative(self):
        with pytest.raises(ValueError):
            SlowNode(node="x", penalty=-0.1)

    def test_plan_rejects_non_specs(self):
        with pytest.raises(TypeError):
            FaultPlan("not a spec")

    def test_one_crash_per_node(self):
        with pytest.raises(ValueError):
            FaultPlan(Crash(node="x"), Crash(node="x", start=3.0))


class TestWindows:
    def test_default_window_is_whole_run(self):
        spec = MessageLoss(rate=0.5)
        assert spec.active(0.0) and spec.active(1e9)

    def test_window_is_half_open(self):
        spec = Delay(seconds=0.1, start=1.0, stop=2.0)
        assert not spec.active(0.5)
        assert spec.active(1.0)
        assert spec.active(1.999)
        assert not spec.active(2.0)

    def test_crash_window(self):
        crash = Crash(node="x", start=1.0, restart_at=3.0)
        assert not crash.crashed(0.0)
        assert crash.crashed(1.0)
        assert crash.crashed(2.9)
        assert not crash.crashed(3.0)  # restarted

    def test_crash_without_restart_is_forever(self):
        crash = Crash(node="x", start=1.0)
        assert crash.crashed(1e12)


class TestBinding:
    def test_rebind_same_context_idempotent(self):
        ctx = RunContext.deterministic(seed=1)
        plan = FaultPlan(context=ctx)
        assert plan.bind(ctx) is plan

    def test_rebind_different_context_rejected(self):
        plan = FaultPlan(context=RunContext.deterministic(seed=1))
        with pytest.raises(ValueError):
            plan.bind(RunContext.deterministic(seed=2))

    def test_unbound_plan_self_binds_to_virtual_zero(self):
        plan = FaultPlan(Crash(node="x", start=1.0))
        assert plan.now() == 0.0
        assert not plan.is_crashed("x")
        plan.clock.sleep(1.5)
        assert plan.is_crashed("x")


class TestQueries:
    def test_partition_separates_only_named_groups(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(
            Partition(groups=(("a", "b"), ("c",))), context=ctx
        )
        assert plan.partitioned("a", "c")
        assert plan.partitioned("c", "b")
        assert not plan.partitioned("a", "b")  # same side
        assert not plan.partitioned("a", "zz")  # zz unnamed: unaffected

    def test_partition_heals_at_stop(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(
            Partition(groups=(("a",), ("b",)), stop=2.0), context=ctx
        )
        assert plan.partitioned("a", "b")
        ctx.clock.sleep(2.0)
        assert not plan.partitioned("a", "b")

    def test_drop_reason_priority_partition_first(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(
            Partition(groups=(("a",), ("b",))),
            MessageLoss(rate=1.0),
            context=ctx,
        )
        assert plan.drop_reason("a", "b") == "partition"
        assert plan.drop_reason("a", "c") == "loss"

    def test_crash_drops_datagrams(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(Crash(node="dead"), context=ctx)
        assert plan.drop_reason("a", "dead") == "crash"
        assert plan.drop_reason("dead", "a") == "crash"
        assert plan.drop_reason("a", "b") is None

    def test_loss_filters_by_flow(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(MessageLoss(rate=1.0, src="a", dst="b"), context=ctx)
        assert plan.drop_reason("a", "b") == "loss"
        assert plan.drop_reason("b", "a") is None

    def test_burst_forces_consecutive_drops(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(MessageLoss(rate=0.2, burst=4), context=ctx)
        fates = [plan.drop_reason("a", "b") for _ in range(300)]
        drops = [f == "loss" for f in fates]
        assert any(drops) and not all(drops)
        # Correlation: some run of >= burst consecutive drops exists, and
        # the overall drop fraction exceeds the per-datagram start rate.
        run = best = 0
        for d in drops:
            run = run + 1 if d else 0
            best = max(best, run)
        assert best >= 4
        assert sum(drops) / len(drops) > 0.2

    def test_burst_one_is_independent_loss(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(MessageLoss(rate=1.0, burst=1), context=ctx)
        assert plan.drop_reason("a", "b") == "loss"

    def test_delay_accumulates_specs_and_slow_nodes(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(
            Delay(seconds=0.25),
            SlowNode(node="slow", penalty=1.0),
            context=ctx,
        )
        assert plan.delay_for("a", "b") == 0.25
        assert plan.delay_for("a", "slow") == 1.25
        assert plan.delay_for("slow", "a") == 1.25

    def test_delay_jitter_is_seeded(self):
        def total(seed):
            ctx = RunContext.deterministic(seed=seed)
            plan = FaultPlan(Delay(seconds=0.1, jitter=0.2), context=ctx)
            return [plan.delay_for("a", "b") for _ in range(10)]

        assert total(5) == total(5)
        assert total(5) != total(6)

    def test_restart_at_lookup(self):
        plan = FaultPlan(Crash(node="x", start=1.0, restart_at=4.0))
        assert plan.restart_at("x") == 4.0
        assert plan.restart_at("y") is None

    def test_crashed_nodes_sorted(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(
            Crash(node="zeta"), Crash(node="alpha"), context=ctx
        )
        assert plan.crashed_nodes() == ["alpha", "zeta"]

    def test_describe_and_len(self):
        plan = FaultPlan(Crash(node="x"), Delay(seconds=0.1))
        assert len(plan) == 2
        assert len(plan.describe()) == 2
        assert "Crash" in plan.describe()[0]

    def test_drop_metrics_recorded(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(Partition(groups=(("a",), ("b",))), context=ctx)
        plan.drop_reason("a", "b")
        assert ctx.registry.counter("faults.drops.partition").value == 1

"""Injection hooks: the fabric, the RPC layer, and the SPMD runtime
actually obey an attached FaultPlan — and ignore an absent one."""

import pytest

from repro.faults import (
    Crash,
    Delay,
    FaultPlan,
    MessageLoss,
    NodeCrashed,
    Partition,
    PartitionedError,
    Reorder,
    Unavailable,
)
from repro.dist.middleware import RemoteError, RpcServer, rpc_proxy
from repro.mp.runtime import run_spmd
from repro.net.simnet import Address, Network
from repro.net.sockets import Connection, DatagramSocket, ServerSocket
from repro.runtime import RunContext


class TestDropRateValidation:
    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Network(drop_rate=float("nan"))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Network(drop_rate=1.0)
        with pytest.raises(ValueError):
            Network(drop_rate=-0.01)

    def test_valid_rates_accepted(self):
        assert Network(drop_rate=0.0).drop_rate == 0.0
        assert Network(drop_rate=0.999).drop_rate == 0.999


class TestNoPlanAttached:
    """Without a plan the fabric must behave exactly as before."""

    def test_datagrams_flow(self):
        net = Network()
        with DatagramSocket(net, Address("b", 1)) as rx:
            assert net.send_datagram(Address("a", 9), Address("b", 1), "hi")
            src, payload = rx.recvfrom(timeout=1.0)
            assert payload == "hi"

    def test_connections_flow(self):
        net = Network()
        with ServerSocket(net, Address("srv", 80)) as server:
            client = Connection.connect(net, Address("srv", 80))
            server_side = server.accept(timeout=1.0)
            client.send("ping")
            assert server_side.recv(timeout=1.0) == "ping"


class TestDatagramInjection:
    def _net(self, *specs, seed=0):
        ctx = RunContext.deterministic(seed=seed)
        net = Network(context=ctx)
        plan = net.attach_fault_plan(FaultPlan(*specs))
        return ctx, net, plan

    def test_partition_drops_then_heals(self):
        ctx, net, _plan = self._net(
            Partition(groups=(("a",), ("b",)), stop=5.0)
        )
        box = net.bind_datagram(Address("b", 1))
        assert not net.send_datagram(Address("a", 9), Address("b", 1), "x")
        assert box.try_get() is None
        ctx.clock.sleep(5.0)  # heal
        assert net.send_datagram(Address("a", 9), Address("b", 1), "x")
        assert box.try_get() is not None

    def test_crash_drops_both_directions(self):
        _ctx, net, _plan = self._net(Crash(node="dead"))
        net.bind_datagram(Address("dead", 1))
        box = net.bind_datagram(Address("live", 1))
        assert not net.send_datagram(Address("live", 2), Address("dead", 1), 1)
        assert not net.send_datagram(Address("dead", 2), Address("live", 1), 1)
        assert box.try_get() is None

    def test_total_loss_drops_everything(self):
        ctx, net, _plan = self._net(MessageLoss(rate=1.0))
        box = net.bind_datagram(Address("b", 1))
        for _ in range(5):
            assert not net.send_datagram(Address("a", 9), Address("b", 1), 0)
        assert box.try_get() is None
        assert ctx.registry.counter("faults.drops.loss").value == 5

    def test_delay_charges_virtual_time(self):
        ctx, net, _plan = self._net(Delay(seconds=0.5))
        net.bind_datagram(Address("b", 1))
        before = ctx.clock.now()
        assert net.send_datagram(Address("a", 9), Address("b", 1), 0)
        assert ctx.clock.now() == pytest.approx(before + 0.5)

    def test_reorder_swaps_adjacent_datagrams(self):
        # Only host "a" reorders: its datagram is held until the next one
        # to the same destination (from "c") flushes it — an observable
        # adjacent swap.
        _ctx, net, _plan = self._net(Reorder(rate=1.0, src="a"))
        box = net.bind_datagram(Address("b", 1))
        assert net.send_datagram(Address("a", 9), Address("b", 1), "first")
        assert box.try_get() is None  # held
        assert net.send_datagram(Address("c", 9), Address("b", 1), "second")
        first = box.try_get()
        second = box.try_get()
        assert first[1] == "second"
        assert second[1] == "first"

    def test_unbind_discards_held_datagram(self):
        _ctx, net, _plan = self._net(Reorder(rate=1.0))
        net.bind_datagram(Address("b", 1))
        net.send_datagram(Address("a", 9), Address("b", 1), "held")
        net.unbind_datagram(Address("b", 1))  # must not raise or leak


class TestConnectionInjection:
    def _net(self, *specs):
        ctx = RunContext.deterministic(seed=0)
        net = Network(context=ctx)
        net.attach_fault_plan(FaultPlan(*specs))
        return ctx, net

    def test_connect_across_partition_raises(self):
        _ctx, net = self._net(Partition(groups=(("client",), ("srv",))))
        with ServerSocket(net, Address("srv", 80)):
            with pytest.raises(PartitionedError):
                Connection.connect(net, Address("srv", 80), local_host="client")

    def test_send_across_partition_raises_after_heal_ok(self):
        ctx, net = self._net(
            Partition(groups=(("client",), ("srv",)), start=1.0, stop=2.0)
        )
        with ServerSocket(net, Address("srv", 80)) as server:
            client = Connection.connect(net, Address("srv", 80), local_host="client")
            server_side = server.accept(timeout=1.0)
            client.send("before")
            ctx.clock.sleep(1.0)  # partition starts
            with pytest.raises(PartitionedError):
                client.send("during")
            ctx.clock.sleep(1.0)  # heal
            client.send("after")
            assert server_side.recv(timeout=1.0) == "before"
            assert server_side.recv(timeout=1.0) == "after"

    def test_connect_to_crashed_host_raises(self):
        _ctx, net = self._net(Crash(node="srv"))
        with ServerSocket(net, Address("srv", 80)):
            with pytest.raises(NodeCrashed):
                Connection.connect(net, Address("srv", 80))

    def test_connections_bypass_message_loss(self):
        # The documented contract: loss specs touch datagrams only.
        _ctx, net = self._net(MessageLoss(rate=1.0))
        with ServerSocket(net, Address("srv", 80)) as server:
            client = Connection.connect(net, Address("srv", 80))
            server_side = server.accept(timeout=1.0)
            client.send("reliable")
            assert server_side.recv(timeout=1.0) == "reliable"


class _Counter:
    def __init__(self):
        self.n = 0

    def bump(self):
        self.n += 1
        return self.n

    def boom(self):
        raise ValueError("scripted failure")


class TestRpcInjection:
    def test_crash_makes_stub_raise_unavailable(self):
        net = Network()
        srv = RpcServer(net, Address("srv", 80), _Counter()).start()
        try:
            stub = rpc_proxy(net, Address("srv", 80), timeout=2.0)
            assert stub.bump() == 1
            srv.crash()
            with pytest.raises(Unavailable):
                stub.bump()
            with pytest.raises(Unavailable):
                rpc_proxy(net, Address("srv", 80))  # connect refused too
        finally:
            srv.stop()

    def test_restart_serves_again_with_surviving_state(self):
        net = Network()
        srv = RpcServer(net, Address("srv", 80), _Counter()).start()
        try:
            stub = rpc_proxy(net, Address("srv", 80), timeout=2.0)
            assert stub.bump() == 1
            srv.crash()
            srv.restart()
            stub2 = rpc_proxy(net, Address("srv", 80), timeout=2.0)
            # Same exported object: in-memory state survived (and the lab
            # discusses why real crashes would not be so kind).
            assert stub2.bump() == 2
        finally:
            srv.stop()

    def test_restart_requires_crash(self):
        net = Network()
        srv = RpcServer(net, Address("srv", 80), _Counter())
        with pytest.raises(RuntimeError):
            srv.restart()

    def test_remote_errors_still_marshalled(self):
        net = Network()
        with RpcServer(net, Address("srv", 80), _Counter()) as _srv:
            stub = rpc_proxy(net, Address("srv", 80), timeout=2.0)
            with pytest.raises(RemoteError):
                stub.boom()

    def test_plan_crash_fail_stops_server(self):
        ctx = RunContext(seed=0)
        net = Network(context=ctx)
        plan = FaultPlan(Crash(node="srv", start=1e9))
        net.attach_fault_plan(plan)
        srv = RpcServer(net, Address("srv", 80), _Counter(), context=ctx).start()
        try:
            stub = rpc_proxy(net, Address("srv", 80), timeout=2.0)
            assert stub.bump() == 1
        finally:
            srv.stop()


class TestSpmdInjection:
    def test_no_plan_results_unchanged(self):
        assert run_spmd(3, lambda comm: comm.rank, timeout=10.0) == [0, 1, 2]

    def test_rank_crash_yields_none_without_aborting(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(Crash(node="rank-2", start=0.0))

        def main(comm):
            if comm.rank == 2:
                comm.send("x", 0, tag=9)  # the crash point
            return comm.rank * 10

        results = run_spmd(
            3, main, context=ctx, fault_plan=plan, timeout=10.0
        )
        assert results == [0, 10, None]

    def test_rank_restart_reruns_main(self):
        ctx = RunContext.deterministic(seed=0)
        plan = FaultPlan(Crash(node="rank-1", start=0.0, restart_at=1.0))
        attempts = {"n": 0}

        def main(comm):
            if comm.rank == 1:
                attempts["n"] += 1
                comm.send("payload", 0, tag=0)
                return "recovered"
            return comm.recv(source=1, tag=0)

        results = run_spmd(
            2, main, context=ctx, fault_plan=plan, timeout=10.0
        )
        assert results == ["payload", "recovered"]
        assert attempts["n"] == 2  # crashed once, rerun once
        assert ctx.clock.now() >= 1.0  # slept to the restart time

    def test_unscripted_exception_still_aborts(self):
        from repro.mp.runtime import SpmdError

        def main(comm):
            if comm.rank == 0:
                raise ValueError("a real bug")
            return comm.rank

        with pytest.raises(SpmdError):
            run_spmd(2, main, timeout=10.0)

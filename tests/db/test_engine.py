"""Tests for the concurrent transaction engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    DeadlockPolicy,
    Op,
    Transaction,
    TransactionEngine,
    is_conflict_serializable,
)
from repro.db.engine import committed_projection
from repro.db.serializability import is_recoverable


def _deadlock_pair():
    t1 = Transaction(1, [Op.read(1, "x"), Op.write(1, "y")])
    t2 = Transaction(2, [Op.read(2, "y"), Op.write(2, "x")])
    return [t1, t2]


class TestBasicExecution:
    def test_single_transaction_commits(self):
        t = Transaction(1, [Op.read(1, "x"), Op.write(1, "x")])
        report = TransactionEngine([t]).run()
        assert report.committed == [1]
        assert report.aborts == 0

    def test_duplicate_tids_rejected(self):
        t = Transaction(1, [Op.read(1, "x")])
        with pytest.raises(ValueError):
            TransactionEngine([t, t])

    def test_non_conflicting_run_concurrently(self):
        t1 = Transaction(1, [Op.write(1, "a")])
        t2 = Transaction(2, [Op.write(2, "b")])
        report = TransactionEngine([t1, t2]).run()
        assert sorted(report.committed) == [1, 2]
        assert report.deadlocks == 0

    def test_history_records_commits(self):
        t = Transaction(1, [Op.write(1, "x")])
        report = TransactionEngine([t]).run()
        assert str(report.history) == "w1(x) c1"

    def test_explicit_turn_order(self):
        t1 = Transaction(1, [Op.write(1, "a")])
        t2 = Transaction(2, [Op.write(2, "b")])
        report = TransactionEngine([t1, t2]).run(turn_order=[2, 1, 2, 1])
        assert report.history.ops[0].txn == 2


class TestDeadlockHandling:
    @pytest.mark.parametrize("policy", list(DeadlockPolicy))
    def test_all_policies_complete_the_classic_deadlock(self, policy):
        engine = TransactionEngine(_deadlock_pair(), policy=policy)
        report = engine.run()
        assert sorted(report.committed) == [1, 2]
        assert report.aborts >= 1

    def test_detection_counts_deadlocks(self):
        report = TransactionEngine(
            _deadlock_pair(), policy=DeadlockPolicy.DETECTION
        ).run()
        assert report.deadlocks == 1

    def test_victim_retries_and_commits(self):
        report = TransactionEngine(_deadlock_pair()).run()
        aborts_in_history = sum(
            1 for op in report.history.ops if op.kind.value == "a"
        )
        assert aborts_in_history == report.aborts


class TestSerializabilityGuarantee:
    def test_committed_projection_serializable(self):
        report = TransactionEngine(_deadlock_pair()).run()
        assert is_conflict_serializable(committed_projection(report.history))

    def test_history_recoverable(self):
        report = TransactionEngine(_deadlock_pair()).run()
        assert is_recoverable(committed_projection(report.history))

    def test_projection_drops_aborted_attempts(self):
        report = TransactionEngine(_deadlock_pair()).run()
        proj = committed_projection(report.history)
        assert all(op.kind.value != "a" for op in proj.ops)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from(list(DeadlockPolicy)),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_strict_2pl_always_serializable(self, seed, policy):
        rng = np.random.default_rng(seed)
        txns = []
        for i in range(1, 6):
            items = rng.choice(["a", "b", "c"], size=3)
            ops = [
                Op.read(i, str(it)) if j % 2 == 0 else Op.write(i, str(it))
                for j, it in enumerate(items)
            ]
            txns.append(Transaction(i, ops))
        report = TransactionEngine(txns, policy=policy).run()
        assert sorted(report.committed) == [1, 2, 3, 4, 5]
        assert is_conflict_serializable(committed_projection(report.history))


class TestSemantics:
    def _transfer(self, amount):
        def fn(snap):
            return {"A": snap["A"] - amount, "B": snap["B"] + amount}

        return fn

    def _transfer_txn(self, tid, amount):
        return Transaction(
            tid,
            [Op.read(tid, "A"), Op.read(tid, "B"),
             Op.write(tid, "A"), Op.write(tid, "B")],
            compute=self._transfer(amount),
        )

    def test_concurrent_transfers_conserve_money(self):
        engine = TransactionEngine(
            [self._transfer_txn(1, 10), self._transfer_txn(2, 5)],
            database={"A": 100, "B": 0},
        )
        report = engine.run()
        assert report.database["A"] + report.database["B"] == 100
        assert report.database["B"] == 15

    def test_rollback_restores_database(self):
        # The deadlock pair writes markers; after retries the final state
        # must reflect only committed work.
        report = TransactionEngine(_deadlock_pair()).run()
        assert report.database["x"] == "T2"
        assert report.database["y"] == "T1"

    def test_default_write_marker(self):
        t = Transaction(1, [Op.write(1, "k")])
        report = TransactionEngine([t]).run()
        assert report.database["k"] == "T1"

    def test_abort_rate(self):
        report = TransactionEngine(_deadlock_pair()).run()
        assert report.abort_rate == pytest.approx(report.aborts / 2)

"""Tests for schedules and conflict-serializability."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Op,
    Schedule,
    Transaction,
    conflicts,
    is_conflict_serializable,
    precedence_graph,
    serial_order,
)
from repro.db.serializability import is_recoverable
from repro.db.transaction import OpKind


class TestScheduleParsing:
    def test_parse_roundtrip(self):
        text = "r1(x) w2(x) c1 a2"
        assert str(Schedule.parse(text)) == text

    def test_parse_kinds(self):
        s = Schedule.parse("r1(x) w1(y) c1")
        assert [op.kind for op in s.ops] == [OpKind.READ, OpKind.WRITE, OpKind.COMMIT]

    def test_transactions_in_order(self):
        s = Schedule.parse("r2(x) r1(x) r3(x)")
        assert s.transactions() == [2, 1, 3]

    def test_is_serial(self):
        assert Schedule.parse("r1(x) w1(x) c1 r2(x) c2").is_serial()
        assert not Schedule.parse("r1(x) r2(x) w1(x)").is_serial()

    def test_projected(self):
        s = Schedule.parse("r1(x) r2(y) w1(x)")
        assert [str(op) for op in s.projected(1)] == ["r1(x)", "w1(x)"]

    def test_serial_builder(self):
        t1 = Transaction(1, [Op.read(1, "x")])
        t2 = Transaction(2, [Op.write(2, "x")])
        s = Schedule.serial([t1, t2], [2, 1])
        assert str(s) == "w2(x) c2 r1(x) c1"

    def test_transaction_validates_ownership(self):
        with pytest.raises(ValueError):
            Transaction(1, [Op.read(2, "x")])

    def test_transaction_rejects_explicit_commit(self):
        with pytest.raises(ValueError):
            Transaction(1, [Op.commit(1)])

    def test_read_write_sets(self):
        t = Transaction(1, [Op.read(1, "x"), Op.write(1, "y"), Op.read(1, "x")])
        assert t.read_set() == ["x"]
        assert t.write_set() == ["y"]


class TestConflicts:
    def test_rw_conflict(self):
        s = Schedule.parse("r1(x) w2(x)")
        assert len(conflicts(s)) == 1

    def test_rr_no_conflict(self):
        assert conflicts(Schedule.parse("r1(x) r2(x)")) == []

    def test_different_items_no_conflict(self):
        assert conflicts(Schedule.parse("w1(x) w2(y)")) == []

    def test_same_txn_no_conflict(self):
        assert conflicts(Schedule.parse("r1(x) w1(x)")) == []

    def test_ww_conflict(self):
        assert len(conflicts(Schedule.parse("w1(x) w2(x)"))) == 1


class TestSerializability:
    def test_classic_nonserializable(self):
        # Lost update: r1 r2 w1 w2 on the same item.
        s = Schedule.parse("r1(x) r2(x) w1(x) w2(x) c1 c2")
        assert not is_conflict_serializable(s)
        assert serial_order(s) is None

    def test_serializable_interleaving(self):
        s = Schedule.parse("r1(x) w1(x) r2(x) w2(x) c1 c2")
        assert is_conflict_serializable(s)
        assert serial_order(s) == [1, 2]

    def test_serial_always_serializable(self):
        s = Schedule.parse("r1(x) w1(y) c1 r2(y) w2(x) c2")
        assert is_conflict_serializable(s)

    def test_equivalent_order_respects_conflicts(self):
        s = Schedule.parse("w2(x) r1(x) w1(y) c1 c2")
        assert serial_order(s) == [2, 1]

    def test_precedence_graph_nodes(self):
        s = Schedule.parse("r1(x) r2(y) r3(z)")
        g = precedence_graph(s)
        assert set(g.nodes) == {1, 2, 3}
        assert g.number_of_edges() == 0

    def test_three_transaction_cycle(self):
        s = Schedule.parse("w1(x) r2(x) w2(y) r3(y) w3(z) r1(z)")
        # Edges 1->2, 2->3, 3->1... wait: r1(z) after w3(z) gives 3->1.
        assert not is_conflict_serializable(s)

    def test_serial_order_deterministic_lowest_first(self):
        s = Schedule.parse("r1(a) r2(b) r3(c)")  # no conflicts: any order legal
        assert serial_order(s) == [1, 2, 3]


class TestRecoverability:
    def test_unrecoverable_dirty_read_commit_order(self):
        assert not is_recoverable(Schedule.parse("w1(x) r2(x) c2 c1"))

    def test_recoverable_when_writer_commits_first(self):
        assert is_recoverable(Schedule.parse("w1(x) r2(x) c1 c2"))

    def test_own_write_read_is_fine(self):
        assert is_recoverable(Schedule.parse("w1(x) r1(x) c1"))

    def test_no_commit_yet_is_recoverable_so_far(self):
        assert is_recoverable(Schedule.parse("w1(x) r2(x)"))


def _random_schedule_strategy():
    op = st.tuples(
        st.integers(1, 3),
        st.sampled_from(["r", "w"]),
        st.sampled_from(["x", "y"]),
    )
    return st.lists(op, min_size=1, max_size=8)


@given(_random_schedule_strategy())
@settings(max_examples=100, deadline=None)
def test_property_checker_matches_bruteforce(spec):
    """The precedence-graph test agrees with brute-force search over all
    serial orders (checking conflict-order equivalence)."""
    ops = [
        Op.read(t, item) if kind == "r" else Op.write(t, item)
        for t, kind, item in spec
    ]
    schedule = Schedule(ops)
    txns = schedule.transactions()

    def equivalent_to_some_serial() -> bool:
        pairs = conflicts(schedule)
        for perm in itertools.permutations(txns):
            position = {t: i for i, t in enumerate(perm)}
            if all(position[a.txn] < position[b.txn] for a, b in pairs):
                return True
        return False

    assert is_conflict_serializable(schedule) == equivalent_to_some_serial()

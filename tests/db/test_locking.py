"""Tests for the 2PL lock manager and deadlock policies."""

import pytest

from repro.db import DeadlockPolicy, LockManager, LockMode, TransactionAborted


class TestCompatibility:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        assert lm.acquire(1, "x", LockMode.S)
        assert lm.acquire(2, "x", LockMode.S)
        assert lm.holders_of("x") == {1, 2}

    def test_exclusive_blocks_shared(self):
        lm = LockManager()
        assert lm.acquire(1, "x", LockMode.X)
        assert not lm.acquire(2, "x", LockMode.S)

    def test_shared_blocks_exclusive(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.S)
        assert not lm.acquire(2, "x", LockMode.X)

    def test_reentrant(self):
        lm = LockManager()
        assert lm.acquire(1, "x", LockMode.X)
        assert lm.acquire(1, "x", LockMode.X)

    def test_sole_holder_upgrade(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.S)
        assert lm.acquire(1, "x", LockMode.X)

    def test_shared_holder_cannot_upgrade_past_others(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.S)
        lm.acquire(2, "x", LockMode.S)
        assert not lm.acquire(1, "x", LockMode.X)


class TestFifoFairness:
    def test_no_barging_past_queued_waiter(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.X)
        assert not lm.acquire(2, "x", LockMode.X)  # T2 queues
        lm.release_all(1)
        # T3 arrives after T2; even though x is free, T2 is ahead.
        assert not lm.acquire(3, "x", LockMode.S)
        assert lm.acquire(2, "x", LockMode.X)

    def test_queue_cleared_on_release_all(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.X)
        lm.acquire(2, "x", LockMode.X)
        lm.release_all(2)  # T2 gives up its wait
        lm.release_all(1)
        assert lm.acquire(3, "x", LockMode.X)


class TestRelease:
    def test_release_all_frees_items(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.X)
        lm.acquire(1, "y", LockMode.S)
        freed = lm.release_all(1)
        assert set(freed) == {"x", "y"}
        assert lm.holders_of("x") == set()

    def test_partial_release_downgrades_mode(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.S)
        lm.acquire(2, "x", LockMode.S)
        lm.release_all(1)
        assert lm.holders_of("x") == {2}

    def test_locks_held_listing(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.S)
        lm.acquire(1, "b", LockMode.X)
        held = dict(lm.locks_held(1))
        assert held == {"a": LockMode.S, "b": LockMode.X}


class TestDetection:
    def test_cycle_aborts_youngest(self):
        lm = LockManager(DeadlockPolicy.DETECTION)
        lm.acquire(1, "x", LockMode.X)
        lm.acquire(2, "y", LockMode.X)
        assert not lm.acquire(1, "y", LockMode.X)
        with pytest.raises(TransactionAborted) as exc:
            lm.acquire(2, "x", LockMode.X)
        assert exc.value.txn == 2
        assert exc.value.reason == "deadlock-victim"
        assert lm.deadlocks_detected == 1

    def test_no_false_positive_on_simple_wait(self):
        lm = LockManager(DeadlockPolicy.DETECTION)
        lm.acquire(1, "x", LockMode.X)
        assert not lm.acquire(2, "x", LockMode.X)
        assert lm.deadlocks_detected == 0

    def test_victim_rotation_via_abort_counts(self):
        lm = LockManager(DeadlockPolicy.DETECTION)
        lm._abort_counts[2] = 5  # T2 already aborted a lot
        lm.acquire(1, "x", LockMode.X)
        lm.acquire(2, "y", LockMode.X)
        lm.acquire(2, "x", LockMode.X)
        with pytest.raises(TransactionAborted) as exc:
            lm.acquire(1, "y", LockMode.X)
        assert exc.value.txn == 1  # fewest prior aborts loses


class TestWaitDie:
    def test_younger_requester_dies(self):
        lm = LockManager(DeadlockPolicy.WAIT_DIE)
        lm.acquire(1, "x", LockMode.X)  # older holder
        with pytest.raises(TransactionAborted) as exc:
            lm.acquire(2, "x", LockMode.X)
        assert exc.value.txn == 2
        assert exc.value.reason == "wait-die"

    def test_older_requester_waits(self):
        lm = LockManager(DeadlockPolicy.WAIT_DIE)
        lm.acquire(2, "x", LockMode.X)  # younger holder
        assert lm.acquire(1, "x", LockMode.X) is False  # older waits
        assert lm.waiting(1) == ("x", LockMode.X)


class TestWoundWait:
    def test_older_wounds_younger_holder(self):
        lm = LockManager(DeadlockPolicy.WOUND_WAIT)
        lm.acquire(2, "x", LockMode.X)
        with pytest.raises(TransactionAborted) as exc:
            lm.acquire(1, "x", LockMode.X)
        assert exc.value.txns == [2]
        assert exc.value.reason == "wounded"

    def test_wounds_all_younger_shared_holders(self):
        lm = LockManager(DeadlockPolicy.WOUND_WAIT)
        lm.acquire(2, "x", LockMode.S)
        lm.acquire(3, "x", LockMode.S)
        with pytest.raises(TransactionAborted) as exc:
            lm.acquire(1, "x", LockMode.X)
        assert set(exc.value.txns) == {2, 3}

    def test_younger_requester_waits(self):
        lm = LockManager(DeadlockPolicy.WOUND_WAIT)
        lm.acquire(1, "x", LockMode.X)
        assert lm.acquire(2, "x", LockMode.X) is False

"""The fault-tolerance lab: the autograder scenario for repro.faults."""

from repro.faults import Retry, RetryBudgetExceeded, Unavailable
from repro.pedagogy import Autograder, fault_tolerance_lab, standard_labs


def _naive_unbounded(flaky):
    while True:
        try:
            return flaky()
        except Unavailable:
            continue


def _swallows_failure(flaky):
    for _ in range(8):
        try:
            return flaky()
        except Exception:
            pass
    return None  # gives up silently — the caller never learns


class TestFaultToleranceLab:
    def test_reference_earns_full_credit(self):
        lab = fault_tolerance_lab()
        assert lab.grade(lab.reference).fraction == 1.0

    def test_retry_policy_is_a_full_credit_submission(self):
        lab = fault_tolerance_lab()
        submission = lambda flaky: Retry(attempts=8, base_delay=0.0)(flaky)()  # noqa: E731
        assert lab.grade(submission).fraction == 1.0

    def test_unbounded_retry_gets_half_credit(self):
        # Recovers, but would hammer a dead dependency forever: the
        # checker's call budget catches the unbounded loop.
        result = fault_tolerance_lab().grade(_naive_unbounded)
        assert result.fraction == 0.5

    def test_swallowed_permanent_failure_gets_half_credit(self):
        result = fault_tolerance_lab().grade(_swallows_failure)
        assert result.fraction == 0.5

    def test_no_retry_scores_zero(self):
        result = fault_tolerance_lab().grade(lambda flaky: flaky())
        assert result.fraction == 0.0

    def test_wrong_value_scores_zero(self):
        result = fault_tolerance_lab().grade(lambda flaky: "wrong")
        assert result.fraction == 0.0

    def test_passing_raises_budget_error_counts_as_giving_up(self):
        # A submission built on the substrate's own Retry raises
        # RetryBudgetExceeded on the dead dependency — full credit.
        def submission(flaky):
            try:
                return Retry(attempts=4, base_delay=0.0)(flaky)()
            except RetryBudgetExceeded:
                raise

        assert fault_tolerance_lab().grade(submission).fraction == 1.0


class TestLabCatalogContract:
    def test_standard_labs_still_ten(self):
        # The ten-lab contract is load-bearing (outcome-coverage tests);
        # the fault-tolerance lab rides alongside, not inside.
        assert len(standard_labs()) == 10
        assert fault_tolerance_lab().exercise_id not in {
            lab.exercise_id for lab in standard_labs()
        }

    def test_gradable_through_autograder(self):
        lab = fault_tolerance_lab()
        grader = Autograder(standard_labs() + [lab])
        report = grader.grade(
            "student", {lab.exercise_id: lab.reference}
        )
        assert report.result_for(lab.exercise_id).fraction == 1.0

    def test_lab_metadata(self):
        lab = fault_tolerance_lab()
        assert lab.points == 15
        assert "repro.faults.policies" in lab.modules
        assert set(lab.outcome_numbers) == {1, 2}

"""Tests for exercises, autograding, labs, outcomes, and course builders."""

import pytest

from repro.core.abet import STUDENT_OUTCOMES
from repro.pedagogy import (
    Autograder,
    Exercise,
    OutcomeAssessment,
    build_lau_course,
    build_rit_course,
    standard_labs,
)
from repro.pedagogy.coursebuilder import Syllabus, SyllabusUnit


class TestExercise:
    def _simple(self, points=10.0):
        return Exercise(
            "add", "implement add", lambda fn: 1.0 if fn(2, 3) == 5 else 0.0,
            points=points, reference=lambda a, b: a + b,
        )

    def test_full_credit(self):
        result = self._simple().grade(lambda a, b: a + b)
        assert result.fraction == 1.0
        assert result.points_earned == 10.0
        assert result.passed

    def test_zero_credit(self):
        result = self._simple().grade(lambda a, b: a * b)
        assert result.fraction == 0.0
        assert not result.passed

    def test_exception_scores_zero_with_error(self):
        result = self._simple().grade(lambda a, b: 1 / 0)
        assert result.fraction == 0.0
        assert "ZeroDivisionError" in result.error

    def test_fraction_clamped(self):
        ex = Exercise("x", "p", lambda _s: 5.0, points=10)
        assert ex.grade(None).fraction == 1.0

    def test_points_validation(self):
        with pytest.raises(ValueError):
            Exercise("x", "p", lambda s: 1.0, points=0)


class TestAutograder:
    def test_duplicate_ids_rejected(self):
        ex = Exercise("same", "p", lambda s: 1.0)
        with pytest.raises(ValueError):
            Autograder([ex, ex])

    def test_missing_submission_scores_zero(self):
        grader = Autograder([Exercise("a", "p", lambda s: 1.0, points=5)])
        report = grader.grade("student", {})
        assert report.points_earned == 0
        assert report.result_for("a").error == "not submitted"

    def test_percentage_and_letter(self):
        exercises = [
            Exercise("a", "p", lambda s: float(s), points=50),
            Exercise("b", "p", lambda s: float(s), points=50),
        ]
        grader = Autograder(exercises)
        assert grader.grade("s", {"a": 1.0, "b": 1.0}).letter == "A"
        assert grader.grade("s", {"a": 1.0, "b": 0.7}).letter == "B"
        assert grader.grade("s", {"a": 1.0, "b": 0.0}).letter == "F"

    def test_cohort(self):
        grader = Autograder([Exercise("a", "p", lambda s: float(s), points=10)])
        reports = grader.grade_cohort({"x": {"a": 1.0}, "y": {"a": 0.5}})
        assert reports["x"].percentage == 100.0
        assert reports["y"].percentage == 50.0

    def test_result_lookup_missing(self):
        grader = Autograder([Exercise("a", "p", lambda s: 1.0)])
        report = grader.grade("s", {"a": None})
        with pytest.raises(KeyError):
            report.result_for("zzz")


class TestStandardLabs:
    def test_ten_labs(self):
        assert len(standard_labs()) == 10

    def test_all_references_earn_full_credit(self):
        """The instructor's pre-release check: every reference solution
        passes its own lab."""
        grader = Autograder(standard_labs())
        assert grader.sanity_check() == []

    def test_wrong_submissions_fail(self):
        labs = {e.exercise_id: e for e in standard_labs()}
        # Unsafe counter: a plain int container without locking would be
        # checked live; simplest failing case is a counter that ignores
        # increments.
        class BrokenCounter:
            value = 0

            def increment(self):
                pass

        assert labs["smp-atomic-counter"].grade(BrokenCounter).fraction == 0.0
        # Deadlock-prone fork order:
        assert labs["smp-lock-order"].grade(lambda l, r: (l, r)).fraction == 0.0
        # Wrong scheduler claim:
        assert labs["os-scheduler-pick"].grade("FCFS").fraction == 0.0
        # Serial (cop-out) schedule gets partial credit only:
        assert labs["db-serializable-interleaving"].grade(
            "r1(x) w1(x) c1 r2(x) c2"
        ).fraction == pytest.approx(0.3)
        # Non-serializable interleaving fails:
        assert labs["db-serializable-interleaving"].grade(
            "r1(x) r2(x) w1(x) w2(x) c1 c2"
        ).fraction == 0.0

    def test_uncoalesced_gpu_kernel_gets_half_credit(self):
        labs = {e.exercise_id: e for e in standard_labs()}

        def strided_double(ctx, data, out):
            i = ctx.global_id()
            n = out.size
            j = (i * 33) % n
            out[j] = 2.0 * data[j]
            return
            yield

        assert labs["gpu-coalesced-double"].grade(strided_double).fraction == 0.5

    def test_labs_tag_topics_and_outcomes(self):
        for lab in standard_labs():
            assert lab.topics
            assert lab.outcome_numbers


class TestOutcomeAssessment:
    def _reports(self):
        labs = standard_labs()
        grader = Autograder(labs)
        perfect = {e.exercise_id: e.reference for e in labs}
        empty = {}
        return labs, grader.grade_cohort({"ace": perfect, "ghost": empty})

    def test_attainment_rates(self):
        labs, reports = self._reports()
        assessment = OutcomeAssessment(labs, target_rate=0.7)
        results = assessment.assess(reports)
        for att in results.values():
            assert att.students_assessed == 2
            assert att.students_attained == 1
            assert att.rate == 0.5
            assert not att.met  # 0.5 < 0.7

    def test_outcome_metadata(self):
        labs, reports = self._reports()
        results = OutcomeAssessment(labs).assess(reports)
        assert set(results) <= {o.number for o in STUDENT_OUTCOMES}
        assert 2 in results  # every lab assesses SO2 or SO1


class TestCourseBuilders:
    def test_lau_part3_weight_is_sixty_percent(self):
        """§IV-A: the manycore part is 'roughly 60% of the course'."""
        lau = build_lau_course()
        part3 = next(u for u in lau.units if "Manycore" in u.title)
        assert part3.weight == pytest.approx(0.60)

    def test_lau_three_parts(self):
        assert len(build_lau_course().units) == 3

    def test_rit_five_units(self):
        assert len(build_rit_course().units) == 5

    def test_weights_sum_to_one(self):
        for syllabus in (build_lau_course(), build_rit_course()):
            assert sum(u.weight for u in syllabus.units) == pytest.approx(1.0)

    def test_exercises_resolvable_and_gradable(self):
        for syllabus in (build_lau_course(), build_rit_course()):
            grader = Autograder(syllabus.exercises())
            assert grader.sanity_check() == []

    def test_unit_lookup(self):
        lau = build_lau_course()
        assert "Manycore" in lau.unit_for("gpu-coalesced-double").title
        with pytest.raises(KeyError):
            lau.unit_for("no-such-lab")

    def test_syllabus_validation(self):
        labs = {e.exercise_id: e for e in standard_labs()}
        with pytest.raises(ValueError):
            Syllabus("bad", [SyllabusUnit("u", 0.5, [])], labs)
        with pytest.raises(KeyError):
            Syllabus("bad", [SyllabusUnit("u", 1.0, ["ghost-lab"])], labs)

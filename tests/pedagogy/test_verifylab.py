"""The model-checking lab and the autograder's verify gate.

The grading bar the lab teaches: a fix earns credit when the checker
*proves* it — every interleaving explored, none fails — not when one
lucky schedule passes.  A reachable failure scores zero and hands the
student a schedule token that replays their bug deterministically.
"""

import textwrap

from repro.pedagogy import Autograder, model_checking_lab
from repro.pedagogy.verifylab import RACY_TRANSFER_SOURCE


def _grade(submission_source, **grader_kw):
    lab = model_checking_lab()
    grader = Autograder([lab], **grader_kw)
    report = grader.grade("student", {lab.exercise_id: submission_source})
    return report, report.results[0]


class TestModelCheckingLab:
    def test_reference_fix_earns_full_credit(self):
        lab = model_checking_lab()
        assert Autograder([lab]).sanity_check() == []

    def test_buggy_handout_scores_zero(self):
        _, result = _grade(RACY_TRANSFER_SOURCE)
        assert result.fraction == 0.0
        assert not result.passed

    def test_bounded_but_unproved_fix_gets_half_credit(self):
        # Lock-protected polling "fix": every access is under the lock,
        # so no race is reachable — but the poll loop makes some
        # executions unboundedly long, so runs get truncated at the step
        # cap and the clean verdict is bounded, not proved.  Half
        # credit, by design.  (A *bare* spin flag would score zero: the
        # flag itself races.)
        spinny = textwrap.dedent(
            '''
            import threading

            balance_a = 100
            balance_b = 100
            turn = 0
            ledger_lock = threading.Lock()


            def move_ab() -> None:
                global balance_a, balance_b, turn
                while True:
                    with ledger_lock:
                        if turn == 0:
                            balance_a -= 10
                            balance_b += 10
                            turn = 1
                            return


            def move_ba() -> None:
                global balance_a, balance_b, turn
                while True:
                    with ledger_lock:
                        if turn == 1:
                            balance_b -= 10
                            balance_a += 10
                            turn = 0
                            return


            def main() -> int:
                first = threading.Thread(target=move_ab)
                second = threading.Thread(target=move_ba)
                first.start(); second.start()
                first.join(); second.join()
                return balance_a + balance_b
            '''
        ).lstrip()
        _, result = _grade(spinny)
        assert result.fraction == 0.5


class TestVerifyGate:
    def test_gate_zero_scores_reachable_failures_with_token(self):
        report, result = _grade(RACY_TRANSFER_SOURCE, verify_gate=True)
        assert result.fraction == 0.0
        assert result.error is not None
        assert "model checker found a reachable failure" in result.error
        assert "[replay v1:" in result.error
        lab_id = model_checking_lab().exercise_id
        assert report.verify_findings[lab_id]
        stats = report.verify_stats[lab_id]
        assert stats["schedules_explored"] >= 1
        assert stats["proved"] is True  # drained: failure is *proved* reachable
        assert any(t.startswith("v1:") for t in stats["tokens"].values())

    def test_gate_admits_the_reference_fix(self):
        lab = model_checking_lab()
        report, result = _grade(lab.reference, verify_gate=True)
        assert result.fraction == 1.0
        assert result.error is None
        assert report.verify_stats[lab.exercise_id]["proved"] is True

"""The autograder's PDC-Lint pre-check stage (and report lookups)."""

import pytest

from repro.pedagogy import Autograder, Exercise
from repro.smp.fixtures import fixture

RACY = fixture("racy_counter_twin").source
LOCKED = fixture("locked_counter_twin").source
SUPPRESSED = fixture("suppressed_racy_counter").source


def _source_exercise():
    """An exercise whose submission is source text; the checker accepts it."""
    return Exercise(
        "counter", "ship a thread-safe counter module",
        lambda src: 1.0 if "counter" in src else 0.0,
        points=10,
    )


class TestPrecheckFindings:
    def test_off_by_default(self):
        grader = Autograder([_source_exercise()])
        report = grader.grade("ada", {"counter": RACY})
        assert report.static_findings == {}
        assert report.result_for("counter").fraction == 1.0

    def test_findings_attached_without_gating(self):
        grader = Autograder([_source_exercise()], static_precheck=True)
        report = grader.grade("ada", {"counter": RACY})
        assert {f.rule for f in report.static_findings["counter"]} == {
            "PDC101"
        }
        # Advisory mode: flagged, but still graded on behavior.
        assert report.result_for("counter").fraction == 1.0

    def test_clean_submission_attaches_nothing(self):
        grader = Autograder([_source_exercise()], static_precheck=True)
        report = grader.grade("ada", {"counter": LOCKED})
        assert report.static_findings == {}

    def test_precheck_select_narrows_rules(self):
        grader = Autograder(
            [_source_exercise()],
            static_precheck=True,
            precheck_select=["PDC2"],
        )
        report = grader.grade("ada", {"counter": RACY})
        assert report.static_findings == {}  # PDC101 not selected

    def test_callable_submissions_are_inspected(self):
        def racy_increment(state={}):  # noqa: B006 - the defect under test
            state["n"] = state.get("n", 0) + 1

        ex = Exercise("inc", "p", lambda fn: 1.0, points=10)
        grader = Autograder([ex], static_precheck=True)
        report = grader.grade("ada", {"inc": racy_increment})
        # inspect.getsource recovered the def; no thread spawn in sight, so
        # no findings — the point is that source recovery did not blow up.
        assert report.result_for("inc").fraction == 1.0

    def test_sourceless_submissions_skip_the_precheck(self):
        ex = Exercise("b", "p", lambda fn: 1.0 if fn(1) else 0.0, points=10)
        grader = Autograder([ex], static_precheck=True, precheck_gate=True)
        report = grader.grade("ada", {"b": bool})  # a builtin: no source
        assert report.static_findings == {}
        assert report.result_for("b").fraction == 1.0


class TestPrecheckGate:
    def test_gate_zero_scores_flagged_submissions(self):
        grader = Autograder([_source_exercise()], precheck_gate=True)
        report = grader.grade("ada", {"counter": RACY})
        result = report.result_for("counter")
        assert result.fraction == 0.0
        assert "PDC101" in result.error
        assert "suppress" in result.error

    def test_gate_implies_precheck(self):
        grader = Autograder([_source_exercise()], precheck_gate=True)
        assert grader.static_precheck

    def test_justified_suppression_passes_the_gate(self):
        grader = Autograder([_source_exercise()], precheck_gate=True)
        report = grader.grade("ada", {"counter": SUPPRESSED})
        assert report.result_for("counter").fraction == 1.0
        assert report.static_findings == {}

    def test_unparsable_source_falls_through_to_the_checker(self):
        ex = Exercise("counter", "p", lambda src: 1.0, points=10)
        grader = Autograder([ex], precheck_gate=True)
        report = grader.grade("ada", {"counter": "def f(:\n"})
        # The pre-check cannot parse it, so the checker decides (here: 1.0).
        assert report.result_for("counter").fraction == 1.0


class TestResultLookup:
    def test_result_for_unknown_id_raises_helpfully(self):
        grader = Autograder([_source_exercise()])
        report = grader.grade("ada", {"counter": LOCKED})
        with pytest.raises(KeyError) as exc:
            report.result_for("countr")
        message = str(exc.value)
        assert "countr" in message
        assert "counter" in message  # the ids that do exist are named
        assert "ada" in message

    def test_result_for_empty_report_says_none(self):
        grader = Autograder([])
        report = grader.grade("ada", {})
        with pytest.raises(KeyError, match="none"):
            report.result_for("anything")

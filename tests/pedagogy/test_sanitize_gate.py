"""The autograder's PDC-San dynamic stage: observed races gate the grade."""

from repro.pedagogy import Autograder, Exercise
from repro.smp.fixtures import fixture

RACY = fixture("racy_counter_twin").source
LOCKED = fixture("locked_counter_twin").source
#: Statically suppressed, still dynamically racy — the teaching point.
SUPPRESSED = fixture("suppressed_racy_counter").source


def _source_exercise():
    return Exercise(
        "counter", "ship a thread-safe counter module",
        lambda src: 1.0 if "counter" in src else 0.0,
        points=10,
    )


class TestSanitizeFindings:
    def test_off_by_default(self):
        grader = Autograder([_source_exercise()])
        report = grader.grade("ada", {"counter": RACY})
        assert report.dynamic_findings == {}
        assert report.result_for("counter").fraction == 1.0

    def test_observed_race_attached_without_gating(self):
        grader = Autograder([_source_exercise()], sanitize=True)
        report = grader.grade("ada", {"counter": RACY})
        assert {f.rule for f in report.dynamic_findings["counter"]} == {
            "PDC301"
        }
        # Advisory mode: flagged, but still graded on behavior.
        assert report.result_for("counter").fraction == 1.0

    def test_clean_submission_attaches_nothing(self):
        grader = Autograder([_source_exercise()], sanitize=True)
        report = grader.grade("ada", {"counter": LOCKED})
        assert report.dynamic_findings == {}
        assert report.result_for("counter").fraction == 1.0


class TestSanitizeGate:
    def test_observed_race_scores_zero(self):
        grader = Autograder([_source_exercise()], sanitize_gate=True)
        report = grader.grade("ada", {"counter": RACY})
        result = report.result_for("counter")
        assert result.fraction == 0.0
        assert "sanitizer check failed" in result.error
        assert "PDC301" in result.error

    def test_gate_implies_the_sanitize_stage(self):
        grader = Autograder([_source_exercise()], sanitize_gate=True)
        assert grader.sanitize

    def test_clean_submission_passes_the_gate(self):
        grader = Autograder([_source_exercise()], sanitize_gate=True)
        report = grader.grade("ada", {"counter": LOCKED})
        assert report.result_for("counter").fraction == 1.0

    def test_static_suppression_does_not_pass_the_dynamic_gate(self):
        # `disable=PDC101` answers the lint; FastTrack still *observed*
        # the race, and the observation gates.
        static_gate = Autograder([_source_exercise()], precheck_gate=True)
        assert (
            static_gate.grade("ada", {"counter": SUPPRESSED})
            .result_for("counter").fraction == 1.0
        )
        dynamic_gate = Autograder([_source_exercise()], sanitize_gate=True)
        report = dynamic_gate.grade("ada", {"counter": SUPPRESSED})
        assert report.result_for("counter").fraction == 0.0
        assert "PDC301" in report.result_for("counter").error

    def test_sourceless_submissions_skip_the_stage(self):
        ex = Exercise("sum", "p", lambda v: 1.0 if v == 3 else 0.0, points=5)
        grader = Autograder([ex], sanitize_gate=True)
        report = grader.grade("ada", {"sum": 3})
        assert report.result_for("sum").fraction == 1.0
        assert report.dynamic_findings == {}

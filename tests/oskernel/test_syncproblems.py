"""Tests for the classic synchronization problems."""

import pytest

from repro.oskernel.syncproblems import (
    DiningPhilosophers,
    ProducerConsumer,
    ReadersWriters,
)


class TestProducerConsumer:
    def test_all_items_consumed_exactly_once(self):
        pc = ProducerConsumer(4)
        consumed = pc.run(producers=3, consumers=2, items_each=20)
        assert sorted(consumed) == sorted(pc.produced)
        assert len(consumed) == 60

    def test_buffer_never_exceeds_capacity(self):
        pc = ProducerConsumer(2)
        pc.run(producers=2, consumers=2, items_each=25)
        # The semaphore triple enforces the bound; buffer must be empty now.
        assert pc.buffer == []

    def test_single_producer_consumer(self):
        pc = ProducerConsumer(1)
        consumed = pc.run(producers=1, consumers=1, items_each=10)
        assert consumed == list(range(10))  # capacity 1 forces exact FIFO

    def test_uneven_split_rejected(self):
        pc = ProducerConsumer(4)
        with pytest.raises(ValueError):
            pc.run(producers=3, consumers=2, items_each=1)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ProducerConsumer(0)


class TestDiningPhilosophers:
    def test_naive_protocol_can_deadlock(self):
        report = DiningPhilosophers(5).analyze_naive()
        assert report.deadlock_possible
        assert any(len(c) == 5 for c in report.cycles)

    def test_ordered_protocol_cannot_deadlock(self):
        report = DiningPhilosophers(5).analyze_ordered()
        assert not report.deadlock_possible
        assert report.cycles == []

    def test_ordered_protocol_runs_to_completion(self):
        report = DiningPhilosophers(5).run_ordered(meals_each=15)
        assert report.meals == {p: 15 for p in range(5)}

    def test_two_philosophers(self):
        dp = DiningPhilosophers(2)
        assert dp.analyze_naive().deadlock_possible
        assert not dp.analyze_ordered().deadlock_possible

    def test_rejects_single_philosopher(self):
        with pytest.raises(ValueError):
            DiningPhilosophers(1)

    @pytest.mark.parametrize("n", [3, 4, 7])
    def test_scales_with_table_size(self, n):
        dp = DiningPhilosophers(n)
        assert dp.analyze_naive().deadlock_possible
        assert not dp.analyze_ordered().deadlock_possible


class TestReadersWriters:
    def test_writer_count_exact(self):
        rw = ReadersWriters()
        summary = rw.run(readers=4, writers=4, writes_each=25)
        assert summary["final_value"] == summary["expected_value"] == 100

    def test_reads_observe_monotonic_values(self):
        rw = ReadersWriters()
        rw.run(readers=4, writers=2, writes_each=20)
        assert all(0 <= v <= 40 for v in rw.read_values)

    def test_reader_concurrency_demonstrable(self):
        assert ReadersWriters().demonstrate_reader_concurrency(4) == 4

    def test_single_reader(self):
        assert ReadersWriters().demonstrate_reader_concurrency(1) == 1

"""Tests for multiprocessor scheduling policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oskernel.smp import SmpPolicy, simulate_smp, skewed_tasks


class TestGlobalQueue:
    def test_balanced_uniform_tasks(self):
        r = simulate_smp([1.0] * 16, 4, SmpPolicy.GLOBAL)
        assert r.makespan == 4.0
        assert r.imbalance == pytest.approx(1.0)

    def test_dequeue_overhead_charged(self):
        r = simulate_smp([1.0] * 8, 2, SmpPolicy.GLOBAL, global_queue_overhead=0.5)
        assert r.dequeue_overhead == pytest.approx(4.0)
        assert r.makespan == pytest.approx(6.0)

    def test_speedup_bounded_by_cpus(self):
        tasks = skewed_tasks(100, seed=0)
        r = simulate_smp(tasks, 8, SmpPolicy.GLOBAL)
        assert 1.0 <= r.speedup <= 8.0


class TestPartitioned:
    def test_round_robin_assignment(self):
        r = simulate_smp([3.0, 1.0, 3.0, 1.0], 2, SmpPolicy.PARTITIONED)
        assert r.busy_time == [6.0, 2.0]
        assert r.makespan == 6.0

    def test_skew_hurts_partitioned_most(self):
        tasks = skewed_tasks(200, seed=3, skew=3.0)
        part = simulate_smp(tasks, 8, SmpPolicy.PARTITIONED)
        glob = simulate_smp(tasks, 8, SmpPolicy.GLOBAL)
        assert part.makespan >= glob.makespan


class TestWorkStealing:
    def test_steals_recorded(self):
        # One CPU gets all the work via round-robin; others must steal.
        tasks = [5.0, 0.1, 0.1, 0.1] * 6
        r = simulate_smp(tasks, 4, SmpPolicy.WORK_STEALING)
        assert r.steals > 0

    def test_stealing_beats_partitioned_on_skew(self):
        tasks = skewed_tasks(200, seed=3, skew=3.0)
        part = simulate_smp(tasks, 8, SmpPolicy.PARTITIONED)
        steal = simulate_smp(tasks, 8, SmpPolicy.WORK_STEALING)
        assert steal.makespan <= part.makespan

    def test_steal_overhead_charged(self):
        tasks = [10.0] + [0.1] * 3
        r = simulate_smp(tasks, 4, SmpPolicy.WORK_STEALING, steal_overhead=1.0)
        assert r.dequeue_overhead == pytest.approx(r.steals * 1.0)

    def test_no_work_lost(self):
        tasks = skewed_tasks(50, seed=9)
        r = simulate_smp(tasks, 4, SmpPolicy.WORK_STEALING)
        assert sum(r.busy_time) == pytest.approx(sum(tasks))


class TestValidation:
    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError):
            simulate_smp([1.0], 0)

    def test_rejects_nonpositive_tasks(self):
        with pytest.raises(ValueError):
            simulate_smp([0.0], 2)

    def test_skewed_tasks_reproducible(self):
        assert skewed_tasks(10, seed=4) == skewed_tasks(10, seed=4)


@given(
    st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=8),
    st.sampled_from(list(SmpPolicy)),
)
@settings(max_examples=60, deadline=None)
def test_property_work_conserved_and_bounds(tasks, cpus, policy):
    r = simulate_smp(tasks, cpus, policy)
    total = sum(tasks)
    assert sum(r.busy_time) == pytest.approx(total)
    # Makespan at least the critical lower bounds:
    assert r.makespan >= max(tasks) - 1e-9
    assert r.makespan >= total / cpus - 1e-9
    assert r.imbalance >= 1.0 - 1e-9

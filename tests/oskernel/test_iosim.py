"""Tests for CPU/I-O burst scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oskernel import FCFS, MLFQ, RoundRobin, SRTF
from repro.oskernel.iosim import IoProcess, multiprogramming_curve, simulate_io


class TestIoProcess:
    def test_burst_totals(self):
        p = IoProcess(1, 0, [3, 5, 2])
        assert p.cpu_time == 5
        assert p.io_time == 5

    def test_even_length_rejected(self):
        with pytest.raises(ValueError):
            IoProcess(1, 0, [2, 3])

    def test_empty_and_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            IoProcess(1, 0, [])
        with pytest.raises(ValueError):
            IoProcess(1, 0, [2, 0, 2])


class TestSimulateIo:
    def test_cpu_only_process(self):
        metrics = simulate_io([IoProcess(1, 0, [5])], FCFS())
        assert metrics.makespan == 5
        assert metrics.cpu_utilization == 1.0
        assert metrics.processes[0].turnaround == 5

    def test_single_io_bound_job_idles_cpu(self):
        metrics = simulate_io([IoProcess(1, 0, [2, 8, 2])], FCFS())
        assert metrics.makespan == 12
        assert metrics.cpu_busy == 4
        assert metrics.cpu_utilization == pytest.approx(4 / 12)

    def test_overlap_raises_utilization(self):
        one = simulate_io([IoProcess(1, 0, [2, 8, 2])], FCFS())
        two = simulate_io(
            [IoProcess(1, 0, [2, 8, 2]), IoProcess(2, 0, [2, 8, 2])], FCFS()
        )
        assert two.cpu_utilization > one.cpu_utilization
        # The second job's CPU bursts fit entirely inside the first's
        # I/O window, so the makespan grows by only 2 ticks.
        assert two.makespan == 14

    def test_all_bursts_executed(self):
        jobs = [IoProcess(1, 0, [3, 2, 3]), IoProcess(2, 1, [1, 5, 1])]
        metrics = simulate_io(jobs, RoundRobin(2))
        assert metrics.cpu_busy == sum(p.cpu_time for p in metrics.processes)
        for p in metrics.processes:
            assert p.completion_time is not None
            assert p.turnaround >= p.cpu_time + p.io_time

    def test_inputs_not_mutated(self):
        job = IoProcess(1, 0, [2, 2, 2])
        simulate_io([job], FCFS())
        assert job.completion_time is None

    def test_late_arrival_idle_gap(self):
        metrics = simulate_io([IoProcess(1, 10, [3])], FCFS())
        assert metrics.makespan == 13
        assert metrics.processes[0].turnaround == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            simulate_io([], FCFS())

    @pytest.mark.parametrize("make_sched", [FCFS, SRTF, lambda: RoundRobin(2), MLFQ])
    def test_policies_all_complete(self, make_sched):
        jobs = [
            IoProcess(1, 0, [4, 3, 4]),
            IoProcess(2, 1, [1, 6, 1, 6, 1]),
            IoProcess(3, 2, [8]),
        ]
        metrics = simulate_io(jobs, make_sched())
        assert all(p.completion_time is not None for p in metrics.processes)
        assert metrics.cpu_busy == sum(p.cpu_time for p in metrics.processes)


class TestMultiprogrammingCurve:
    def test_saturation_at_io_cpu_ratio(self):
        """Utilization saturates at degree io/cpu + 1 — the lecture figure."""
        curve = multiprogramming_curve(
            [1, 2, 3, 4, 5, 6], RoundRobin, cpu_burst=2, io_burst=8
        )
        assert curve[1] < 0.3
        assert curve[5] == pytest.approx(1.0, abs=0.05)
        assert curve[6] == pytest.approx(1.0, abs=0.05)

    def test_monotone_nondecreasing_under_rr(self):
        """Round-robin de-phases identical jobs, giving the clean
        monotone curve (FCFS can phase-align identical jobs so that they
        all block at once — a real convoy effect the RR slice breaks)."""
        curve = multiprogramming_curve(
            [1, 2, 3, 4], RoundRobin, cpu_burst=3, io_burst=6
        )
        values = [curve[d] for d in (1, 2, 3, 4)]
        assert values == sorted(values)

    def test_fcfs_phase_convoy_can_dip(self):
        """The surprise worth teaching: non-preemptive FCFS on identical
        I/O-bound jobs can phase-lock and *lose* utilization at higher
        degree — time-slicing exists partly to prevent this."""
        curve = multiprogramming_curve(
            [3, 4], FCFS, cpu_burst=3, io_burst=6
        )
        assert curve[4] < curve[3]

    def test_cpu_bound_jobs_saturate_immediately(self):
        curve = multiprogramming_curve([1, 2], FCFS, cpu_burst=8, io_burst=1)
        assert curve[1] > 0.85


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_property_io_conservation(data):
    n = data.draw(st.integers(1, 4))
    jobs = []
    for i in range(n):
        cycles = data.draw(st.integers(0, 2))
        bursts = []
        for _ in range(cycles):
            bursts.extend([data.draw(st.integers(1, 4)), data.draw(st.integers(1, 4))])
        bursts.append(data.draw(st.integers(1, 4)))
        jobs.append(IoProcess(i + 1, data.draw(st.integers(0, 5)), bursts))
    metrics = simulate_io(jobs, RoundRobin(2))
    total_cpu = sum(p.cpu_time for p in metrics.processes)
    assert metrics.cpu_busy == total_cpu
    assert metrics.makespan >= total_cpu / 1  # single CPU lower bound... >=
    for p in metrics.processes:
        assert p.turnaround >= p.cpu_time + p.io_time

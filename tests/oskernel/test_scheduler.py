"""Tests for single-CPU scheduling policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oskernel import (
    FCFS,
    MLFQ,
    PriorityScheduler,
    Process,
    RoundRobin,
    SJF,
    SRTF,
    Workloads,
    simulate,
)
from repro.oskernel.scheduler import compare


class TestProcessModel:
    def test_metrics_derivation(self):
        p = Process(1, arrival=2, burst=5)
        p.start_time = 4
        p.completion_time = 10
        assert p.turnaround == 8
        assert p.waiting == 3
        assert p.response == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Process(1, arrival=0, burst=0)
        with pytest.raises(ValueError):
            Process(1, arrival=-1, burst=1)

    def test_reset_returns_fresh_copy(self):
        p = Process(1, 0, 5)
        p.remaining = 0
        fresh = p.reset()
        assert fresh.remaining == 5
        assert fresh is not p


class TestFcfs:
    def test_arrival_order(self):
        procs = [Process(1, 0, 3), Process(2, 1, 3), Process(3, 2, 3)]
        m = simulate(procs, FCFS())
        order = [pid for pid, _s, _e in m.gantt]
        assert order == [1, 2, 3]

    def test_convoy_effect(self):
        convoy = Workloads.convoy()
        fcfs = simulate(convoy, FCFS())
        sjf = simulate(convoy, SJF())
        assert fcfs.avg_waiting > 5 * sjf.avg_waiting

    def test_textbook_average_waiting(self):
        m = simulate(Workloads.textbook(), FCFS())
        assert m.avg_waiting == pytest.approx(7.6)

    def test_idle_gap_handled(self):
        procs = [Process(1, 0, 2), Process(2, 10, 2)]
        m = simulate(procs, FCFS())
        assert m.makespan == 12


class TestSjfSrtf:
    def test_sjf_nonpreemptive(self):
        # Long job arrives first and runs to completion even when a short
        # job arrives meanwhile.
        procs = [Process(1, 0, 10), Process(2, 1, 1)]
        m = simulate(procs, SJF())
        assert m.gantt[0][:1] == (1,)
        p2 = next(p for p in m.processes if p.pid == 2)
        assert p2.start_time == 10

    def test_srtf_preempts(self):
        procs = [Process(1, 0, 10), Process(2, 1, 1)]
        m = simulate(procs, SRTF())
        p2 = next(p for p in m.processes if p.pid == 2)
        assert p2.start_time == 1  # preempts the long job immediately

    def test_srtf_optimal_avg_waiting(self):
        """SRTF is provably optimal for mean waiting; no other policy here
        may beat it."""
        workload = Workloads.random(12, seed=5)
        results = compare(
            workload,
            [FCFS(), SJF(), SRTF(), RoundRobin(2), PriorityScheduler(), MLFQ()],
        )
        best = min(m.avg_waiting for m in results.values())
        assert results["SRTF"].avg_waiting == pytest.approx(best)


class TestRoundRobin:
    def test_quantum_slices(self):
        procs = [Process(1, 0, 4), Process(2, 0, 4)]
        m = simulate(procs, RoundRobin(2))
        order = [pid for pid, _s, _e in m.gantt]
        assert order == [1, 2, 1, 2]

    def test_rejects_zero_quantum(self):
        with pytest.raises(ValueError):
            RoundRobin(0)

    def test_large_quantum_degenerates_to_fcfs(self):
        workload = Workloads.random(8, seed=1)
        rr = simulate(workload, RoundRobin(10_000))
        fcfs = simulate(workload, FCFS())
        assert rr.avg_waiting == pytest.approx(fcfs.avg_waiting)

    def test_smaller_quantum_better_response_more_switches(self):
        workload = Workloads.random(10, seed=2)
        small = simulate(workload, RoundRobin(1))
        large = simulate(workload, RoundRobin(8))
        assert small.avg_response <= large.avg_response
        assert small.context_switches > large.context_switches


class TestPriority:
    def test_higher_priority_preempts(self):
        procs = [
            Process(1, 0, 10, priority=5),
            Process(2, 1, 2, priority=0),
        ]
        m = simulate(procs, PriorityScheduler())
        p2 = next(p for p in m.processes if p.pid == 2)
        assert p2.start_time == 1

    def test_aging_rescues_victim(self):
        workload = Workloads.starvation_prone(20)

        def victim_wait(metrics):
            return next(p for p in metrics.processes if p.pid == 999).waiting

        without = victim_wait(simulate(workload, PriorityScheduler()))
        with_aging = victim_wait(
            simulate(workload, PriorityScheduler(aging_every=2))
        )
        assert with_aging < without


class TestMlfq:
    def test_demotion_on_quantum_expiry(self):
        sched = MLFQ(quanta=(2, 4, 8))
        procs = [Process(1, 0, 20)]
        simulate(procs, sched)
        assert sched._level[1] == 2  # demoted to the bottom level

    def test_short_jobs_stay_on_top(self):
        sched = MLFQ(quanta=(2, 4, 8))
        procs = [Process(1, 0, 2)]
        simulate(procs, sched)
        assert sched._level.get(1, 0) == 0

    def test_interactive_beats_fcfs_response(self):
        workload = Workloads.random(12, seed=3)
        mlfq = simulate(workload, MLFQ())
        fcfs = simulate(workload, FCFS())
        assert mlfq.avg_response <= fcfs.avg_response

    def test_validates_quanta(self):
        with pytest.raises(ValueError):
            MLFQ(quanta=())
        with pytest.raises(ValueError):
            MLFQ(quanta=(0,))


class TestSimulatorInvariants:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            simulate([], FCFS())

    def test_inputs_not_mutated(self):
        procs = [Process(1, 0, 5)]
        simulate(procs, FCFS())
        assert procs[0].remaining == 5
        assert procs[0].completion_time is None

    def test_gantt_covers_all_bursts(self):
        workload = Workloads.random(10, seed=4)
        for sched in (FCFS(), SRTF(), RoundRobin(3), MLFQ()):
            m = simulate(workload, sched)
            run_time = sum(e - s for _pid, s, e in m.gantt)
            assert run_time == sum(p.burst for p in workload)

    def test_gantt_slices_do_not_overlap(self):
        m = simulate(Workloads.random(10, seed=6), SRTF())
        slices = sorted(m.gantt, key=lambda x: x[1])
        for (_p1, _s1, e1), (_p2, s2, _e2) in zip(slices, slices[1:]):
            assert e1 <= s2

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(1, 15), st.integers(0, 4)),
            min_size=1,
            max_size=12,
        ),
        st.sampled_from(["FCFS", "SJF", "SRTF", "RR", "PRIO", "MLFQ"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_conservation(self, specs, policy):
        procs = [
            Process(i + 1, arrival=a, burst=b, priority=pr)
            for i, (a, b, pr) in enumerate(specs)
        ]
        sched = {
            "FCFS": FCFS(), "SJF": SJF(), "SRTF": SRTF(),
            "RR": RoundRobin(2), "PRIO": PriorityScheduler(), "MLFQ": MLFQ(),
        }[policy]
        m = simulate(procs, sched)
        # Every process completes, exactly once, after its arrival.
        assert len(m.processes) == len(procs)
        for original, finished in zip(
            sorted(procs, key=lambda p: p.pid),
            sorted(m.processes, key=lambda p: p.pid),
        ):
            assert finished.completion_time is not None
            assert finished.completion_time >= original.arrival + original.burst
            assert finished.waiting >= 0
            assert finished.remaining == 0

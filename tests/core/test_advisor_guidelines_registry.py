"""Tests for the curriculum advisor and the guideline registry."""

import importlib

import pytest

from repro.core.advisor import advise
from repro.core.casestudies import lau_program
from repro.core.course import Course, Coverage, Depth
from repro.core.guidelines import GUIDELINES, pdc_unit_census
from repro.core.program import Program
from repro.core.taxonomy import CourseType, PdcTopic


def _skeleton(with_os_coverage: bool = False):
    os_cov = (
        [Coverage(PdcTopic.THREADS, Depth.WORKING),
         Coverage(PdcTopic.IPC, Depth.WORKING),
         Coverage(PdcTopic.ATOMICITY, Depth.WORKING)]
        if with_os_coverage
        else []
    )
    return Program(
        "Skeleton U — BS CS", "Skeleton U",
        courses=[
            Course("CS1", "Prog I", CourseType.INTRO_PROGRAMMING, 4.0, year=1),
            Course("CS2", "Prog II", CourseType.INTRO_PROGRAMMING, 4.0, year=1),
            Course("ARCH", "Architecture", CourseType.ARCHITECTURE, 3.0, year=2),
            Course("OS", "Operating Systems", CourseType.OPERATING_SYSTEMS,
                   3.0, year=3, coverage=os_cov),
            Course("DB", "Databases", CourseType.DATABASE, 3.0, year=3),
            Course("NET", "Networks", CourseType.NETWORKS, 3.0, year=3),
            Course("ALG", "Algorithms", CourseType.ALGORITHMS, 3.0, year=2),
            Course("SE", "Software Eng", CourseType.SOFTWARE_ENGINEERING, 3.0, year=3),
            Course("THY", "Theory", CourseType.ALGORITHMS, 3.0, year=3),
            Course("PL", "Prog Langs", CourseType.PROGRAMMING_LANGUAGES, 3.0, year=3),
            Course("CAP", "Capstone", CourseType.ALGORITHMS, 4.0, year=4),
            Course("CAP2", "Capstone II", CourseType.ALGORITHMS, 4.0, year=4),
        ],
    )


class TestAdvisor:
    def test_bare_program_gets_full_plan(self):
        report = advise(_skeleton())
        assert not report.already_compliant
        assert len(report.uncovered_topics) == 14
        assert report.suggest_dedicated_course
        assert len(report.recommendations) == 14

    def test_recommendations_target_table1_hosts(self):
        report = advise(_skeleton())
        by_topic = {r.topic: r for r in report.recommendations}
        assert by_topic[PdcTopic.FLYNN].target_course == "ARCH"
        assert by_topic[PdcTopic.TRANSACTIONS].target_course == "DB"
        assert by_topic[PdcTopic.CLIENT_SERVER].target_course == "NET"

    def test_all_recommendations_carry_lab_modules(self):
        report = advise(_skeleton())
        for rec in report.recommendations:
            assert rec.lab_modules
            for module in rec.lab_modules:
                importlib.import_module(module)

    def test_partial_coverage_smaller_plan(self):
        report = advise(_skeleton(with_os_coverage=True))
        assert report.already_compliant  # 3 topics is exposure
        assert PdcTopic.THREADS not in report.uncovered_topics
        assert len(report.uncovered_topics) == 11

    def test_case_study_needs_little_or_nothing(self):
        report = advise(lau_program())
        assert report.already_compliant
        assert report.uncovered_topics == []
        assert "nothing to do" in report.summary()

    def test_add_course_when_no_host_exists(self):
        program = Program(
            "No-Arch U", "N",
            courses=[
                Course("OS", "OS", CourseType.OPERATING_SYSTEMS, 40.0),
            ],
        )
        report = advise(program)
        by_topic = {r.topic: r for r in report.recommendations}
        flynn = by_topic[PdcTopic.FLYNN]  # only architecture hosts Flynn
        assert flynn.action == "add-course"
        assert flynn.course_type is CourseType.ARCHITECTURE

    def test_recommendation_str(self):
        report = advise(_skeleton())
        text = str(report.recommendations[0])
        assert "embed" in text or "add-course" in text

    def test_applying_the_plan_reaches_compliance(self):
        """Closing the loop: apply every embedding and re-check."""
        program = _skeleton()
        report = advise(program)
        additions = {}
        for rec in report.recommendations:
            if rec.action == "embed":
                additions.setdefault(rec.target_course, []).append(
                    Coverage(rec.topic, Depth.WORKING)
                )
        courses = []
        for course in program.courses:
            if course.code in additions:
                courses.append(
                    Course(course.code, course.title, course.course_type,
                           course.credits, course.required,
                           coverage=additions[course.code], year=course.year)
                )
            else:
                courses.append(course)
        fixed = Program(program.name, program.institution, courses=courses)
        assert advise(fixed).already_compliant


class TestGuidelineRegistry:
    def test_three_guidelines_registered(self):
        assert set(GUIDELINES) == {"cs2013", "ce2016", "se2014"}

    def test_census_counts(self):
        census = pdc_unit_census()
        assert census["cs2013"] == 5  # the five core PD units
        assert census["ce2016"] == 5  # Table II's five units
        assert census["se2014"] == 1  # construction technologies

    def test_metadata(self):
        assert GUIDELINES["cs2013"].year == 2013
        assert GUIDELINES["ce2016"].discipline == "CE"
        for g in GUIDELINES.values():
            assert g.pdc_core_units()

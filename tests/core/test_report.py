"""Tests for the table/figure renderers."""

import pytest

from repro.core.casestudies import case_study_programs
from repro.core.compliance import check_program
from repro.core.report import (
    render_case_studies,
    render_fig1,
    render_fig2,
    render_fig3,
    render_table1,
    render_table2,
    render_table3,
)
from repro.core.survey import analyze_survey, generate_survey


@pytest.fixture(scope="module")
def analysis():
    return analyze_survey(generate_survey())


class TestFig1:
    def test_lists_all_five_areas(self):
        text = render_fig1()
        assert "40 semester credit hours" in text
        for area in (
            "computer architecture and organization",
            "information management",
            "networking and communication",
            "operating systems",
            "parallel and distributed computing",
        ):
            assert area in text


class TestTable1:
    def test_all_topics_rendered(self):
        text = render_table1()
        assert "Programming with threads" in text
        assert "Flynn's taxonomy" in text
        assert text.count("\n") >= 16

    def test_x_mark_count_matches_paper(self):
        text = render_table1()
        data_lines = text.splitlines()[4:]
        # Cells render as centered single 'x' in a 7-wide field; counting
        # the padded pattern avoids the 'x' inside "Flynn's taxonomy".
        marks = sum(line.count("   x   ") for line in data_lines)
        assert marks == 29

    def test_column_headers(self):
        header = render_table1().splitlines()[2]
        for col in ("SysProg", "Arch", "OS", "DB", "Net"):
            assert col in header


class TestFig2(object):
    def test_all_topics_with_bars(self, analysis):
        text = render_fig2(analysis)
        assert "Parallelism and concurrency" in text
        assert "#" in text
        assert "(n=" in text

    def test_sorted_descending(self, analysis):
        text = render_fig2(analysis)
        lines = [l for l in text.splitlines() if "(n=" in l]
        weights = [float(l.split("#")[-1].split()[0]) for l in lines]
        assert weights == sorted(weights, reverse=True)

    def test_first_bar_is_parallelism_concurrency(self, analysis):
        lines = [l for l in render_fig2(analysis).splitlines() if "(n=" in l]
        assert lines[0].startswith("Parallelism and concurrency")


class TestFig3:
    def test_reports_dedicated_count(self, analysis):
        text = render_fig3(analysis)
        assert "dedicated parallel-programming course: 1 of 20" in text

    def test_percent_lines(self, analysis):
        text = render_fig3(analysis)
        assert "%" in text
        assert "Computer Organization/Architecture" in text


class TestTables2And3:
    def test_table2_rows(self):
        text = render_table2()
        for area in (
            "Computing Algorithms",
            "Architecture and Organization",
            "Systems Resource Management",
            "Software Design",
        ):
            assert area in text
        assert "Multi/Many-core architectures" in text
        assert "Distributed system architectures" in text

    def test_table3_rows(self):
        text = render_table3()
        assert "Computing Essentials" in text
        assert "Concurrency primitives" in text
        assert "application" in text


class TestCaseStudyReport:
    def test_three_verdicts(self):
        reports = [check_program(p) for p in case_study_programs()]
        text = render_case_studies(reports)
        assert text.count("COMPLIANT") == 3
        assert "Lebanese American University" in text
        assert "Rochester Institute of Technology" in text
        assert "American University in Cairo" in text

"""Tests for the §IV case studies and the compliance engine."""

import pytest

from repro.core.casestudies import (
    auc_program,
    case_study_programs,
    lau_program,
    rit_program,
)
from repro.core.compliance import Approach, check_program
from repro.core.course import Course, Coverage, Depth
from repro.core.knowledge import CognitiveLevel
from repro.core.program import Program
from repro.core.taxonomy import CderConcept, CourseType, PdcTopic


class TestLau:
    @pytest.fixture(scope="class")
    def report(self):
        return check_program(lau_program())

    def test_compliant_via_dedicated_course(self, report):
        assert report.compliant
        assert report.approach is Approach.DEDICATED_COURSE

    def test_dedicated_course_details(self):
        program = lau_program()
        course = program.course("CSC447")
        assert course.required
        assert course.is_dedicated_pdc
        # "design, analyze, and implement" outcome at application level:
        assert any(
            o.level is CognitiveLevel.APPLICATION for o in course.outcomes
        )
        # Part 3 manycore content: SIMD/SIMT at mastery.
        assert course.depth_of(PdcTopic.SIMD_VECTOR) is Depth.MASTERY

    def test_pdc_also_in_other_required_courses(self):
        """§IV-A: 'students explore PDC concepts in various required
        courses including operating systems, computer organization, and
        database management systems.'"""
        program = lau_program()
        for code in ("CSC326", "CSC320", "CSC375"):
            assert program.course(code).pdc_topics()

    def test_all_cder_concepts(self, report):
        assert report.concepts_complete

    def test_full_newhall_score(self, report):
        assert report.newhall.score == 4


class TestAuc:
    @pytest.fixture(scope="class")
    def report(self):
        return check_program(auc_program())

    def test_compliant_via_distributed_approach(self, report):
        """§IV-B: no dedicated required PDC course, yet compliant."""
        assert report.compliant
        assert report.approach is Approach.DISTRIBUTED

    def test_no_required_dedicated_course(self):
        assert not auc_program().has_dedicated_pdc_course(required_only=True)

    def test_distributed_systems_course_is_elective(self):
        course = auc_program().course("CSCE425")
        assert not course.required
        assert course.course_type is CourseType.DISTRIBUTED_SYSTEMS

    def test_tomasulo_gives_ilp_mastery(self):
        """§IV-B(2): speculative and non-speculative Tomasulo are taught
        in the architecture course."""
        arch = auc_program().course("CSCE321")
        assert arch.depth_of(PdcTopic.ILP) is Depth.MASTERY

    def test_os_course_substantial_depth(self):
        os_course = auc_program().course("CSCE345")
        assert os_course.depth_of(PdcTopic.THREADS) is Depth.MASTERY
        assert os_course.depth_of(PdcTopic.ATOMICITY) is Depth.MASTERY

    def test_early_exposure_in_fundamentals(self):
        """§IV-B(1): basic threads and client-server in the fundamentals
        sequence — the 'early maturity' approach."""
        assert auc_program().earliest_pdc_year() == 1


class TestRit:
    @pytest.fixture(scope="class")
    def report(self):
        return check_program(rit_program())

    def test_compliant_via_dedicated_breadth_course(self, report):
        assert report.compliant
        assert report.approach is Approach.DEDICATED_COURSE

    def test_cpds_course_covers_breadth(self):
        cpds = rit_program().course("CSCI251")
        topics = set(cpds.pdc_topics())
        assert {
            PdcTopic.THREADS,
            PdcTopic.CLIENT_SERVER,
            PdcTopic.MULTICORE,
        } <= topics
        assert len(cpds.outcomes) == 6  # the six listed outcomes

    def test_second_year_placement(self):
        assert rit_program().course("CSCI251").year == 2

    def test_os_and_networking_are_electives_post_change(self):
        """§IV-C: 'modified courses in operating systems and networking
        were created as electives'."""
        program = rit_program()
        assert not program.course("CSCI452").required
        assert not program.course("CSCI351").required

    def test_early_thread_coverage(self):
        """Threads start in CS2 (freshman year) and Mechanics of
        Programming covers pthreads in depth."""
        program = rit_program()
        assert program.course("CSCI142").depth_of(PdcTopic.THREADS) is Depth.WORKING
        assert program.course("CSCI243").depth_of(PdcTopic.THREADS) is Depth.MASTERY


class TestComplianceEngine:
    def test_three_case_studies_all_compliant(self):
        """The paper's central claim: three different programs, three
        compliant outcomes, two approaches."""
        reports = [check_program(p) for p in case_study_programs()]
        assert all(r.compliant for r in reports)
        approaches = [r.approach for r in reports]
        assert approaches.count(Approach.DEDICATED_COURSE) == 2
        assert approaches.count(Approach.DISTRIBUTED) == 1

    def test_insufficient_program_flagged(self):
        bare = Program(
            "Bare", "B",
            courses=[
                Course(f"C{i}", f"Course {i}", CourseType.ALGORITHMS, 4.0)
                for i in range(10)
            ] + [
                Course("ARCH", "Arch", CourseType.ARCHITECTURE, 3.0),
                Course("OS", "OS", CourseType.OPERATING_SYSTEMS, 3.0),
                Course("DB", "DB", CourseType.DATABASE, 3.0),
                Course("NET", "Net", CourseType.NETWORKS, 3.0),
            ],
        )
        report = check_program(bare)
        assert not report.compliant
        assert report.approach is Approach.INSUFFICIENT

    def test_two_topic_program_insufficient_approach(self):
        program = Program(
            "Thin", "T",
            courses=[
                Course("OS", "OS", CourseType.OPERATING_SYSTEMS, 40.0,
                       coverage=[Coverage(PdcTopic.THREADS, Depth.EXPOSURE),
                                 Coverage(PdcTopic.IPC, Depth.EXPOSURE)]),
                Course("ARCH", "Arch", CourseType.ARCHITECTURE, 3.0),
                Course("DB", "DB", CourseType.DATABASE, 3.0),
                Course("NET", "Net", CourseType.NETWORKS, 3.0),
            ],
        )
        report = check_program(program)
        assert report.approach is Approach.INSUFFICIENT

    def test_concept_coverage_reported(self):
        report = check_program(lau_program())
        assert set(report.concept_coverage) == set(CderConcept)

    def test_summary_text(self):
        summary = check_program(lau_program()).summary()
        assert "COMPLIANT" in summary
        assert "dedicated" in summary

    def test_total_weight_positive_for_real_programs(self):
        for program in case_study_programs():
            assert check_program(program).total_weight > 10

"""The streaming survey driver: chunking, sharding, metrics, tracing."""

import pytest

from repro.core.batch import SurveyAggregate
from repro.core.pipeline import (
    ChunkSpec,
    chunk_grid,
    shard_survey,
    stream_survey,
    synthesize_batch,
)
from repro.core.taxonomy import CourseType, PdcTopic
from repro.runtime import RunContext


class TestChunkGrid:
    def test_partition_covers_n(self):
        specs = chunk_grid(1000, 128, seed=1)
        assert sum(s.count for s in specs) == 1000
        assert specs[0].start == 0 and specs[-1].start == 896

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_grid(10, 0, seed=1)
        with pytest.raises(ValueError):
            chunk_grid(10, 4, seed=1, dedicated_index=10)
        with pytest.raises(ValueError):
            chunk_grid(-1, 4, seed=1)

    def test_n_zero(self):
        assert chunk_grid(0, 4, seed=1) == []
        assert stream_survey(0, chunk_size=4) == SurveyAggregate.empty()


class TestSynthesizeBatch:
    def test_chunk_rng_is_span_deterministic(self):
        a = synthesize_batch(ChunkSpec(64, 32, seed=9))
        b = synthesize_batch(ChunkSpec(64, 32, seed=9))
        assert SurveyAggregate.from_batch(a) == SurveyAggregate.from_batch(b)

    def test_dedicated_program_in_chunk(self):
        batch = synthesize_batch(ChunkSpec(10, 5, seed=9, dedicated_index=12))
        agg = SurveyAggregate.from_batch(batch)
        assert agg.dedicated_programs == 1
        # the dedicated program carries one extra course row
        assert batch.num_courses == 5 * 13 + 1

    def test_dedicated_program_outside_chunk(self):
        batch = synthesize_batch(ChunkSpec(0, 5, seed=9, dedicated_index=12))
        assert SurveyAggregate.from_batch(batch).dedicated_programs == 0
        assert batch.num_courses == 5 * 13


class TestStreamingEquivalence:
    def test_sequential_matches_sharded_process(self):
        seq = stream_survey(600, seed=5, chunk_size=64)
        par = shard_survey(600, seed=5, chunk_size=64, workers=4)
        assert seq == par

    def test_sequential_matches_sharded_mp(self):
        seq = stream_survey(600, seed=5, chunk_size=64)
        mp = shard_survey(600, seed=5, chunk_size=64, workers=4, backend="mp")
        assert seq == mp

    def test_chunk_size_does_not_leak_into_totals(self):
        """Different chunk sizes draw different program samples (the
        chunk span names the RNG stream) but identical survey *shape*
        invariants must hold for each."""
        for chunk_size in (1, 17, 1000):
            agg = stream_survey(100, seed=5, chunk_size=chunk_size)
            assert agg.num_programs == 100
            assert agg.dedicated_programs == 1

    def test_exactly_one_dedicated_program_at_scale(self):
        agg = stream_survey(5000, seed=2021, chunk_size=512)
        assert agg.num_programs == 5000
        assert agg.dedicated_programs == 1

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            shard_survey(10, workers=2, backend="gpu")
        with pytest.raises(ValueError):
            shard_survey(10, workers=0)


class TestFigureShapesAtScale:
    """Fig. 2 / Fig. 3 shapes survive the scale-up (the pipeline samples
    the same Table-I-calibrated incidence model as generate_survey)."""

    @pytest.fixture(scope="class")
    def analysis(self):
        return stream_survey(5000, seed=2021, chunk_size=512).to_analysis()

    def test_parallelism_concurrency_tops_fig2(self, analysis):
        assert analysis.top_topics(1) == [PdcTopic.PARALLELISM_CONCURRENCY]

    def test_arch_and_os_lead_fig3(self, analysis):
        top3 = analysis.top_course_types(3)
        assert CourseType.ARCHITECTURE in top3
        assert CourseType.OPERATING_SYSTEMS in top3

    def test_percentages_sum_to_100(self, analysis):
        assert sum(analysis.course_percentages.values()) == pytest.approx(100.0)

    def test_all_topics_reached(self, analysis):
        assert all(c > 0 for c in analysis.topic_counts.values())


class TestObservability:
    def test_metrics_recorded(self):
        ctx = RunContext.deterministic(seed=3)
        stream_survey(100, seed=3, chunk_size=16, context=ctx)
        snap = ctx.snapshot("survey")
        assert snap["survey.programs"] == 100
        assert snap["survey.chunks.merged"] == 7
        assert snap["survey.batch.peak_bytes"] > 0

    def test_sharded_metrics_recorded(self):
        ctx = RunContext.deterministic(seed=3)
        shard_survey(100, seed=3, chunk_size=16, workers=2, context=ctx)
        snap = ctx.snapshot("survey")
        assert snap["survey.programs"] == 100
        assert snap["survey.workers"] == 2

    def test_trace_digest_stable(self):
        digests = []
        for _ in range(2):
            ctx = RunContext.deterministic(seed=3)
            stream_survey(100, seed=3, chunk_size=16, context=ctx)
            digests.append(ctx.tracer.digest())
        assert digests[0] == digests[1]

    def test_trace_has_chunk_spans(self):
        ctx = RunContext.deterministic(seed=3)
        stream_survey(100, seed=3, chunk_size=50, context=ctx)
        names = [e.name for e in ctx.tracer.events()]
        assert "survey.stream" in names
        assert names.count("survey.chunk") >= 2  # B/E pairs per chunk

    def test_progress_callback(self):
        seen = []
        stream_survey(100, chunk_size=30, on_chunk=lambda d, t: seen.append((d, t)))
        assert seen == [(30, 100), (60, 100), (90, 100), (100, 100)]

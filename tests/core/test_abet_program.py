"""Tests for the ABET criteria, Course, and Program models."""

import pytest

from repro.core.abet import (
    CAC_CS_CURRICULUM_AREAS,
    STUDENT_OUTCOMES,
    CacCriteria,
    ExposureArea,
)
from repro.core.course import Course, Coverage, Depth
from repro.core.program import Program
from repro.core.taxonomy import CourseType, PdcTopic


def _base_courses(pdc: bool = True):
    """A minimal >= 40 credit-hour skeleton with all exposures."""
    coverage = [Coverage(PdcTopic.THREADS, Depth.WORKING)] if pdc else []
    return [
        Course("C1", "Programming I", CourseType.INTRO_PROGRAMMING, 4.0, year=1),
        Course("C2", "Programming II", CourseType.INTRO_PROGRAMMING, 4.0, year=1),
        Course("C3", "Architecture", CourseType.ARCHITECTURE, 3.0, year=2),
        Course("C4", "Operating Systems", CourseType.OPERATING_SYSTEMS, 3.0,
               year=3, coverage=coverage),
        Course("C5", "Databases", CourseType.DATABASE, 3.0, year=3),
        Course("C6", "Networks", CourseType.NETWORKS, 3.0, year=3),
        Course("C7", "Algorithms", CourseType.ALGORITHMS, 3.0, year=2),
        Course("C8", "Software Engineering", CourseType.SOFTWARE_ENGINEERING, 3.0, year=3),
        Course("C9", "Theory", CourseType.ALGORITHMS, 3.0, year=3),
        Course("C10", "PL", CourseType.PROGRAMMING_LANGUAGES, 3.0, year=3),
        Course("C11", "Capstone I", CourseType.ALGORITHMS, 4.0, year=4),
        Course("C12", "Capstone II", CourseType.ALGORITHMS, 4.0, year=4),
    ]


class TestCourse:
    def test_duplicate_topic_rejected(self):
        with pytest.raises(ValueError):
            Course("X", "t", CourseType.OPERATING_SYSTEMS,
                   coverage=[Coverage(PdcTopic.THREADS), Coverage(PdcTopic.THREADS)])

    def test_nonpositive_credits(self):
        with pytest.raises(ValueError):
            Course("X", "t", CourseType.ALGORITHMS, credits=0)

    def test_depth_lookup_and_weight(self):
        c = Course(
            "X", "t", CourseType.OPERATING_SYSTEMS,
            coverage=[
                Coverage(PdcTopic.THREADS, Depth.MASTERY),
                Coverage(PdcTopic.IPC, Depth.EXPOSURE),
            ],
        )
        assert c.depth_of(PdcTopic.THREADS) is Depth.MASTERY
        assert c.depth_of(PdcTopic.FLYNN) is None
        assert c.pdc_weight() == 4

    def test_dedicated_flag(self):
        c = Course("X", "Parallel", CourseType.PARALLEL_PROGRAMMING)
        assert c.is_dedicated_pdc

    def test_depth_weights_are_1_2_3(self):
        assert [int(d) for d in Depth] == [1, 2, 3]


class TestProgram:
    def test_duplicate_codes_rejected(self):
        c = Course("X", "t", CourseType.ALGORITHMS)
        with pytest.raises(ValueError):
            Program("p", "i", courses=[c, c])

    def test_required_vs_elective_split(self):
        courses = _base_courses() + [
            Course("E1", "Elective", CourseType.DISTRIBUTED_SYSTEMS, required=False)
        ]
        program = Program("p", "i", courses=courses)
        assert len(program.required_courses()) == 12
        assert len(program.elective_courses()) == 1

    def test_course_lookup(self):
        program = Program("p", "i", courses=_base_courses())
        assert program.course("C4").title == "Operating Systems"
        with pytest.raises(KeyError):
            program.course("ZZ")

    def test_topic_depths_required_only(self):
        courses = _base_courses() + [
            Course("E1", "Elective", CourseType.DISTRIBUTED_SYSTEMS, required=False,
                   coverage=[Coverage(PdcTopic.CLIENT_SERVER, Depth.MASTERY)])
        ]
        program = Program("p", "i", courses=courses)
        assert PdcTopic.CLIENT_SERVER not in program.topic_depths()
        assert PdcTopic.CLIENT_SERVER in program.topic_depths(required_only=False)

    def test_earliest_pdc_year(self):
        program = Program("p", "i", courses=_base_courses())
        assert program.earliest_pdc_year() == 3

    def test_earliest_pdc_year_none_without_coverage(self):
        program = Program("p", "i", courses=_base_courses(pdc=False))
        assert program.earliest_pdc_year() is None


class TestCacCriteria:
    def test_five_exposure_areas_in_order(self):
        assert [a.value for a in CAC_CS_CURRICULUM_AREAS] == [
            "computer architecture and organization",
            "information management",
            "networking and communication",
            "operating systems",
            "parallel and distributed computing",
        ]

    def test_six_student_outcomes(self):
        assert [o.number for o in STUDENT_OUTCOMES] == [1, 2, 3, 4, 5, 6]
        assert "Communicate effectively" in STUDENT_OUTCOMES[2].text

    def test_compliant_program_passes(self):
        program = Program("p", "i", courses=_base_courses())
        check = CacCriteria().check(program)
        assert check.satisfied
        assert check.missing() == []

    def test_missing_pdc_fails(self):
        program = Program("p", "i", courses=_base_courses(pdc=False))
        check = CacCriteria().check(program)
        assert not check.satisfied
        assert not check.pdc_exposed
        assert any("parallel and distributed" in m for m in check.missing())

    def test_hours_floor_enforced(self):
        few = _base_courses()[:5]
        program = Program("p", "i", courses=few)
        check = CacCriteria().check(program)
        assert not check.credit_hours_ok
        assert any("credit hours" in m for m in check.missing())

    def test_missing_exposure_area_detected(self):
        courses = [c for c in _base_courses() if c.course_type is not CourseType.DATABASE]
        courses.append(Course("C13", "Extra", CourseType.ALGORITHMS, 3.0))
        program = Program("p", "i", courses=courses)
        check = CacCriteria().check(program)
        assert not check.exposures[ExposureArea.INFORMATION_MANAGEMENT]

    def test_elective_pdc_does_not_count(self):
        courses = _base_courses(pdc=False) + [
            Course("E1", "Parallel", CourseType.PARALLEL_PROGRAMMING,
                   required=False,
                   coverage=[Coverage(PdcTopic.THREADS, Depth.MASTERY)])
        ]
        program = Program("p", "i", courses=courses)
        assert not CacCriteria().check(program).pdc_exposed

    def test_pdc_via_systems_programming_counts_for_os_exposure(self):
        courses = [
            c for c in _base_courses()
            if c.course_type is not CourseType.OPERATING_SYSTEMS
        ]
        courses.append(
            Course("S1", "Systems Programming", CourseType.SYSTEMS_PROGRAMMING,
                   3.0, coverage=[Coverage(PdcTopic.THREADS, Depth.WORKING)])
        )
        program = Program("p", "i", courses=courses)
        assert CacCriteria().check(program).exposures[ExposureArea.OPERATING_SYSTEMS]

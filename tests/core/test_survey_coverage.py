"""Tests for the coverage analysis and the §III survey (Figs. 2-3)."""

import numpy as np
import pytest

from repro.core.coverage import (
    CoverageMatrix,
    course_type_percentages,
    topic_program_counts,
    weighted_topic_scores,
)
from repro.core.course import Course, Coverage, Depth
from repro.core.program import Program
from repro.core.survey import SurveyAnalysis, analyze_survey, generate_survey
from repro.core.taxonomy import CourseType, PdcTopic


def _tiny_program():
    return Program(
        "Tiny", "T",
        courses=[
            Course("OS", "OS", CourseType.OPERATING_SYSTEMS,
                   coverage=[
                       Coverage(PdcTopic.THREADS, Depth.MASTERY),
                       Coverage(PdcTopic.IPC, Depth.EXPOSURE),
                   ]),
            Course("ARCH", "Arch", CourseType.ARCHITECTURE,
                   coverage=[Coverage(PdcTopic.THREADS, Depth.EXPOSURE)]),
            Course("MATH", "Math", CourseType.ALGORITHMS),
            Course("EL", "Elective", CourseType.NETWORKS, required=False,
                   coverage=[Coverage(PdcTopic.CLIENT_SERVER, Depth.MASTERY)]),
        ],
    )


class TestCoverageMatrix:
    def test_shape_and_contents(self):
        cm = CoverageMatrix.of(_tiny_program())
        assert cm.matrix.shape == (14, 3)  # required courses only
        assert cm.course_codes == ["OS", "ARCH", "MATH"]

    def test_topic_weights(self):
        weights = CoverageMatrix.of(_tiny_program()).topic_weights()
        assert weights[PdcTopic.THREADS] == 4.0  # 3 + 1
        assert weights[PdcTopic.IPC] == 1.0
        assert weights[PdcTopic.CLIENT_SERVER] == 0.0  # elective excluded

    def test_topic_course_counts_unweighted(self):
        counts = CoverageMatrix.of(_tiny_program()).topic_course_counts()
        assert counts[PdcTopic.THREADS] == 2
        assert counts[PdcTopic.IPC] == 1

    def test_covered_topics_and_courses(self):
        cm = CoverageMatrix.of(_tiny_program())
        assert set(cm.covered_topics()) == {PdcTopic.THREADS, PdcTopic.IPC}
        assert cm.pdc_courses() == ["OS", "ARCH"]

    def test_total_weight(self):
        assert CoverageMatrix.of(_tiny_program()).total_weight() == 5.0

    def test_weighted_vs_unweighted_aggregate(self):
        programs = [_tiny_program(), _tiny_program()]
        weighted = weighted_topic_scores(programs, weighted=True)
        unweighted = weighted_topic_scores(programs, weighted=False)
        assert weighted[PdcTopic.THREADS] == 8.0
        assert unweighted[PdcTopic.THREADS] == 4.0

    def test_topic_program_counts(self):
        counts = topic_program_counts([_tiny_program(), _tiny_program()])
        assert counts[PdcTopic.THREADS] == 2
        assert counts[PdcTopic.FLYNN] == 0

    def test_course_type_percentages_sum_to_100(self):
        pct = course_type_percentages([_tiny_program()])
        assert sum(pct.values()) == pytest.approx(100.0)
        assert pct[CourseType.OPERATING_SYSTEMS] == pytest.approx(50.0)

    def test_empty_percentages(self):
        bare = Program("b", "b", courses=[Course("X", "x", CourseType.ALGORITHMS)])
        assert course_type_percentages([bare]) == {}


class TestSurveyGeneration:
    def test_twenty_programs(self):
        assert len(generate_survey()) == 20

    def test_deterministic_for_seed(self):
        a = analyze_survey(generate_survey(seed=2021))
        b = analyze_survey(generate_survey(seed=2021))
        assert a.topic_weights == b.topic_weights

    def test_exactly_one_dedicated_course_program(self):
        """Paper §III: 'only one program had a dedicated parallel
        programming course'."""
        analysis = analyze_survey(generate_survey())
        assert analysis.dedicated_course_programs == 1

    def test_every_program_accreditable(self):
        from repro.core.compliance import check_program

        for program in generate_survey():
            assert check_program(program).compliant

    def test_dedicated_index_validated(self):
        with pytest.raises(ValueError):
            generate_survey(n=5, dedicated_index=7)

    def test_programs_have_distinct_names(self):
        names = [p.name for p in generate_survey()]
        assert len(set(names)) == 20


class TestSurveyAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self) -> SurveyAnalysis:
        return analyze_survey(generate_survey())

    def test_parallelism_concurrency_is_top_topic(self, analysis):
        """Fig. 2's shape: the topic marked in all five Table-I columns
        dominates the weighted sums."""
        assert analysis.top_topics(1) == [PdcTopic.PARALLELISM_CONCURRENCY]

    def test_all_topics_covered_somewhere(self, analysis):
        assert all(count > 0 for count in analysis.topic_counts.values())

    def test_architecture_and_os_lead_fig3(self, analysis):
        """Fig. 3's shape: OS/architecture are the main PDC carriers."""
        top3 = analysis.top_course_types(3)
        assert CourseType.ARCHITECTURE in top3
        assert CourseType.OPERATING_SYSTEMS in top3 or (
            CourseType.SYSTEMS_PROGRAMMING in top3
        )

    def test_dedicated_course_is_a_tiny_slice(self, analysis):
        pct = analysis.course_percentages
        assert pct[CourseType.PARALLEL_PROGRAMMING] < 5.0

    def test_percentages_sum_to_100(self, analysis):
        assert sum(analysis.course_percentages.values()) == pytest.approx(100.0)

    def test_weighted_scores_dominate_counts(self, analysis):
        for topic in PdcTopic:
            assert analysis.topic_weights[topic] >= analysis.topic_counts[topic]

    def test_analysis_runs_on_case_studies_too(self):
        """The same pipeline the paper applies to real programs."""
        from repro.core.casestudies import case_study_programs

        analysis = analyze_survey(case_study_programs())
        assert analysis.num_programs == 3
        assert analysis.dedicated_course_programs == 2  # LAU and RIT

"""Tests for the PDC taxonomy and the Table I mapping."""

import importlib

import pytest

from repro.core.mapping import SUBSTRATE_INDEX, TABLE_I, substrate_for, verify_substrates
from repro.core.taxonomy import (
    TOPIC_CONCEPTS,
    CderConcept,
    CourseType,
    PdcTopic,
    topics_for_concept,
)


class TestTaxonomy:
    def test_fourteen_topics(self):
        """Table I has exactly fourteen rows."""
        assert len(PdcTopic) == 14

    def test_topic_labels_match_paper_rows(self):
        assert PdcTopic.THREADS.label == "Programming with threads"
        assert PdcTopic.FLYNN.label == "Flynn's taxonomy"
        assert (
            PdcTopic.PERFORMANCE.label
            == "Performance measurement, speed-up, and scalability"
        )

    def test_five_table1_columns(self):
        table1_types = [ct for ct in CourseType if ct.in_table1]
        assert len(table1_types) == 5

    def test_dedicated_course_not_a_table1_column(self):
        assert not CourseType.PARALLEL_PROGRAMMING.in_table1

    def test_every_topic_has_cder_concepts(self):
        for topic in PdcTopic:
            assert TOPIC_CONCEPTS[topic], topic

    def test_all_three_concepts_used(self):
        for concept in CderConcept:
            assert topics_for_concept(concept)

    def test_client_server_is_distribution(self):
        assert CderConcept.DISTRIBUTION in TOPIC_CONCEPTS[PdcTopic.CLIENT_SERVER]


class TestTableI:
    def test_all_topics_mapped(self):
        assert set(TABLE_I) == set(PdcTopic)

    def test_parallelism_concurrency_in_all_five_columns(self):
        """The paper marks 'Parallelism and concurrency' in every column."""
        assert len(TABLE_I[PdcTopic.PARALLELISM_CONCURRENCY]) == 5

    def test_exact_paper_cells_spot_checks(self):
        assert TABLE_I[PdcTopic.TRANSACTIONS] == {CourseType.DATABASE}
        assert TABLE_I[PdcTopic.FLYNN] == {CourseType.ARCHITECTURE}
        assert TABLE_I[PdcTopic.ILP] == {CourseType.ARCHITECTURE}
        assert TABLE_I[PdcTopic.SIMD_VECTOR] == {CourseType.ARCHITECTURE}
        assert TABLE_I[PdcTopic.PERFORMANCE] == {CourseType.ARCHITECTURE}
        assert TABLE_I[PdcTopic.MULTICORE] == {CourseType.ARCHITECTURE}
        assert TABLE_I[PdcTopic.CLIENT_SERVER] == {
            CourseType.SYSTEMS_PROGRAMMING,
            CourseType.NETWORKS,
        }
        assert TABLE_I[PdcTopic.MEMORY_CACHING] == {
            CourseType.SYSTEMS_PROGRAMMING,
            CourseType.ARCHITECTURE,
            CourseType.OPERATING_SYSTEMS,
        }

    def test_threads_row(self):
        assert TABLE_I[PdcTopic.THREADS] == {
            CourseType.SYSTEMS_PROGRAMMING,
            CourseType.OPERATING_SYSTEMS,
            CourseType.NETWORKS,
        }

    def test_total_mark_count(self):
        """Table I contains 29 x-marks (3+1+5+2+3+2+1+1+3+1+1+1+2+3)."""
        assert sum(len(cols) for cols in TABLE_I.values()) == 29

    def test_only_table1_columns_used(self):
        for cols in TABLE_I.values():
            assert all(c.in_table1 for c in cols)

    def test_architecture_column_has_most_topics(self):
        by_column = {}
        for topic, cols in TABLE_I.items():
            for col in cols:
                by_column[col] = by_column.get(col, 0) + 1
        top = max(by_column.values())
        leaders = {c for c, n in by_column.items() if n == top}
        # Architecture and systems programming tie at 8 marks each.
        assert leaders == {
            CourseType.ARCHITECTURE,
            CourseType.SYSTEMS_PROGRAMMING,
        }


class TestSubstrateIndex:
    def test_every_topic_has_substrate(self):
        assert set(SUBSTRATE_INDEX) == set(PdcTopic)
        for modules in SUBSTRATE_INDEX.values():
            assert modules

    def test_every_module_importable(self):
        verified = verify_substrates()
        assert set(verified) == set(PdcTopic)

    def test_substrate_for_returns_copy(self):
        modules = substrate_for(PdcTopic.ATOMICITY)
        modules.append("fake")
        assert "fake" not in SUBSTRATE_INDEX[PdcTopic.ATOMICITY]

    @pytest.mark.parametrize("topic", list(PdcTopic))
    def test_modules_belong_to_repro(self, topic):
        for module in SUBSTRATE_INDEX[topic]:
            assert module.startswith("repro.")
            importlib.import_module(module)

"""The columnar refactor's equivalence invariant and merge law.

The legacy object path (per-program :class:`CoverageMatrix` loops) is
reimplemented here verbatim as the *reference*; the shipped
``analyze_survey`` now runs on :mod:`repro.core.batch` and must match it
exactly — counts are integers and depth weights are small integers whose
float64 sums are order-independent, so equality is exact, not
approximate.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.batch import ProgramBatch, SurveyAggregate, batch_programs
from repro.core.course import Course, Coverage, Depth
from repro.core.coverage import CoverageMatrix
from repro.core.program import Program
from repro.core.survey import SurveyAnalysis, analyze_survey, generate_survey
from repro.core.taxonomy import CourseType, PdcTopic
from repro.runtime import RunContext

_TOPICS = list(PdcTopic)


def reference_analysis(programs) -> SurveyAnalysis:
    """The pre-refactor object path, kept as the oracle."""
    totals = np.zeros(len(_TOPICS))
    counts = np.zeros(len(_TOPICS), dtype=int)
    for program in programs:
        cm = CoverageMatrix.of(program)
        totals += cm.matrix.sum(axis=1)
        counts += (cm.matrix.sum(axis=1) > 0).astype(int)
    type_counts = {}
    total = 0
    for program in programs:
        for course in program.required_courses():
            if course.pdc_topics():
                type_counts[course.course_type] = (
                    type_counts.get(course.course_type, 0) + 1
                )
                total += 1
    percentages = (
        {}
        if total == 0
        else {
            ct: 100.0 * n / total
            for ct, n in sorted(
                type_counts.items(), key=lambda kv: (-kv[1], kv[0].value)
            )
        }
    )
    return SurveyAnalysis(
        num_programs=len(programs),
        dedicated_course_programs=sum(
            1 for p in programs if p.has_dedicated_pdc_course()
        ),
        topic_counts={t: int(counts[i]) for i, t in enumerate(_TOPICS)},
        topic_weights={t: float(totals[i]) for i, t in enumerate(_TOPICS)},
        course_percentages=percentages,
    )


def _mixed_program(name="Mixed"):
    return Program(
        name, name,
        courses=[
            Course("OS", "OS", CourseType.OPERATING_SYSTEMS,
                   coverage=[
                       Coverage(PdcTopic.THREADS, Depth.MASTERY),
                       Coverage(PdcTopic.IPC, Depth.EXPOSURE),
                   ]),
            Course("ARCH", "Arch", CourseType.ARCHITECTURE,
                   coverage=[Coverage(PdcTopic.THREADS, Depth.EXPOSURE)]),
            Course("MATH", "Math", CourseType.ALGORITHMS),
            Course("EL", "Elective", CourseType.NETWORKS, required=False,
                   coverage=[Coverage(PdcTopic.CLIENT_SERVER, Depth.MASTERY)]),
        ],
    )


class TestProgramBatchEncoding:
    def test_shapes_and_offsets(self):
        batch = ProgramBatch.from_programs([_mixed_program(), _mixed_program("B")])
        assert batch.num_programs == 2
        assert batch.num_courses == 8  # electives stay encoded, masked later
        assert list(batch.program_offsets) == [0, 4, 8]
        assert batch.nbytes > 0

    def test_elective_masked_out_of_aggregates(self):
        agg = SurveyAggregate.of_programs([_mixed_program()])
        pos = _TOPICS.index(PdcTopic.CLIENT_SERVER)
        assert agg.topic_weights[pos] == 0.0
        assert agg.topic_counts[pos] == 0

    def test_empty_program_and_empty_list(self):
        empty_prog = Program("E", "E", courses=[])
        agg = SurveyAggregate.of_programs([empty_prog, _mixed_program()])
        assert agg.num_programs == 2
        assert agg.topic_counts[_TOPICS.index(PdcTopic.THREADS)] == 1
        assert SurveyAggregate.of_programs([]) == SurveyAggregate.empty()

    def test_offsets_validated(self):
        with pytest.raises(ValueError):
            ProgramBatch(
                depth=np.zeros((2, len(_TOPICS))),
                program_offsets=np.array([0, 1], dtype=np.int64),
                course_type=np.zeros(2, dtype=np.int16),
                credits=np.zeros(2),
                required=np.ones(2, dtype=bool),
            )


class TestEquivalenceInvariant:
    @pytest.mark.parametrize("seed", [3, 7, 21, 99, 2021])
    @pytest.mark.parametrize("n", [1, 20, 257])
    def test_batch_equals_object_path(self, seed, n):
        """Property-style seed matrix: batch path == object path,
        exactly, for every survey size and seed."""
        programs = generate_survey(n=n, seed=seed, dedicated_index=0)
        assert analyze_survey(programs) == reference_analysis(programs)

    def test_seed_survey_exact(self):
        programs = generate_survey(seed=2021)
        assert analyze_survey(programs) == reference_analysis(programs)

    def test_case_studies_unchanged(self):
        from repro.core.casestudies import case_study_programs

        programs = case_study_programs()
        assert analyze_survey(programs) == reference_analysis(programs)


class TestMergeLaw:
    def test_identity(self):
        agg = SurveyAggregate.of_programs(generate_survey(n=5, seed=7,
                                                          dedicated_index=0))
        empty = SurveyAggregate.empty()
        assert empty.merge(agg) == agg
        assert agg.merge(empty) == agg

    def test_associativity_and_commutativity(self):
        chunks = [
            SurveyAggregate.of_programs(
                generate_survey(n=4, seed=s, dedicated_index=0)
            )
            for s in (1, 2, 3)
        ]
        a, b, c = chunks
        assert a.merge(b).merge(c) == a.merge(b.merge(c))
        assert a.merge(b) == b.merge(a)

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 20, 64])
    def test_chunk_boundaries(self, chunk_size):
        """Aggregating chunk by chunk equals aggregating the whole list,
        at every chunk boundary including size-1 and oversize chunks."""
        programs = generate_survey(seed=2021)
        whole = SurveyAggregate.of_programs(programs)
        merged = SurveyAggregate.empty()
        for batch in batch_programs(programs, chunk_size):
            merged = merged.merge(SurveyAggregate.from_batch(batch))
        assert merged == whole
        assert merged.to_analysis() == whole.to_analysis()

    def test_empty_batch_merge(self):
        agg = SurveyAggregate.of_programs([_mixed_program()])
        assert agg.merge(SurveyAggregate.from_batch(ProgramBatch.empty())) == agg


def _survey_digest(programs) -> str:
    blob = json.dumps(
        [
            [p.name, p.institution, p.discipline, p.accredited_since,
             [[c.code, c.title, c.course_type.value, c.credits, c.required,
               c.year,
               [[cv.topic.name, int(cv.depth)] for cv in c.coverage]]
              for c in p.courses]]
            for p in programs
        ],
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


class TestRngRouting:
    def test_seed_2021_byte_identical_golden(self):
        """The default survey must stay byte-identical across the RNG
        refactor (golden digest captured on the pre-refactor code)."""
        assert _survey_digest(generate_survey(seed=2021)) == (
            "9e83da4f541b33bd3466d3ddebfbb8c7bbb1a10b1b9e431318d6bf89c28481a9"
        )

    def test_second_seed_byte_identical_golden(self):
        assert _survey_digest(
            generate_survey(n=5, seed=7, dedicated_index=0)
        ) == (
            "c2d8e3e9694b7d31b09dbcde5c84c571cec5cf0ba7d0793ad0b66b7348ebe65b"
        )

    def test_context_stream_is_deterministic(self):
        a = generate_survey(n=5, dedicated_index=0, context=RunContext(seed=5))
        b = generate_survey(n=5, dedicated_index=0, context=RunContext(seed=5))
        assert _survey_digest(a) == _survey_digest(b)

    def test_context_root_seed_matters(self):
        a = generate_survey(n=5, dedicated_index=0, context=RunContext(seed=5))
        b = generate_survey(n=5, dedicated_index=0, context=RunContext(seed=6))
        assert _survey_digest(a) != _survey_digest(b)

    def test_draws_come_from_named_stream(self):
        """Generation really reads the ``survey.programs`` stream:
        advancing that stream beforehand changes the output."""
        ctx = RunContext(seed=5)
        ctx.rng.stream("survey.programs").random()
        shifted = generate_survey(n=5, dedicated_index=0, context=ctx)
        fresh = generate_survey(n=5, dedicated_index=0, context=RunContext(seed=5))
        assert _survey_digest(shifted) != _survey_digest(fresh)

    def test_other_streams_do_not_interfere(self):
        ctx = RunContext(seed=5)
        ctx.rng.stream("net.drops").random()
        a = generate_survey(n=5, dedicated_index=0, context=ctx)
        b = generate_survey(n=5, dedicated_index=0, context=RunContext(seed=5))
        assert _survey_digest(a) == _survey_digest(b)

"""Tests for the CC2020 competency checker."""

import pytest

from repro.core.cc2020 import CC2020_PDC_COMPETENCIES
from repro.core.competency import check_syllabus
from repro.pedagogy import build_lau_course, build_rit_course
from repro.pedagogy.coursebuilder import Syllabus, SyllabusUnit
from repro.pedagogy.labs import standard_labs


class TestCheckSyllabus:
    def test_rit_breadth_course_evidences_all_six(self):
        """The breadth design's payoff: every CC2020 PDC competency has a
        supporting lab."""
        report = check_syllabus(build_rit_course())
        assert report.complete
        assert report.missing() == []

    def test_lau_course_misses_processes_only(self):
        """An honest finding: the dedicated parallel-programming course
        does not teach process scheduling — LAU's OS course does (paper
        §IV-A notes PDC also lives in other required courses)."""
        report = check_syllabus(build_lau_course())
        assert report.evidenced_count == 5
        assert report.missing() == ["Processes"]

    def test_every_competency_checked(self):
        report = check_syllabus(build_rit_course())
        names = {e.competency.name for e in report.evidence}
        assert names == {c.name for c in CC2020_PDC_COMPETENCIES}

    def test_supporting_labs_named(self):
        report = check_syllabus(build_rit_course())
        by_name = {e.competency.name: e for e in report.evidence}
        queues = by_name["Properly synchronized queues"]
        assert "smp-bounded-buffer" in queues.supporting_labs
        dnc = by_name["Parallel divide-and-conquer algorithm"]
        assert "algo-work-span" in dnc.supporting_labs

    def test_empty_syllabus_evidences_nothing(self):
        labs = {e.exercise_id: e for e in standard_labs()}
        empty = Syllabus(
            "Empty", [SyllabusUnit("u", 1.0, ["net-kv-protocol"])], labs
        )
        report = check_syllabus(empty)
        assert report.evidenced_count == 0

    def test_evidence_str(self):
        report = check_syllabus(build_rit_course())
        text = str(report.evidence[0])
        assert "evidenced" in text

    def test_sibling_modules_do_not_match(self):
        """A scheduler lab must not evidence a sorting competency."""
        from repro.core.competency import _modules_match

        assert not _modules_match(
            "repro.algorithms.sorting", ["repro.algorithms.dag"]
        )
        assert _modules_match("repro.smp.racedetect", ["repro.smp"])
        assert _modules_match("repro.smp", ["repro.smp.racedetect"])
        assert _modules_match("repro.smp.atomics", ["repro.smp.atomics"])

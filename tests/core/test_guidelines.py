"""Tests for the CS2013/CC2020/CE2016/SE2014 encodings (Tables II & III)."""

import importlib

import pytest

from repro.core.cc2020 import CC2020_PDC_COMPETENCIES, competency_lab_index
from repro.core.ce2016 import CE2016_AREA_COUNT, CE2016_AREAS, ce_pdc_table
from repro.core.cs2013 import (
    CS2013_PDC_DEFINITION,
    PD_AREA,
    pd_core_hours,
    topic_units,
)
from repro.core.knowledge import CognitiveLevel
from repro.core.se2014 import SEEK_AREA_COUNT, SEEK_AREAS, se_pdc_table


class TestCs2013:
    def test_definition_has_three_clauses(self):
        assert len(CS2013_PDC_DEFINITION) == 3
        assert "message-passing" in CS2013_PDC_DEFINITION[2].lower()

    def test_core_hours_total_fifteen(self):
        """CS2013's PD area carries 5 tier-1 + 10 tier-2 = 15 core hours."""
        assert pd_core_hours() == 15.0

    def test_core_units(self):
        names = {u.name for u in PD_AREA.core_units()}
        assert "Parallelism Fundamentals" in names
        assert "Parallel Architecture" in names
        assert "Distributed Systems" not in names  # elective

    def test_every_unit_has_pdc_topics(self):
        for unit in PD_AREA.units:
            assert unit.pdc_topics(), unit.name

    def test_unit_lookup(self):
        unit = PD_AREA.unit("Communication and Coordination")
        topic_names = {t.name for t in unit.topics}
        assert "Atomicity" in topic_names
        with pytest.raises(KeyError):
            PD_AREA.unit("No Such Unit")

    def test_topic_units_reference_real_units(self):
        unit_names = {u.name for u in PD_AREA.units}
        for units in topic_units.values():
            assert set(units) <= unit_names


class TestCc2020:
    def test_six_named_topics(self):
        """The paper names exactly six CC2020 PDC topics (§II-A)."""
        names = {c.name.lower() for c in CC2020_PDC_COMPETENCIES}
        assert len(CC2020_PDC_COMPETENCIES) == 6
        for expected in (
            "parallel divide-and-conquer algorithm",
            "critical path",
            "race conditions",
            "processes",
            "deadlocks",
            "properly synchronized queues",
        ):
            assert expected in names

    def test_competency_structure(self):
        for c in CC2020_PDC_COMPETENCIES:
            assert c.knowledge and c.skill and c.disposition
            assert c.substrate_modules

    def test_all_lab_modules_importable(self):
        for entry in competency_lab_index():
            for module in entry["modules"]:
                importlib.import_module(module)


class TestCe2016Table2:
    def test_twelve_knowledge_areas(self):
        assert len(CE2016_AREAS) == CE2016_AREA_COUNT == 12

    def test_table2_exact_contents(self):
        table = ce_pdc_table()
        assert table == {
            "Computing Algorithms": ["Parallel algorithms/threading"],
            "Architecture and Organization": [
                "Multi/Many-core architectures",
                "Distributed system architectures",
            ],
            "Systems Resource Management": ["Concurrent processing support"],
            "Software Design": ["Event-driven and concurrent programming"],
        }

    def test_pdc_units_are_core(self):
        for area in CE2016_AREAS:
            for unit in area.pdc_core_units():
                assert unit.core

    def test_non_pdc_areas_absent_from_table(self):
        assert "Digital Design" not in ce_pdc_table()


class TestSe2014Table3:
    def test_ten_knowledge_areas(self):
        assert len(SEEK_AREAS) == SEEK_AREA_COUNT == 10

    def test_table3_exact_contents(self):
        table = se_pdc_table()
        assert list(table) == ["Computing Essentials"]
        topics = table["Computing Essentials"]
        assert (
            "Concurrency primitives (e.g., semaphores and monitors)",
            "APPLICATION",
        ) in topics
        assert any("distributed software" in t for t, _l in topics)

    def test_both_topics_at_application_level(self):
        """Paper §V: 'expected to be met at the application level'."""
        for _topic, level in se_pdc_table()["Computing Essentials"]:
            assert level == CognitiveLevel.APPLICATION.name

    def test_cognitive_levels_ordered(self):
        assert CognitiveLevel.KNOWLEDGE < CognitiveLevel.COMPREHENSION
        assert CognitiveLevel.COMPREHENSION < CognitiveLevel.APPLICATION

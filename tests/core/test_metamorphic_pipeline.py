"""Metamorphic tests for the streaming survey pipeline.

The pipeline's determinism contract (module docstring of
:mod:`repro.core.pipeline`): the analysis is a pure function of the
chunk *grid*, not of how the grid is executed.  These tests state that
as metamorphic relations — transformations of the execution plan that
must leave ``SurveyAggregate.to_analysis()`` **bit-identical**:

- permuting the order chunk aggregates are merged in (the sums are
  integer-valued float64, so floating-point addition is exact and the
  fold really is commutative *to the bit*, not just approximately);
- re-associating the fold (left fold vs pairwise tree);
- re-sharding the same grid across 1, 2, or 5 workers, on both the
  ``mp`` rank-thread backend and a real process pool, against the
  sequential driver as the baseline.

Bit-identity is asserted on a canonical byte encoding using
``float.hex()`` — equality of every bit of every float, not ``==`` with
tolerance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import SurveyAggregate
from repro.core.pipeline import (
    chunk_grid,
    shard_survey,
    stream_survey,
    synthesize_batch,
)
from repro.core.taxonomy import PdcTopic


def analysis_bytes(analysis) -> bytes:
    """A canonical byte encoding of a SurveyAnalysis: bit-exact floats."""
    blob = (
        analysis.num_programs,
        analysis.dedicated_course_programs,
        tuple((t.name, analysis.topic_counts[t]) for t in PdcTopic),
        tuple((t.name, float(analysis.topic_weights[t]).hex()) for t in PdcTopic),
        # items in the dict's own order: the Fig. 3 ranking is part of
        # the contract, so a reordering is a difference too
        tuple(
            (c.name, float(pct).hex())
            for c, pct in analysis.course_percentages.items()
        ),
    )
    return repr(blob).encode()


def _parts(n, chunk_size, seed=2021, dedicated_index=0):
    specs = chunk_grid(n, chunk_size, seed, dedicated_index)
    return [SurveyAggregate.from_batch(synthesize_batch(s)) for s in specs]


def _fold(parts):
    agg = SurveyAggregate.empty()
    for part in parts:
        agg = agg.merge(part)
    return agg


class TestMergeOrderMetamorphic:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_any_merge_permutation_is_bit_identical(self, data):
        n = data.draw(st.integers(min_value=1, max_value=60))
        chunk_size = data.draw(st.integers(min_value=1, max_value=17))
        dedicated = data.draw(st.integers(min_value=0, max_value=n - 1))
        parts = _parts(n, chunk_size, dedicated_index=dedicated)
        baseline = analysis_bytes(_fold(parts).to_analysis())
        order = data.draw(st.permutations(list(range(len(parts)))))
        permuted = _fold([parts[i] for i in order])
        assert analysis_bytes(permuted.to_analysis()) == baseline

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=60),
        chunk_size=st.integers(min_value=1, max_value=17),
    )
    def test_tree_fold_equals_left_fold(self, n, chunk_size):
        parts = _parts(n, chunk_size)
        left = _fold(parts)
        level = list(parts) or [SurveyAggregate.empty()]
        while len(level) > 1:  # pairwise reduction tree
            level = [
                _fold(level[i : i + 2]) for i in range(0, len(level), 2)
            ]
        assert analysis_bytes(level[0].to_analysis()) == analysis_bytes(
            left.to_analysis()
        )


class TestReshardingMetamorphic:
    def test_1_2_5_workers_bit_identical_to_stream(self):
        n, chunk_size, seed = 100, 16, 2021
        baseline = analysis_bytes(
            stream_survey(n, seed=seed, chunk_size=chunk_size).to_analysis()
        )
        for workers in (1, 2, 5):
            sharded = shard_survey(
                n, seed=seed, chunk_size=chunk_size,
                workers=workers, backend="mp",
            )
            assert analysis_bytes(sharded.to_analysis()) == baseline, workers

    def test_process_pool_bit_identical_to_stream(self):
        baseline = stream_survey(48, seed=7, chunk_size=8)
        pooled = shard_survey(
            48, seed=7, chunk_size=8, workers=2, backend="process"
        )
        assert analysis_bytes(pooled.to_analysis()) == analysis_bytes(
            baseline.to_analysis()
        )

    def test_dedicated_program_survives_resharding(self):
        # The one dedicated-course program must be counted exactly once
        # under any sharding — a classic double-count trap.
        for workers in (1, 2, 5):
            agg = shard_survey(
                40, seed=3, chunk_size=7, workers=workers,
                backend="mp", dedicated_index=23,
            )
            assert agg.dedicated_programs == 1
            assert agg.num_programs == 40

"""Tests for the reference device kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import Device
from repro.gpu.libdevice import (
    device_inclusive_scan,
    device_matmul,
    device_reduce_sum,
)


class TestDeviceReduce:
    def test_exact_sum(self):
        dev = Device()
        total, _stats = device_reduce_sum(dev, np.arange(1000.0))
        assert total == float(np.arange(1000.0).sum())

    def test_non_multiple_of_block(self):
        dev = Device()
        data = np.ones(100)
        total, _ = device_reduce_sum(dev, data, block=64)
        assert total == 100.0

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            device_reduce_sum(Device(), np.ones(8), block=48)

    def test_uses_shared_memory_and_barriers(self):
        dev = Device()
        _, stats = device_reduce_sum(dev, np.ones(128), block=64)
        assert stats.shared_bytes_peak == 64 * 8
        assert stats.syncthreads > 0

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_numpy(self, values):
        dev = Device()
        total, _ = device_reduce_sum(dev, np.array(values), block=16)
        assert total == pytest.approx(float(np.sum(values)), rel=1e-9, abs=1e-9)


class TestDeviceScan:
    def test_matches_cumsum(self):
        dev = Device()
        data = np.arange(10.0)
        out, _ = device_inclusive_scan(dev, data)
        assert np.allclose(out, np.cumsum(data))

    def test_power_of_two_length(self):
        dev = Device()
        data = np.ones(16)
        out, _ = device_inclusive_scan(dev, data)
        assert np.allclose(out, np.arange(1.0, 17.0))

    def test_single_element(self):
        out, _ = device_inclusive_scan(Device(), np.array([7.0]))
        assert out.tolist() == [7.0]

    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_scan(self, values):
        out, _ = device_inclusive_scan(Device(), np.array(values))
        assert np.allclose(out, np.cumsum(values))


class TestDeviceMatmul:
    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.random((8, 8))
        b = rng.random((8, 8))
        c, stats = device_matmul(Device(), a, b, tile=4)
        assert np.allclose(c, a @ b)
        assert stats.shared_bytes_peak == 2 * 4 * 4 * 8  # two 4x4 f64 tiles

    def test_identity(self):
        n = 8
        eye = np.eye(n)
        m = np.arange(n * n, dtype=float).reshape(n, n)
        c, _ = device_matmul(Device(), eye, m, tile=4)
        assert np.allclose(c, m)

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            device_matmul(Device(), np.eye(6), np.eye(6), tile=4)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            device_matmul(Device(), np.ones((4, 2)), np.ones((2, 4)))

    def test_tiling_reduces_transactions(self):
        """The shared-memory payoff: bigger tiles -> fewer global loads."""
        rng = np.random.default_rng(2)
        a = rng.random((16, 16))
        b = rng.random((16, 16))
        _, small = device_matmul(Device(), a, b, tile=2)
        _, big = device_matmul(Device(), a, b, tile=8)
        assert big.global_loads < small.global_loads

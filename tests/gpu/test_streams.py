"""Tests for concurrent streams (the LAU course's overlap unit)."""

import pytest

from repro.gpu.streams import (
    EngineKind,
    StreamOp,
    StreamScheduler,
    pipeline_demo,
)


class TestSingleStream:
    def test_in_order_serialization(self):
        sched = StreamScheduler()
        sched.stream(0).memcpy_h2d("h", 2.0).launch("k", 3.0).memcpy_d2h("d", 2.0)
        report = sched.run()
        assert report.makespan == 7.0
        starts = {op.name: op.start for op in report.timeline}
        assert starts == {"h": 0.0, "k": 2.0, "d": 5.0}

    def test_engine_busy_accounting(self):
        sched = StreamScheduler()
        sched.stream(0).memcpy_h2d("h", 1.0).launch("k", 4.0)
        report = sched.run()
        assert report.engine_busy[EngineKind.COPY_H2D] == 1.0
        assert report.engine_busy[EngineKind.COMPUTE] == 4.0
        assert report.overlap_fraction() == pytest.approx(0.0)

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            StreamOp("x", EngineKind.COMPUTE, 0.0)


class TestMultiStreamOverlap:
    def test_copy_and_compute_overlap_across_streams(self):
        sched = StreamScheduler()
        sched.stream(0).memcpy_h2d("h0", 2.0).launch("k0", 2.0)
        sched.stream(1).memcpy_h2d("h1", 2.0).launch("k1", 2.0)
        report = sched.run()
        # Stream 1's copy overlaps stream 0's kernel: 2+2+2 = 6, not 8.
        assert report.makespan == 6.0
        assert report.overlap_fraction() > 0

    def test_same_engine_still_serializes(self):
        sched = StreamScheduler()
        sched.stream(0).launch("k0", 3.0)
        sched.stream(1).launch("k1", 3.0)
        report = sched.run()
        assert report.makespan == 6.0  # one compute engine

    def test_pipeline_demo_streams_win(self):
        serial, streamed = pipeline_demo(chunks=6, num_streams=6)
        assert streamed < serial
        # Serial: 6 chunks x 3 ops x 1.0 = 18.
        assert serial == 18.0
        # Streamed: pipelined across 3 engines — fill + drain + chunks.
        assert streamed == 8.0

    def test_single_stream_pipeline_no_benefit(self):
        serial, streamed = pipeline_demo(chunks=4, num_streams=1)
        assert streamed == serial

    def test_more_streams_never_hurt(self):
        spans = [
            pipeline_demo(chunks=8, num_streams=s)[1] for s in (1, 2, 4, 8)
        ]
        assert spans == sorted(spans, reverse=True)

    def test_report_timeline_complete(self):
        sched = StreamScheduler()
        sched.stream(0).memcpy_h2d("a", 1).launch("b", 1).memcpy_d2h("c", 1)
        sched.stream(1).launch("d", 1)
        report = sched.run()
        assert {op.name for op in report.timeline} == {"a", "b", "c", "d"}
        for op in report.timeline:
            assert op.end == op.start + op.duration

"""Tests for the SIMT execution engine."""

import numpy as np
import pytest

from repro.gpu import (
    BarrierDivergence,
    Device,
    DeviceProperties,
    GlobalArray,
    KernelError,
    launch,
)
from repro.gpu.kernel import Dim3


class TestDim3:
    def test_of_int(self):
        assert Dim3.of(7) == Dim3(7, 1, 1)

    def test_of_tuple(self):
        assert Dim3.of((2, 3)) == Dim3(2, 3, 1)

    def test_count(self):
        assert Dim3(2, 3, 4).count == 24


class TestLaunchValidation:
    def test_block_too_large(self):
        dev = Device()
        with pytest.raises(KernelError):
            launch(dev, lambda ctx: None, grid=1, block=4096)

    def test_empty_grid(self):
        dev = Device()
        with pytest.raises(KernelError):
            launch(dev, lambda ctx: None, grid=0, block=32)


class TestExecution:
    def test_plain_function_kernel(self):
        dev = Device()
        out = GlobalArray.zeros(64)

        def fill(ctx, out):
            i = ctx.global_id()
            out[i] = float(i)

        launch(dev, fill, grid=2, block=32)(out)
        assert np.allclose(out.to_host(), np.arange(64.0))

    def test_generator_kernel_with_barrier(self):
        dev = Device()
        out = GlobalArray.zeros(8)

        def kernel(ctx, out):
            tile = ctx.shared_array("t", ctx.block_dim.x)
            tile[ctx.thread_idx.x] = float(ctx.thread_idx.x)
            yield ctx.syncthreads()
            # After the barrier every thread sees all writes.
            out[ctx.thread_idx.x] = float(sum(tile))

        launch(dev, kernel, grid=1, block=8)(out)
        assert np.allclose(out.to_host(), 28.0)

    def test_thread_and_block_indices(self):
        dev = Device()
        out = GlobalArray.zeros(12)

        def kernel(ctx, out):
            out[ctx.global_id()] = ctx.block_idx.x * 100 + ctx.thread_idx.x

        launch(dev, kernel, grid=3, block=4)(out)
        expected = [b * 100 + t for b in range(3) for t in range(4)]
        assert out.to_host().tolist() == expected

    def test_2d_launch(self):
        dev = Device()
        n = 4
        out = GlobalArray.zeros(n * n)

        def kernel(ctx, out):
            row, col = ctx.global_id_2d()
            out[row * n + col] = row * 10 + col

        launch(dev, kernel, grid=(2, 2), block=(2, 2))(out)
        expected = [r * 10 + c for r in range(n) for c in range(n)]
        assert out.to_host().tolist() == expected

    def test_warp_and_lane(self):
        dev = Device()
        out = GlobalArray.zeros(64)

        def kernel(ctx, out):
            out[ctx.thread_linear] = ctx.warp * 1000 + ctx.lane

        launch(dev, kernel, grid=1, block=64)(out)
        host = out.to_host()
        assert host[0] == 0 and host[31] == 31
        assert host[32] == 1000 and host[63] == 1031


class TestBarrierDivergence:
    def test_divergent_exit_detected(self):
        dev = Device()

        def bad(ctx):
            if ctx.thread_idx.x < 4:
                yield ctx.syncthreads()  # only half the block arrives
            return

        with pytest.raises(BarrierDivergence):
            launch(dev, bad, grid=1, block=8)()

    def test_uniform_barriers_ok(self):
        dev = Device()

        def good(ctx):
            for _ in range(3):
                yield ctx.syncthreads()

        stats = launch(dev, good, grid=2, block=8)()
        assert stats.syncthreads == 6  # 3 per block x 2 blocks

    def test_yield_of_non_sync_rejected(self):
        dev = Device()

        def bad(ctx):
            yield "something else"

        with pytest.raises(KernelError):
            launch(dev, bad, grid=1, block=2)()


class TestStats:
    def test_thread_and_warp_counts(self):
        dev = Device()
        stats = launch(dev, lambda ctx: None, grid=4, block=48)()
        assert stats.blocks == 4
        assert stats.threads == 192
        assert stats.warps == 4 * 2  # ceil(48/32) per block

    def test_divergence_counted(self):
        dev = Device()

        def kernel(ctx):
            if ctx.branch(ctx.thread_idx.x % 2 == 0):
                pass

        stats = launch(dev, kernel, grid=1, block=32)()
        assert stats.instrumented_branches == 1
        assert stats.divergent_branches == 1
        assert stats.divergence_rate() == 1.0

    def test_uniform_branch_not_divergent(self):
        dev = Device()

        def kernel(ctx):
            if ctx.branch(ctx.block_idx.x == 0):  # uniform within a warp
                pass

        stats = launch(dev, kernel, grid=2, block=32)()
        assert stats.instrumented_branches == 2  # one group per block
        assert stats.divergent_branches == 0

    def test_launch_registry_names(self):
        dev = Device()

        def k(ctx):
            return None

        launch(dev, k, grid=1, block=1)()
        launch(dev, k, grid=1, block=1)()
        assert "k" in dev.launches and "k#2" in dev.launches

    def test_last_stats(self):
        dev = Device()
        with pytest.raises(RuntimeError):
            dev.last_stats()
        launch(dev, lambda ctx: None, grid=1, block=4)()
        assert dev.last_stats().threads == 4


class TestSharedMemory:
    def test_shared_allocation_cap(self):
        dev = Device(DeviceProperties(shared_mem_per_block=64))

        def hog(ctx):
            ctx.shared_array("big", 100)  # 800 bytes > 64

        with pytest.raises(MemoryError):
            launch(dev, hog, grid=1, block=1)()

    def test_shared_peak_tracked(self):
        dev = Device()

        def kernel(ctx):
            ctx.shared_array("a", 16)  # 128 bytes

        stats = launch(dev, kernel, grid=2, block=4)()
        assert stats.shared_bytes_peak == 128

    def test_shared_is_per_block(self):
        dev = Device()
        out = GlobalArray.zeros(2)

        def kernel(ctx, out):
            tile = ctx.shared_array("t", 1)
            tile[0] += 1.0  # each block starts from a fresh zero array
            out[ctx.block_idx.x] = tile[0]

        launch(dev, kernel, grid=2, block=1)(out)
        assert out.to_host().tolist() == [1.0, 1.0]

"""Tests for shared-memory bank-conflict analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.banks import (
    bank_conflicts,
    matrix_column_access,
    padded_matrix_column_access,
)


class TestBankConflicts:
    def test_sequential_access_conflict_free(self):
        report = bank_conflicts(list(range(32)))
        assert report.conflict_free
        assert report.serialized_cycles == 1

    def test_stride_num_banks_is_worst_case(self):
        addresses = [i * 32 for i in range(32)]  # all hit bank 0
        report = bank_conflicts(addresses)
        assert report.conflict_degree == 32
        assert not report.conflict_free

    def test_broadcast_is_free(self):
        report = bank_conflicts([7] * 32)  # all lanes read one word
        assert report.conflict_free
        assert report.broadcasts == 1

    def test_two_way_conflict(self):
        addresses = list(range(16)) + [a + 32 for a in range(16)]
        report = bank_conflicts(addresses)
        assert report.conflict_degree == 2
        assert report.serialized_cycles == 2

    def test_empty_access(self):
        report = bank_conflicts([])
        assert report.serialized_cycles == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            bank_conflicts([1], num_banks=0)
        with pytest.raises(ValueError):
            bank_conflicts([-1])


class TestPaddingLesson:
    def test_column_walk_unpadded_is_32_way(self):
        report = bank_conflicts(matrix_column_access(column=3))
        assert report.conflict_degree == 32

    def test_column_walk_padded_is_conflict_free(self):
        report = bank_conflicts(padded_matrix_column_access(column=3))
        assert report.conflict_free

    @pytest.mark.parametrize("column", [0, 1, 15, 31])
    def test_padding_works_for_every_column(self, column):
        unpadded = bank_conflicts(matrix_column_access(column))
        padded = bank_conflicts(padded_matrix_column_access(column))
        assert unpadded.conflict_degree == 32
        assert padded.conflict_degree == 1

    def test_row_walks_fine_either_way(self):
        row = [10 * 32 + c for c in range(32)]  # one row, unpadded
        assert bank_conflicts(row).conflict_free


@given(st.lists(st.integers(0, 1023), max_size=32),
       st.integers(1, 64))
@settings(max_examples=80, deadline=None)
def test_property_degree_bounds(addresses, banks):
    report = bank_conflicts(addresses, num_banks=banks)
    if addresses:
        assert 1 <= report.conflict_degree <= len(set(addresses))
    assert report.serialized_cycles == report.conflict_degree

"""Tests for device memory and coalescing analysis."""

import numpy as np
import pytest

from repro.gpu import Device, DeviceProperties, GlobalArray, launch
from repro.gpu.libdevice import vector_add, vector_add_strided


class TestGlobalArray:
    def test_from_host_copies(self):
        host = np.arange(4.0)
        arr = GlobalArray.from_host(host)
        host[:] = 0
        assert arr.to_host().tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_zeros(self):
        arr = GlobalArray.zeros(5, dtype=np.int64)
        assert arr.to_host().tolist() == [0] * 5

    def test_scalar_indexing_only(self):
        arr = GlobalArray.zeros(8)
        with pytest.raises(TypeError):
            arr[0:4]
        with pytest.raises(TypeError):
            arr[0:2] = 1.0

    def test_len_and_size(self):
        arr = GlobalArray.zeros(7)
        assert len(arr) == 7 and arr.size == 7

    def test_uninstrumented_access_outside_kernel(self):
        arr = GlobalArray.from_host([1.0, 2.0])
        assert arr[1] == 2.0
        arr[0] = 5.0
        assert arr.to_host()[0] == 5.0


class TestTransactionModel:
    def test_transactions_for_coalesced_warp(self):
        props = DeviceProperties()
        # 32 consecutive 4-byte elements fit one 128-byte transaction.
        assert props.transactions_for(list(range(32))) == 1

    def test_transactions_for_strided(self):
        props = DeviceProperties()
        addresses = [i * 32 for i in range(32)]
        assert props.transactions_for(addresses) == 32

    def test_transactions_for_empty(self):
        assert DeviceProperties().transactions_for([]) == 0

    def test_unaligned_spans_two(self):
        props = DeviceProperties()
        addresses = list(range(16, 48))  # crosses a 32-element boundary
        assert props.transactions_for(addresses) == 2


class TestCoalescingEndToEnd:
    def _run(self, kernel, *extra):
        dev = Device()
        n = 256
        a = GlobalArray.from_host(np.ones(n))
        b = GlobalArray.from_host(np.ones(n))
        out = GlobalArray.zeros(n)
        stats = launch(dev, kernel, grid=n // 64, block=64)(a, b, out, *extra)
        return out, stats

    def test_coalesced_kernel_full_efficiency(self):
        out, stats = self._run(vector_add)
        assert np.all(out.to_host() == 2.0)
        assert stats.coalescing_efficiency() == pytest.approx(1.0)
        # 3 arrays x 256 elements / 32 per transaction = 24 transactions.
        assert stats.transactions == 24

    def test_strided_kernel_poor_efficiency(self):
        out, stats = self._run(vector_add_strided, 17)
        assert np.all(out.to_host() == 2.0)
        assert stats.coalescing_efficiency() < 0.2
        assert stats.transactions > 150

    def test_loads_and_stores_counted(self):
        _out, stats = self._run(vector_add)
        assert stats.global_loads == 512  # a[i] and b[i]
        assert stats.global_stores == 256

"""Cross-cutting property tests with independent oracles.

Each property pits a simulator against a trivially-correct sequential
oracle (or a universally quantified invariant), over hypothesis-generated
inputs — the strongest correctness statements in the suite:

- the 5-stage pipeline computes exactly what a sequential interpreter
  computes, under every datapath configuration;
- Tomasulo (both variants) computes exactly what in-order execution
  computes, despite out-of-order completion and speculation;
- the 2PL engine's committed projection is conflict-serializable under
  *arbitrary* explicit interleavings, not just round-robin;
- MPI collectives agree with their serial definitions for every op and
  world size.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.pipeline import Instr, Op, Pipeline, PipelineConfig
from repro.arch.tomasulo import TInstr, TOp, TomasuloCPU
from repro.db import Op as DbOp
from repro.db import Transaction, TransactionEngine, is_conflict_serializable
from repro.db.engine import committed_projection
from repro.mp import MAX, MIN, PROD, SUM, run_spmd


# -- pipeline vs sequential interpreter ------------------------------------
def _interpret_riscish(program, registers=None, memory=None):
    """The oracle: execute the pipeline ISA sequentially."""
    regs = [0] * 32
    for r, v in (registers or {}).items():
        if r != 0:
            regs[r] = v
    mem = dict(memory or {})
    pc = 0
    steps = 0
    while pc < len(program):
        steps += 1
        if steps > 10_000:
            raise RuntimeError("oracle runaway")
        instr = program[pc]
        a, b = regs[instr.rs1], regs[instr.rs2]
        if instr.op is Op.ADD:
            value = a + b
        elif instr.op is Op.SUB:
            value = a - b
        elif instr.op is Op.AND:
            value = a & b
        elif instr.op is Op.OR:
            value = a | b
        elif instr.op is Op.ADDI:
            value = a + instr.imm
        elif instr.op is Op.LW:
            value = mem.get(a + instr.imm, 0)
        elif instr.op is Op.SW:
            mem[a + instr.imm] = b
            pc += 1
            continue
        elif instr.op in (Op.BEQ, Op.BNE):
            taken = (a == b) if instr.op is Op.BEQ else (a != b)
            pc = instr.imm if taken else pc + 1
            continue
        else:  # NOP
            pc += 1
            continue
        if instr.rd != 0:
            regs[instr.rd] = value
        pc += 1
    return regs, mem


_pipeline_instr = st.one_of(
    st.builds(
        Instr,
        op=st.sampled_from([Op.ADD, Op.SUB, Op.AND, Op.OR]),
        rd=st.integers(0, 7),
        rs1=st.integers(0, 7),
        rs2=st.integers(0, 7),
    ),
    st.builds(
        Instr,
        op=st.just(Op.ADDI),
        rd=st.integers(0, 7),
        rs1=st.integers(0, 7),
        imm=st.integers(-8, 8),
    ),
    st.builds(
        Instr,
        op=st.just(Op.LW),
        rd=st.integers(0, 7),
        rs1=st.just(0),
        imm=st.integers(0, 7),
    ),
    st.builds(
        Instr,
        op=st.just(Op.SW),
        rs1=st.just(0),
        rs2=st.integers(0, 7),
        imm=st.integers(0, 7),
    ),
)


@given(
    st.lists(_pipeline_instr, max_size=16),
    st.sampled_from(
        [
            PipelineConfig(forwarding=True),
            PipelineConfig(forwarding=False),
            PipelineConfig(branch_in_id=True),
        ]
    ),
)
@settings(max_examples=120, deadline=None)
def test_property_pipeline_matches_interpreter(program, config):
    initial_mem = {i: i * 10 for i in range(8)}
    oracle_regs, oracle_mem = _interpret_riscish(program, memory=initial_mem)
    pipe = Pipeline(program, config, memory=initial_mem)
    pipe.run()
    assert pipe.registers == oracle_regs
    assert pipe.memory == oracle_mem


# -- tomasulo vs in-order execution ---------------------------------------------
def _interpret_fp(program, registers=None, memory=None):
    regs = [0.0] * 32
    for r, v in (registers or {}).items():
        regs[r] = v
    mem = dict(memory or {})
    pc = 0
    while pc < len(program):
        instr = program[pc]
        if instr.op is TOp.LOAD:
            regs[instr.rd] = float(mem.get(instr.addr, 0.0))
        elif instr.op is TOp.ADD:
            regs[instr.rd] = regs[instr.rs] + regs[instr.rt]
        elif instr.op is TOp.SUB:
            regs[instr.rd] = regs[instr.rs] - regs[instr.rt]
        elif instr.op is TOp.MUL:
            regs[instr.rd] = regs[instr.rs] * regs[instr.rt]
        elif instr.op is TOp.BNEZ:
            if regs[instr.rs] != 0:
                pc = instr.target
                continue
        pc += 1
    return regs


_tomasulo_instr = st.one_of(
    st.builds(
        TInstr,
        op=st.sampled_from([TOp.ADD, TOp.SUB, TOp.MUL]),
        rd=st.integers(1, 6),
        rs=st.integers(0, 6),
        rt=st.integers(0, 6),
    ),
    st.builds(
        TInstr,
        op=st.just(TOp.LOAD),
        rd=st.integers(1, 6),
        addr=st.integers(0, 4),
    ),
)


@given(st.lists(_tomasulo_instr, max_size=12), st.booleans())
@settings(max_examples=100, deadline=None)
def test_property_tomasulo_matches_inorder(program, speculative):
    memory = {i: float(i + 1) for i in range(5)}
    registers = {0: 2.0}
    oracle = _interpret_fp(program, registers=registers, memory=memory)
    cpu = TomasuloCPU(
        program, speculative=speculative, registers=registers, memory=memory
    )
    stats = cpu.run()
    assert cpu.registers == oracle
    assert stats.committed == len(program)


@given(st.lists(_tomasulo_instr, min_size=1, max_size=8), st.data())
@settings(max_examples=60, deadline=None)
def test_property_tomasulo_with_branch_matches_inorder(program, data):
    """Insert one forward BNEZ at a random point; both variants (stall
    and speculate) must still match in-order semantics."""
    pos = data.draw(st.integers(0, len(program)))
    target = data.draw(st.integers(pos + 1, len(program) + 1))
    rs = data.draw(st.integers(0, 6))
    full = list(program)
    full.insert(pos, TInstr(TOp.BNEZ, rs=rs, target=target))
    memory = {i: float(i) for i in range(5)}  # mem[0] = 0 -> some not-taken
    registers = {0: 1.0}
    oracle = _interpret_fp(full, registers=registers, memory=memory)
    for speculative in (False, True):
        cpu = TomasuloCPU(
            full, speculative=speculative, registers=registers, memory=memory
        )
        cpu.run()
        assert cpu.registers == oracle, (full, speculative)


# -- 2PL engine under arbitrary interleavings ---------------------------------
@given(st.data())
@settings(max_examples=80, deadline=None)
def test_property_engine_serializable_any_turn_order(data):
    txns = []
    for i in range(1, 5):
        n_ops = data.draw(st.integers(1, 4))
        ops = []
        for j in range(n_ops):
            item = data.draw(st.sampled_from(["x", "y", "z"]))
            kind = data.draw(st.booleans())
            ops.append(DbOp.read(i, item) if kind else DbOp.write(i, item))
        txns.append(Transaction(i, ops))
    order = data.draw(
        st.lists(st.integers(1, 4), min_size=0, max_size=24)
    )
    report = TransactionEngine(txns).run(turn_order=order)
    assert sorted(report.committed) == [1, 2, 3, 4]
    assert is_conflict_serializable(committed_projection(report.history))


# -- collectives vs serial definitions -----------------------------------------
@given(
    st.lists(st.integers(-20, 20), min_size=1, max_size=6),
    st.sampled_from([SUM, PROD, MAX, MIN]),
)
@settings(max_examples=40, deadline=None)
def test_property_allreduce_any_op(values, op):
    serial = values[0]
    for v in values[1:]:
        serial = op(serial, v)

    def main(comm):
        return comm.allreduce(values[comm.Get_rank()], op=op)

    assert run_spmd(len(values), main) == [serial] * len(values)


@given(st.lists(st.integers(-20, 20), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_property_scan_prefixes(values):
    def main(comm):
        return comm.scan(values[comm.Get_rank()], op=SUM)

    expected = list(np.cumsum(values))
    assert run_spmd(len(values), main) == expected

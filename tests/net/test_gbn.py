"""Tests for Go-Back-N and Selective Repeat ARQ."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.gbn import (
    protocol_comparison,
    simulate_go_back_n,
    simulate_selective_repeat,
    window_sweep,
)


class TestLossFree:
    def test_exact_transmission_count(self):
        report = simulate_go_back_n(50, 4, loss_rate=0.0)
        assert report.transmissions == 50
        assert report.timeouts == 0
        assert report.efficiency == 1.0

    def test_rounds_scale_with_window(self):
        r1 = simulate_go_back_n(64, 1, loss_rate=0.0)
        r8 = simulate_go_back_n(64, 8, loss_rate=0.0)
        assert r1.rounds == 64
        assert r8.rounds == 8

    def test_zero_packets(self):
        report = simulate_go_back_n(0, 4)
        assert report.transmissions == 0
        assert report.rounds == 0


class TestLossy:
    def test_always_completes(self):
        for seed in range(5):
            report = simulate_go_back_n(40, 4, loss_rate=0.3, seed=seed)
            assert report.transmissions >= 40
            assert report.timeouts >= 0

    def test_deterministic_per_seed(self):
        a = simulate_go_back_n(40, 4, loss_rate=0.2, seed=9)
        b = simulate_go_back_n(40, 4, loss_rate=0.2, seed=9)
        assert a == b

    def test_ack_loss_also_recovered(self):
        report = simulate_go_back_n(
            30, 4, loss_rate=0.0, ack_loss_rate=0.4, seed=3
        )
        assert report.transmissions >= 30

    def test_stop_and_wait_is_window_one(self):
        report = simulate_go_back_n(20, 1, loss_rate=0.25, seed=1)
        # Window 1: never more than one distinct packet per round.
        assert report.rounds >= 20

    def test_window_sweep_tradeoff(self):
        """Bigger windows finish in fewer rounds but burn more
        transmissions under loss — the protocol's defining trade-off."""
        sweep = window_sweep(num_packets=100, loss_rate=0.1, seed=0)
        rounds = [sweep[w].rounds for w in (1, 2, 4, 8, 16)]
        assert rounds == sorted(rounds, reverse=True)
        assert sweep[16].transmissions > sweep[1].transmissions


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            simulate_go_back_n(10, 0)

    def test_bad_loss_rate(self):
        with pytest.raises(ValueError):
            simulate_go_back_n(10, 2, loss_rate=1.0)


@given(
    st.integers(0, 60),
    st.integers(1, 12),
    st.floats(0.0, 0.45),
    st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_property_gbn_terminates_and_counts(n, window, loss, seed):
    report = simulate_go_back_n(n, window, loss_rate=loss, seed=seed)
    assert report.transmissions >= n
    assert report.efficiency <= 1.0 + 1e-9
    assert report.num_packets == n


class TestSelectiveRepeat:
    def test_lossfree_exact(self):
        report = simulate_selective_repeat(50, 4, loss_rate=0.0)
        assert report.transmissions == 50
        assert report.rounds == 13  # ceil(50/4)

    def test_only_lost_packets_resent(self):
        """SR's defining property: efficiency ~ 1 - loss, independent of
        window size (no go-back waste)."""
        report = simulate_selective_repeat(200, 8, loss_rate=0.2, seed=1)
        assert report.efficiency > 0.7

    def test_deterministic(self):
        a = simulate_selective_repeat(40, 6, loss_rate=0.3, seed=5)
        assert a == simulate_selective_repeat(40, 6, loss_rate=0.3, seed=5)

    def test_ack_loss_recovered(self):
        report = simulate_selective_repeat(
            30, 4, ack_loss_rate=0.4, seed=2
        )
        assert report.transmissions >= 30

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_selective_repeat(10, 0)

    def test_sr_never_less_efficient_than_gbn(self):
        for loss, row in protocol_comparison(seed=3).items():
            assert (
                row["selective-repeat"].efficiency
                >= row["go-back-n"].efficiency - 1e-9
            ), loss

    def test_gap_widens_with_loss(self):
        rows = protocol_comparison(loss_rates=[0.05, 0.3], seed=0)
        gap_low = (
            rows[0.05]["selective-repeat"].efficiency
            - rows[0.05]["go-back-n"].efficiency
        )
        gap_high = (
            rows[0.3]["selective-repeat"].efficiency
            - rows[0.3]["go-back-n"].efficiency
        )
        assert gap_high > gap_low

"""Tests for the simulated network and socket API."""

import threading

import pytest

from repro.net import Address, ConnectionRefused, Network
from repro.net.sockets import Connection, DatagramSocket, ServerSocket


class TestAddress:
    def test_str(self):
        assert str(Address("host", 80)) == "host:80"

    def test_hashable_and_ordered(self):
        a, b = Address("a", 1), Address("a", 2)
        assert a < b
        assert len({a, b, Address("a", 1)}) == 2


class TestConnections:
    def test_connect_refused_without_listener(self):
        net = Network()
        with pytest.raises(ConnectionRefused):
            Connection.connect(net, Address("nowhere", 1))

    def test_echo_roundtrip(self):
        net = Network()
        server = ServerSocket(net, Address("srv", 80))

        def serve():
            conn = server.accept()
            conn.send(conn.recv())
            conn.close()

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        client = Connection.connect(net, Address("srv", 80))
        client.send("ping")
        assert client.recv() == "ping"
        t.join(5)
        server.close()

    def test_bidirectional_in_order(self):
        net = Network()
        server = ServerSocket(net, Address("srv", 80))

        def serve():
            conn = server.accept()
            for _ in range(5):
                conn.send(conn.recv() * 2)
            conn.close()

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        client = Connection.connect(net, Address("srv", 80))
        results = []
        for i in range(5):
            client.send(i)
            results.append(client.recv())
        assert results == [0, 2, 4, 6, 8]
        t.join(5)
        server.close()

    def test_eof_after_close(self):
        net = Network()
        server = ServerSocket(net, Address("srv", 80))

        def serve():
            conn = server.accept()
            conn.send("bye")
            conn.close()

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        client = Connection.connect(net, Address("srv", 80))
        assert client.recv() == "bye"
        with pytest.raises(EOFError):
            client.recv()
        t.join(5)
        server.close()

    def test_send_after_peer_close_breaks_pipe(self):
        net = Network()
        server = ServerSocket(net, Address("srv", 80))
        client = Connection.connect(net, Address("srv", 80))
        conn = server.accept()
        client.close()
        conn.recv if False else None
        with pytest.raises(BrokenPipeError):
            client.send("too late")
        server.close()

    def test_address_already_in_use(self):
        net = Network()
        ServerSocket(net, Address("srv", 80))
        with pytest.raises(OSError):
            ServerSocket(net, Address("srv", 80))

    def test_rebind_after_close(self):
        net = Network()
        s = ServerSocket(net, Address("srv", 80))
        s.close()
        ServerSocket(net, Address("srv", 80)).close()

    def test_traffic_metered(self):
        net = Network()
        server = ServerSocket(net, Address("srv", 80))
        client = Connection.connect(net, Address("srv", 80))
        conn = server.accept()
        client.send("data")
        conn.recv()
        assert net.stats.messages == 1
        assert net.stats.bytes > 0
        server.close()


class TestDatagrams:
    def test_sendto_recvfrom(self):
        net = Network()
        a = DatagramSocket(net, Address("a", 1))
        b = DatagramSocket(net, Address("b", 1))
        assert a.sendto("hello", Address("b", 1))
        source, payload = b.recvfrom()
        assert source == Address("a", 1)
        assert payload == "hello"

    def test_unknown_destination_dropped(self):
        net = Network()
        a = DatagramSocket(net, Address("a", 1))
        assert not a.sendto("x", Address("ghost", 9))
        assert net.stats.dropped == 1

    def test_deterministic_loss(self):
        def run(seed):
            net = Network(drop_rate=0.5, seed=seed)
            a = DatagramSocket(net, Address("a", 1))
            DatagramSocket(net, Address("b", 1))
            return [a.sendto(i, Address("b", 1)) for i in range(20)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_poll_nonblocking(self):
        net = Network()
        a = DatagramSocket(net, Address("a", 1))
        assert a.poll() is None
        b = DatagramSocket(net, Address("b", 1))
        b.sendto("x", Address("a", 1))
        assert a.poll() == (Address("b", 1), "x")

    def test_invalid_drop_rate(self):
        with pytest.raises(ValueError):
            Network(drop_rate=1.0)

    def test_close_releases_address(self):
        net = Network()
        s = DatagramSocket(net, Address("a", 1))
        s.close()
        DatagramSocket(net, Address("a", 1)).close()

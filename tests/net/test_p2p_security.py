"""Tests for P2P overlays and the security teaching unit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Network
from repro.net.p2p import ConsistentHashRing, FloodingNetwork
from repro.net.security import (
    DiffieHellman,
    caesar_break,
    caesar_decrypt,
    caesar_encrypt,
    dh_exchange_over_network,
    mac_sign,
    mac_verify,
    vigenere_decrypt,
    vigenere_encrypt,
)


class TestFlooding:
    def _line(self, n):
        net = FloodingNetwork()
        net.add_peer("p0")
        for i in range(1, n):
            net.add_peer(f"p{i}", [f"p{i-1}"])
        return net

    def test_find_local_item_zero_messages(self):
        net = self._line(3)
        net.store("p0", "item")
        result = net.lookup("p0", "item")
        assert result.found_at == "p0"
        assert result.messages == 0 and result.hops == 0

    def test_find_distant_item(self):
        net = self._line(10)
        net.store("p7", "song")
        result = net.lookup("p0", "song", ttl=9)
        assert result.found_at == "p7"
        assert result.hops == 7

    def test_ttl_limits_reach(self):
        net = self._line(10)
        net.store("p7", "song")
        result = net.lookup("p0", "song", ttl=3)
        assert result.found_at is None

    def test_messages_grow_with_degree(self):
        # A star floods everyone in one hop; a clique floods more edges.
        star = FloodingNetwork()
        star.add_peer("hub")
        for i in range(6):
            star.add_peer(f"leaf{i}", ["hub"])
        star.store("leaf5", "x")
        r = star.lookup("hub", "x", ttl=1)
        assert r.found_at == "leaf5"
        assert r.messages <= 6

    def test_unknown_peer_raises(self):
        net = self._line(2)
        with pytest.raises(KeyError):
            net.lookup("ghost", "x")
        with pytest.raises(KeyError):
            net.add_peer("new", ["ghost"])


class TestConsistentHashing:
    def test_deterministic_placement(self):
        ring = ConsistentHashRing(["n1", "n2", "n3"])
        assert ring.node_for("key") == ring.node_for("key")

    def test_all_keys_placed_on_known_nodes(self):
        ring = ConsistentHashRing(["n1", "n2", "n3"], virtual_nodes=32)
        keys = [f"k{i}" for i in range(200)]
        assert set(ring.placement(keys).values()) <= {"n1", "n2", "n3"}

    def test_join_moves_about_one_over_n(self):
        ring = ConsistentHashRing(["n1", "n2", "n3"], virtual_nodes=64)
        keys = [f"k{i}" for i in range(2000)]
        before = ring.placement(keys)
        ring.add_node("n4")
        moved = ConsistentHashRing.moved_keys(before, ring.placement(keys))
        assert 0.15 < moved < 0.40  # ~1/4 expected

    def test_leave_only_moves_departed_keys(self):
        ring = ConsistentHashRing(["n1", "n2", "n3"], virtual_nodes=64)
        keys = [f"k{i}" for i in range(1000)]
        before = ring.placement(keys)
        ring.remove_node("n2")
        after = ring.placement(keys)
        for k in keys:
            if before[k] != "n2":
                assert after[k] == before[k]

    def test_load_reasonably_balanced(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], virtual_nodes=128)
        keys = [f"k{i}" for i in range(4000)]
        loads = ring.load_distribution(keys)
        assert max(loads.values()) < 2.0 * min(loads.values())

    def test_duplicate_node_rejected(self):
        ring = ConsistentHashRing(["n1"])
        with pytest.raises(ValueError):
            ring.add_node("n1")

    def test_empty_ring_raises(self):
        with pytest.raises(RuntimeError):
            ConsistentHashRing().node_for("k")

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            ConsistentHashRing(["n1"]).remove_node("nx")


class TestCiphers:
    def test_caesar_roundtrip_preserves_case_and_punctuation(self):
        pt = "Attack at Dawn, Zulu!"
        ct = caesar_encrypt(pt, 5)
        assert ct != pt
        assert caesar_decrypt(ct, 5) == pt

    def test_caesar_wraps_alphabet(self):
        assert caesar_encrypt("xyz", 3) == "abc"

    @pytest.mark.parametrize("key", [1, 7, 13, 25])
    def test_caesar_break_recovers_key(self, key):
        pt = ("the quick brown fox jumps over the lazy dog while the "
              "rain in spain stays mainly in the plain")
        found_key, found_pt = caesar_break(caesar_encrypt(pt, key))
        assert found_key == key
        assert found_pt == pt

    def test_vigenere_roundtrip(self):
        pt = "divert troops to east ridge"
        assert vigenere_decrypt(vigenere_encrypt(pt, "lemon"), "lemon") == pt

    def test_vigenere_differs_from_caesar(self):
        pt = "aaaa aaaa"
        ct = vigenere_encrypt(pt, "ab")
        assert ct == "abab abab"  # polyalphabetic signature

    def test_vigenere_key_validation(self):
        with pytest.raises(ValueError):
            vigenere_encrypt("x", "")
        with pytest.raises(ValueError):
            vigenere_encrypt("x", "k3y")

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz ", max_size=80),
           st.integers(0, 25))
    @settings(max_examples=60, deadline=None)
    def test_property_caesar_roundtrip(self, pt, key):
        assert caesar_decrypt(caesar_encrypt(pt, key), key) == pt


class TestDiffieHellman:
    def test_shared_secret_agreement(self):
        alice = DiffieHellman(123456789)
        bob = DiffieHellman(987654321)
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_different_privates_different_publics(self):
        assert DiffieHellman(2).public != DiffieHellman(3).public

    def test_exchange_over_network(self):
        s1, s2 = dh_exchange_over_network(Network(), 111, 222)
        assert s1 == s2

    def test_private_key_validation(self):
        with pytest.raises(ValueError):
            DiffieHellman(0)

    def test_mac_sign_verify(self):
        alice = DiffieHellman(5)
        bob = DiffieHellman(7)
        key = alice.shared_secret(bob.public)
        tag = mac_sign(key, "launch at noon")
        assert mac_verify(key, "launch at noon", tag)
        assert not mac_verify(key, "launch at dawn", tag)
        assert not mac_verify(key + 1, "launch at noon", tag)

"""Tests for the echo and key-value servers."""

import threading

import pytest

from repro.net import (
    Address,
    Connection,
    EchoServer,
    KeyValueClient,
    KeyValueServer,
    Network,
)


class TestEchoServer:
    def test_echo(self):
        net = Network()
        with EchoServer(net, Address("echo", 7)):
            with Connection.connect(net, Address("echo", 7)) as conn:
                for msg in ("a", [1, 2], {"k": "v"}):
                    conn.send(msg)
                    assert conn.recv() == msg

    def test_multiple_concurrent_clients(self):
        net = Network()
        with EchoServer(net, Address("echo", 7)) as server:
            results = {}
            lock = threading.Lock()

            def client(tag):
                with Connection.connect(net, Address("echo", 7)) as conn:
                    conn.send(tag)
                    with lock:
                        results[tag] = conn.recv()

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(5)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10)
            assert results == {i: i for i in range(5)}
            assert server.connections_served == 5


class TestKeyValueServer:
    @pytest.fixture()
    def kv(self):
        net = Network()
        server = KeyValueServer(net, Address("kv", 6379)).start()
        client = KeyValueClient(net, Address("kv", 6379))
        yield net, server, client
        client.close()
        server.stop()

    def test_put_get(self, kv):
        _net, _server, client = kv
        client.put("k", [1, 2, 3])
        assert client.get("k") == [1, 2, 3]

    def test_get_missing_returns_none(self, kv):
        _net, _server, client = kv
        assert client.get("nope") is None

    def test_delete(self, kv):
        _net, _server, client = kv
        client.put("k", 1)
        assert client.delete("k") is True
        assert client.delete("k") is False
        assert client.get("k") is None

    def test_keys_sorted(self, kv):
        _net, _server, client = kv
        for k in ("zebra", "apple", "mango"):
            client.put(k, 1)
        assert client.keys() == ["apple", "mango", "zebra"]

    def test_incr_atomic_under_concurrency(self, kv):
        net, _server, _client = kv
        per_client, clients = 40, 4

        def hammer():
            with KeyValueClient(net, Address("kv", 6379)) as c:
                for _ in range(per_client):
                    c.incr("counter")

        threads = [threading.Thread(target=hammer) for _ in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20)
        assert _client_get(net, "counter") == per_client * clients

    def test_incr_non_integer_conflict(self, kv):
        _net, _server, client = kv
        client.put("s", "text")
        with pytest.raises(ValueError):
            client.incr("s")

    def test_unknown_verb_405(self, kv):
        _net, _server, client = kv
        client._conn.send(("FROB", "x", None))
        response = client._conn.recv()
        assert response.status == 405

    def test_malformed_request_400(self, kv):
        _net, _server, client = kv
        client._conn.send("garbage")
        response = client._conn.recv()
        assert response.status == 400


def _client_get(net, key):
    with KeyValueClient(net, Address("kv", 6379)) as c:
        return c.get(key)

"""Tests for protocol layering, the app protocol, and stop-and-wait ARQ."""

import threading

import pytest

from repro.net import Address, Network
from repro.net.protocol import (
    Frame,
    LayeredStack,
    ProtocolError,
    Request,
    Response,
    stop_and_wait_recv,
    stop_and_wait_send,
)
from repro.net.sockets import DatagramSocket


class TestLayering:
    def test_encapsulation_nests_all_layers(self):
        stack = LayeredStack()
        frame = stack.encapsulate("payload")
        layers = []
        current = frame
        while isinstance(current, Frame):
            layers.append(current.layer)
            current = current.payload
        assert layers == ["link", "network", "transport", "application"]
        assert current == "payload"

    def test_decapsulate_roundtrip(self):
        stack = LayeredStack()
        data = {"temp": 20.5}
        assert stack.decapsulate(stack.encapsulate(data, "A", "B")) == data

    def test_layer_order_enforced(self):
        stack = LayeredStack()
        bad = Frame("transport", {}, Frame("link", {}, "x"))
        with pytest.raises(ProtocolError):
            stack.decapsulate(bad)

    def test_missing_layers_detected(self):
        stack = LayeredStack()
        with pytest.raises(ProtocolError):
            stack.decapsulate(Frame("link", {}, "bare payload"))

    def test_sequence_numbers_increment(self):
        stack = LayeredStack()
        f1 = stack.encapsulate("a")
        f2 = stack.encapsulate("b")
        assert f2.header["seq"] == f1.header["seq"] + 1

    def test_trace_lines(self):
        stack = LayeredStack(["app", "wire"])
        lines = stack.trace(stack.encapsulate("x"))
        assert len(lines) == 3
        assert lines[0].startswith("wire:")
        assert lines[-1] == "payload: 'x'"

    def test_custom_layers(self):
        stack = LayeredStack(["a", "b"])
        assert stack.decapsulate(stack.encapsulate(1)) == 1

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            LayeredStack([])


class TestRequestResponse:
    def test_encode_decode(self):
        req = Request("get", "users/1", {"fields": ["name"]})
        assert Request.decode(req.encode()) == Request("GET", "users/1", {"fields": ["name"]})

    def test_decode_rejects_malformed(self):
        with pytest.raises(ProtocolError):
            Request.decode(("GET",))
        with pytest.raises(ProtocolError):
            Request.decode((1, 2, 3))
        with pytest.raises(ProtocolError):
            Request.decode("not a tuple")

    def test_response_ok(self):
        assert Response(200).ok
        assert Response(204).ok
        assert not Response(404).ok
        assert not Response(500).ok


class TestStopAndWait:
    def _run(self, drop_rate, seed, messages):
        net = Network(drop_rate=drop_rate, seed=seed)
        sender = DatagramSocket(net, Address("tx", 1))
        receiver = DatagramSocket(net, Address("rx", 1))
        received = {}

        def recv_side():
            received["msgs"] = stop_and_wait_recv(receiver, len(messages))

        t = threading.Thread(target=recv_side, daemon=True)
        t.start()
        transmissions = stop_and_wait_send(
            sender, Address("rx", 1), messages
        )
        t.join(30)
        return received["msgs"], transmissions

    def test_lossless_exact_transmissions(self):
        msgs, tx = self._run(0.0, 0, list(range(5)))
        assert msgs == list(range(5))
        assert tx == 5

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lossy_delivery_complete_and_ordered(self, seed):
        msgs, tx = self._run(0.3, seed, list(range(10)))
        assert msgs == list(range(10))
        assert tx >= 10  # retransmissions happened

    def test_receiver_rejects_garbage(self):
        net = Network()
        a = DatagramSocket(net, Address("a", 1))
        b = DatagramSocket(net, Address("b", 1))
        a.sendto("not a DATA tuple", Address("b", 1))
        with pytest.raises(ProtocolError):
            stop_and_wait_recv(b, 1, timeout=1)

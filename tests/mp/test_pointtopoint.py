"""Tests for point-to-point messaging in repro.mp."""

import numpy as np
import pytest

from repro.mp import (
    ANY_SOURCE,
    ANY_TAG,
    MessageTruncated,
    Request,
    Status,
    run_spmd,
)
from repro.mp.runtime import SpmdError, World


class TestSendRecv:
    def test_object_roundtrip(self):
        def main(comm):
            if comm.Get_rank() == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_spmd(2, main)
        assert results[1] == {"a": 7, "b": 3.14}

    def test_value_semantics_deep_copy(self):
        def main(comm):
            if comm.Get_rank() == 0:
                payload = [1, 2, 3]
                comm.send(payload, dest=1)
                payload.append(99)  # must not affect the message
                return None
            return comm.recv(source=0)

        assert run_spmd(2, main)[1] == [1, 2, 3]

    def test_wildcard_source_and_status(self):
        def main(comm):
            rank = comm.Get_rank()
            if rank == 0:
                status = Status()
                value = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
                return (value, status.Get_source(), status.Get_tag())
            comm.send(f"from {rank}", dest=0, tag=rank * 10)
            return None

        value, source, tag = run_spmd(2, main)[0]
        assert value == "from 1"
        assert source == 1 and tag == 10

    def test_non_overtaking_same_source(self):
        def main(comm):
            if comm.Get_rank() == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=5)
                return None
            return [comm.recv(source=0, tag=5) for _ in range(20)]

        assert run_spmd(2, main)[1] == list(range(20))

    def test_tag_selective_receive(self):
        def main(comm):
            if comm.Get_rank() == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_spmd(2, main)[1] == ("first", "second")

    def test_sendrecv_exchange_no_deadlock(self):
        def main(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            partner = (rank + 1) % size
            return comm.sendrecv(rank, dest=partner, source=(rank - 1) % size)

        results = run_spmd(4, main)
        assert results == [3, 0, 1, 2]

    def test_invalid_dest_raises(self):
        def main(comm):
            comm.send(1, dest=99)

        with pytest.raises(SpmdError):
            run_spmd(2, main)

    def test_reserved_tag_rejected(self):
        def main(comm):
            comm.send(1, dest=0, tag=2_000_000)

        with pytest.raises(SpmdError):
            run_spmd(1, main)

    def test_negative_tag_rejected(self):
        def main(comm):
            comm.send(1, dest=0, tag=-5)

        with pytest.raises(SpmdError):
            run_spmd(1, main)


class TestNonBlocking:
    def test_isend_irecv(self):
        def main(comm):
            if comm.Get_rank() == 0:
                req = comm.isend([1, 2], dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        assert run_spmd(2, main)[1] == [1, 2]

    def test_irecv_test_polls(self):
        def main(comm):
            if comm.Get_rank() == 0:
                comm.barrier()
                comm.send("late", dest=1)
                return None
            req = comm.irecv(source=0)
            done, _ = req.test()
            assert not done  # nothing sent yet
            comm.barrier()
            value = req.wait()
            done, value2 = req.test()
            return (value, done, value2)

        value, done, value2 = run_spmd(2, main)[1]
        assert value == "late" and done and value2 == "late"

    def test_waitall(self):
        def main(comm):
            rank = comm.Get_rank()
            if rank == 0:
                reqs = [comm.irecv(source=1) for _ in range(3)]
                return Request.waitall(reqs)
            for i in range(3):
                comm.send(i, dest=0)
            return None

        assert run_spmd(2, main)[0] == [0, 1, 2]


class TestProbe:
    def test_iprobe(self):
        def main(comm):
            if comm.Get_rank() == 0:
                assert not comm.iprobe()
                comm.barrier()
                comm.recv(source=1)
                return None
            comm.send("x", dest=0)
            comm.barrier()
            return None

        run_spmd(2, main)

    def test_probe_reports_metadata_without_consuming(self):
        def main(comm):
            if comm.Get_rank() == 0:
                status = comm.probe(source=ANY_SOURCE)
                value = comm.recv(source=status.Get_source(), tag=status.Get_tag())
                return (status.Get_source(), status.Get_tag(), value)
            comm.send("hello", dest=0, tag=9)
            return None

        assert run_spmd(2, main)[0] == (1, 9, "hello")


class TestBufferMode:
    def test_numpy_roundtrip(self):
        def main(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.arange(10, dtype=np.int64), dest=1, tag=3)
                return None
            buf = np.empty(10, dtype=np.int64)
            status = Status()
            comm.Recv(buf, source=0, tag=3, status=status)
            return (buf.tolist(), status.Get_count())

        data, count = run_spmd(2, main)[1]
        assert data == list(range(10)) and count == 10

    def test_truncation_raises(self):
        def main(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.zeros(10), dest=1)
                return None
            small = np.empty(5)
            comm.Recv(small, source=0)

        with pytest.raises(SpmdError) as exc:
            run_spmd(2, main)
        assert isinstance(exc.value.cause, MessageTruncated)

    def test_send_copies_buffer(self):
        def main(comm):
            if comm.Get_rank() == 0:
                data = np.ones(4)
                comm.Send(data, dest=1)
                data[:] = 99.0
                return None
            buf = np.empty(4)
            comm.Recv(buf, source=0)
            return buf.tolist()

        assert run_spmd(2, main)[1] == [1.0, 1.0, 1.0, 1.0]

    def test_recv_on_object_message_raises(self):
        def main(comm):
            if comm.Get_rank() == 0:
                comm.send({"not": "array"}, dest=1)
                return None
            buf = np.empty(3)
            comm.Recv(buf, source=0)

        with pytest.raises(SpmdError) as exc:
            run_spmd(2, main)
        assert isinstance(exc.value.cause, TypeError)

    def test_sendrecv_buffers(self):
        def main(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            send = np.full(3, rank, dtype=np.int64)
            recv = np.empty(3, dtype=np.int64)
            comm.Sendrecv(
                send, dest=(rank + 1) % size, recvbuf=recv,
                source=(rank - 1) % size,
            )
            return recv[0]

        assert run_spmd(3, main) == [2, 0, 1]


class TestRuntime:
    def test_results_indexed_by_rank(self):
        assert run_spmd(5, lambda comm: comm.Get_rank() ** 2) == [0, 1, 4, 9, 16]

    def test_spmd_error_carries_rank(self):
        def main(comm):
            if comm.Get_rank() == 2:
                raise RuntimeError("rank 2 exploded")
            return None

        with pytest.raises(SpmdError) as exc:
            run_spmd(4, main)
        assert exc.value.rank == 2

    def test_deadlock_times_out(self):
        def main(comm):
            comm.recv(source=0)  # nobody ever sends

        with pytest.raises(TimeoutError):
            run_spmd(2, main, timeout=0.3)

    def test_world_message_trace(self):
        world = World(2)

        def main(comm):
            if comm.Get_rank() == 0:
                comm.send(1, dest=1)
            else:
                comm.recv(source=0)

        run_spmd(2, main, world=world)
        assert world.message_count == 1
        assert world.messages_from(0) == 1

    def test_world_size_mismatch(self):
        with pytest.raises(ValueError):
            run_spmd(3, lambda c: None, world=World(2))

    def test_single_rank_world(self):
        assert run_spmd(1, lambda comm: comm.Get_size()) == [1]

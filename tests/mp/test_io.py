"""Tests for simulated MPI-IO (the mpi4py tutorial patterns)."""

import numpy as np
import pytest

from repro.mp import run_spmd
from repro.mp.io import MpiFile, SimFile


class TestSimFile:
    def test_write_read_roundtrip(self):
        f = SimFile()
        f.write_at(4, b"abcd")
        assert f.read_at(4, 4) == b"abcd"
        assert f.size == 8

    def test_holes_are_zero(self):
        f = SimFile()
        f.write_at(8, b"x")
        assert f.read_at(0, 8) == b"\x00" * 8

    def test_read_past_eof_zero_filled(self):
        f = SimFile()
        f.write_at(0, b"ab")
        assert f.read_at(0, 4) == b"ab\x00\x00"

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            SimFile().write_at(-1, b"x")


class TestContiguousCollective:
    def test_write_at_all_mimics_tutorial(self):
        """The mpi4py tutorial's contiguous example: each rank writes its
        rank-filled buffer at rank * nbytes."""
        simfile = SimFile()

        def main(comm):
            fh = MpiFile(comm, simfile)
            buf = np.full(10, comm.Get_rank(), dtype=np.int32)
            fh.Write_at_all(comm.Get_rank() * buf.nbytes, buf)

        run_spmd(4, main)
        contents = simfile.as_array(np.dtype(np.int32))
        expected = np.repeat(np.arange(4, dtype=np.int32), 10)
        assert np.array_equal(contents, expected)

    def test_read_at_all_roundtrip(self):
        simfile = SimFile()

        def main(comm):
            fh = MpiFile(comm, simfile)
            out = np.full(5, comm.Get_rank(), dtype=np.float64)
            fh.Write_at_all(comm.Get_rank() * out.nbytes, out)
            back = np.empty(5)
            fh.Read_at_all(comm.Get_rank() * out.nbytes, back)
            return back.tolist()

        results = run_spmd(3, main)
        for rank, values in enumerate(results):
            assert values == [float(rank)] * 5


class TestStridedView:
    def test_interleaved_write(self):
        """The tutorial's Create_vector example: rank r owns every size-th
        element starting at element r."""
        simfile = SimFile()
        item_count = 6

        def main(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            fh = MpiFile(comm, simfile)
            buf = np.full(item_count, rank, dtype=np.int32)
            fh.Set_view(displacement_bytes=4 * rank)  # stride defaults to size
            fh.Write_all(buf)

        run_spmd(3, main)
        contents = simfile.as_array(np.dtype(np.int32))
        # Interleave: 0,1,2,0,1,2,...
        assert np.array_equal(contents, np.tile([0, 1, 2], item_count).astype(np.int32))

    def test_strided_read_back(self):
        simfile = SimFile()

        def main(comm):
            rank = comm.Get_rank()
            fh = MpiFile(comm, simfile)
            buf = np.arange(4, dtype=np.int64) + 10 * rank
            fh.Set_view(displacement_bytes=8 * rank)
            fh.Write_all(buf)
            out = np.empty(4, dtype=np.int64)
            fh.Read_all(out)
            return out.tolist()

        results = run_spmd(2, main)
        assert results[0] == [0, 1, 2, 3]
        assert results[1] == [10, 11, 12, 13]

    def test_view_required(self):
        simfile = SimFile()

        def main(comm):
            MpiFile(comm, simfile).Write_all(np.zeros(2))

        from repro.mp.runtime import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(1, main)

    def test_view_validation(self):
        simfile = SimFile()

        def main(comm):
            fh = MpiFile(comm, simfile)
            fh.Set_view(0, block_elems=4, stride_elems=2)

        from repro.mp.runtime import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(1, main)

"""Edge cases for the SPMD runtime and collectives."""

import numpy as np
import pytest

from repro.mp import MAX, SUM, run_spmd
from repro.mp.runtime import World


class TestSingleRankDegenerate:
    """Every collective must work on a world of one (MPI requires it)."""

    def test_all_object_collectives(self):
        def main(comm):
            assert comm.bcast("x", root=0) == "x"
            assert comm.gather(7, root=0) == [7]
            assert comm.scatter([9], root=0) == 9
            assert comm.allgather(1) == [1]
            assert comm.alltoall(["self"]) == ["self"]
            assert comm.reduce(5, op=SUM, root=0) == 5
            assert comm.allreduce(5, op=MAX) == 5
            assert comm.scan(3, op=SUM) == 3
            assert comm.exscan(3, op=SUM) is None
            comm.barrier()
            return True

        assert run_spmd(1, main) == [True]

    def test_buffer_collectives_size_one(self):
        def main(comm):
            buf = np.arange(4.0)
            comm.Bcast(buf, root=0)
            recv = np.empty(4)
            comm.Allreduce(buf, recv, op=SUM)
            return recv.tolist()

        assert run_spmd(1, main) == [[0.0, 1.0, 2.0, 3.0]]


class TestNonZeroRoots:
    @pytest.mark.parametrize("root", [1, 2, 3])
    def test_tree_reduce_any_root(self, root):
        def main(comm):
            return comm.reduce(comm.Get_rank() + 1, op=SUM, root=root,
                               algorithm="tree")

        results = run_spmd(4, main)
        assert results[root] == 10
        assert all(results[r] is None for r in range(4) if r != root)

    def test_gather_scatter_nonzero_root(self):
        def main(comm):
            gathered = comm.gather(comm.Get_rank(), root=2)
            seeds = [10, 20, 30, 40] if comm.Get_rank() == 2 else None
            mine = comm.scatter(seeds, root=2)
            return (gathered, mine)

        results = run_spmd(4, main)
        assert results[2][0] == [0, 1, 2, 3]
        assert [r[1] for r in results] == [10, 20, 30, 40]

    def test_invalid_root_rejected(self):
        from repro.mp.runtime import SpmdError

        def main(comm):
            comm.bcast("x", root=9)

        with pytest.raises(SpmdError):
            run_spmd(2, main)


class TestSelfMessaging:
    def test_send_to_self(self):
        def main(comm):
            comm.send("note to self", dest=comm.Get_rank())
            return comm.recv(source=comm.Get_rank())

        assert run_spmd(2, main) == ["note to self"] * 2


class TestWorldIntrospection:
    def test_trace_records_source_dest_tag(self):
        world = World(2)

        def main(comm):
            if comm.Get_rank() == 0:
                comm.send("x", dest=1, tag=42)
            else:
                comm.recv(source=0)

        run_spmd(2, main, world=world)
        record = world.trace()[0]
        assert (record.source, record.dest, record.tag) == (0, 1, 42)

    def test_reusing_a_world_across_jobs_rejected_sizes(self):
        world = World(3)
        with pytest.raises(ValueError):
            world.communicator(7)

    def test_zero_size_world_rejected(self):
        with pytest.raises(ValueError):
            World(0)


class TestObjectIsolation:
    def test_numpy_in_object_mode_is_copied(self):
        def main(comm):
            if comm.Get_rank() == 0:
                arr = np.zeros(3)
                comm.send(arr, dest=1)
                arr[:] = 9.0
                return None
            received = comm.recv(source=0)
            return received.tolist()

        assert run_spmd(2, main)[1] == [0.0, 0.0, 0.0]

    def test_bcast_gives_each_rank_its_own_copy(self):
        def main(comm):
            data = comm.bcast({"xs": []} if comm.Get_rank() == 0 else None)
            data["xs"].append(comm.Get_rank())
            return len(data["xs"])

        # If ranks shared one dict, lengths would exceed 1.
        assert run_spmd(4, main) == [1, 1, 1, 1]

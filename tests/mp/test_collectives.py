"""Tests for collective operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp import MAX, MAXLOC, MIN, MINLOC, PROD, SUM, run_spmd
from repro.mp.ops import LAND, LOR, Op
from repro.mp.runtime import World


class TestBroadcast:
    @pytest.mark.parametrize("algorithm", ["linear", "tree"])
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_bcast_all_sizes(self, algorithm, size):
        def main(comm):
            obj = {"n": 42} if comm.Get_rank() == 0 else None
            return comm.bcast(obj, root=0, algorithm=algorithm)

        assert run_spmd(size, main) == [{"n": 42}] * size

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_bcast_nonzero_root(self, root):
        def main(comm):
            obj = "payload" if comm.Get_rank() == root else None
            return comm.bcast(obj, root=root)

        assert run_spmd(4, main) == ["payload"] * 4

    def test_tree_root_sends_fewer_messages(self):
        """The ablation: the root's send count is log2(p) for the tree
        and p-1 for linear."""
        def run(algorithm):
            world = World(8)

            def main(comm):
                comm.bcast("x" if comm.Get_rank() == 0 else None,
                           root=0, algorithm=algorithm)

            run_spmd(8, main, world=world)
            return world.messages_from(0)

        assert run("linear") == 7
        assert run("tree") == 3  # log2(8)

    def test_unknown_algorithm(self):
        def main(comm):
            comm.bcast(1, algorithm="magic")

        from repro.mp.runtime import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(2, main)


class TestGatherScatter:
    def test_gather_rank_order(self):
        def main(comm):
            return comm.gather(comm.Get_rank() * 10, root=0)

        results = run_spmd(4, main)
        assert results[0] == [0, 10, 20, 30]
        assert results[1] is None

    def test_scatter(self):
        def main(comm):
            data = [i * i for i in range(4)] if comm.Get_rank() == 0 else None
            return comm.scatter(data, root=0)

        assert run_spmd(4, main) == [0, 1, 4, 9]

    def test_scatter_wrong_length(self):
        def main(comm):
            comm.scatter([1, 2], root=0)  # world is 3

        from repro.mp.runtime import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(3, main)

    def test_allgather(self):
        def main(comm):
            return comm.allgather(chr(ord("a") + comm.Get_rank()))

        assert run_spmd(3, main) == [["a", "b", "c"]] * 3

    def test_alltoall(self):
        def main(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            return comm.alltoall([f"{rank}->{j}" for j in range(size)])

        results = run_spmd(3, main)
        for j, row in enumerate(results):
            assert row == [f"{i}->{j}" for i in range(3)]


class TestReductions:
    @pytest.mark.parametrize("algorithm", ["linear", "tree"])
    def test_reduce_sum(self, algorithm):
        def main(comm):
            return comm.reduce(comm.Get_rank() + 1, op=SUM, root=0,
                               algorithm=algorithm)

        results = run_spmd(6, main)
        assert results[0] == 21
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("op,expected", [
        (SUM, 10), (PROD, 24), (MAX, 4), (MIN, 1),
    ])
    def test_predefined_ops(self, op, expected):
        def main(comm):
            return comm.allreduce(comm.Get_rank() + 1, op=op)

        assert run_spmd(4, main) == [expected] * 4

    def test_logical_ops(self):
        def main(comm):
            all_true = comm.allreduce(True, op=LAND)
            any_high = comm.allreduce(comm.Get_rank() >= 3, op=LOR)
            return (all_true, any_high)

        assert run_spmd(4, main) == [(True, True)] * 4

    def test_maxloc_minloc(self):
        values = [3.0, 9.0, 1.0, 9.0]

        def main(comm):
            rank = comm.Get_rank()
            hi = comm.allreduce((values[rank], rank), op=MAXLOC)
            lo = comm.allreduce((values[rank], rank), op=MINLOC)
            return (hi, lo)

        results = run_spmd(4, main)
        assert results[0] == ((9.0, 1), (1.0, 2))  # ties pick lower index

    def test_noncommutative_op_uses_rank_order(self):
        concat = Op("CONCAT", lambda a, b: a + b, commutative=False)

        def main(comm):
            return comm.reduce(str(comm.Get_rank()), op=concat, root=0,
                               algorithm="tree")  # must fall back to linear

        assert run_spmd(5, main)[0] == "01234"

    def test_scan_inclusive(self):
        def main(comm):
            return comm.scan(comm.Get_rank() + 1, op=SUM)

        assert run_spmd(5, main) == [1, 3, 6, 10, 15]

    def test_exscan(self):
        def main(comm):
            return comm.exscan(comm.Get_rank() + 1, op=SUM)

        assert run_spmd(5, main) == [None, 1, 3, 6, 10]

    @given(st.lists(st.integers(-50, 50), min_size=2, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_property_allreduce_matches_serial(self, values):
        def main(comm):
            return comm.allreduce(values[comm.Get_rank()], op=SUM)

        assert run_spmd(len(values), main) == [sum(values)] * len(values)


class TestBarrier:
    def test_barrier_synchronizes_phases(self):
        def main(comm):
            trace = []
            for phase in range(3):
                trace.append(phase)
                comm.barrier()
            return trace

        assert run_spmd(4, main) == [[0, 1, 2]] * 4

    def test_collectives_after_barrier_unconfused(self):
        """Barrier's internal messages must not collide with later
        collectives' traffic (distinct internal tags)."""
        def main(comm):
            comm.barrier()
            a = comm.allreduce(1, op=SUM)
            comm.barrier()
            b = comm.allgather(comm.Get_rank())
            return (a, b)

        results = run_spmd(4, main)
        assert results[0] == (4, [0, 1, 2, 3])


class TestBufferCollectives:
    def test_Bcast(self):
        def main(comm):
            buf = (np.arange(6.0) if comm.Get_rank() == 0 else np.empty(6))
            comm.Bcast(buf, root=0)
            return buf.sum()

        assert run_spmd(3, main) == [15.0] * 3

    def test_Scatter_Gather_roundtrip(self):
        def main(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            send = (
                np.arange(size * 4, dtype=np.float64).reshape(size, 4)
                if rank == 0 else None
            )
            mine = np.empty(4)
            comm.Scatter(send, mine, root=0)
            mine += 100.0
            out = np.empty((size, 4)) if rank == 0 else None
            comm.Gather(mine, out, root=0)
            return out.sum() if rank == 0 else None

        total = run_spmd(4, main)[0]
        assert total == np.arange(16).sum() + 100 * 16

    def test_Allgather(self):
        def main(comm):
            size = comm.Get_size()
            recv = np.empty((size, 2))
            comm.Allgather(np.full(2, float(comm.Get_rank())), recv)
            return recv[:, 0].tolist()

        assert run_spmd(3, main) == [[0.0, 1.0, 2.0]] * 3

    def test_Reduce_elementwise(self):
        def main(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            send = np.arange(4, dtype=np.float64) * (rank + 1)
            recv = np.empty(4) if rank == 0 else None
            comm.Reduce(send, recv, op=SUM, root=0)
            return recv.tolist() if rank == 0 else None

        # sum over (rank+1) = 1+2+3 = 6; element i = 6*i
        assert run_spmd(3, main)[0] == [0.0, 6.0, 12.0, 18.0]

    def test_Allreduce_max(self):
        def main(comm):
            send = np.array([float(comm.Get_rank()), 10.0 - comm.Get_rank()])
            recv = np.empty(2)
            comm.Allreduce(send, recv, op=MAX)
            return recv.tolist()

        assert run_spmd(4, main) == [[3.0, 10.0]] * 4

    def test_maxloc_rejected_in_buffer_mode(self):
        def main(comm):
            send = np.zeros(2)
            recv = np.empty(2)
            comm.Allreduce(send, recv, op=MAXLOC)

        from repro.mp.runtime import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(2, main)

"""Tests for cartesian topologies."""

import pytest

from repro.mp import CartComm, run_spmd
from repro.mp.topology import dims_create


class TestDimsCreate:
    @pytest.mark.parametrize("nnodes,ndims", [(12, 2), (16, 2), (24, 3), (7, 1), (1, 2)])
    def test_product_preserved(self, nnodes, ndims):
        dims = dims_create(nnodes, ndims)
        product = 1
        for d in dims:
            product *= d
        assert product == nnodes
        assert len(dims) == ndims

    def test_balanced_square(self):
        assert dims_create(16, 2) == [4, 4]

    def test_nonincreasing(self):
        for n in (6, 12, 30, 64):
            dims = dims_create(n, 3)
            assert dims == sorted(dims, reverse=True)

    def test_prime_becomes_line(self):
        assert dims_create(7, 2) == [7, 1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            dims_create(0, 2)
        with pytest.raises(ValueError):
            dims_create(4, 0)


class TestCartComm:
    def test_size_must_match_grid(self):
        def main(comm):
            CartComm(comm, (2, 2))  # world is 6

        from repro.mp.runtime import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(6, main)

    def test_coords_roundtrip(self):
        def main(comm):
            cart = CartComm(comm, (2, 3))
            coords = cart.Get_coords()
            return cart.Get_cart_rank(coords) == comm.Get_rank(), coords

        results = run_spmd(6, main)
        assert all(ok for ok, _ in results)
        assert [c for _, c in results] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_row_major_layout(self):
        def main(comm):
            cart = CartComm(comm, (2, 3))
            return cart.Get_cart_rank((1, 2))

        assert run_spmd(6, main)[0] == 5

    def test_shift_non_periodic_edges(self):
        def main(comm):
            cart = CartComm(comm, (4,), periods=(False,))
            return cart.Shift(0)

        results = run_spmd(4, main)
        assert results[0] == (None, 1)
        assert results[3] == (2, None)
        assert results[1] == (0, 2)

    def test_shift_periodic_wraps(self):
        def main(comm):
            cart = CartComm(comm, (4,), periods=(True,))
            return cart.Shift(0)

        results = run_spmd(4, main)
        assert results[0] == (3, 1)
        assert results[3] == (2, 0)

    def test_nonperiodic_out_of_range_coord(self):
        def main(comm):
            cart = CartComm(comm, (2, 2))
            cart.Get_cart_rank((2, 0))

        from repro.mp.runtime import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(4, main)

    def test_neighbor_exchange_ring(self):
        def main(comm):
            cart = CartComm(comm, (4,), periods=(True,))
            lo, hi = cart.neighbor_exchange(0, comm.Get_rank())
            return (lo, hi)

        results = run_spmd(4, main)
        assert results == [(3, 1), (0, 2), (1, 3), (2, 0)]

    def test_neighbor_exchange_edge_gets_none(self):
        def main(comm):
            cart = CartComm(comm, (3,), periods=(False,))
            return cart.neighbor_exchange(0, comm.Get_rank())

        results = run_spmd(3, main)
        assert results[0] == (None, 1)
        assert results[2] == (1, None)

    def test_row_ranks(self):
        def main(comm):
            cart = CartComm(comm, (2, 3))
            return cart.row_ranks(1)

        results = run_spmd(6, main)
        assert results[0] == [0, 1, 2]
        assert results[4] == [3, 4, 5]

    def test_halo_stencil_average(self):
        """A 1-D Jacobi step over a periodic ring, the topology's use case."""
        def main(comm):
            cart = CartComm(comm, (4,), periods=(True,))
            mine = float(comm.Get_rank())
            lo, hi = cart.neighbor_exchange(0, mine)
            return (lo + mine + hi) / 3.0

        results = run_spmd(4, main)
        assert results[1] == pytest.approx((0 + 1 + 2) / 3)
        assert results[0] == pytest.approx((3 + 0 + 1) / 3)

"""Tests for reduction operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp.ops import (
    BAND,
    BOR,
    LAND,
    LOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
)


class TestScalarForms:
    def test_sum_prod(self):
        assert SUM(2, 3) == 5
        assert PROD(2, 3) == 6

    def test_max_min(self):
        assert MAX(2, 9) == 9
        assert MIN(2, 9) == 2

    def test_logical(self):
        assert LAND(1, 0) is False
        assert LOR(0, 1) is True

    def test_bitwise(self):
        assert BAND(0b1100, 0b1010) == 0b1000
        assert BOR(0b1100, 0b1010) == 0b1110

    def test_maxloc_prefers_lower_index_on_tie(self):
        assert MAXLOC((5, 2), (5, 1)) == (5, 1)
        assert MAXLOC((7, 3), (5, 0)) == (7, 3)

    def test_minloc(self):
        assert MINLOC((5, 2), (3, 4)) == (3, 4)
        assert MINLOC((3, 2), (3, 1)) == (3, 1)


class TestBufferForms:
    def test_ufunc_elementwise(self):
        a = np.array([1.0, 5.0])
        b = np.array([4.0, 2.0])
        assert SUM.reduce_arrays(a, b).tolist() == [5.0, 7.0]
        assert MAX.reduce_arrays(a, b).tolist() == [4.0, 5.0]

    def test_maxloc_has_no_buffer_form(self):
        with pytest.raises(TypeError):
            MAXLOC.reduce_arrays(np.zeros(2), np.zeros(2))

    def test_repr_is_mpi_name(self):
        assert repr(SUM) == "MPI_SUM"


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_property_fold_order_irrelevant_for_sum(values):
    """Commutative/associative: left fold == right fold."""
    left = values[0]
    for v in values[1:]:
        left = SUM(left, v)
    right = values[-1]
    for v in reversed(values[:-1]):
        right = SUM(v, right)
    assert left == right == sum(values)


@given(
    st.tuples(st.integers(-50, 50), st.integers(0, 10)),
    st.tuples(st.integers(-50, 50), st.integers(0, 10)),
    st.tuples(st.integers(-50, 50), st.integers(0, 10)),
)
@settings(max_examples=50, deadline=None)
def test_property_maxloc_associative(a, b, c):
    assert MAXLOC(MAXLOC(a, b), c) == MAXLOC(a, MAXLOC(b, c))

"""The model checker: DPOR reduction, replay identity, crash tokens.

The acceptance bar from the issue, pinned as tests:

- DPOR explores **at least 5x fewer** schedules than naive DFS at
  identical verdicts, with both counts recorded (the counts are exact:
  exploration is deterministic, so a change in either number is a
  change in the algorithm and should be looked at);
- a failing schedule's token replays the execution byte-identically;
- a crash inside a stand-in thread surfaces as a runner error carrying
  the schedule token instead of being swallowed.
"""

import textwrap

from repro.sanitizers.runner import run_source
from repro.verify import (
    ExploreBudget,
    explore_fixture,
    explore_source,
    replay_fixture,
)

#: (fixture, dpor schedules, dfs schedules) — exact, deterministic.
REDUCTION_TABLE = [
    ("racy_counter_twin", 10, 69),
    ("mutable_default_worker", 1, 105),
]


def result_bytes(result) -> bytes:
    """Canonical byte encoding of a run: findings, errors, schedule."""
    blob = (
        tuple(
            (f.rule, f.path, f.line, f.col, f.symbol, f.message)
            for f in result.findings
        ),
        tuple(result.errors),
        result.schedule,
    )
    return repr(blob).encode()


class TestDporReduction:
    def test_dpor_beats_dfs_by_5x_at_identical_verdicts(self):
        for name, dpor_expected, dfs_expected in REDUCTION_TABLE:
            dpor = explore_fixture(name, mode="dpor")
            dfs = explore_fixture(name, mode="dfs")
            # Identical verdicts first: reduction must not lose bugs.
            assert dpor.rules == dfs.rules, name
            assert dpor.proved and dfs.proved, name
            # Both counts recorded, exactly.
            assert dpor.schedules_explored == dpor_expected, (
                f"{name}: DPOR explored {dpor.schedules_explored}, "
                f"expected {dpor_expected}"
            )
            assert dfs.schedules_explored == dfs_expected, (
                f"{name}: DFS explored {dfs.schedules_explored}, "
                f"expected {dfs_expected}"
            )
            assert dfs.schedules_explored >= 5 * dpor.schedules_explored, (
                f"{name}: reduction below 5x "
                f"({dfs.schedules_explored} vs {dpor.schedules_explored})"
            )

    def test_dpor_records_pruned_schedules(self):
        result = explore_fixture("racy_counter_twin", mode="dpor")
        assert result.schedules_pruned > 0

    def test_dpor_drains_what_dfs_cannot(self):
        # The ABBA deadlock: DPOR proves the verdict in a few dozen
        # schedules; naive DFS burns the whole default budget and still
        # has tree left.
        dpor = explore_fixture("abba_deadlock_twin", mode="dpor")
        assert dpor.complete and dpor.proved
        assert dpor.schedules_explored == 23
        assert dpor.rules == {"PDC302"}
        dfs = explore_fixture("abba_deadlock_twin", mode="dfs")
        assert not dfs.complete
        assert dfs.rules == {"PDC302"}  # same verdict, no proof


class TestReplayIdentity:
    def test_finding_token_replays_byte_identically(self):
        explored = explore_fixture("racy_counter_twin", mode="dpor")
        token = explored.tokens["PDC301"]
        first = replay_fixture("racy_counter_twin", token)
        second = replay_fixture("racy_counter_twin", token)
        assert result_bytes(first) == result_bytes(second)
        assert first.schedule == token
        assert "PDC301" in {f.rule for f in first.findings}

    def test_deadlock_token_replays_the_deadlock(self):
        explored = explore_fixture("abba_deadlock_twin", mode="dpor")
        token = explored.tokens["PDC302"]
        replayed = replay_fixture("abba_deadlock_twin", token)
        assert "PDC302" in {f.rule for f in replayed.findings}
        assert replayed.schedule == token


class TestSplitExploration:
    def test_split_dfs_matches_serial_dfs(self):
        serial = explore_fixture("mutable_default_worker", mode="dfs")
        split = explore_fixture("mutable_default_worker", mode="dfs", split=2)
        assert split.rules == serial.rules
        assert split.findings == serial.findings
        assert split.schedules_explored == serial.schedules_explored
        assert split.complete

    def test_split_dpor_keeps_the_verdict(self):
        serial = explore_fixture("racy_counter_twin", mode="dpor")
        split = explore_fixture("racy_counter_twin", mode="dpor", split=2)
        assert split.rules == serial.rules == {"PDC301"}
        assert split.complete


CRASHY = textwrap.dedent(
    '''
    """A worker that dies: the checker must say so, with a token."""
    import threading

    counter = 0


    def boom():
        global counter
        counter += 1
        raise ValueError("kaput")


    def steady():
        global counter
        counter += 1


    def main():
        first = threading.Thread(target=boom)
        second = threading.Thread(target=steady)
        first.start(); second.start()
        first.join(); second.join()
    '''
).lstrip()


class TestCrashSurfacing:
    def test_scheduled_crash_carries_schedule_token(self):
        result = explore_source(
            CRASHY, entry="main",
            budget=ExploreBudget(max_schedules=50, max_steps_per_task=100),
        )
        assert result.errors
        assert any(
            "raised ValueError: kaput" in e and "[schedule v1:" in e
            for e in result.errors
        )
        assert result.exit_code == 2

    def test_inline_runner_surfaces_crash_without_scheduler(self):
        # The classic single-schedule run must also report the crash
        # (stand-in threads used to swallow worker exceptions).
        result = run_source(CRASHY, entry="main")
        assert any("raised ValueError: kaput" in e for e in result.errors)
        assert result.schedule is None


class TestBudgets:
    def test_budget_bound_is_reported_not_hidden(self):
        tiny = explore_fixture(
            "racy_counter_twin", mode="dfs",
            budget=ExploreBudget(max_schedules=3, max_steps_per_task=100),
        )
        assert not tiny.complete
        assert not tiny.proved
        assert tiny.schedules_explored == 3

    def test_fixture_annotations_bound_spin_fixtures(self):
        # lock_handoff_twin busy-waits: its annotated budget bounds the
        # search, and the result says "bounded", not "proved".
        result = explore_fixture("lock_handoff_twin", mode="dpor")
        assert not result.proved
        assert result.schedules_explored <= 400

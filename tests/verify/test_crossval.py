"""Checker vs sanitizer cross-validation: the three-tool invariants.

Over the runnable twin corpus:

- **reachability**: every PDC301/PDC302 the sanitizer observed on its
  single schedule must be reachable by the checker (it explores a
  superset of schedules, so missing one would be a checker bug);
- **exoneration**: a known-false-positive lockset PDC101 that the
  checker *exhausts* without reproducing is machine-confirmed static
  noise — both twins built for this purpose must come out exonerated;
- **completeness**: fixtures annotated ``verify_complete=True`` must be
  drained within budget; busy-wait fixtures annotated
  ``verify_complete=False`` are allowed their CHESS-style bound.
"""

import json

from repro.verify.crossval import (
    cross_validate_checker,
    render_verify_crossval_text,
    run_verify_crossval_cli,
)


class TestCrossValidation:
    def setup_method(self):
        self.report = cross_validate_checker(mode="dpor")

    def test_every_invariant_holds(self):
        assert self.report.all_ok, render_verify_crossval_text(self.report)

    def test_every_single_run_finding_is_checker_reachable(self):
        assert self.report.unreachable == []
        for verdict in self.report.verdicts:
            assert verdict.reachable_ok, verdict.name

    def test_both_twin_false_positives_are_exonerated(self):
        assert self.report.exonerated == [
            "forkjoin_handoff_twin",
            "lock_handoff_twin",
        ]

    def test_exoneration_requires_exhaustion(self):
        # An exonerated fixture's verdict really was proved (or carries
        # the machine-readable bound annotation) — never a lucky miss.
        by_name = {v.name: v for v in self.report.verdicts}
        assert by_name["forkjoin_handoff_twin"].complete
        assert "PDC301" not in by_name["forkjoin_handoff_twin"].checker_rules
        assert "PDC101" in by_name["forkjoin_handoff_twin"].static_rules

    def test_stats_are_recorded_per_fixture(self):
        assert self.report.total_explored > 0
        assert self.report.total_pruned > 0
        for verdict in self.report.verdicts:
            assert verdict.schedules_explored >= 1, verdict.name

    def test_report_serializes(self):
        blob = json.dumps(self.report.to_dict())
        parsed = json.loads(blob)
        assert parsed["all_ok"] is True
        assert len(parsed["fixtures"]) == len(self.report.verdicts)


class TestCrossvalCli:
    def test_stats_artifact_written(self, tmp_path, capsys):
        stats = tmp_path / "verify-stats.json"
        code = run_verify_crossval_cli(
            "text", mode="dpor", stats_path=str(stats)
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(stats.read_text())
        assert payload["all_ok"] is True
        assert payload["exonerated"] == [
            "forkjoin_handoff_twin",
            "lock_handoff_twin",
        ]

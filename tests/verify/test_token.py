"""The schedule token: one line that replays one interleaving."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.verify.token import TokenError, decode_token, encode_token


class TestRoundTrip:
    @given(choices=st.lists(st.integers(min_value=0, max_value=9), max_size=40))
    def test_encode_decode_round_trips(self, choices):
        assert decode_token(encode_token(choices)) == list(choices)

    @given(choices=st.lists(st.integers(min_value=0, max_value=9), max_size=40))
    def test_encoding_is_canonical(self, choices):
        # decode . encode is the identity on tokens too
        token = encode_token(choices)
        assert encode_token(decode_token(token)) == token


class TestFormat:
    def test_run_length_compression(self):
        assert encode_token([0, 0, 0, 1, 2, 2, 2, 2, 2]) == "v1:0x3,1,2x5"

    def test_single_choice_omits_count(self):
        assert encode_token([4]) == "v1:4"

    def test_empty_schedule(self):
        assert decode_token(encode_token([])) == []


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "0x3,1",  # missing version prefix
            "v2:0x3",  # wrong version
            "v1:0x0",  # zero repetition
            "v1:-1",  # negative task
            "v1:0,,1",  # empty segment
            "v1:ax3",  # non-numeric task
        ],
    )
    def test_malformed_tokens_rejected(self, bad):
        with pytest.raises(TokenError):
            decode_token(bad)

"""The replay scheduler: determinism, blocking semantics, deadlocks.

The substrate the whole checker rests on: execution under a schedule
prefix must be a *pure function* of the choice sequence.  Everything
here drives real fixture sources through
:func:`repro.sanitizers.runner.run_source` with a scheduler attached.
"""

import textwrap

import pytest

from repro.sanitizers.runner import run_source
from repro.smp.fixtures import fixture
from repro.verify.scheduler import ReplayScheduler, SchedulerError


def _run_scheduled(source, prefix=(), entry="main", entrypoints=(), **kw):
    scheduler = ReplayScheduler(prefix=list(prefix), **kw)
    result = run_source(
        source, entry=entry, entrypoints=entrypoints, scheduler=scheduler
    )
    return result, scheduler.trace


class TestDeterminism:
    def test_same_prefix_same_trace(self):
        fix = fixture("racy_counter_twin")
        first, trace_a = _run_scheduled(fix.source, entry=fix.dynamic_entry)
        second, trace_b = _run_scheduled(fix.source, entry=fix.dynamic_entry)
        assert trace_a.choices == trace_b.choices
        assert first.schedule == second.schedule
        assert [
            (f.rule, f.line, f.message) for f in first.findings
        ] == [(f.rule, f.line, f.message) for f in second.findings]

    def test_replaying_a_full_trace_reproduces_it(self):
        fix = fixture("racy_counter_twin")
        _, trace = _run_scheduled(fix.source, entry=fix.dynamic_entry)
        _, replayed = _run_scheduled(
            fix.source, prefix=trace.choices, entry=fix.dynamic_entry,
            strict=True,
        )
        assert replayed.choices == trace.choices
        assert [e.kind for e in replayed.events] == [
            e.kind for e in trace.events
        ]


BLOCKING = textwrap.dedent(
    '''
    """Lock handoff: the scheduler must model real blocking."""
    import threading

    lock = threading.Lock()
    order = []


    def first():
        with lock:
            order.append("first")


    def second():
        with lock:
            order.append("second")


    def main():
        a = threading.Thread(target=first)
        b = threading.Thread(target=second)
        a.start(); b.start()
        a.join(); b.join()
        return tuple(order)
    '''
).lstrip()


class TestBlockingSemantics:
    def test_lock_owner_blocks_contenders(self):
        # Whatever the schedule, both critical sections run and never
        # interleave — the run completes with both entries present.
        result, trace = _run_scheduled(BLOCKING)
        assert result.value == ("first", "second") or result.value == (
            "second", "first",
        )
        assert not trace.deadlock
        assert not result.errors

    def test_events_record_enabled_sets(self):
        _, trace = _run_scheduled(BLOCKING)
        assert trace.events, "scheduler recorded no decision points"
        for event in trace.events:
            assert event.task in event.enabled
            assert event.task in event.pending


class TestDeadlock:
    def test_abba_deadlock_is_reachable_and_reported(self):
        # The fixture's two transfer entrypoints acquire (a, b) and
        # (b, a); some interleaving must reach the circular wait — not
        # just the lock-order *observation*, the actual runtime deadlock,
        # with the wait-for cycle naming the two tasks.
        from repro.verify import explore_fixture, replay_fixture

        fix = fixture("abba_deadlock_twin")
        explored = explore_fixture(fix, mode="dpor")
        deadlocks = [
            f for f in explored.findings
            if f.rule == "PDC302" and "wait-for cycle" in f.message
        ]
        assert deadlocks, [f.message for f in explored.findings]
        assert any(
            "transfer_ab" in f.message and "transfer_ba" in f.message
            for f in deadlocks
        )
        # And the recorded PDC302 token replays to a PDC302 verdict.
        replayed = replay_fixture(fix, explored.tokens["PDC302"])
        assert "PDC302" in {f.rule for f in replayed.findings}


class TestStepCap:
    def test_runaway_task_is_truncated_not_hung(self):
        spin = textwrap.dedent(
            """
            import threading

            flag = False

            def waiter():
                while not flag:
                    pass

            def main():
                t = threading.Thread(target=waiter)
                t.start()
            """
        ).lstrip()
        _, trace = _run_scheduled(spin, max_steps_per_task=25)
        assert trace.truncated


class TestStrictMode:
    def test_divergent_prefix_raises(self):
        fix = fixture("racy_counter_twin")
        with pytest.raises(SchedulerError):
            _run_scheduled(
                fix.source, prefix=[99, 99], entry=fix.dynamic_entry,
                strict=True,
            )

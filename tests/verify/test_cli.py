"""The ``pdc-verify`` CLI: modes, formats, caching, exit codes."""

import json

from repro.verify.__main__ import main

RACY = """\
import threading

counter = 0

def worker():
    global counter
    counter += 1

def main():
    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
"""


class TestListRules:
    def test_lists_the_dynamic_rule_table(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "PDC301" in out and "PDC302" in out


class TestFixtureMode:
    def test_racy_fixture_exits_one(self, capsys, tmp_path):
        code = main([
            "--fixture", "racy_counter_twin", "--cache-dir", str(tmp_path),
        ])
        assert code == 1
        assert "PDC301" in capsys.readouterr().out

    def test_exhausted_clean_fixture_exits_zero(self, capsys, tmp_path):
        code = main([
            "--fixture", "forkjoin_handoff_twin", "--cache-dir", str(tmp_path),
        ])
        assert code == 0

    def test_engine_cache_round_trip_is_byte_identical(self, capsys, tmp_path):
        argv = [
            "--fixture", "racy_counter_twin", "--format", "json",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 1
        cold = capsys.readouterr().out
        assert main(argv) == 1
        warm = capsys.readouterr().out
        assert warm == cold
        assert json.loads(cold)["tool"] == "pdc-verify"


class TestPathMode:
    def test_model_checks_a_file(self, tmp_path, capsys):
        target = tmp_path / "prog.py"
        target.write_text(RACY)
        code = main([str(target), "--cache-dir", str(tmp_path / "cache")])
        assert code == 1
        assert "PDC301" in capsys.readouterr().out


class TestReplayMode:
    def test_replay_token_prints_schedule(self, capsys, tmp_path):
        from repro.verify import explore_fixture

        token = explore_fixture("racy_counter_twin").tokens["PDC301"]
        code = main(["--fixture", "racy_counter_twin", "--replay", token])
        assert code == 1
        out = capsys.readouterr().out
        assert "PDC301" in out
        assert f"schedule: {token}" in out


class TestCrossvalMode:
    def test_crossval_gate_passes_and_writes_stats(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        code = main(["--crossval", "--stats-json", str(stats)])
        assert code == 0
        out = capsys.readouterr().out
        assert "EXONERATED" in out
        payload = json.loads(stats.read_text())
        assert payload["all_ok"] is True
        assert payload["total_explored"] > 0

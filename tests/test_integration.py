"""Integration tests: flows that cross subpackage boundaries.

Each test is a miniature of how a course actually strings the library
together — the substrate feeding the pedagogy feeding the accreditation
engine, or two substrates composing (MPI + algorithms, GPU + scans).
"""

import numpy as np
import pytest

from repro.mp import SUM, run_spmd


class TestMpiAlgorithmComposition:
    def test_distributed_mergesort(self):
        """Scatter chunks, sort locally (the algorithms package), gather,
        and k-way merge at the root — the classic cluster sort lab."""
        from repro.algorithms.sorting import merge, serial_mergesort

        rng = np.random.default_rng(5)
        data = list(rng.integers(0, 10_000, 400))

        def main(comm, data):
            rank, size = comm.Get_rank(), comm.Get_size()
            if rank == 0:
                chunks = [list(data[i::size]) for i in range(size)]
            else:
                chunks = None
            mine = comm.scatter(chunks, root=0)
            mine_sorted = serial_mergesort(mine)
            gathered = comm.gather(mine_sorted, root=0)
            if rank == 0:
                out: list = []
                for chunk in gathered:
                    out = merge(out, chunk)
                return out
            return None

        result = run_spmd(4, main, data)[0]
        assert result == sorted(data)

    def test_distributed_dot_product_matches_numpy(self):
        x = np.arange(128.0)
        y = np.arange(128.0)[::-1].copy()

        def main(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            lo = rank * len(x) // size
            hi = (rank + 1) * len(x) // size
            return comm.allreduce(float(x[lo:hi] @ y[lo:hi]), op=SUM)

        results = run_spmd(4, main)
        assert all(r == pytest.approx(float(x @ y)) for r in results)

    def test_cartesian_jacobi_converges(self):
        """A 1-D Jacobi heat solve over a ring of ranks with halo
        exchange; the interior converges toward the linear profile."""
        from repro.mp.topology import CartComm

        def main(comm, steps=200):
            cart = CartComm(comm, (comm.Get_size(),), periods=(False,))
            rank, size = comm.Get_rank(), comm.Get_size()
            u = 0.0  # one cell per rank, boundaries fixed at 0 and 1
            for _ in range(steps):
                lo, hi = cart.neighbor_exchange(0, u)
                left = 0.0 if lo is None else lo
                right = 1.0 if hi is None else hi
                u = 0.5 * (left + right)
            return u

        values = run_spmd(4, main)
        expected = [(r + 1) / 5 for r in range(4)]
        assert values == pytest.approx(expected, abs=1e-3)


class TestGpuAlgorithmAgreement:
    def test_device_scan_matches_host_scans(self):
        from repro.algorithms.scan import blelloch_scan, hillis_steele_scan
        from repro.gpu import Device
        from repro.gpu.libdevice import device_inclusive_scan

        x = np.random.default_rng(6).random(64)
        gpu, _ = device_inclusive_scan(Device(), x)
        hs, _ = hillis_steele_scan(x)
        bl, _ = blelloch_scan(x)
        assert np.allclose(gpu, hs)
        assert np.allclose(gpu, bl + x)

    def test_device_reduce_matches_tree_reduce(self):
        from repro.algorithms.reduction import tree_reduce
        from repro.gpu import Device
        from repro.gpu.libdevice import device_reduce_sum

        x = np.random.default_rng(7).random(500)
        gpu_total, _ = device_reduce_sum(Device(), x, block=32)
        host_total, _ = tree_reduce(x)
        assert gpu_total == pytest.approx(host_total)


class TestCoursePipelineEndToEnd:
    def test_syllabus_to_accreditation_evidence(self):
        """The full §IV-A loop: deliver the LAU syllabus, grade a cohort,
        compute SO attainment, and confirm the program the course belongs
        to is compliant — the artifacts an ABET visit asks for."""
        from repro.core.casestudies import lau_program
        from repro.core.compliance import check_program
        from repro.pedagogy import Autograder, OutcomeAssessment, build_lau_course

        syllabus = build_lau_course()
        grader = Autograder(syllabus.exercises())
        assert grader.sanity_check() == []

        perfect = {e.exercise_id: e.reference for e in syllabus.exercises()}
        reports = grader.grade_cohort(
            {f"student{i}": perfect for i in range(5)}
        )
        attainment = OutcomeAssessment(syllabus.exercises()).assess(reports)
        assert all(a.met for a in attainment.values())

        compliance = check_program(lau_program())
        assert compliance.compliant
        # The course's topics all appear in the compliance evidence.
        course = lau_program().course("CSC447")
        assert set(course.pdc_topics()) <= set(compliance.covered_topics)

    def test_advisor_plus_designer_loop(self):
        """Advisor recommendations, applied, satisfy the criteria the
        compliance engine checks — the designer workflow, automated."""
        from repro.core.advisor import advise
        from repro.core.compliance import check_program
        from repro.core.course import Course, Coverage, Depth
        from repro.core.program import Program
        from repro.core.taxonomy import CourseType

        program = Program(
            "Loop U", "L",
            courses=[
                Course("ARCH", "Arch", CourseType.ARCHITECTURE, 10.0),
                Course("OS", "OS", CourseType.OPERATING_SYSTEMS, 10.0),
                Course("DB", "DB", CourseType.DATABASE, 10.0),
                Course("NET", "Net", CourseType.NETWORKS, 10.0),
            ],
        )
        plan = advise(program)
        assert not plan.already_compliant
        embeddings: dict = {}
        for rec in plan.recommendations:
            assert rec.action == "embed"  # the four hosts cover Table I
            embeddings.setdefault(rec.target_course, []).append(
                Coverage(rec.topic, Depth.WORKING)
            )
        fixed_courses = [
            Course(c.code, c.title, c.course_type, c.credits,
                   coverage=embeddings.get(c.code, []))
            for c in program.courses
        ]
        fixed = Program(program.name, program.institution, courses=fixed_courses)
        assert check_program(fixed).compliant


class TestNetDistComposition:
    def test_rpc_backed_eventually_consistent_store(self):
        """Replicated store replicas exported over RPC; a client writes
        through one stub, anti-entropy converges, reads agree."""
        from repro.dist.consistency import EventuallyConsistentStore
        from repro.dist.middleware import RpcServer, rpc_proxy
        from repro.net import Address, Network

        store = EventuallyConsistentStore(3)
        network = Network()
        with RpcServer(network, Address("replica", 1), store):
            stub = rpc_proxy(network, Address("replica", 1))
            stub.write(0, "x", "v1", 1.0)
            stub.write(2, "x", "v2", 2.0)
            assert stub.converge() <= 3
            assert stub.read(1, "x") == "v2"

    def test_token_snapshot_with_election_recovery(self):
        """A leader crash triggers election; the new leader initiates the
        snapshot — two distributed protocols composed."""
        from repro.dist.election import bully_election
        from repro.dist.snapshot import TokenSystem

        result = bully_election(list(range(4)), initiator=0, crashed={3})
        sys = TokenSystem([10, 10, 10, 10])
        sys.transfer(0, 1, 5)
        sys.start_snapshot(result.leader)  # leader == 2
        sys.deliver_all()
        assert sys.snapshot().total == 40

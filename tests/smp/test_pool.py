"""Tests for repro.smp.pool (worksharing loops and reductions)."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smp.pool import (
    Schedule,
    ThreadTeam,
    parallel_for,
    parallel_map,
    parallel_reduce,
)


class TestParallelFor:
    def test_every_iteration_runs_exactly_once(self):
        seen = []
        lock = threading.Lock()

        def body(i):
            with lock:
                seen.append(i)

        parallel_for(100, body, num_threads=4)
        assert sorted(seen) == list(range(100))

    def test_static_chunks_are_contiguous_and_balanced(self):
        team = ThreadTeam(4)
        team.parallel_for(10, lambda i: None, schedule=Schedule.STATIC)
        sizes = [sum(len(c) for c in team.chunk_trace[t]) for t in range(4)]
        assert sorted(sizes) == [2, 2, 3, 3]
        for chunks in team.chunk_trace.values():
            assert len(chunks) <= 1  # one contiguous chunk per thread

    def test_static_with_chunk_round_robins(self):
        team = ThreadTeam(2)
        team.parallel_for(8, lambda i: None, schedule=Schedule.STATIC, chunk=2)
        t0 = [tuple(c) for c in team.chunk_trace[0]]
        t1 = [tuple(c) for c in team.chunk_trace[1]]
        assert t0 == [(0, 1), (4, 5)]
        assert t1 == [(2, 3), (6, 7)]

    def test_dynamic_covers_all_iterations(self):
        seen = []
        lock = threading.Lock()

        def body(i):
            with lock:
                seen.append(i)

        parallel_for(97, body, num_threads=3, schedule=Schedule.DYNAMIC, chunk=5)
        assert sorted(seen) == list(range(97))

    def test_guided_chunks_shrink(self):
        from repro.smp.pool import _ChunkDispenser

        dispenser = _ChunkDispenser(100, Schedule.GUIDED, chunk=1, num_threads=4)
        sizes = []
        while True:
            chunk = dispenser.take()
            if chunk is None:
                break
            sizes.append(len(chunk))
        assert sizes[0] == 25  # remaining/num_threads at the start
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] < sizes[0]
        assert sum(sizes) == 100

    def test_guided_covers_all_iterations(self):
        seen = []
        lock = threading.Lock()

        def body(i):
            with lock:
                seen.append(i)

        parallel_for(100, body, num_threads=4, schedule=Schedule.GUIDED)
        assert sorted(seen) == list(range(100))

    def test_zero_iterations(self):
        team = ThreadTeam(4)
        trace = team.parallel_for(0, lambda i: pytest.fail("should not run"))
        assert all(not chunks for chunks in trace.values())

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            parallel_for(-1, lambda i: None)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            ThreadTeam(0)

    def test_exception_propagates(self):
        def body(i):
            if i == 7:
                raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            parallel_for(10, body, num_threads=2)

    def test_load_imbalance_metric(self):
        team = ThreadTeam(4)
        team.parallel_for(100, lambda i: None)
        assert team.load_imbalance() == pytest.approx(1.0)


class TestParallelMap:
    def test_preserves_order(self):
        out = parallel_map(lambda x: x * x, list(range(50)), num_threads=4)
        assert out == [x * x for x in range(50)]

    def test_dynamic_schedule(self):
        out = parallel_map(
            str, list(range(20)), num_threads=3, schedule=Schedule.DYNAMIC, chunk=3
        )
        assert out == [str(i) for i in range(20)]

    def test_empty(self):
        assert parallel_map(str, []) == []


class TestParallelReduce:
    def test_sum(self):
        total = parallel_reduce(1000, lambda i: i, lambda a, b: a + b, 0, num_threads=4)
        assert total == sum(range(1000))

    def test_max_with_identity(self):
        result = parallel_reduce(
            100,
            lambda i: (i * 37) % 100,
            lambda a, b: a if a >= b else b,
            -1,
            num_threads=4,
        )
        assert result == 99

    def test_different_schedules_agree(self):
        results = {
            sched: parallel_reduce(
                500, lambda i: i * i, lambda a, b: a + b, 0,
                num_threads=4, schedule=sched, chunk=7,
            )
            for sched in Schedule
        }
        assert len(set(results.values())) == 1

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=60),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_property_reduce_equals_serial_sum(self, values, threads):
        total = parallel_reduce(
            len(values), lambda i: values[i], lambda a, b: a + b, 0,
            num_threads=threads,
        )
        assert total == sum(values)

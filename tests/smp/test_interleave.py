"""Tests for the exhaustive interleaving explorer."""

import pytest

from repro.smp.interleave import (
    Step,
    explore,
    peterson_program,
    racy_counter_program,
)


class TestRacyCounter:
    def test_lost_update_exhibited(self):
        """Somewhere in the schedule tree, counter += 1 twice yields 1."""
        a, b = racy_counter_program()
        result = explore(a, b, {"counter": 0})
        assert result.final_values("counter") == {1, 2}

    def test_more_increments_lose_more(self):
        a, b = racy_counter_program(increments=2)
        result = explore(a, b, {"counter": 0})
        finals = result.final_values("counter")
        assert 4 in finals  # the correct outcome is reachable
        assert min(finals) < 4  # and so are lost updates

    def test_atomic_store_has_single_outcome(self):
        """Constant stores cannot race: every interleaving agrees."""
        a = [Step.store_const("x", 1)]
        b = [Step.store_const("y", 2)]
        result = explore(a, b, {"x": 0, "y": 0})
        assert result.final_states == {(("x", 1), ("y", 2))}


class TestPeterson:
    def test_mutual_exclusion_all_interleavings(self):
        a, b = peterson_program()
        result = explore(
            a, b, {"flag0": 0, "flag1": 0, "turn": 0, "counter": 0}
        )
        assert result.mutual_exclusion_held

    def test_no_lost_updates_under_peterson(self):
        a, b = peterson_program()
        result = explore(
            a, b, {"flag0": 0, "flag1": 0, "turn": 0, "counter": 0}
        )
        assert result.final_values("counter") == {2}

    def test_no_deadlock(self):
        a, b = peterson_program()
        result = explore(
            a, b, {"flag0": 0, "flag1": 0, "turn": 0, "counter": 0}
        )
        assert result.deadlocked_schedules == 0

    def test_broken_peterson_without_turn_fails_mutex(self):
        """Dropping the turn variable (flags only) breaks mutual
        exclusion... actually flags-only deadlocks; dropping the *flags*
        (turn only with wrong sense) breaks it.  Use the classic broken
        variant: each thread only checks the other's flag, set after."""
        def broken(me: int):
            other = 1 - me
            return [
                Step.await_(lambda s, o=other: s[f"flag{o}"] == 0),
                Step.store_const(f"flag{me}", 1),
                Step.mark("cs-in"),
                Step.mark("cs-out"),
                Step.store_const(f"flag{me}", 0),
            ]

        result = explore(
            broken(0), broken(1), {"flag0": 0, "flag1": 0}
        )
        assert not result.mutual_exclusion_held


class TestExplorerMechanics:
    def test_await_can_deadlock(self):
        a = [Step.await_(lambda s: s["go"] == 1)]
        b = [Step.await_(lambda s: s["go"] == 1)]
        result = explore(a, b, {"go": 0})
        assert result.deadlocked_schedules > 0
        assert result.final_states == set()

    def test_await_released_by_peer(self):
        a = [Step.await_(lambda s: s["go"] == 1), Step.store_const("done", 1)]
        b = [Step.store_const("go", 1)]
        result = explore(a, b, {"go": 0, "done": 0})
        assert result.final_values("done") == {1}
        assert result.deadlocked_schedules == 0

    def test_empty_scripts(self):
        result = explore([], [], {"x": 7})
        assert result.final_values("x") == {7}

    def test_explosion_guard(self):
        a, b = racy_counter_program(increments=3)
        with pytest.raises(RuntimeError):
            explore(a, b, {"counter": 0}, max_schedules=2)

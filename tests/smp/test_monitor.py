"""Tests for repro.smp.monitor."""

import threading

import pytest

from repro.smp.monitor import BoundedBuffer, Monitor


class Account(Monitor):
    """The docstring example, used as the subclassing test fixture."""

    def __init__(self):
        super().__init__()
        self.balance = 0
        self.nonzero = self.condition("nonzero")

    @Monitor.entry
    def deposit(self, amount):
        self.balance += amount
        self.nonzero.broadcast()

    @Monitor.entry
    def withdraw(self, amount):
        self.nonzero.wait_for(lambda: self.balance >= amount)
        self.balance -= amount


class TestMonitor:
    def test_entry_counting(self):
        acct = Account()
        acct.deposit(5)
        acct.deposit(5)
        assert acct.entries == 2

    def test_condition_is_memoized(self):
        m = Monitor()
        assert m.condition("c") is m.condition("c")

    def test_withdraw_waits_for_deposit(self):
        acct = Account()
        done = threading.Event()

        def withdrawer():
            acct.withdraw(10)
            done.set()

        t = threading.Thread(target=withdrawer)
        t.start()
        assert not done.wait(0.05)  # blocked: balance is 0
        acct.deposit(10)
        assert done.wait(5)
        t.join()
        assert acct.balance == 0

    def test_context_manager_entry(self):
        m = Monitor()
        with m:
            assert m.entries == 1

    def test_signal_and_wait_counters(self):
        acct = Account()
        t = threading.Thread(target=acct.withdraw, args=(1,))
        t.start()
        import time

        time.sleep(0.05)
        acct.deposit(1)
        t.join()
        assert acct.nonzero.signals >= 1
        assert acct.nonzero.waits >= 1


class TestBoundedBuffer:
    def test_fifo_order(self):
        buf = BoundedBuffer(10)
        for i in range(5):
            buf.put(i)
        assert [buf.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BoundedBuffer(0)

    def test_put_blocks_when_full(self):
        buf = BoundedBuffer(1)
        buf.put("x")
        second_done = threading.Event()

        def producer():
            buf.put("y")
            second_done.set()

        t = threading.Thread(target=producer)
        t.start()
        assert not second_done.wait(0.05)
        assert buf.get() == "x"
        assert second_done.wait(5)
        t.join()

    def test_get_blocks_when_empty(self):
        buf = BoundedBuffer(1)
        got = []

        def consumer():
            got.append(buf.get())

        t = threading.Thread(target=consumer)
        t.start()
        assert t.is_alive()
        buf.put(42)
        t.join(5)
        assert got == [42]

    def test_many_producers_consumers_conserve_items(self):
        buf = BoundedBuffer(4)
        n_items, n_threads = 50, 3
        consumed = []
        consumed_lock = threading.Lock()

        def producer(base):
            for i in range(n_items):
                buf.put((base, i))

        def consumer():
            for _ in range(n_items):
                item = buf.get()
                with consumed_lock:
                    consumed.append(item)

        producers = [
            threading.Thread(target=producer, args=(b,)) for b in range(n_threads)
        ]
        consumers = [threading.Thread(target=consumer) for _ in range(n_threads)]
        for t in producers + consumers:
            t.start()
        for t in producers + consumers:
            t.join(10)
        expected = {(b, i) for b in range(n_threads) for i in range(n_items)}
        assert set(consumed) == expected
        assert buf.total_put == buf.total_got == n_items * n_threads

    def test_size(self):
        buf = BoundedBuffer(5)
        buf.put(1)
        buf.put(2)
        assert buf.size() == 2

"""Tests for wait-for-graph and lock-order deadlock detection."""

import threading

import pytest

from repro.smp.deadlock import DeadlockDetected, LockGraph, WaitForGraph


class TestWaitForGraph:
    def test_free_resource_granted(self):
        g = WaitForGraph()
        assert g.acquire("T1", "r1") is True
        assert g.holder_of("r1") == "T1"

    def test_reacquire_by_holder(self):
        g = WaitForGraph()
        g.acquire("T1", "r1")
        assert g.acquire("T1", "r1") is True

    def test_held_resource_causes_wait(self):
        g = WaitForGraph()
        g.acquire("T1", "r1")
        assert g.acquire("T2", "r1") is False
        assert "T2" in g.waiting_agents()

    def test_abba_cycle_detected(self):
        g = WaitForGraph()
        g.acquire("T1", "A")
        g.acquire("T2", "B")
        g.acquire("T1", "B")  # T1 waits on T2
        with pytest.raises(DeadlockDetected) as exc:
            g.acquire("T2", "A")  # T2 waits on T1 -> cycle
        assert set(exc.value.cycle) == {"T1", "T2"}

    def test_three_way_cycle(self):
        g = WaitForGraph()
        for t, r in (("T1", "A"), ("T2", "B"), ("T3", "C")):
            g.acquire(t, r)
        g.acquire("T1", "B")
        g.acquire("T2", "C")
        with pytest.raises(DeadlockDetected) as exc:
            g.acquire("T3", "A")
        assert set(exc.value.cycle) == {"T1", "T2", "T3"}

    def test_no_raise_mode_records_cycle(self):
        g = WaitForGraph(raise_on_cycle=False)
        g.acquire("T1", "A")
        g.acquire("T2", "B")
        g.acquire("T1", "B")
        assert g.acquire("T2", "A") is False
        assert g.detected_cycles

    def test_release_breaks_wait(self):
        g = WaitForGraph()
        g.acquire("T1", "A")
        g.acquire("T2", "A")  # waits
        g.release("T1", "A")
        assert g.holder_of("A") is None
        assert g.grant_waiting("A") == "T2"
        assert g.holder_of("A") == "T2"

    def test_remove_agent_clears_holds_and_waits(self):
        g = WaitForGraph()
        g.acquire("T1", "A")
        g.acquire("T2", "B")
        g.acquire("T1", "B")
        g.remove_agent("T1")
        assert g.holder_of("A") is None
        assert "T1" not in g.waiting_agents()
        assert g.find_deadlock() is None

    def test_pick_victim_is_deterministic(self):
        g = WaitForGraph()
        assert g.pick_victim(["T1", "T3", "T2"]) == "T3"

    def test_no_deadlock_without_cycle(self):
        g = WaitForGraph()
        g.acquire("T1", "A")
        g.acquire("T2", "A")
        g.acquire("T3", "A")
        assert g.find_deadlock() is None


class TestLockGraph:
    def test_consistent_order_is_safe(self):
        g = LockGraph()
        for _ in range(3):
            g.on_acquire("A")
            g.on_acquire("B")
            g.on_release("B")
            g.on_release("A")
        assert g.is_safe()
        assert g.suggest_order() == ["A", "B"]

    def test_abba_order_unsafe(self):
        g = LockGraph()
        g.on_acquire("A")
        g.on_acquire("B")
        g.on_release("B")
        g.on_release("A")
        g.on_acquire("B")
        g.on_acquire("A")
        g.on_release("A")
        g.on_release("B")
        assert not g.is_safe()
        assert g.suggest_order() is None
        assert any(set(c) == {"A", "B"} for c in g.order_violations())

    def test_edges_recorded_per_nesting(self):
        g = LockGraph()
        g.on_acquire("A")
        g.on_acquire("B")
        g.on_acquire("C")
        assert set(g.edges()) == {("A", "B"), ("A", "C"), ("B", "C")}

    def test_cross_thread_orders_merge(self):
        g = LockGraph()

        def t1():
            g.on_acquire("A")
            g.on_acquire("B")
            g.on_release("B")
            g.on_release("A")

        def t2():
            g.on_acquire("B")
            g.on_acquire("A")
            g.on_release("A")
            g.on_release("B")

        a = threading.Thread(target=t1)
        b = threading.Thread(target=t2)
        a.start(); a.join()
        b.start(); b.join()
        assert not g.is_safe()

    def test_reacquire_same_lock_no_self_edge(self):
        g = LockGraph()
        g.on_acquire("A")
        g.on_acquire("A")
        assert g.is_safe()

"""Tests for repro.smp.atomics."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smp.atomics import AtomicCell, AtomicCounter, AtomicFlag, atomic_max


class TestAtomicCell:
    def test_load_store(self):
        cell = AtomicCell(5)
        assert cell.load() == 5
        cell.store(9)
        assert cell.load() == 9

    def test_exchange_returns_previous(self):
        cell = AtomicCell("a")
        assert cell.exchange("b") == "a"
        assert cell.load() == "b"

    def test_cas_success(self):
        cell = AtomicCell(1)
        assert cell.compare_and_swap(1, 2)
        assert cell.load() == 2

    def test_cas_failure_leaves_value(self):
        cell = AtomicCell(1)
        assert not cell.compare_and_swap(99, 2)
        assert cell.load() == 1

    def test_cas_failures_counted(self):
        cell = AtomicCell(0)
        cell.compare_and_swap(5, 1)
        cell.compare_and_swap(5, 1)
        assert cell.cas_failures == 2

    def test_update_applies_function(self):
        cell = AtomicCell(10)
        assert cell.update(lambda v: v * 3) == 30

    def test_concurrent_updates_lose_nothing(self):
        cell = AtomicCell(0)
        threads = [
            threading.Thread(
                target=lambda: [cell.update(lambda v: v + 1) for _ in range(100)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cell.load() == 400

    def test_atomic_max_helper(self):
        cell = AtomicCell(5)
        assert atomic_max(cell, 3) == 5
        assert atomic_max(cell, 8) == 8
        assert cell.load() == 8


class TestAtomicCounter:
    def test_fetch_add_returns_old(self):
        counter = AtomicCounter(10)
        assert counter.fetch_add(5) == 10
        assert counter.value == 15

    def test_add_fetch_returns_new(self):
        counter = AtomicCounter()
        assert counter.add_fetch(3) == 3

    def test_increment_decrement(self):
        counter = AtomicCounter()
        assert counter.increment() == 1
        assert counter.decrement() == 0

    def test_reset(self):
        counter = AtomicCounter(44)
        counter.reset()
        assert counter.value == 0

    def test_concurrent_increments_exact(self):
        counter = AtomicCounter()
        n, threads = 500, 8

        def work():
            for _ in range(n):
                counter.increment()

        ts = [threading.Thread(target=work) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert counter.value == n * threads

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_sequential_adds_sum(self, deltas):
        counter = AtomicCounter()
        for d in deltas:
            counter.add_fetch(d)
        assert counter.value == sum(deltas)


class TestAtomicFlag:
    def test_test_and_set_semantics(self):
        flag = AtomicFlag()
        assert flag.test_and_set() is False  # previously unset
        assert flag.test_and_set() is True  # now set
        assert flag.is_set()

    def test_clear(self):
        flag = AtomicFlag()
        flag.test_and_set()
        flag.clear()
        assert not flag.is_set()

    def test_only_one_thread_wins_the_flag(self):
        flag = AtomicFlag()
        winners = []
        barrier = threading.Barrier(8)

        def race():
            barrier.wait()
            if not flag.test_and_set():
                winners.append(threading.get_ident())

        ts = [threading.Thread(target=race) for _ in range(8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert len(winners) == 1

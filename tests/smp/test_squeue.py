"""Tests for repro.smp.squeue (incl. hypothesis FIFO property)."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smp.squeue import QueueClosed, QueueTimeout, SynchronizedQueue


class TestBasics:
    def test_fifo(self):
        q = SynchronizedQueue()
        for i in range(10):
            q.put(i)
        assert [q.get() for _ in range(10)] == list(range(10))

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SynchronizedQueue(0)

    def test_len(self):
        q = SynchronizedQueue()
        q.put("a")
        q.put("b")
        assert len(q) == 2

    def test_peek_does_not_remove(self):
        q = SynchronizedQueue()
        q.put(1)
        assert q.peek() == 1
        assert len(q) == 1

    def test_try_get_empty_returns_none(self):
        q = SynchronizedQueue()
        assert q.try_get() is None

    def test_get_timeout(self):
        q = SynchronizedQueue()
        with pytest.raises(QueueTimeout):
            q.get(timeout=0.05)

    def test_put_timeout_when_full(self):
        q = SynchronizedQueue(capacity=1)
        q.put(1)
        with pytest.raises(QueueTimeout):
            q.put(2, timeout=0.05)

    def test_max_depth_tracked(self):
        q = SynchronizedQueue()
        for i in range(7):
            q.put(i)
        q.get()
        assert q.max_depth == 7


class TestClose:
    def test_put_after_close_raises(self):
        q = SynchronizedQueue()
        q.close()
        with pytest.raises(QueueClosed):
            q.put(1)

    def test_drain_then_fail(self):
        q = SynchronizedQueue()
        q.put(1)
        q.put(2)
        q.close()
        assert q.get() == 1
        assert q.get() == 2
        with pytest.raises(QueueClosed):
            q.get()

    def test_close_wakes_blocked_getter(self):
        q = SynchronizedQueue()
        raised = threading.Event()

        def getter():
            try:
                q.get()
            except QueueClosed:
                raised.set()

        t = threading.Thread(target=getter)
        t.start()
        import time

        time.sleep(0.05)
        q.close()
        assert raised.wait(5)
        t.join()

    def test_close_wakes_blocked_putter(self):
        q = SynchronizedQueue(capacity=1)
        q.put(1)
        raised = threading.Event()

        def putter():
            try:
                q.put(2)
            except QueueClosed:
                raised.set()

        t = threading.Thread(target=putter)
        t.start()
        import time

        time.sleep(0.05)
        q.close()
        assert raised.wait(5)
        t.join()

    def test_iteration_ends_at_close(self):
        q = SynchronizedQueue()
        for i in range(3):
            q.put(i)
        q.close()
        assert list(q) == [0, 1, 2]


class TestConcurrency:
    def test_bounded_producer_consumer_conserves_items(self):
        q = SynchronizedQueue(capacity=3)
        n, producers = 100, 4
        consumed = []
        lock = threading.Lock()

        def produce(base):
            for i in range(n):
                q.put(base * n + i)

        def consume():
            for _ in range(n):
                item = q.get()
                with lock:
                    consumed.append(item)

        ts = [threading.Thread(target=produce, args=(b,)) for b in range(producers)]
        ts += [threading.Thread(target=consume) for _ in range(producers)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(20)
        assert sorted(consumed) == list(range(n * producers))
        assert q.max_depth <= 3

    def test_single_producer_order_preserved(self):
        q = SynchronizedQueue(capacity=2)
        out = []

        def consume():
            for _ in range(50):
                out.append(q.get())

        t = threading.Thread(target=consume)
        t.start()
        for i in range(50):
            q.put(i)
        t.join(10)
        assert out == list(range(50))


@given(st.lists(st.integers(), max_size=64))
@settings(max_examples=100, deadline=None)
def test_property_queue_is_fifo(items):
    q = SynchronizedQueue()
    for item in items:
        q.put(item)
    assert [q.get() for _ in items] == items
    assert q.total_put == q.total_got == len(items)

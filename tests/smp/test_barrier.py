"""Tests for repro.smp.barrier."""

import threading

import pytest

from repro.smp.barrier import BrokenBarrier, CyclicBarrier, SenseReversingBarrier


def _run_parties(barrier, parties, body, rounds=1):
    errors = []

    def worker(i):
        try:
            for r in range(rounds):
                body(i, r)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    ts = [threading.Thread(target=worker, args=(i,)) for i in range(parties)]
    for t in ts:
        t.start()
    for t in ts:
        t.join(10)
    if errors:
        raise errors[0]


class TestCyclicBarrier:
    def test_rejects_zero_parties(self):
        with pytest.raises(ValueError):
            CyclicBarrier(0)

    def test_all_arrive_before_any_proceeds(self):
        barrier = CyclicBarrier(4)
        arrived = []
        proceeded = []
        lock = threading.Lock()

        def body(i, _r):
            with lock:
                arrived.append(i)
            barrier.wait()
            with lock:
                # By the time anyone proceeds, all four arrived.
                assert len(arrived) == 4
                proceeded.append(i)

        _run_parties(barrier, 4, body)
        assert sorted(proceeded) == [0, 1, 2, 3]

    def test_reusable_across_generations(self):
        barrier = CyclicBarrier(3)
        _run_parties(barrier, 3, lambda i, r: barrier.wait(), rounds=5)
        assert barrier.generation == 5

    def test_action_runs_once_per_generation(self):
        count = [0]
        barrier = CyclicBarrier(3, action=lambda: count.__setitem__(0, count[0] + 1))
        _run_parties(barrier, 3, lambda i, r: barrier.wait(), rounds=4)
        assert count[0] == 4

    def test_last_arrival_gets_index_zero(self):
        barrier = CyclicBarrier(3)
        indices = []
        lock = threading.Lock()

        def body(i, _r):
            idx = barrier.wait()
            with lock:
                indices.append(idx)

        _run_parties(barrier, 3, body)
        assert sorted(indices) == [0, 1, 2]

    def test_timeout_breaks_barrier(self):
        barrier = CyclicBarrier(2)
        with pytest.raises(BrokenBarrier):
            barrier.wait(timeout=0.05)

    def test_abort_wakes_waiters(self):
        barrier = CyclicBarrier(2)
        raised = threading.Event()

        def waiter():
            try:
                barrier.wait()
            except BrokenBarrier:
                raised.set()

        t = threading.Thread(target=waiter)
        t.start()
        import time

        time.sleep(0.05)
        barrier.abort()
        assert raised.wait(5)
        t.join()

    def test_waiting_count(self):
        barrier = CyclicBarrier(2)
        t = threading.Thread(target=barrier.wait)
        t.start()
        import time

        time.sleep(0.05)
        assert barrier.waiting == 1
        barrier.wait()
        t.join()


class TestSenseReversingBarrier:
    def test_rejects_zero_parties(self):
        with pytest.raises(ValueError):
            SenseReversingBarrier(0)

    def test_episode_counting(self):
        barrier = SenseReversingBarrier(4)
        _run_parties(barrier, 4, lambda i, r: barrier.wait(), rounds=10)
        assert barrier.episodes == 10

    def test_no_thread_laps_the_barrier(self):
        """The sense-reversal property: a fast thread cannot pass the
        barrier twice while a slow thread has passed once."""
        barrier = SenseReversingBarrier(3)
        phase_counts = [0, 0, 0]
        lock = threading.Lock()

        def body(i, r):
            barrier.wait()
            with lock:
                phase_counts[i] += 1
                # No thread may be more than one phase ahead of another.
                assert max(phase_counts) - min(phase_counts) <= 1

        _run_parties(barrier, 3, body, rounds=20)
        assert phase_counts == [20, 20, 20]

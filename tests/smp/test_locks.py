"""Tests for repro.smp.locks."""

import threading
import time

import pytest

from repro.smp.locks import (
    CountingSemaphore,
    InstrumentedLock,
    ReaderWriterLock,
    SpinLock,
    TicketLock,
)


class TestInstrumentedLock:
    def test_mutual_exclusion(self):
        lock = InstrumentedLock()
        shared = []

        def work(tag):
            for _ in range(100):
                with lock:
                    shared.append(tag)
                    shared.append(tag)

        ts = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        # Entries always come in same-tag pairs: no interleaving inside CS.
        assert all(shared[i] == shared[i + 1] for i in range(0, len(shared), 2))

    def test_counts_acquisitions(self):
        lock = InstrumentedLock()
        for _ in range(5):
            with lock:
                pass
        assert lock.acquisitions == 5

    def test_uncontended_has_zero_contention(self):
        lock = InstrumentedLock()
        with lock:
            pass
        assert lock.contended == 0
        assert lock.contention_ratio == 0.0

    def test_contention_detected(self):
        lock = InstrumentedLock()
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                entered.set()
                release.wait(5)

        t = threading.Thread(target=holder)
        t.start()
        entered.wait(5)
        t2 = threading.Thread(target=lambda: lock.acquire() or lock.release())
        t2.start()
        time.sleep(0.05)
        release.set()
        t.join()
        t2.join()
        assert lock.contended >= 1

    def test_owner_tracking(self):
        lock = InstrumentedLock()
        assert lock.owner is None
        with lock:
            assert lock.owner == threading.get_ident()
        assert lock.owner is None

    def test_timeout_returns_false(self):
        lock = InstrumentedLock()
        lock.acquire()
        result = []
        t = threading.Thread(target=lambda: result.append(lock.acquire(timeout=0.05)))
        t.start()
        t.join()
        assert result == [False]
        lock.release()


class TestSpinLock:
    def test_basic_acquire_release(self):
        lock = SpinLock()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_spins_counted_under_contention(self):
        lock = SpinLock()
        lock.acquire()

        def contender():
            lock.acquire()
            lock.release()

        t = threading.Thread(target=contender)
        t.start()
        time.sleep(0.05)
        lock.release()
        t.join()
        assert lock.spins > 0

    def test_mutual_exclusion_counter(self):
        lock = SpinLock()
        count = [0]

        def work():
            for _ in range(200):
                with lock:
                    count[0] += 1

        ts = [threading.Thread(target=work) for _ in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert count[0] == 800


class TestTicketLock:
    def test_tickets_issued_in_order(self):
        lock = TicketLock()
        t1 = lock.acquire()
        lock.release()
        t2 = lock.acquire()
        lock.release()
        assert (t1, t2) == (0, 1)

    def test_fifo_admission(self):
        lock = TicketLock()
        order = []
        lock.acquire()  # hold so waiters queue

        def waiter(tag):
            lock.acquire()
            order.append(tag)
            lock.release()

        threads = []
        for i in range(4):
            t = threading.Thread(target=waiter, args=(i,))
            t.start()
            # Let each thread reach the wait before starting the next, so
            # ticket order matches spawn order.
            time.sleep(0.05)
            threads.append(t)
        lock.release()
        for t in threads:
            t.join()
        assert order == [0, 1, 2, 3]

    def test_queue_length(self):
        lock = TicketLock()
        lock.acquire()
        assert lock.queue_length == 1
        lock.release()
        assert lock.queue_length == 0


class TestCountingSemaphore:
    def test_permit_accounting(self):
        sem = CountingSemaphore(3)
        sem.P()
        sem.P()
        assert sem.permits == 1
        sem.V()
        assert sem.permits == 2

    def test_rejects_negative_permits(self):
        with pytest.raises(ValueError):
            CountingSemaphore(-1)

    def test_blocks_at_zero_until_release(self):
        sem = CountingSemaphore(0)
        got = threading.Event()

        def taker():
            sem.acquire()
            got.set()

        t = threading.Thread(target=taker)
        t.start()
        assert not got.wait(0.05)
        sem.release()
        assert got.wait(5)
        t.join()

    def test_timeout(self):
        sem = CountingSemaphore(0)
        assert sem.acquire(timeout=0.05) is False

    def test_release_many(self):
        sem = CountingSemaphore(0)
        sem.release(3)
        assert sem.permits == 3

    def test_release_requires_positive(self):
        sem = CountingSemaphore(0)
        with pytest.raises(ValueError):
            sem.release(0)

    def test_bounds_concurrency(self):
        sem = CountingSemaphore(2)
        active = [0]
        peak = [0]
        guard = threading.Lock()

        def work():
            with sem:
                with guard:
                    active[0] += 1
                    peak[0] = max(peak[0], active[0])
                time.sleep(0.01)
                with guard:
                    active[0] -= 1

        ts = [threading.Thread(target=work) for _ in range(8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert peak[0] <= 2

    def test_dijkstra_aliases(self):
        sem = CountingSemaphore(1)
        sem.wait()
        sem.signal()
        assert sem.permits == 1


class TestReaderWriterLock:
    def test_writer_exclusion(self):
        rw = ReaderWriterLock()
        value = [0]

        def writer():
            for _ in range(100):
                with rw.write_locked():
                    v = value[0]
                    value[0] = v + 1

        ts = [threading.Thread(target=writer) for _ in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert value[0] == 400

    def test_readers_concurrent(self):
        rw = ReaderWriterLock()
        gate = threading.Barrier(3)

        def reader():
            with rw.read_locked():
                gate.wait(timeout=5)

        ts = [threading.Thread(target=reader) for _ in range(3)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert rw.max_concurrent_readers == 3

    def test_release_read_without_acquire_raises(self):
        rw = ReaderWriterLock()
        with pytest.raises(RuntimeError):
            rw.release_read()

    def test_release_write_without_acquire_raises(self):
        rw = ReaderWriterLock()
        with pytest.raises(RuntimeError):
            rw.release_write()

    def test_writer_blocks_new_readers(self):
        rw = ReaderWriterLock()
        rw.acquire_write()
        read_done = threading.Event()

        def reader():
            rw.acquire_read()
            read_done.set()
            rw.release_read()

        t = threading.Thread(target=reader)
        t.start()
        assert not read_done.wait(0.05)
        rw.release_write()
        assert read_done.wait(5)
        t.join()

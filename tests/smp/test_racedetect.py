"""Tests for the Eraser-style lockset race detector."""

import threading

from repro.smp.racedetect import AccessKind, LocksetRaceDetector, SharedVariable


def _on_thread(fn):
    t = threading.Thread(target=fn)
    t.start()
    t.join()


class TestLocksetStateMachine:
    def test_single_thread_never_races(self):
        det = LocksetRaceDetector()
        var = SharedVariable("x", 0, det)
        for i in range(10):
            var.write(i)
            var.read()
        assert det.reports == []

    def test_unlocked_cross_thread_write_is_race(self):
        det = LocksetRaceDetector()
        var = SharedVariable("x", 0, det)
        var.write(1)  # main thread: Exclusive
        _on_thread(lambda: var.write(2))  # second thread, no locks
        assert "x" in det.racy_variables

    def test_consistent_locking_is_clean(self):
        det = LocksetRaceDetector()
        var = SharedVariable("x", 0, det)

        def locked_write():
            with det.held("m"):
                var.write(var.read() + 1)

        locked_write()
        _on_thread(locked_write)
        _on_thread(locked_write)
        assert det.reports == []
        assert det.candidate_lockset("x") == frozenset({"m"})

    def test_inconsistent_locks_race(self):
        det = LocksetRaceDetector()
        var = SharedVariable("x", 0, det)
        with det.held("a"):
            var.write(1)

        def other():
            with det.held("b"):  # different lock: candidate set empties
                var.write(2)

        _on_thread(other)
        assert "x" in det.racy_variables

    def test_read_sharing_without_locks_is_not_a_race(self):
        det = LocksetRaceDetector()
        var = SharedVariable("x", 42, det)
        var.write(42)  # writer initializes (Exclusive)
        _on_thread(var.read)  # other threads only read
        _on_thread(var.read)
        assert det.reports == []

    def test_write_after_read_sharing_races_without_lock(self):
        det = LocksetRaceDetector()
        var = SharedVariable("x", 0, det)
        var.write(0)
        _on_thread(var.read)  # Shared
        _on_thread(lambda: var.write(1))  # Shared-Modified, empty lockset
        assert "x" in det.racy_variables

    def test_candidate_lockset_intersection(self):
        det = LocksetRaceDetector()
        var = SharedVariable("x", 0, det)

        def with_locks(locks):
            def body():
                for name in locks:
                    det.on_acquire(name)
                var.write(1)
                for name in locks:
                    det.on_release(name)

            return body

        with_locks(["a", "b"])()
        _on_thread(with_locks(["b", "c"]))
        assert det.candidate_lockset("x") == frozenset({"b"})
        assert det.reports == []  # "b" still protects it

    def test_report_carries_context(self):
        det = LocksetRaceDetector()
        var = SharedVariable("v", 0, det)
        var.write(1)
        _on_thread(lambda: var.write(2))
        report = det.reports[0]
        assert report.variable == "v"
        assert report.kind is AccessKind.WRITE
        assert "candidate lockset is empty" in report.message

    def test_property_setter_instrumented(self):
        det = LocksetRaceDetector()
        var = SharedVariable("x", 0, det)
        var.value = 5
        assert var.value == 5
        _on_thread(lambda: setattr(var, "value", 6))
        assert "x" in det.racy_variables

    def test_two_variables_tracked_independently(self):
        det = LocksetRaceDetector()
        safe = SharedVariable("safe", 0, det)
        racy = SharedVariable("racy", 0, det)

        def body():
            with det.held("m"):
                safe.write(1)
            racy.write(1)

        body()
        _on_thread(body)
        assert det.racy_variables == {"racy"}

    def test_locks_of_reports_held_locks(self):
        det = LocksetRaceDetector()
        with det.held("q"):
            assert det.locks_of() == frozenset({"q"})
        assert det.locks_of() == frozenset()

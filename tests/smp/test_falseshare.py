"""Tests for the false-sharing cache-line model."""

import pytest

from repro.smp.falseshare import (
    CacheLineModel,
    PaddedCounters,
    SharedCounters,
    false_sharing_demo,
)


class TestCacheLineModel:
    def test_line_mapping(self):
        model = CacheLineModel(2, line_size=8)
        assert model.line_of(0) == 0
        assert model.line_of(7) == 0
        assert model.line_of(8) == 1

    def test_first_access_is_cold_miss(self):
        model = CacheLineModel(2)
        model.read(0, 0)
        assert model.coherence_misses[0] == 1

    def test_repeated_read_hits(self):
        model = CacheLineModel(2)
        model.read(0, 0)
        model.read(0, 1)  # same line
        assert model.coherence_misses[0] == 1

    def test_write_invalidates_other_cores(self):
        model = CacheLineModel(2)
        model.read(0, 0)
        model.read(1, 0)
        model.write(0, 0)
        assert model.invalidations == 1
        model.read(1, 0)  # must re-miss
        assert model.coherence_misses[1] == 2

    def test_write_to_private_line_no_invalidation(self):
        model = CacheLineModel(2, line_size=1)
        model.write(0, 0)
        model.write(1, 1)
        assert model.invalidations == 0

    def test_bad_core_index(self):
        model = CacheLineModel(2)
        with pytest.raises(IndexError):
            model.read(5, 0)

    def test_miss_rate(self):
        model = CacheLineModel(1)
        assert model.miss_rate() == 0.0
        model.read(0, 0)
        model.read(0, 0)
        assert model.miss_rate() == 0.5


class TestFalseSharing:
    def test_shared_layout_thrashes(self):
        model = CacheLineModel(4, line_size=8)
        counters = SharedCounters(model)
        for _ in range(50):
            for core in range(4):
                counters.increment(core)
        # Every increment after the first per core re-misses.
        assert model.total_misses > 4 * 40

    def test_padded_layout_only_cold_misses(self):
        model = CacheLineModel(4, line_size=8)
        counters = PaddedCounters(model)
        for _ in range(50):
            for core in range(4):
                counters.increment(core)
        assert model.total_misses == 4  # one cold miss per core
        assert model.invalidations == 0

    def test_both_layouts_count_correctly(self):
        shared_model = CacheLineModel(2)
        padded_model = CacheLineModel(2)
        shared = SharedCounters(shared_model)
        padded = PaddedCounters(padded_model)
        for _ in range(10):
            shared.increment(0)
            shared.increment(1)
            padded.increment(0)
            padded.increment(1)
        assert shared.values == padded.values == [10, 10]

    def test_demo_shape(self):
        result = false_sharing_demo(num_cores=4, increments=100)
        assert result["padded_misses"] == 4
        assert result["shared_misses"] > 100
        assert result["padded_invalidations"] == 0
        assert result["shared_invalidations"] > 0

    def test_padding_addresses_disjoint_lines(self):
        model = CacheLineModel(4, line_size=8)
        padded = PaddedCounters(model)
        lines = {model.line_of(padded.address_of(c)) for c in range(4)}
        assert len(lines) == 4

"""Tests for Tomasulo dynamic scheduling (both variants)."""

import pytest

from repro.arch.tomasulo import TInstr, TOp, TomasuloCPU


def _hp_example():
    """The Hennessy & Patterson chapter-3 running example."""
    return [
        TInstr(TOp.LOAD, rd=6, addr=34),
        TInstr(TOp.LOAD, rd=2, addr=45),
        TInstr(TOp.MUL, rd=0, rs=2, rt=4),
        TInstr(TOp.SUB, rd=8, rs=6, rt=2),
        TInstr(TOp.DIV, rd=10, rs=0, rt=6),
        TInstr(TOp.ADD, rd=6, rs=8, rt=2),
    ]


class TestNonSpeculative:
    def test_hp_timing_table(self):
        cpu = TomasuloCPU(
            _hp_example(), memory={34: 3.0, 45: 2.0}, registers={4: 5.0}
        )
        cpu.run()
        t = cpu.timing_table()
        # Classic timings (latency: load 2, add/sub 2, mul 10, div 40):
        assert (t[0].issue, t[0].exec_start, t[0].exec_end, t[0].write) == (1, 2, 3, 4)
        assert (t[1].issue, t[1].write) == (2, 5)
        assert (t[2].exec_start, t[2].exec_end, t[2].write) == (5, 14, 15)  # MUL waits for L2
        assert (t[3].exec_start, t[3].write) == (5, 7)  # SUB runs ahead of MUL
        assert (t[4].exec_start, t[4].write) == (15, 55)  # DIV waits for MUL
        assert (t[5].exec_start, t[5].write) == (7, 9)  # ADD out-of-order done

    def test_out_of_order_completion(self):
        cpu = TomasuloCPU(
            _hp_example(), memory={34: 3.0, 45: 2.0}, registers={4: 5.0}
        )
        cpu.run()
        t = cpu.timing_table()
        assert t[3].write < t[2].write  # SUB finishes before the earlier MUL

    def test_architectural_results(self):
        cpu = TomasuloCPU(
            _hp_example(), memory={34: 3.0, 45: 2.0}, registers={4: 5.0}
        )
        cpu.run()
        assert cpu.registers[0] == 10.0        # 2*5
        assert cpu.registers[8] == 1.0         # 3-2
        assert cpu.registers[10] == pytest.approx(10.0 / 3.0)
        assert cpu.registers[6] == 3.0         # WAR on F6 renamed away: 1+2

    def test_war_hazard_renamed_away(self):
        """ADD writes F6 while DIV still needs the OLD F6 — renaming must
        let DIV read the load's value, not the ADD's."""
        cpu = TomasuloCPU(
            _hp_example(), memory={34: 3.0, 45: 2.0}, registers={4: 5.0}
        )
        cpu.run()
        # DIV = F0/F6(old)=10/3, not 10/3.0->F6 new (3.0)... distinguish:
        assert cpu.registers[10] == pytest.approx(10.0 / 3.0)

    def test_structural_hazard_stalls_issue(self):
        # Three multiplies, two multiplier stations: the third waits.
        prog = [
            TInstr(TOp.MUL, rd=1, rs=0, rt=0),
            TInstr(TOp.MUL, rd=2, rs=0, rt=0),
            TInstr(TOp.MUL, rd=3, rs=0, rt=0),
        ]
        cpu = TomasuloCPU(prog, num_multipliers=2)
        cpu.run()
        t = cpu.timing_table()
        assert t[0].issue == 1 and t[1].issue == 2
        assert t[2].issue > 3  # blocked until a station frees

    def test_cdb_one_writer_per_cycle(self):
        prog = [
            TInstr(TOp.ADD, rd=1, rs=0, rt=0),
            TInstr(TOp.ADD, rd=2, rs=0, rt=0),
        ]
        cpu = TomasuloCPU(prog)
        cpu.run()
        t = cpu.timing_table()
        assert t[0].write != t[1].write  # serialized on the single CDB

    def test_branch_stalls_issue_nonspeculative(self):
        prog = [
            TInstr(TOp.LOAD, rd=1, addr=0),       # r1 = 0
            TInstr(TOp.BNEZ, rs=1, target=3),     # not taken
            TInstr(TOp.ADD, rd=2, rs=1, rt=1),
            TInstr(TOp.ADD, rd=3, rs=2, rt=2),
        ]
        cpu = TomasuloCPU(prog, memory={0: 0.0})
        stats = cpu.run()
        assert stats.branch_stall_cycles > 0

    def test_ipc(self):
        cpu = TomasuloCPU([TInstr(TOp.ADD, rd=1, rs=0, rt=0)])
        stats = cpu.run()
        assert 0 < stats.ipc <= 1


class TestSpeculative:
    def test_in_order_commit(self):
        cpu = TomasuloCPU(
            _hp_example(), speculative=True,
            memory={34: 3.0, 45: 2.0}, registers={4: 5.0},
        )
        cpu.run()
        commits = [t.commit for t in cpu.timing_table() if not t.squashed]
        assert commits == sorted(commits)
        assert len(set(commits)) == len(commits)  # one commit per cycle

    def test_same_results_as_nonspeculative(self):
        a = TomasuloCPU(_hp_example(), memory={34: 3.0, 45: 2.0},
                        registers={4: 5.0})
        b = TomasuloCPU(_hp_example(), speculative=True,
                        memory={34: 3.0, 45: 2.0}, registers={4: 5.0})
        a.run(), b.run()
        assert a.registers == b.registers

    def test_not_taken_branch_predicted_correctly(self):
        prog = [
            TInstr(TOp.LOAD, rd=1, addr=0),   # 0.0 -> branch not taken
            TInstr(TOp.BNEZ, rs=1, target=3),
            TInstr(TOp.ADD, rd=2, rs=1, rt=1),
        ]
        cpu = TomasuloCPU(prog, speculative=True, memory={0: 0.0})
        stats = cpu.run()
        assert stats.mispredictions == 0
        assert stats.flushed == 0

    def test_taken_branch_flushes_wrong_path(self):
        prog = [
            TInstr(TOp.LOAD, rd=1, addr=0),   # 5.0 -> taken
            TInstr(TOp.BNEZ, rs=1, target=3),
            TInstr(TOp.ADD, rd=2, rs=1, rt=1),  # wrong path
            TInstr(TOp.ADD, rd=3, rs=1, rt=1),  # target
        ]
        cpu = TomasuloCPU(prog, speculative=True, memory={0: 5.0})
        stats = cpu.run()
        assert stats.mispredictions == 1
        assert stats.flushed >= 1
        assert cpu.registers[2] == 0.0  # squashed write never committed
        assert cpu.registers[3] == 10.0

    def test_speculation_beats_stalling_on_not_taken_branches(self):
        prog = [
            TInstr(TOp.LOAD, rd=1, addr=0),
            TInstr(TOp.BNEZ, rs=4, target=5),  # r4 = 0: not taken
            TInstr(TOp.ADD, rd=2, rs=1, rt=1),
            TInstr(TOp.ADD, rd=3, rs=2, rt=2),
            TInstr(TOp.ADD, rd=5, rs=3, rt=3),
        ]
        slow = TomasuloCPU(prog, memory={0: 2.0}).run()
        fast = TomasuloCPU(prog, speculative=True, memory={0: 2.0}).run()
        assert fast.cycles < slow.cycles

    def test_rob_capacity_limits_issue(self):
        prog = [TInstr(TOp.ADD, rd=i % 8, rs=0, rt=0) for i in range(6)]
        cpu = TomasuloCPU(prog, speculative=True, rob_size=2, num_adders=6)
        cpu.run()
        t = cpu.timing_table()
        assert t[2].issue > 3  # had to wait for a ROB slot

    def test_squashed_instructions_marked(self):
        prog = [
            TInstr(TOp.LOAD, rd=1, addr=0),
            TInstr(TOp.BNEZ, rs=1, target=3),
            TInstr(TOp.ADD, rd=2, rs=1, rt=1),
            TInstr(TOp.ADD, rd=3, rs=1, rt=1),
        ]
        cpu = TomasuloCPU(prog, speculative=True, memory={0: 1.0})
        cpu.run()
        assert any(t.squashed for t in cpu.timing_table())


class TestConfiguration:
    def test_custom_latency(self):
        cpu = TomasuloCPU(
            [TInstr(TOp.MUL, rd=1, rs=0, rt=0)], latencies={TOp.MUL: 3}
        )
        cpu.run()
        t = cpu.timing_table()[0]
        assert t.exec_end - t.exec_start + 1 == 3

    def test_division_by_zero_yields_inf(self):
        cpu = TomasuloCPU(
            [TInstr(TOp.DIV, rd=1, rs=2, rt=3)], registers={2: 4.0, 3: 0.0}
        )
        cpu.run()
        assert cpu.registers[1] == float("inf")

    def test_runaway_guard(self):
        with pytest.raises(RuntimeError):
            TomasuloCPU([TInstr(TOp.ADD, rd=1)]).run(max_cycles=1)

"""Tests for Flynn's taxonomy and the vector machine model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.flynn import (
    GALLERY,
    FlynnClass,
    MachineDescription,
    classify,
    gallery_table,
    subclassify,
)
from repro.arch.vector import VectorMachine, compare_vector_lengths


class TestFlynn:
    def test_four_classes(self):
        assert classify(MachineDescription("u", 1, 1)) is FlynnClass.SISD
        assert classify(MachineDescription("v", 1, 64)) is FlynnClass.SIMD
        assert classify(MachineDescription("s", 3, 1)) is FlynnClass.MISD
        assert classify(MachineDescription("m", 4, 4)) is FlynnClass.MIMD

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            MachineDescription("bad", 0, 1)

    def test_subclassify_simd(self):
        lockstep = MachineDescription("gpu", 1, 32, lockstep=True)
        vector = MachineDescription("cray", 1, 64, lockstep=False)
        assert "array" in subclassify(lockstep)
        assert "vector" in subclassify(vector)

    def test_subclassify_mimd(self):
        shared = MachineDescription("smp", 4, 4, shared_memory=True)
        cluster = MachineDescription("mpp", 64, 64, shared_memory=False)
        assert "shared-memory" in subclassify(shared)
        assert "cluster" in subclassify(cluster)

    def test_gallery_covers_all_classes(self):
        classes = {classify(m) for m in GALLERY.values()}
        assert classes == set(FlynnClass)

    def test_gallery_table_shape(self):
        table = gallery_table()
        assert len(table) == len(GALLERY)
        assert all({"machine", "class", "subclass"} <= set(r) for r in table)

    def test_descriptions_nonempty(self):
        for cls in FlynnClass:
            assert cls.description


class TestVectorMachine:
    def test_daxpy_correct(self):
        vm = VectorMachine(64)
        x = np.arange(100.0)
        y = np.ones(100)
        out, _ = vm.daxpy(2.0, x, y)
        assert np.allclose(out, 2 * x + y)

    def test_strip_mine_chunk_count(self):
        vm = VectorMachine(64)
        assert vm.expected_chunks(1000) == 16
        assert vm.expected_chunks(64) == 1
        assert vm.expected_chunks(0) == 0

    def test_map_stats(self):
        vm = VectorMachine(32)
        out, stats = vm.map(lambda c: c * 2, np.ones(100), ops_per_element=1)
        assert np.all(out == 2)
        assert stats.strip_mine_chunks == 4
        assert stats.vector_instructions == 4 * 3
        assert stats.scalar_instructions_equivalent == 100 * 4

    def test_instruction_reduction_grows_with_vl(self):
        results = compare_vector_lengths(1024, [4, 16, 64, 256])
        reductions = [results[vl]["instruction_reduction"] for vl in (4, 16, 64, 256)]
        assert reductions == sorted(reductions)

    def test_lanes_utilization_remainder(self):
        vm = VectorMachine(64)
        assert vm.lanes_utilization(64) == 1.0
        assert vm.lanes_utilization(65) == pytest.approx(65 / 128)

    def test_zip_map_shape_mismatch(self):
        vm = VectorMachine(8)
        with pytest.raises(ValueError):
            vm.zip_map(np.add, np.ones(4), np.ones(5))

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            VectorMachine(0)

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_daxpy_matches_numpy(self, n, vl):
        vm = VectorMachine(vl)
        x = np.arange(float(n))
        y = np.full(n, 3.0)
        out, stats = vm.daxpy(0.5, x, y)
        assert np.allclose(out, 0.5 * x + y)
        assert stats.strip_mine_chunks == vm.expected_chunks(n)

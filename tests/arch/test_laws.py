"""Tests for performance laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.laws import (
    amdahl_limit,
    amdahl_speedup,
    crossover_processors,
    efficiency,
    gustafson_speedup,
    isoefficiency_problem_size,
    karp_flatt,
    speedup,
    speedup_sweep,
)


class TestAmdahl:
    def test_serial_program_never_speeds_up(self):
        assert float(amdahl_speedup(0.0, 64)) == 1.0

    def test_perfectly_parallel_is_linear(self):
        assert float(amdahl_speedup(1.0, 64)) == pytest.approx(64.0)

    def test_textbook_value(self):
        # f=0.95, p=8: 1/(0.05 + 0.95/8)
        assert float(amdahl_speedup(0.95, 8)) == pytest.approx(5.925925925925926)

    def test_limit(self):
        assert float(amdahl_limit(0.95)) == pytest.approx(20.0)
        assert np.isinf(amdahl_limit(1.0))

    def test_vectorized_sweep(self):
        p = np.array([1, 2, 4, 8])
        s = amdahl_speedup(0.9, p)
        assert s.shape == (4,)
        assert s[0] == 1.0
        assert np.all(np.diff(s) > 0)

    def test_speedup_monotone_in_p(self):
        s = amdahl_speedup(0.8, np.arange(1, 100))
        assert np.all(np.diff(s) > 0)
        assert np.all(s < float(amdahl_limit(0.8)))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 4)
        with pytest.raises(ValueError):
            amdahl_speedup(-0.1, 4)

    def test_rejects_bad_processors(self):
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)

    @given(
        st.floats(min_value=0.0, max_value=0.999),
        st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_bounded_by_limit_and_p(self, f, p):
        s = float(amdahl_speedup(f, p))
        assert 1.0 <= s + 1e-12
        assert s <= p + 1e-9
        assert s <= float(amdahl_limit(f)) + 1e-9


class TestGustafson:
    def test_serial_fraction_zero(self):
        assert float(gustafson_speedup(1.0, 16)) == 16.0

    def test_textbook_value(self):
        assert float(gustafson_speedup(0.95, 100)) == pytest.approx(95.05)

    def test_exceeds_amdahl_for_same_fraction(self):
        p = np.arange(2, 128)
        assert np.all(gustafson_speedup(0.9, p) > amdahl_speedup(0.9, p))


class TestKarpFlatt:
    def test_recovers_serial_fraction(self):
        """Feeding Amdahl-generated speedups back recovers 1-f exactly."""
        f = 0.9
        for p in (2, 4, 8, 64):
            s = float(amdahl_speedup(f, p))
            assert float(karp_flatt(s, p)) == pytest.approx(1 - f)

    def test_undefined_at_one_processor(self):
        assert np.isnan(karp_flatt(1.0, 1))

    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.integers(min_value=2, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_inverse_of_amdahl(self, f, p):
        s = float(amdahl_speedup(f, p))
        assert float(karp_flatt(s, p)) == pytest.approx(1 - f, abs=1e-9)


class TestEfficiencyAndSweep:
    def test_efficiency(self):
        assert float(efficiency(4.0, 8)) == 0.5

    def test_speedup_helper(self):
        assert float(speedup(10.0, 2.5)) == 4.0

    def test_sweep_structure(self):
        sweep = speedup_sweep(0.95, max_processors=256)
        assert sweep["processors"].shape == (256,)
        assert sweep["amdahl"][0] == 1.0
        assert sweep["gustafson"][-1] > sweep["amdahl"][-1]
        assert np.all(np.diff(sweep["amdahl_efficiency"]) <= 1e-12)


class TestCrossoverAndIso:
    def test_crossover_reaches_target(self):
        p = crossover_processors(0.95, 10)
        assert p == 19  # exact solution of 1/(0.05 + 0.95/p) = 10
        assert float(amdahl_speedup(0.95, p)) == pytest.approx(10.0)
        assert float(amdahl_speedup(0.95, p - 1)) < 10

    def test_crossover_unreachable_target(self):
        with pytest.raises(ValueError):
            crossover_processors(0.9, 15)  # limit is 10

    def test_crossover_trivial_target(self):
        assert crossover_processors(0.5, 1.0) == 1

    def test_isoefficiency_grows_superlinearly(self):
        p = np.array([2.0, 4.0, 8.0, 16.0])
        w = isoefficiency_problem_size(p, target_efficiency=0.8)
        growth = w[1:] / w[:-1]
        assert np.all(growth > 2.0)  # faster than linear in p

    def test_isoefficiency_validates_target(self):
        with pytest.raises(ValueError):
            isoefficiency_problem_size(4, target_efficiency=1.0)

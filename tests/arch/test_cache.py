"""Tests for the set-associative cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import Cache, CacheConfig


class TestConfig:
    def test_geometry(self):
        cfg = CacheConfig(size_bytes=1024, line_bytes=64, associativity=2)
        assert cfg.num_sets == 8
        assert cfg.num_lines == 16

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=2)

    def test_positive_fields(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, line_bytes=64, associativity=1)


class TestHitsAndMisses:
    def test_first_access_misses(self):
        cache = Cache()
        assert cache.access(0) is False
        assert cache.stats.cold_misses == 1

    def test_same_line_hits(self):
        cache = Cache(CacheConfig(line_bytes=64))
        cache.access(0)
        assert cache.access(63) is True  # same line
        assert cache.access(64) is False  # next line

    def test_sequential_locality(self):
        cache = Cache(CacheConfig(size_bytes=512, line_bytes=64, associativity=2))
        cache.run_trace(list(range(0, 1024, 4)))
        # One miss per 16 accesses (64B line / 4B stride).
        assert cache.stats.miss_rate == pytest.approx(1 / 16)

    def test_repeated_small_working_set_all_hits_after_warmup(self):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
        warm = list(range(0, 512, 64))
        cache.run_trace(warm)
        misses_after_warm = cache.stats.misses
        cache.run_trace(warm * 10)
        assert cache.stats.misses == misses_after_warm


class TestLruAndConflict:
    def test_lru_evicts_oldest(self):
        # Direct-mapped-ish: 1 set, 2 ways.
        cache = Cache(CacheConfig(size_bytes=128, line_bytes=64, associativity=2))
        cache.access(0)      # line 0
        cache.access(64)     # line 1
        cache.access(0)      # touch line 0 (now MRU)
        cache.access(128)    # evicts line 1 (LRU)
        assert cache.access(0) is True
        assert cache.access(64) is False

    def test_conflict_misses_classified(self):
        # Two lines mapping to the same set of a 1-way cache thrash, while
        # the shadow fully-associative cache holds both -> conflict misses.
        cfg = CacheConfig(size_bytes=256, line_bytes=64, associativity=1)
        cache = Cache(cfg)
        a, b = 0, 256  # same set (4 sets; line 0 and line 4)
        for _ in range(10):
            cache.access(a)
            cache.access(b)
        assert cache.stats.conflict_misses > 0
        assert cache.stats.capacity_misses == 0

    def test_capacity_misses_classified(self):
        # Working set of 32 lines cycling through a 4-line cache: even a
        # fully associative cache would miss.
        cfg = CacheConfig(size_bytes=256, line_bytes=64, associativity=4)
        cache = Cache(cfg)
        trace = [i * 64 for i in range(32)] * 3
        cache.run_trace(trace)
        assert cache.stats.capacity_misses > 0

    def test_three_cs_sum_to_misses(self):
        cache = Cache(CacheConfig(size_bytes=512, line_bytes=64, associativity=2))
        cache.run_trace([i * 64 for i in range(64)] * 2)
        s = cache.stats
        assert s.cold_misses + s.capacity_misses + s.conflict_misses == s.misses


class TestWritePolicies:
    def test_write_back_marks_dirty_and_writes_back(self):
        cfg = CacheConfig(size_bytes=128, line_bytes=64, associativity=1,
                          write_back=True)
        cache = Cache(cfg)
        cache.access(0, write=True)   # dirty line 0 in set 0
        cache.access(128, write=False)  # evicts dirty line -> writeback
        assert cache.stats.writebacks == 1

    def test_write_through_no_allocate(self):
        cfg = CacheConfig(size_bytes=128, line_bytes=64, associativity=1,
                          write_back=False)
        cache = Cache(cfg)
        cache.access(0, write=True)
        # No-allocate: the line was not filled.
        assert cache.access(0, write=False) is False
        assert cache.stats.writebacks == 0

    def test_clean_eviction_no_writeback(self):
        cfg = CacheConfig(size_bytes=128, line_bytes=64, associativity=1)
        cache = Cache(cfg)
        cache.access(0)
        cache.access(128)
        assert cache.stats.writebacks == 0


class TestAmat:
    def test_amat_formula(self):
        cfg = CacheConfig(hit_time=1.0, miss_penalty=100.0)
        cache = Cache(cfg)
        cache.access(0)  # miss
        cache.access(0)  # hit
        assert cache.amat() == pytest.approx(1.0 + 0.5 * 100.0)

    def test_amat_no_accesses(self):
        assert Cache().amat() == pytest.approx(1.0)


@given(st.lists(st.integers(min_value=0, max_value=4096), max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_stats_consistent(addresses):
    cache = Cache(CacheConfig(size_bytes=512, line_bytes=64, associativity=2))
    cache.run_trace(addresses)
    s = cache.stats
    assert s.hits + s.misses == s.accesses == len(addresses)
    assert s.cold_misses + s.capacity_misses + s.conflict_misses == s.misses
    assert 0.0 <= s.miss_rate <= 1.0


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_property_single_line_misses_once(offsets):
    """All addresses within one line: exactly one (cold) miss."""
    cache = Cache(CacheConfig(size_bytes=512, line_bytes=64, associativity=2))
    cache.run_trace(offsets)
    assert cache.stats.misses == 1

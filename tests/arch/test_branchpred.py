"""Tests for branch predictors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.branchpred import (
    AlwaysNotTaken,
    AlwaysTaken,
    OneBitPredictor,
    TwoBitPredictor,
    TwoLevelPredictor,
    alternating_trace,
    effective_cpi,
    evaluate,
    loop_trace,
)


class TestStaticBaselines:
    def test_not_taken_on_loop(self):
        trace = loop_trace(iterations=10, trips=5)
        report = evaluate(AlwaysNotTaken(), trace)
        assert report.mispredictions == 9 * 5  # every taken branch

    def test_taken_on_loop(self):
        trace = loop_trace(iterations=10, trips=5)
        report = evaluate(AlwaysTaken(), trace)
        assert report.mispredictions == 5  # the exits only


class TestOneBit:
    def test_double_miss_per_loop_trip(self):
        """The teaching flaw: miss at exit AND at next entry."""
        trace = loop_trace(iterations=10, trips=5)
        report = evaluate(OneBitPredictor(), trace)
        # First trip: miss entry (init NT) + miss exit; later trips: 2 each.
        assert report.mispredictions == 2 * 5

    def test_learns_constant_behaviour(self):
        trace = [(0, True)] * 20
        report = evaluate(OneBitPredictor(), trace)
        assert report.mispredictions == 1  # only the cold miss


class TestTwoBit:
    def test_single_miss_per_loop_trip_after_warmup(self):
        trace = loop_trace(iterations=10, trips=5)
        report = evaluate(TwoBitPredictor(), trace)
        # Warmup costs an extra miss or two; steady state: 1 per trip.
        assert 5 <= report.mispredictions <= 7
        one_bit = evaluate(OneBitPredictor(), loop_trace(10, 5))
        assert report.mispredictions < one_bit.mispredictions

    def test_hysteresis_survives_single_anomaly(self):
        trace = [(0, True)] * 5 + [(0, False)] + [(0, True)] * 5
        report = evaluate(TwoBitPredictor(), trace)
        # Misses: warmup (1) + the anomaly (1); the T after the anomaly
        # is still predicted taken thanks to hysteresis.
        assert report.mispredictions == 2

    def test_alternating_is_pathological(self):
        report = evaluate(TwoBitPredictor(), alternating_trace(40))
        assert report.accuracy <= 0.6


class TestTwoLevel:
    def test_learns_alternating_pattern(self):
        report = evaluate(TwoLevelPredictor(history_bits=2), alternating_trace(60))
        # After warmup the history predicts the alternation perfectly.
        assert report.accuracy > 0.85

    def test_beats_two_bit_on_alternation(self):
        trace = alternating_trace(60)
        two_level = evaluate(TwoLevelPredictor(2), trace)
        two_bit = evaluate(TwoBitPredictor(), trace)
        assert two_level.mispredictions < two_bit.mispredictions

    def test_history_bits_validated(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(0)


class TestEffectiveCpi:
    def test_perfect_prediction_base_cpi(self):
        assert effective_cpi(1.0) == 1.0

    def test_formula(self):
        # 20% branches, 90% accuracy, 2-cycle penalty:
        assert effective_cpi(0.9) == pytest.approx(1.0 + 0.2 * 0.1 * 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_cpi(1.5)
        with pytest.raises(ValueError):
            effective_cpi(0.9, branch_fraction=2.0)

    def test_predictor_quality_orders_cpi(self):
        trace = loop_trace(iterations=8, trips=20)
        cpis = {}
        for predictor in (AlwaysNotTaken(), OneBitPredictor(), TwoBitPredictor()):
            report = evaluate(predictor, trace)
            cpis[report.name] = effective_cpi(report.accuracy)
        assert cpis["two-bit"] < cpis["one-bit"] < cpis["always-not-taken"]


@given(st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=100))
@settings(max_examples=60, deadline=None)
def test_property_reports_consistent(trace):
    for predictor in (
        AlwaysNotTaken(),
        AlwaysTaken(),
        OneBitPredictor(),
        TwoBitPredictor(),
        TwoLevelPredictor(3),
    ):
        report = evaluate(predictor, trace)
        assert 0 <= report.mispredictions <= report.branches == len(trace)
        assert 0.0 <= report.accuracy <= 1.0

"""Edge cases across the architecture simulators."""

import pytest

from repro.arch.cache import Cache, CacheConfig
from repro.arch.coherence import CoherentSystem, LineState, Protocol
from repro.arch.pipeline import Instr, Op, Pipeline, PipelineConfig
from repro.arch.tomasulo import TInstr, TOp, TomasuloCPU


class TestTomasuloFlushEdge:
    def test_flush_frees_in_flight_wrong_path_stations(self):
        """A long MUL issued down the wrong path must be squashed and its
        reservation station freed, or later programs starve."""
        prog = [
            TInstr(TOp.LOAD, rd=1, addr=0),      # r1 = 1 -> branch taken
            TInstr(TOp.BNEZ, rs=1, target=4),
            TInstr(TOp.MUL, rd=2, rs=1, rt=1),   # wrong path, long latency
            TInstr(TOp.MUL, rd=3, rs=1, rt=1),   # wrong path
            TInstr(TOp.ADD, rd=4, rs=1, rt=1),   # correct target
        ]
        cpu = TomasuloCPU(prog, speculative=True, memory={0: 1.0},
                          num_multipliers=2)
        stats = cpu.run()
        assert stats.mispredictions == 1
        assert cpu.registers[2] == 0.0  # never committed
        assert cpu.registers[3] == 0.0
        assert cpu.registers[4] == 2.0
        # All stations free at the end.
        assert not any(s.busy for s in cpu.stations)

    def test_back_to_back_branches(self):
        prog = [
            TInstr(TOp.LOAD, rd=1, addr=0),      # 1.0
            TInstr(TOp.BNEZ, rs=1, target=3),    # taken
            TInstr(TOp.ADD, rd=9, rs=1, rt=1),   # squashed
            TInstr(TOp.LOAD, rd=2, addr=1),      # 0.0
            TInstr(TOp.BNEZ, rs=2, target=6),    # not taken
            TInstr(TOp.ADD, rd=5, rs=1, rt=1),
            TInstr(TOp.ADD, rd=6, rs=5, rt=1),
        ]
        cpu = TomasuloCPU(prog, speculative=True, memory={0: 1.0, 1: 0.0})
        stats = cpu.run()
        assert stats.mispredictions == 1
        assert cpu.registers[9] == 0.0
        assert cpu.registers[5] == 2.0
        assert cpu.registers[6] == 3.0

    def test_rename_chain_through_rob_values(self):
        """A consumer issued while its producer's value sits only in the
        ROB (written, not committed) must read it from there."""
        prog = [
            TInstr(TOp.ADD, rd=1, rs=0, rt=0),
            TInstr(TOp.MUL, rd=2, rs=0, rt=0),   # long op keeps ROB head busy
            TInstr(TOp.ADD, rd=3, rs=1, rt=1),   # r1 is ready in ROB only
        ]
        cpu = TomasuloCPU(prog, speculative=True, registers={0: 2.0})
        cpu.run()
        assert cpu.registers[3] == 8.0  # (2+2)+(2+2)


class TestPipelineBranchHazards:
    def test_branch_in_id_waits_for_operand(self):
        """Early branch resolution reads registers in ID, so it must stall
        behind an in-flight producer — and still branch correctly."""
        prog = [
            Instr(Op.ADDI, rd=1, rs1=0, imm=5),
            Instr(Op.BNE, rs1=1, rs2=0, imm=3),  # depends on r1; taken
            Instr(Op.ADDI, rd=2, rs1=0, imm=99),  # squashed
            Instr(Op.ADDI, rd=3, rs1=0, imm=7),
        ]
        pipe = Pipeline(prog, PipelineConfig(branch_in_id=True))
        stats = pipe.run()
        assert pipe.registers[2] == 0
        assert pipe.registers[3] == 7
        assert stats.stalls >= 1  # waited for r1

    def test_branch_to_end_of_program(self):
        prog = [
            Instr(Op.BEQ, rs1=0, rs2=0, imm=3),  # jump past everything
            Instr(Op.ADDI, rd=1, rs1=0, imm=1),
            Instr(Op.ADDI, rd=2, rs1=0, imm=1),
        ]
        pipe = Pipeline(prog)
        pipe.run()
        assert pipe.registers[1] == 0 and pipe.registers[2] == 0

    def test_store_data_hazard_without_forwarding(self):
        prog = [
            Instr(Op.ADDI, rd=1, rs1=0, imm=42),
            Instr(Op.SW, rs1=0, rs2=1, imm=0),  # stores r1
        ]
        pipe = Pipeline(prog, PipelineConfig(forwarding=False))
        pipe.run()
        assert pipe.memory[0] == 42

    def test_register_validation(self):
        with pytest.raises(ValueError):
            Pipeline([Instr(Op.ADDI, rd=32, rs1=0, imm=1)])


class TestCacheEdge:
    def test_write_through_read_fill_then_write_hit(self):
        cfg = CacheConfig(size_bytes=128, line_bytes=64, associativity=1,
                          write_back=False)
        cache = Cache(cfg)
        cache.access(0, write=False)  # fill by read
        assert cache.access(0, write=True) is True  # write hit, no dirty
        assert cache.stats.writebacks == 0

    def test_fully_associative_never_conflicts(self):
        cfg = CacheConfig(size_bytes=256, line_bytes=64, associativity=4)
        cache = Cache(cfg)
        assert cfg.num_sets == 1
        trace = [i * 64 for i in range(4)] * 5  # fits exactly
        cache.run_trace(trace)
        assert cache.stats.conflict_misses == 0
        assert cache.stats.capacity_misses == 0


class TestCoherenceEdge:
    def test_evict_unknown_line_is_silent(self):
        sys = CoherentSystem(2)
        sys.evict(0, 99)
        assert sys.stats.writebacks == 0

    def test_msi_write_after_own_read_needs_upgrade(self):
        """MSI pays BusUpgr even with no sharers — the exact cost MESI's
        E state eliminates."""
        sys = CoherentSystem(2, Protocol.MSI)
        sys.read(0, 1)  # S (MSI has no E)
        sys.write(0, 1)
        assert sys.stats.bus_upgr == 1

    def test_read_after_remote_write_gets_shared(self):
        sys = CoherentSystem(3, Protocol.MESI)
        sys.write(1, 7)
        assert sys.read(2, 7) is LineState.SHARED
        sys.check_invariant()

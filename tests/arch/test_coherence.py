"""Tests for MSI/MESI snooping coherence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.coherence import (
    CoherentSystem,
    LineState,
    Protocol,
    ping_pong_workload,
    private_rw_workload,
)


class TestStateTransitions:
    def test_mesi_first_read_is_exclusive(self):
        sys = CoherentSystem(2, Protocol.MESI)
        assert sys.read(0, 1) is LineState.EXCLUSIVE

    def test_msi_first_read_is_shared(self):
        sys = CoherentSystem(2, Protocol.MSI)
        assert sys.read(0, 1) is LineState.SHARED

    def test_second_reader_shares(self):
        sys = CoherentSystem(2, Protocol.MESI)
        sys.read(0, 1)
        assert sys.read(1, 1) is LineState.SHARED
        assert sys.state_of(0, 1) is LineState.SHARED  # E downgrades

    def test_silent_e_to_m_upgrade(self):
        sys = CoherentSystem(2, Protocol.MESI)
        sys.read(0, 1)  # E
        before = sys.stats.total_transactions
        assert sys.write(0, 1) is LineState.MODIFIED
        assert sys.stats.total_transactions == before  # no bus traffic

    def test_s_to_m_needs_upgrade(self):
        sys = CoherentSystem(2, Protocol.MESI)
        sys.read(0, 1)
        sys.read(1, 1)
        sys.write(0, 1)
        assert sys.stats.bus_upgr == 1
        assert sys.stats.invalidations == 1
        assert sys.state_of(1, 1) is LineState.INVALID

    def test_write_miss_is_rdx(self):
        sys = CoherentSystem(2, Protocol.MESI)
        sys.write(0, 5)
        assert sys.stats.bus_rdx == 1
        assert sys.state_of(0, 5) is LineState.MODIFIED

    def test_read_of_modified_forces_flush(self):
        sys = CoherentSystem(2, Protocol.MESI)
        sys.write(0, 1)
        sys.read(1, 1)
        assert sys.stats.writebacks == 1
        assert sys.stats.cache_to_cache == 1
        assert sys.state_of(0, 1) is LineState.SHARED

    def test_write_hit_on_m_is_free(self):
        sys = CoherentSystem(2, Protocol.MESI)
        sys.write(0, 1)
        before = sys.stats.total_transactions
        sys.write(0, 1)
        assert sys.stats.total_transactions == before

    def test_eviction_of_m_writes_back(self):
        sys = CoherentSystem(2, Protocol.MESI)
        sys.write(0, 1)
        sys.evict(0, 1)
        assert sys.stats.writebacks == 1
        assert sys.state_of(0, 1) is LineState.INVALID

    def test_eviction_of_clean_is_silent(self):
        sys = CoherentSystem(2, Protocol.MESI)
        sys.read(0, 1)
        sys.evict(0, 1)
        assert sys.stats.writebacks == 0


class TestProtocolComparison:
    def test_mesi_saves_upgrades_on_private_data(self):
        """The headline ablation: private read-then-write costs MSI a
        BusUpgr per first write; MESI none."""
        msi = CoherentSystem(4, Protocol.MSI)
        mesi = CoherentSystem(4, Protocol.MESI)
        workload = private_rw_workload(4, repeats=10)
        msi.run_trace(workload)
        mesi.run_trace(workload)
        assert msi.stats.bus_upgr == 4
        assert mesi.stats.bus_upgr == 0
        assert mesi.stats.total_transactions < msi.stats.total_transactions

    def test_ping_pong_invalidates_every_write(self):
        sys = CoherentSystem(2, Protocol.MESI)
        sys.run_trace(ping_pong_workload(10))
        assert sys.stats.invalidations + sys.stats.bus_rdx >= 19

    def test_sharing_read_workload_cheap(self):
        sys = CoherentSystem(4, Protocol.MESI)
        trace = [(c, "r", 0) for c in range(4)] * 5
        sys.run_trace(trace)
        assert sys.stats.bus_rd == 4  # one per core, then hits


class TestInvariant:
    def test_swmr_after_scenarios(self):
        sys = CoherentSystem(3, Protocol.MESI)
        sys.write(0, 1)
        sys.check_invariant()
        sys.read(1, 1)
        sys.check_invariant()
        sys.write(2, 1)
        sys.check_invariant()
        assert sys.state_of(0, 1) is LineState.INVALID
        assert sys.state_of(1, 1) is LineState.INVALID

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.sampled_from(["r", "w"]),
                st.integers(0, 4),
            ),
            max_size=100,
        ),
        st.sampled_from([Protocol.MSI, Protocol.MESI]),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_swmr_always_holds(self, trace, protocol):
        sys = CoherentSystem(4, protocol)
        sys.run_trace(trace)
        sys.check_invariant()

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),
                st.sampled_from(["r", "w"]),
                st.integers(0, 3),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_mesi_never_costs_more_bus_than_msi(self, trace):
        msi = CoherentSystem(3, Protocol.MSI)
        mesi = CoherentSystem(3, Protocol.MESI)
        msi.run_trace(trace)
        mesi.run_trace(trace)
        assert (
            mesi.stats.total_transactions <= msi.stats.total_transactions
        )

    def test_rejects_bad_trace_kind(self):
        with pytest.raises(ValueError):
            CoherentSystem(2).run_trace([(0, "x", 1)])

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CoherentSystem(0)

"""Tests for the 5-stage pipeline simulator."""

import pytest

from repro.arch.pipeline import Instr, Op, Pipeline, PipelineConfig


def _prog_independent(n):
    return [Instr(Op.ADDI, rd=(i % 31) + 1, rs1=0, imm=i) for i in range(n)]


class TestIdealPipelining:
    def test_fill_plus_one_per_instruction(self):
        stats = Pipeline(_prog_independent(8)).run()
        assert stats.cycles == 12  # 8 + 4 fill
        assert stats.stalls == 0
        assert stats.instructions == 8

    def test_cpi_approaches_one(self):
        stats = Pipeline(_prog_independent(100)).run()
        assert stats.cpi == pytest.approx(1.04)

    def test_speedup_vs_unpipelined(self):
        stats = Pipeline(_prog_independent(100)).run()
        assert stats.speedup_vs_unpipelined == pytest.approx(500 / 104)

    def test_empty_program(self):
        stats = Pipeline([]).run()
        assert stats.cycles == 0 and stats.instructions == 0


class TestDataHazards:
    RAW_CHAIN = [
        Instr(Op.ADDI, rd=1, rs1=0, imm=5),
        Instr(Op.ADD, rd=2, rs1=1, rs2=1),
        Instr(Op.ADD, rd=3, rs1=2, rs2=2),
    ]

    def test_forwarding_eliminates_alu_stalls(self):
        pipe = Pipeline(self.RAW_CHAIN)
        stats = pipe.run()
        assert stats.stalls == 0
        assert stats.cycles == 7
        assert pipe.registers[3] == 20

    def test_no_forwarding_costs_two_stalls_per_dependence(self):
        pipe = Pipeline(self.RAW_CHAIN, PipelineConfig(forwarding=False))
        stats = pipe.run()
        assert stats.stalls == 4  # two per distance-1 dependence
        assert stats.cycles == 11
        assert pipe.registers[3] == 20  # same architectural result

    def test_distance_two_needs_one_stall_without_forwarding(self):
        prog = [
            Instr(Op.ADDI, rd=1, rs1=0, imm=5),
            Instr(Op.ADDI, rd=4, rs1=0, imm=1),  # filler
            Instr(Op.ADD, rd=2, rs1=1, rs2=1),
        ]
        stats = Pipeline(prog, PipelineConfig(forwarding=False)).run()
        assert stats.stalls == 1

    def test_distance_three_needs_no_stall(self):
        prog = [
            Instr(Op.ADDI, rd=1, rs1=0, imm=5),
            Instr(Op.ADDI, rd=4, rs1=0, imm=1),
            Instr(Op.ADDI, rd=5, rs1=0, imm=1),
            Instr(Op.ADD, rd=2, rs1=1, rs2=1),
        ]
        stats = Pipeline(prog, PipelineConfig(forwarding=False)).run()
        assert stats.stalls == 0

    def test_load_use_stalls_once_with_forwarding(self):
        prog = [
            Instr(Op.ADDI, rd=1, rs1=0, imm=100),
            Instr(Op.SW, rs1=0, rs2=1, imm=8),
            Instr(Op.LW, rd=2, rs1=0, imm=8),
            Instr(Op.ADD, rd=3, rs1=2, rs2=2),
        ]
        pipe = Pipeline(prog)
        stats = pipe.run()
        assert stats.stalls == 1
        assert pipe.registers[3] == 200

    def test_load_independent_consumer_no_stall(self):
        prog = [
            Instr(Op.LW, rd=2, rs1=0, imm=8),
            Instr(Op.ADDI, rd=3, rs1=0, imm=1),  # does not use r2
        ]
        assert Pipeline(prog).run().stalls == 0

    def test_x0_never_hazards(self):
        prog = [
            Instr(Op.ADDI, rd=0, rs1=0, imm=5),  # writes to x0: discarded
            Instr(Op.ADD, rd=1, rs1=0, rs2=0),
        ]
        pipe = Pipeline(prog, PipelineConfig(forwarding=False))
        stats = pipe.run()
        assert stats.stalls == 0
        assert pipe.registers[0] == 0
        assert pipe.registers[1] == 0


class TestMemory:
    def test_store_then_load(self):
        prog = [
            Instr(Op.ADDI, rd=1, rs1=0, imm=77),
            Instr(Op.SW, rs1=0, rs2=1, imm=4),
            Instr(Op.ADDI, rd=9, rs1=0, imm=0),  # spacing
            Instr(Op.ADDI, rd=9, rs1=0, imm=0),
            Instr(Op.LW, rd=2, rs1=0, imm=4),
        ]
        pipe = Pipeline(prog)
        pipe.run()
        assert pipe.registers[2] == 77
        assert pipe.memory[4] == 77

    def test_initial_memory_and_registers(self):
        prog = [Instr(Op.LW, rd=1, rs1=2, imm=0)]
        pipe = Pipeline(prog, registers={2: 100}, memory={100: 55})
        pipe.run()
        assert pipe.registers[1] == 55


class TestControlHazards:
    TAKEN = [
        Instr(Op.ADDI, rd=1, rs1=0, imm=1),
        Instr(Op.BEQ, rs1=0, rs2=0, imm=4),  # always taken
        Instr(Op.ADDI, rd=2, rs1=0, imm=99),  # squashed
        Instr(Op.ADDI, rd=3, rs1=0, imm=99),  # squashed
        Instr(Op.ADDI, rd=4, rs1=0, imm=7),
    ]

    def test_taken_branch_flushes_two(self):
        pipe = Pipeline(self.TAKEN)
        stats = pipe.run()
        assert stats.flushes == 2
        assert pipe.registers[2] == 0 and pipe.registers[3] == 0
        assert pipe.registers[4] == 7

    def test_not_taken_branch_costs_nothing(self):
        prog = [
            Instr(Op.ADDI, rd=1, rs1=0, imm=1),
            Instr(Op.BNE, rs1=0, rs2=0, imm=4),  # never taken
            Instr(Op.ADDI, rd=2, rs1=0, imm=5),
        ]
        pipe = Pipeline(prog)
        stats = pipe.run()
        assert stats.flushes == 0
        assert pipe.registers[2] == 5

    def test_branch_in_id_halves_penalty(self):
        late = Pipeline(self.TAKEN).run()
        early = Pipeline(self.TAKEN, PipelineConfig(branch_in_id=True)).run()
        assert early.flushes == 1
        assert early.cycles < late.cycles

    def test_branch_in_id_same_semantics(self):
        p1 = Pipeline(self.TAKEN)
        p2 = Pipeline(self.TAKEN, PipelineConfig(branch_in_id=True))
        p1.run(), p2.run()
        assert p1.registers == p2.registers

    def test_loop_executes_correct_count(self):
        # r1 = 3; loop: r2 += 1; r1 -= 1; if r1 != 0 goto loop
        prog = [
            Instr(Op.ADDI, rd=1, rs1=0, imm=3),
            Instr(Op.ADDI, rd=2, rs1=2, imm=1),   # index 1: loop body
            Instr(Op.ADDI, rd=1, rs1=1, imm=-1),
            Instr(Op.BNE, rs1=1, rs2=0, imm=1),
        ]
        pipe = Pipeline(prog)
        pipe.run()
        assert pipe.registers[2] == 3
        assert pipe.registers[1] == 0

    def test_runaway_program_guard(self):
        prog = [Instr(Op.BEQ, rs1=0, rs2=0, imm=0)]  # infinite loop
        with pytest.raises(RuntimeError):
            Pipeline(prog).run(max_cycles=100)


class TestSemanticsEquivalence:
    """Forwarding must change timing only, never results."""

    @pytest.mark.parametrize("config", [
        PipelineConfig(forwarding=True),
        PipelineConfig(forwarding=False),
        PipelineConfig(branch_in_id=True),
    ])
    def test_program_result_stable(self, config):
        prog = [
            Instr(Op.ADDI, rd=1, rs1=0, imm=10),
            Instr(Op.ADDI, rd=2, rs1=0, imm=3),
            Instr(Op.ADD, rd=3, rs1=1, rs2=2),
            Instr(Op.SUB, rd=4, rs1=3, rs2=2),
            Instr(Op.SW, rs1=0, rs2=4, imm=0),
            Instr(Op.LW, rd=5, rs1=0, imm=0),
            Instr(Op.AND, rd=6, rs1=5, rs2=1),
            Instr(Op.OR, rd=7, rs1=6, rs2=2),
        ]
        pipe = Pipeline(prog, config)
        pipe.run()
        assert pipe.registers[3] == 13
        assert pipe.registers[4] == 10
        assert pipe.registers[5] == 10
        assert pipe.registers[6] == 10 & 10
        assert pipe.registers[7] == (10 & 10) | 3

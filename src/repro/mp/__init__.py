"""An in-process, mpi4py-flavoured message-passing runtime.

The LAU case-study course (paper §IV-A) closes with message-passing
cluster computing; CS2013's PDC area requires the message-passing model
alongside shared memory.  The paper's authors taught this on real MPI
clusters; this subpackage substitutes a deterministic, laptop-scale runtime
where *ranks are threads* and messages travel through matched mailboxes,
preserving MPI's semantics (non-overtaking point-to-point order, rooted and
symmetric collectives, cartesian topologies).

API conventions follow mpi4py (per the session's HPC guides):

- lowercase methods (``send``/``recv``/``bcast``/``scatter``/``gather``/
  ``reduce`` …) communicate arbitrary Python objects;
- uppercase methods (``Send``/``Recv``/``Bcast``/``Reduce`` …) operate on
  NumPy buffers, filling the receive buffer in place;
- ``Get_rank()`` / ``Get_size()``; ``ANY_SOURCE`` / ``ANY_TAG`` wildcards;
  ``isend``/``irecv`` return :class:`~repro.mp.communicator.Request` objects
  with ``wait``/``test``.

Entry point::

    from repro import mp

    def main(comm):
        rank = comm.Get_rank()
        data = comm.bcast({"n": 100} if rank == 0 else None, root=0)
        return comm.reduce(rank, op=mp.SUM, root=0)

    results = mp.run_spmd(4, main)   # results[0] == 0+1+2+3
"""

from repro.mp.communicator import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    MessageTruncated,
    Request,
    Status,
)
from repro.mp.io import MpiFile, SimFile
from repro.mp.ops import BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, Op
from repro.mp.runtime import World, run_spmd
from repro.mp.topology import CartComm

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "BOR",
    "CartComm",
    "Communicator",
    "LAND",
    "LOR",
    "MAX",
    "MAXLOC",
    "MessageTruncated",
    "MIN",
    "MINLOC",
    "MpiFile",
    "Op",
    "PROD",
    "Request",
    "run_spmd",
    "SimFile",
    "Status",
    "SUM",
    "World",
]

"""The SPMD runtime: a world of rank-threads and its message fabric.

:func:`run_spmd` is the ``mpiexec -n <size> python script.py`` of this
substrate: it spawns one thread per rank, hands each a
:class:`~repro.mp.communicator.Communicator`, runs the same function
everywhere (Single Program, Multiple Data), and returns the per-rank return
values.  An exception in any rank aborts the job and is re-raised in the
caller with its rank attached, which is also how students learn that MPI
errors are job-global.

Job completion is condition-variable signalled (no polling): each rank
notifies the join condition as it finishes, and the driver waits on it
with a deadline measured on an injected
:class:`~repro.runtime.clock.Clock` — real time by default, virtual (and
therefore deterministic) when the world carries a
:class:`~repro.runtime.RunContext` with a
:class:`~repro.runtime.clock.VirtualClock`.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.faults.errors import RankCrashed
from repro.mp.communicator import Communicator, _Mailbox
from repro.runtime import MonotonicClock, RunContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = ["World", "SpmdError", "run_spmd"]

#: Real/virtual seconds granted to sibling ranks after one rank fails.
_ABORT_GRACE = 0.5


class SpmdError(RuntimeError):
    """An exception escaped a rank's main function.

    Attributes
    ----------
    rank:
        The rank whose function raised.
    cause:
        The original exception (also chained via ``__cause__``).
    """

    def __init__(self, rank: int, cause: BaseException) -> None:
        super().__init__(f"rank {rank} raised {type(cause).__name__}: {cause}")
        self.rank = rank
        self.cause = cause


@dataclasses.dataclass(frozen=True)
class MessageRecord:
    """One entry of the world's message trace (for stats and ablations)."""

    source: int
    dest: int
    tag: int


class World:
    """Shared state of one SPMD job: mailboxes and a message trace.

    With a ``context``, every recorded message also increments the
    run-wide ``mp.messages`` counter and emits an instant trace event, so
    the SPMD fabric shows up on the same timeline as the network and the
    scheduler.

    A :class:`~repro.faults.plan.FaultPlan` scripts rank failures: a
    ``Crash("rank-2", at=...)`` spec makes rank 2's next send raise
    :class:`~repro.faults.errors.RankCrashed` once the plan's clock
    passes ``at`` (fail-stop at a communication point, the only place a
    crash is observable to the rest of the job).
    """

    def __init__(
        self,
        size: int,
        context: Optional[RunContext] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        if size < 1:
            raise ValueError("world size must be positive")
        self.size = size
        self.context = context
        self.fault_plan = fault_plan
        if fault_plan is not None and context is not None:
            fault_plan.bind(context)
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._trace: List[MessageRecord] = []
        self._trace_lock = threading.Lock()
        self._messages_counter = (
            context.registry.counter("mp.messages") if context else None
        )

    def mailbox(self, rank: int) -> _Mailbox:
        """The incoming-message store of ``rank``."""
        return self._mailboxes[rank]

    def check_rank(self, rank: int) -> None:
        """Raise :class:`RankCrashed` if the fault plan has fail-stopped
        ``rank`` (node name ``"rank-<n>"``) at the current virtual time."""
        plan = self.fault_plan
        if plan is not None and plan.is_crashed(f"rank-{rank}"):
            raise RankCrashed(rank)

    def record_message(self, source: int, dest: int, tag: int) -> None:
        """Append one send to the message trace."""
        self.check_rank(source)
        with self._trace_lock:
            self._trace.append(MessageRecord(source, dest, tag))
        if self._messages_counter is not None:
            self._messages_counter.inc()
        if self.context is not None:
            self.context.tracer.instant(
                "mp.send",
                cat="mp",
                tid=f"rank-{source}",
                args={"dest": dest, "tag": tag},
            )

    @property
    def message_count(self) -> int:
        """Total messages sent in this world so far."""
        with self._trace_lock:
            return len(self._trace)

    def messages_from(self, rank: int) -> int:
        """Messages sent by ``rank`` (the root-serialization metric)."""
        with self._trace_lock:
            return sum(1 for m in self._trace if m.source == rank)

    def trace(self) -> List[MessageRecord]:
        """A snapshot of the full message trace."""
        with self._trace_lock:
            return list(self._trace)

    def communicator(self, rank: int) -> Communicator:
        """Build the communicator bound to ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return Communicator(self, rank)


def run_spmd(
    size: int,
    main: Callable[..., Any],
    *args: Any,
    world: Optional[World] = None,
    timeout: Optional[float] = 60.0,
    context: Optional[RunContext] = None,
    fault_plan: Optional["FaultPlan"] = None,
    **kwargs: Any,
) -> List[Any]:
    """Run ``main(comm, *args, **kwargs)`` on ``size`` rank-threads.

    Returns the list of per-rank return values, indexed by rank.  Pass a
    pre-built :class:`World` to inspect its message trace afterwards.

    ``timeout`` bounds the whole job; a hung rank (e.g. a deadlocked
    receive) raises ``TimeoutError`` instead of hanging the test suite —
    deliberately, since "my ranks deadlocked" is a teaching moment, not an
    infrastructure failure.  The deadline is measured on the run's clock:
    wall time normally, virtual time when the context carries a
    :class:`~repro.runtime.clock.VirtualClock`.

    A ``fault_plan`` scripts rank failures.  A scripted crash is *data*,
    not an error: the crashed rank's slot in the result list is ``None``
    and the job keeps running (siblings that block forever on the dead
    rank's messages hit ``timeout`` — the lesson).  A ``Crash`` spec with
    ``restart_at`` instead sleeps the rank to its restart time and reruns
    ``main`` from the top — fail-stop recovery with volatile state lost.
    """
    w = world if world is not None else World(
        size, context=context, fault_plan=fault_plan
    )
    if w.size != size:
        raise ValueError("world size does not match requested size")
    if fault_plan is not None and w.fault_plan is None:
        w.fault_plan = fault_plan
        if w.context is not None:
            fault_plan.bind(w.context)
    ctx = context if context is not None else w.context
    clock = ctx.clock if ctx is not None else MonotonicClock()
    tracer = ctx.tracer if ctx is not None else None
    results: Dict[int, Any] = {}
    errors: List[Tuple[int, BaseException]] = []
    done = threading.Condition()
    remaining = size

    def runner(rank: int) -> None:
        nonlocal remaining

        def invoke() -> Any:
            comm = w.communicator(rank)
            if tracer is not None:
                with tracer.span(
                    "mp.rank", cat="mp", tid=f"rank-{rank}",
                    args={"rank": rank},
                ):
                    return main(comm, *args, **kwargs)
            return main(comm, *args, **kwargs)

        try:
            try:
                value = invoke()
            except RankCrashed:
                plan = w.fault_plan
                node = f"rank-{rank}"
                restart = plan.restart_at(node) if plan is not None else None
                if restart is None:
                    # Fail-stop for good.  Unlike an unscripted exception
                    # this does not abort the job: the survivors' view of
                    # a crash is silence, not a stack trace.
                    if tracer is not None:
                        tracer.instant(
                            "mp.rank.crash", cat="mp", tid=f"rank-{rank}",
                            args={"rank": rank},
                        )
                    value = None
                else:
                    wait = restart - plan.clock.now()
                    if wait > 0:
                        plan.clock.sleep(wait)
                    if tracer is not None:
                        tracer.instant(
                            "mp.rank.restart", cat="mp", tid=f"rank-{rank}",
                            args={"rank": rank},
                        )
                    # Rerun from the top: volatile state (locals, the old
                    # communicator's half-done exchanges) is gone.
                    value = invoke()
            with done:
                results[rank] = value
                remaining -= 1
                done.notify_all()
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            with done:
                errors.append((rank, exc))
                remaining -= 1
                done.notify_all()

    threads = [
        threading.Thread(target=runner, args=(r,), daemon=True, name=f"rank-{r}")
        for r in range(size)
    ]
    if tracer is not None:
        tracer.begin("mp.run_spmd", cat="mp", tid="mp.driver",
                     args={"size": size})
    for t in threads:
        t.start()

    deadline = None if timeout is None else clock.now() + timeout
    with done:
        while remaining > 0 and not errors:
            wait_for = None if deadline is None else deadline - clock.now()
            if wait_for is not None and wait_for <= 0:
                alive = [t for t in threads if t.is_alive()]
                straggler = alive[0].name if alive else "unknown rank"
                raise TimeoutError(
                    f"SPMD job did not finish within {timeout}s "
                    f"({straggler} still running; likely an unmatched recv "
                    "or deadlock)"
                )
            clock.wait_on(done, wait_for)
        if errors:
            # A rank died; siblings blocked on its messages may never
            # finish.  Grant a signalled grace period — we wake the moment
            # the last sibling exits — then abandon the rest (daemon
            # threads) and report the real error.
            grace_deadline = clock.now() + _ABORT_GRACE
            while remaining > 0:
                wait_for = grace_deadline - clock.now()
                if wait_for <= 0 or not clock.wait_on(done, wait_for):
                    break

    if tracer is not None:
        tracer.end("mp.run_spmd", cat="mp", tid="mp.driver")
    if errors:
        rank, cause = min(errors, key=lambda e: e[0])
        raise SpmdError(rank, cause) from cause
    return [results[r] for r in range(size)]

"""The SPMD runtime: a world of rank-threads and its message fabric.

:func:`run_spmd` is the ``mpiexec -n <size> python script.py`` of this
substrate: it spawns one thread per rank, hands each a
:class:`~repro.mp.communicator.Communicator`, runs the same function
everywhere (Single Program, Multiple Data), and returns the per-rank return
values.  An exception in any rank aborts the job and is re-raised in the
caller with its rank attached, which is also how students learn that MPI
errors are job-global.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.mp.communicator import Communicator, _Mailbox

__all__ = ["World", "SpmdError", "run_spmd"]


class SpmdError(RuntimeError):
    """An exception escaped a rank's main function.

    Attributes
    ----------
    rank:
        The rank whose function raised.
    cause:
        The original exception (also chained via ``__cause__``).
    """

    def __init__(self, rank: int, cause: BaseException) -> None:
        super().__init__(f"rank {rank} raised {type(cause).__name__}: {cause}")
        self.rank = rank
        self.cause = cause


@dataclasses.dataclass(frozen=True)
class MessageRecord:
    """One entry of the world's message trace (for stats and ablations)."""

    source: int
    dest: int
    tag: int


class World:
    """Shared state of one SPMD job: mailboxes and a message trace."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("world size must be positive")
        self.size = size
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._trace: List[MessageRecord] = []
        self._trace_lock = threading.Lock()

    def mailbox(self, rank: int) -> _Mailbox:
        """The incoming-message store of ``rank``."""
        return self._mailboxes[rank]

    def record_message(self, source: int, dest: int, tag: int) -> None:
        """Append one send to the message trace."""
        with self._trace_lock:
            self._trace.append(MessageRecord(source, dest, tag))

    @property
    def message_count(self) -> int:
        """Total messages sent in this world so far."""
        with self._trace_lock:
            return len(self._trace)

    def messages_from(self, rank: int) -> int:
        """Messages sent by ``rank`` (the root-serialization metric)."""
        with self._trace_lock:
            return sum(1 for m in self._trace if m.source == rank)

    def trace(self) -> List[MessageRecord]:
        """A snapshot of the full message trace."""
        with self._trace_lock:
            return list(self._trace)

    def communicator(self, rank: int) -> Communicator:
        """Build the communicator bound to ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return Communicator(self, rank)


def run_spmd(
    size: int,
    main: Callable[..., Any],
    *args: Any,
    world: Optional[World] = None,
    timeout: Optional[float] = 60.0,
    **kwargs: Any,
) -> List[Any]:
    """Run ``main(comm, *args, **kwargs)`` on ``size`` rank-threads.

    Returns the list of per-rank return values, indexed by rank.  Pass a
    pre-built :class:`World` to inspect its message trace afterwards.

    ``timeout`` bounds the whole job; a hung rank (e.g. a deadlocked
    receive) raises ``TimeoutError`` instead of hanging the test suite —
    deliberately, since "my ranks deadlocked" is a teaching moment, not an
    infrastructure failure.
    """
    w = world if world is not None else World(size)
    if w.size != size:
        raise ValueError("world size does not match requested size")
    results: Dict[int, Any] = {}
    errors: List[Tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = w.communicator(rank)
        try:
            value = main(comm, *args, **kwargs)
            with lock:
                results[rank] = value
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            with lock:
                errors.append((rank, exc))

    threads = [
        threading.Thread(target=runner, args=(r,), daemon=True, name=f"rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()

    import time as _time

    deadline = None if timeout is None else _time.monotonic() + timeout
    while True:
        alive = [t for t in threads if t.is_alive()]
        if not alive:
            break
        with lock:
            failed = bool(errors)
        if failed:
            # A rank died; siblings blocked on its messages will never
            # finish.  Give them a short grace period, then abandon them
            # (daemon threads) and report the real error.
            grace = _time.monotonic() + 0.5
            while _time.monotonic() < grace and any(
                t.is_alive() for t in threads
            ):
                _time.sleep(0.01)
            break
        if deadline is not None and _time.monotonic() >= deadline:
            raise TimeoutError(
                f"SPMD job did not finish within {timeout}s "
                f"({alive[0].name} still running; likely an unmatched recv "
                "or deadlock)"
            )
        _time.sleep(0.005)

    if errors:
        rank, cause = min(errors, key=lambda e: e[0])
        raise SpmdError(rank, cause) from cause
    return [results[r] for r in range(size)]

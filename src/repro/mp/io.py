"""Collective file I/O (MPI-IO), simulated on a shared byte store.

The mpi4py tutorial's MPI-IO section (one of this session's reference
guides) demonstrates ``File.Open`` + ``Write_at_all`` with per-rank
offsets and strided file views; cluster courses use the same exercise to
teach how N ranks write one file without stepping on each other.  This
module reproduces that API against an in-memory :class:`SimFile`:

- ``Write_at_all(offset, buf)`` / ``Read_at_all(offset, buf)`` — explicit
  per-rank offsets (the contiguous pattern);
- ``Set_view(displacement, stride_count, block, stride)`` +
  ``Write_all(buf)`` — the non-contiguous interleaved pattern of the
  tutorial's ``Create_vector`` example.

All ranks must call collectives together (enforced with an internal
barrier), and the file records how many write calls it served — the
"collective I/O aggregates requests" talking point.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional

import numpy as np

from repro.mp.communicator import Communicator

__all__ = ["SimFile", "MpiFile"]


class SimFile:
    """The shared byte store standing in for a parallel filesystem."""

    def __init__(self) -> None:
        self._data = bytearray()
        self._lock = threading.Lock()
        self.write_calls = 0
        self.read_calls = 0

    def write_at(self, offset: int, payload: bytes) -> None:
        """Write ``payload`` at absolute byte ``offset`` (auto-extends)."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        with self._lock:
            end = offset + len(payload)
            if end > len(self._data):
                self._data.extend(b"\x00" * (end - len(self._data)))
            self._data[offset:end] = payload
            self.write_calls += 1

    def read_at(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset`` (zero-filled past EOF)."""
        with self._lock:
            self.read_calls += 1
            chunk = bytes(self._data[offset : offset + size])
            return chunk + b"\x00" * (size - len(chunk))

    @property
    def size(self) -> int:
        """Current file size in bytes."""
        with self._lock:
            return len(self._data)

    def as_array(self, dtype: np.dtype) -> np.ndarray:
        """The whole file viewed as a typed array (for assertions)."""
        with self._lock:
            return np.frombuffer(bytes(self._data), dtype=dtype).copy()


@dataclasses.dataclass
class _View:
    displacement: int
    block_elems: int
    stride_elems: int


class MpiFile:
    """A rank's handle on a :class:`SimFile` (MPI_File, simplified).

    Every rank constructs its handle with the same shared ``SimFile`` and
    its communicator; the ``*_all`` methods are collective (they barrier),
    matching MPI's requirement that all ranks participate.
    """

    def __init__(self, comm: Communicator, simfile: SimFile) -> None:
        self.comm = comm
        self.file = simfile
        self._view: Optional[_View] = None

    # -- explicit-offset collectives ------------------------------------------
    def Write_at_all(self, offset_bytes: int, buf: np.ndarray) -> None:
        """Each rank writes its buffer at its own absolute offset."""
        data = np.ascontiguousarray(buf)
        self.file.write_at(offset_bytes, data.tobytes())
        self.comm.barrier()

    def Read_at_all(self, offset_bytes: int, buf: np.ndarray) -> None:
        """Each rank reads into its buffer from its own offset."""
        raw = self.file.read_at(offset_bytes, buf.nbytes)
        np.copyto(buf, np.frombuffer(raw, dtype=buf.dtype).reshape(buf.shape))
        self.comm.barrier()

    # -- file views (the Create_vector pattern) ----------------------------------
    def Set_view(
        self,
        displacement_bytes: int,
        block_elems: int = 1,
        stride_elems: Optional[int] = None,
    ) -> None:
        """Install a strided view: this rank owns blocks of
        ``block_elems`` elements every ``stride_elems`` elements, starting
        at ``displacement_bytes``.  Default stride = communicator size
        (the tutorial's round-robin interleave)."""
        stride = self.comm.Get_size() if stride_elems is None else stride_elems
        if block_elems < 1 or stride < block_elems:
            raise ValueError("need 1 <= block_elems <= stride_elems")
        self._view = _View(displacement_bytes, block_elems, stride)

    def Write_all(self, buf: np.ndarray) -> None:
        """Collective write through the view (interleaved round-robin)."""
        if self._view is None:
            raise RuntimeError("Set_view must be called before Write_all")
        data = np.ascontiguousarray(buf).reshape(-1)
        itemsize = data.itemsize
        view = self._view
        per_block = view.block_elems
        for block_index in range(0, data.size, per_block):
            logical_block = block_index // per_block
            file_elem = logical_block * view.stride_elems
            offset = view.displacement + file_elem * itemsize
            chunk = data[block_index : block_index + per_block]
            self.file.write_at(offset, chunk.tobytes())
        self.comm.barrier()

    def Read_all(self, buf: np.ndarray) -> None:
        """Collective read through the view."""
        if self._view is None:
            raise RuntimeError("Set_view must be called before Read_all")
        out = buf.reshape(-1)
        itemsize = out.itemsize
        view = self._view
        per_block = view.block_elems
        for block_index in range(0, out.size, per_block):
            logical_block = block_index // per_block
            file_elem = logical_block * view.stride_elems
            offset = view.displacement + file_elem * itemsize
            raw = self.file.read_at(offset, per_block * itemsize)
            out[block_index : block_index + per_block] = np.frombuffer(
                raw, dtype=out.dtype
            )
        self.comm.barrier()

"""Collective operations, implemented over point-to-point messaging.

All ranks of a communicator must call a collective in the same order; the
mixin exploits this (as MPI implementations do) to assign each collective
call a unique internal tag from a per-rank counter that stays in agreement
across ranks.

Two algorithm families are provided where it matters, so the ablation
benches can compare them:

- ``"linear"`` — the root exchanges directly with every other rank
  (``p - 1`` serialized root messages, depth ``p - 1``);
- ``"tree"`` — binomial tree (depth ``ceil(log2 p)``; the root sends only
  ``ceil(log2 p)`` messages itself).

Reductions with non-commutative operators always take the linear path so
operands combine in rank order, matching the MPI standard's guarantee.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.mp.ops import Op, SUM

__all__ = ["CollectiveMixin"]


class CollectiveMixin:
    """Collective methods shared by :class:`repro.mp.communicator.Communicator`.

    Host-class contract: ``Get_rank``, ``Get_size``, ``_internal_send``,
    ``_internal_recv``, ``_next_collective_tag``.
    """

    # These are provided by Communicator; declared for type checkers.
    def Get_rank(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def Get_size(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def _internal_send(self, dest: int, tag: int, payload: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def _internal_recv(self, source: int, tag: int) -> Any:  # pragma: no cover
        raise NotImplementedError

    def _next_collective_tag(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- barrier -------------------------------------------------------------
    def barrier(self) -> None:
        """Block until every rank has entered the barrier.

        Implemented as a binomial fan-in to rank 0 followed by a binomial
        fan-out, so it costs ``2 * ceil(log2 p)`` rounds.
        """
        tag = self._next_collective_tag()
        self._tree_reduce_to_root(None, tag, root=0, op=None)
        self._tree_bcast(None, tag + 0, root=0, recv_offset=1)

    # MPI-style capitalized alias.
    Barrier = barrier

    # -- broadcast -----------------------------------------------------------
    def bcast(self, obj: Any = None, root: int = 0, algorithm: str = "tree") -> Any:
        """Broadcast ``obj`` from ``root`` to every rank; returns the object.

        Non-root callers pass anything (conventionally ``None``) and receive
        the root's value, per mpi4py convention.
        """
        self._check_root(root)
        tag = self._next_collective_tag()
        rank, size = self.Get_rank(), self.Get_size()
        if size == 1:
            return obj
        if algorithm == "linear":
            if rank == root:
                for dest in range(size):
                    if dest != root:
                        self._internal_send(dest, tag, obj)
                return obj
            return self._internal_recv(root, tag)
        if algorithm == "tree":
            return self._tree_bcast(obj, tag, root)
        raise ValueError(f"unknown broadcast algorithm: {algorithm!r}")

    def _tree_bcast(
        self, obj: Any, tag: int, root: int, recv_offset: int = 0
    ) -> Any:
        """Binomial-tree broadcast; ``recv_offset`` shifts the internal tag
        so barrier's fan-out cannot collide with its fan-in."""
        rank, size = self.Get_rank(), self.Get_size()
        relrank = (rank - root) % size
        tag = tag * 2 + recv_offset  # disjoint tag space per phase
        mask = 1
        while mask < size:
            if relrank & mask:
                src = (relrank - mask + root) % size
                obj = self._internal_recv(src, tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if relrank + mask < size:
                dest = (relrank + mask + root) % size
                self._internal_send(dest, tag, obj)
            mask >>= 1
        return obj

    # -- gather / scatter ------------------------------------------------------
    def gather(self, sendobj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank to ``root`` (rank order); ``None`` elsewhere."""
        self._check_root(root)
        tag = self._next_collective_tag()
        rank, size = self.Get_rank(), self.Get_size()
        if rank == root:
            out: List[Any] = []
            for src in range(size):
                out.append(sendobj if src == root else self._internal_recv(src, tag))
            return out
        self._internal_send(root, tag, sendobj)
        return None

    def scatter(self, sendobj: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        """Scatter a length-``size`` sequence from ``root``; returns one item."""
        self._check_root(root)
        tag = self._next_collective_tag()
        rank, size = self.Get_rank(), self.Get_size()
        if rank == root:
            if sendobj is None or len(sendobj) != size:
                raise ValueError(
                    f"scatter at root needs a sequence of exactly {size} items"
                )
            for dest in range(size):
                if dest != root:
                    self._internal_send(dest, tag, sendobj[dest])
            return sendobj[root]
        return self._internal_recv(root, tag)

    def allgather(self, sendobj: Any) -> List[Any]:
        """Gather every rank's object to every rank (gather + broadcast)."""
        gathered = self.gather(sendobj, root=0)
        return self.bcast(gathered, root=0)

    def alltoall(self, sendobjs: Sequence[Any]) -> List[Any]:
        """Personalized all-to-all: item ``j`` of this rank goes to rank ``j``.

        Returns the list whose item ``i`` came from rank ``i``.  Sends are
        posted before receives (our sends are eager), so the exchange cannot
        deadlock.
        """
        rank, size = self.Get_rank(), self.Get_size()
        if len(sendobjs) != size:
            raise ValueError(f"alltoall needs exactly {size} items")
        tag = self._next_collective_tag()
        for dest in range(size):
            if dest != rank:
                self._internal_send(dest, tag, sendobjs[dest])
        out: List[Any] = []
        for src in range(size):
            out.append(sendobjs[rank] if src == rank else self._internal_recv(src, tag))
        return out

    # -- reductions --------------------------------------------------------------
    def reduce(
        self,
        sendobj: Any,
        op: Op = SUM,
        root: int = 0,
        algorithm: str = "tree",
    ) -> Any:
        """Reduce one value per rank onto ``root``; ``None`` at other ranks.

        Tree reduction requires a commutative ``op``; non-commutative
        operators silently fall back to the linear rank-order algorithm (the
        MPI standard requires rank-order combination for them).
        """
        self._check_root(root)
        tag = self._next_collective_tag()
        if algorithm == "linear" or not op.commutative:
            return self._linear_reduce(sendobj, tag, root, op)
        if algorithm == "tree":
            return self._tree_reduce_to_root(sendobj, tag, root, op)
        raise ValueError(f"unknown reduce algorithm: {algorithm!r}")

    def _linear_reduce(self, sendobj: Any, tag: int, root: int, op: Op) -> Any:
        rank, size = self.Get_rank(), self.Get_size()
        if rank != root:
            self._internal_send(root, tag, sendobj)
            return None
        acc: Any = None
        have = False
        for src in range(size):
            val = sendobj if src == root else self._internal_recv(src, tag)
            acc = val if not have else op(acc, val)
            have = True
        return acc

    def _tree_reduce_to_root(
        self, sendobj: Any, tag: int, root: int, op: Optional[Op]
    ) -> Any:
        """Binomial fan-in; with ``op=None`` it is a pure synchronization.

        Children at increasing mask distances hold contiguous, increasing
        relrank ranges, so in-order combination preserves rank order among
        subtrees rooted at the same node.
        """
        rank, size = self.Get_rank(), self.Get_size()
        relrank = (rank - root) % size
        tag = tag * 2  # same phase-splitting trick as _tree_bcast
        acc = sendobj
        mask = 1
        while mask < size:
            if relrank & mask:
                parent = (relrank - mask + root) % size
                self._internal_send(parent, tag, acc)
                return None
            child = relrank + mask
            if child < size:
                val = self._internal_recv((child + root) % size, tag)
                if op is not None:
                    acc = op(acc, val)
            mask <<= 1
        return acc

    def allreduce(self, sendobj: Any, op: Op = SUM) -> Any:
        """Reduce then broadcast: every rank gets the reduced value."""
        reduced = self.reduce(sendobj, op=op, root=0)
        return self.bcast(reduced, root=0)

    def scan(self, sendobj: Any, op: Op = SUM) -> Any:
        """Inclusive prefix reduction: rank ``r`` gets ``op`` over ranks 0..r."""
        tag = self._next_collective_tag()
        rank, size = self.Get_rank(), self.Get_size()
        acc = sendobj
        if rank > 0:
            prefix = self._internal_recv(rank - 1, tag)
            acc = op(prefix, sendobj)
        if rank + 1 < size:
            self._internal_send(rank + 1, tag, acc)
        return acc

    def exscan(self, sendobj: Any, op: Op = SUM) -> Any:
        """Exclusive prefix reduction: rank ``r`` gets ``op`` over ranks 0..r-1.

        Rank 0 receives ``None`` (MPI leaves it undefined).
        """
        tag = self._next_collective_tag()
        rank, size = self.Get_rank(), self.Get_size()
        prefix: Any = None
        if rank > 0:
            prefix = self._internal_recv(rank - 1, tag)
        inclusive = sendobj if prefix is None else op(prefix, sendobj)
        if rank + 1 < size:
            self._internal_send(rank + 1, tag, inclusive)
        return prefix

    # -- buffer (NumPy) collectives ----------------------------------------------
    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        """Broadcast a NumPy array from ``root``, filling ``buf`` in place."""
        data = self.bcast(buf if self.Get_rank() == root else None, root=root)
        if self.Get_rank() != root:
            np.copyto(buf, np.asarray(data).reshape(buf.shape))

    def Scatter(
        self,
        sendbuf: Optional[np.ndarray],
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> None:
        """Scatter rows of ``sendbuf`` (shape ``(size, ...)``) from ``root``."""
        rank, size = self.Get_rank(), self.Get_size()
        if rank == root:
            if sendbuf is None or sendbuf.shape[0] != size:
                raise ValueError(f"Scatter sendbuf must have leading dim {size}")
            parts: Optional[List[np.ndarray]] = [
                np.ascontiguousarray(sendbuf[i]) for i in range(size)
            ]
        else:
            parts = None
        mine = self.scatter(parts, root=root)
        np.copyto(recvbuf, np.asarray(mine).reshape(recvbuf.shape))

    def Gather(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        root: int = 0,
    ) -> None:
        """Gather equal-shaped arrays into rows of ``recvbuf`` at ``root``."""
        rank, size = self.Get_rank(), self.Get_size()
        parts = self.gather(np.ascontiguousarray(sendbuf), root=root)
        if rank == root:
            if recvbuf is None or recvbuf.shape[0] != size:
                raise ValueError(f"Gather recvbuf must have leading dim {size}")
            assert parts is not None
            for i, part in enumerate(parts):
                np.copyto(recvbuf[i], part.reshape(recvbuf[i].shape))

    def Allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        """Gather equal-shaped arrays into rows of ``recvbuf`` at every rank."""
        parts = self.allgather(np.ascontiguousarray(sendbuf))
        for i, part in enumerate(parts):
            np.copyto(recvbuf[i], part.reshape(recvbuf[i].shape))

    def Reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        op: Op = SUM,
        root: int = 0,
    ) -> None:
        """Element-wise reduce arrays onto ``recvbuf`` at ``root``."""
        result = self.reduce(
            np.ascontiguousarray(sendbuf), op=_buffer_op(op), root=root
        )
        if self.Get_rank() == root:
            if recvbuf is None:
                raise ValueError("Reduce needs a recvbuf at the root")
            np.copyto(recvbuf, result.reshape(recvbuf.shape))

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        """Element-wise all-reduce into ``recvbuf`` at every rank."""
        result = self.allreduce(np.ascontiguousarray(sendbuf), op=_buffer_op(op))
        np.copyto(recvbuf, result.reshape(recvbuf.shape))

    # -- helpers -----------------------------------------------------------------
    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.Get_size():
            raise ValueError(f"root {root} out of range")


def _buffer_op(op: Op) -> Op:
    """Lift ``op`` to combine NumPy arrays element-wise via its ufunc."""
    if op.ufunc is None:
        raise TypeError(f"{op.name} cannot be used in buffer collectives")
    ufunc = op.ufunc
    return Op(
        name=op.name,
        fn=lambda a, b: ufunc(a, b),
        ufunc=ufunc,
        commutative=op.commutative,
    )

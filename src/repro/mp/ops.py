"""Reduction operations for :mod:`repro.mp` collectives.

Each :class:`Op` pairs an element-wise binary function (for Python objects)
with a NumPy ufunc (for buffer collectives), mirroring how MPI predefined
operations apply both to scalars and to typed arrays.  All predefined ops
are associative and commutative, which is what lets tree-based reduction
algorithms reorder the combination.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional, Tuple

import numpy as np

__all__ = [
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "MAXLOC",
    "MINLOC",
]


@dataclasses.dataclass(frozen=True)
class Op:
    """A reduction operation.

    Parameters
    ----------
    name:
        MPI-style name (``"MPI_SUM"`` …), used in reprs and traces.
    fn:
        Binary function on Python objects.
    ufunc:
        NumPy ufunc applied element-wise for buffer reductions; ``None``
        for ops (like MAXLOC) that have no ufunc form.
    commutative:
        Predefined ops are commutative; user ops may not be, which forces
        collectives to combine in rank order.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    ufunc: Optional[np.ufunc] = None
    commutative: bool = True

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def reduce_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise combine two buffers (in-place into a copy of ``a``)."""
        if self.ufunc is None:
            raise TypeError(f"{self.name} has no buffer (ufunc) form")
        return self.ufunc(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _maxloc(a: Tuple[Any, int], b: Tuple[Any, int]) -> Tuple[Any, int]:
    """MAXLOC combines (value, index) pairs; ties prefer the lower index."""
    if a[0] > b[0] or (a[0] == b[0] and a[1] <= b[1]):
        return a
    return b


def _minloc(a: Tuple[Any, int], b: Tuple[Any, int]) -> Tuple[Any, int]:
    """MINLOC combines (value, index) pairs; ties prefer the lower index."""
    if a[0] < b[0] or (a[0] == b[0] and a[1] <= b[1]):
        return a
    return b


SUM = Op("MPI_SUM", lambda a, b: a + b, np.add)
PROD = Op("MPI_PROD", lambda a, b: a * b, np.multiply)
MAX = Op("MPI_MAX", lambda a, b: a if a >= b else b, np.maximum)
MIN = Op("MPI_MIN", lambda a, b: a if a <= b else b, np.minimum)
LAND = Op("MPI_LAND", lambda a, b: bool(a) and bool(b), np.logical_and)
LOR = Op("MPI_LOR", lambda a, b: bool(a) or bool(b), np.logical_or)
BAND = Op("MPI_BAND", lambda a, b: a & b, np.bitwise_and)
BOR = Op("MPI_BOR", lambda a, b: a | b, np.bitwise_or)
MAXLOC = Op("MPI_MAXLOC", _maxloc, None)
MINLOC = Op("MPI_MINLOC", _minloc, None)

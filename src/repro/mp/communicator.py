"""Point-to-point messaging: mailboxes, requests, and the Communicator.

Semantics preserved from MPI:

- **Value semantics.** Payloads are deep-copied at send time, so mutating an
  object after ``send`` cannot retroactively change the message (real MPI
  serializes into a wire buffer; we model that with ``copy.deepcopy``).
- **Non-overtaking order.** Two messages from the same sender to the same
  receiver are matched in the order they were sent: a receive always takes
  the *earliest* matching message in arrival order.
- **Wildcards.** ``ANY_SOURCE`` and ``ANY_TAG`` match anything; the actual
  source/tag are reported through the :class:`Status` object.
- **Buffer calls.** Uppercase ``Send``/``Recv`` move NumPy arrays; ``Recv``
  fills the caller's buffer in place and raises :class:`MessageTruncated`
  when the buffer is too small — modelling ``MPI_ERR_TRUNCATE``.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import threading
from typing import TYPE_CHECKING, Any, Callable, List, Optional

import numpy as np

from repro.mp.collectives import CollectiveMixin

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mp.runtime import World

ANY_SOURCE = -1
ANY_TAG = -1

# Tags at or above this value are reserved for internal collective traffic.
_INTERNAL_TAG_BASE = 1_000_000

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MessageTruncated",
    "Request",
    "Status",
]


class MessageTruncated(RuntimeError):
    """A buffer receive found a message longer than the receive buffer."""


@dataclasses.dataclass
class Status:
    """Receive-side message metadata (MPI_Status).

    ``source`` and ``tag`` are the *actual* values (useful after wildcard
    receives); ``count`` is the element count for buffer messages and 1 for
    object messages.
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0

    def Get_source(self) -> int:
        """The actual source rank of the received message."""
        return self.source

    def Get_tag(self) -> int:
        """The actual tag of the received message."""
        return self.tag

    def Get_count(self) -> int:
        """Number of elements received (1 for object messages)."""
        return self.count


@dataclasses.dataclass
class _Envelope:
    seq: int
    source: int
    tag: int
    payload: Any
    is_buffer: bool

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )


class _Mailbox:
    """A rank's incoming-message store with condition-variable matching."""

    def __init__(self) -> None:
        self._messages: List[_Envelope] = []
        self._cond = threading.Condition()

    def deliver(self, env: _Envelope) -> None:
        with self._cond:
            self._messages.append(env)
            self._cond.notify_all()

    def _find(self, source: int, tag: int) -> Optional[_Envelope]:
        # Earliest arrival first => non-overtaking per sender.
        for env in self._messages:
            if env.matches(source, tag):
                return env
        return None

    def take(
        self, source: int, tag: int, timeout: Optional[float] = None
    ) -> _Envelope:
        with self._cond:
            ok = self._cond.wait_for(
                lambda: self._find(source, tag) is not None, timeout
            )
            if not ok:
                raise TimeoutError(
                    f"recv(source={source}, tag={tag}) timed out"
                )
            env = self._find(source, tag)
            assert env is not None
            self._messages.remove(env)
            return env

    def try_take(self, source: int, tag: int) -> Optional[_Envelope]:
        with self._cond:
            env = self._find(source, tag)
            if env is not None:
                self._messages.remove(env)
            return env

    def peek(self, source: int, tag: int) -> Optional[_Envelope]:
        with self._cond:
            return self._find(source, tag)

    def depth(self) -> int:
        with self._cond:
            return len(self._messages)


class Request:
    """Handle for a non-blocking operation (MPI_Request).

    ``isend`` requests are complete at creation (this runtime buffers
    eagerly, like MPI's buffered mode); ``irecv`` requests complete when a
    matching message is taken from the mailbox.
    """

    def __init__(
        self,
        complete_fn: Optional[Callable[[Optional[float]], Any]] = None,
        try_fn: Optional[Callable[[], tuple[bool, Any]]] = None,
        result: Any = None,
        done: bool = False,
    ) -> None:
        self._complete_fn = complete_fn
        self._try_fn = try_fn
        self._result = result
        self._done = done

    @classmethod
    def completed(cls, result: Any = None) -> "Request":
        """A request that is already finished (eager-send completion)."""
        return cls(result=result, done=True)

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the operation completes; return its result."""
        if not self._done:
            assert self._complete_fn is not None
            self._result = self._complete_fn(timeout)
            self._done = True
        return self._result

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, result_or_None)``."""
        if self._done:
            return True, self._result
        assert self._try_fn is not None
        done, result = self._try_fn()
        if done:
            self._done = True
            self._result = result
        return done, self._result if done else None

    @property
    def done(self) -> bool:
        """Whether the operation has completed."""
        return self._done

    @staticmethod
    def waitall(requests: List["Request"]) -> List[Any]:
        """Wait on every request; return their results in order."""
        return [r.wait() for r in requests]


class Communicator(CollectiveMixin):
    """A communication context binding one rank into a world of ``size`` ranks.

    Created by :func:`repro.mp.runtime.run_spmd`; user code receives one
    communicator per rank and calls mpi4py-shaped methods on it.
    """

    def __init__(self, world: "World", rank: int) -> None:
        self._world = world
        self._rank = rank
        self._send_seq = itertools.count()
        # Per-rank collective sequence number.  MPI requires all ranks to
        # invoke collectives in the same order, so these local counters agree
        # across ranks and can synthesize a unique internal tag per call.
        self._coll_seq = 0

    # -- identity ----------------------------------------------------------
    def Get_rank(self) -> int:
        """This process's rank in the communicator (0 .. size-1)."""
        return self._rank

    def Get_size(self) -> int:
        """Number of ranks in the communicator."""
        return self._world.size

    @property
    def rank(self) -> int:
        """Alias for :meth:`Get_rank` (mpi4py exposes both)."""
        return self._rank

    @property
    def size(self) -> int:
        """Alias for :meth:`Get_size`."""
        return self._world.size

    # -- object point-to-point (lowercase: pickles/any object) -------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a Python object to ``dest`` (deep-copied: value semantics)."""
        self._check_rank(dest)
        self._check_user_tag(tag)
        self._post(dest, tag, copy.deepcopy(obj), is_buffer=False)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Receive a Python object; blocks until a matching message arrives."""
        env = self._world.mailbox(self._rank).take(source, tag, timeout)
        self._fill_status(status, env)
        return env.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (eagerly buffered, hence immediately complete)."""
        self.send(obj, dest, tag)
        return Request.completed()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``req.wait()`` returns the object."""
        mailbox = self._world.mailbox(self._rank)

        def complete(timeout: Optional[float]) -> Any:
            return mailbox.take(source, tag, timeout).payload

        def attempt() -> tuple[bool, Any]:
            env = mailbox.try_take(source, tag)
            return (env is not None), (env.payload if env else None)

        return Request(complete_fn=complete, try_fn=attempt)

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Combined send+receive; deadlock-free for exchange patterns."""
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag, status)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is available; do not consume it."""
        mailbox = self._world.mailbox(self._rank)
        with mailbox._cond:
            mailbox._cond.wait_for(lambda: mailbox._find(source, tag) is not None)
            env = mailbox._find(source, tag)
        status = Status()
        self._fill_status(status, env)
        return status

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe: is a matching message waiting?"""
        return self._world.mailbox(self._rank).peek(source, tag) is not None

    # -- buffer point-to-point (uppercase: NumPy arrays) --------------------
    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Send a NumPy array (copied at send time, like a wire buffer)."""
        self._check_rank(dest)
        self._check_user_tag(tag)
        arr = np.ascontiguousarray(buf)
        self._post(dest, tag, arr.copy(), is_buffer=True)

    def Recv(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> None:
        """Receive into ``buf`` in place.

        Raises :class:`MessageTruncated` if the incoming message has more
        elements than ``buf`` (MPI_ERR_TRUNCATE); a shorter message fills a
        prefix, and ``status.count`` reports how many elements arrived.
        """
        env = self._world.mailbox(self._rank).take(source, tag, None)
        data = env.payload
        if not isinstance(data, np.ndarray):
            raise TypeError(
                "Recv matched an object message; use lowercase recv() for it"
            )
        flat_in = data.reshape(-1)
        flat_out = buf.reshape(-1)
        if flat_in.size > flat_out.size:
            raise MessageTruncated(
                f"message of {flat_in.size} elements into buffer of {flat_out.size}"
            )
        flat_out[: flat_in.size] = flat_in
        env = dataclasses.replace(env, payload=data)
        self._fill_status(status, env)

    def Sendrecv(
        self,
        sendbuf: np.ndarray,
        dest: int,
        recvbuf: np.ndarray,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> None:
        """Buffer-mode combined exchange."""
        self.Send(sendbuf, dest, sendtag)
        self.Recv(recvbuf, source, recvtag)

    # -- internals -----------------------------------------------------------
    def _post(self, dest: int, tag: int, payload: Any, is_buffer: bool) -> None:
        env = _Envelope(
            seq=next(self._send_seq),
            source=self._rank,
            tag=tag,
            payload=payload,
            is_buffer=is_buffer,
        )
        self._world.record_message(self._rank, dest, tag)
        self._world.mailbox(dest).deliver(env)

    def _internal_send(self, dest: int, tag: int, payload: Any) -> None:
        """Collective-internal send: skips the user-tag range check."""
        self._post(dest, tag, copy.deepcopy(payload), is_buffer=False)

    def _internal_recv(self, source: int, tag: int) -> Any:
        return self._world.mailbox(self._rank).take(source, tag, None).payload

    def _next_collective_tag(self) -> int:
        tag = _INTERNAL_TAG_BASE + self._coll_seq
        self._coll_seq += 1
        return tag

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._world.size:
            raise ValueError(
                f"rank {rank} out of range for world of size {self._world.size}"
            )

    @staticmethod
    def _check_user_tag(tag: int) -> None:
        if tag < 0:
            raise ValueError("user tags must be non-negative")
        if tag >= _INTERNAL_TAG_BASE:
            raise ValueError(
                f"tags >= {_INTERNAL_TAG_BASE} are reserved for collectives"
            )

    @staticmethod
    def _fill_status(status: Optional[Status], env: _Envelope) -> None:
        if status is None:
            return
        status.source = env.source
        status.tag = env.tag
        payload = env.payload
        status.count = int(payload.size) if isinstance(payload, np.ndarray) else 1

"""Virtual process topologies (MPI_Cart_*).

Cluster courses teach domain decomposition on cartesian grids — halo
exchanges for stencils, row/column communicators for matrix algorithms.
:class:`CartComm` wraps a communicator with an N-dimensional grid layout and
provides ``Get_coords``/``Get_cart_rank``/``Shift`` plus a halo-exchange
convenience built on ``sendrecv``.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence, Tuple

from repro.mp.communicator import Communicator

__all__ = ["CartComm", "dims_create"]


def dims_create(nnodes: int, ndims: int) -> List[int]:
    """Balanced factorization of ``nnodes`` into ``ndims`` dims (MPI_Dims_create).

    Produces a non-increasing dimension vector whose product is ``nnodes``,
    as close to a hypercube as the factorization allows.
    """
    if nnodes < 1 or ndims < 1:
        raise ValueError("nnodes and ndims must be positive")
    dims = [1] * ndims
    remaining = nnodes
    # Greedily peel the largest factor <= the balanced target for each slot.
    for i in range(ndims - 1):
        target = round(remaining ** (1.0 / (ndims - i)))
        best = 1
        for f in range(max(1, target), 0, -1):
            if remaining % f == 0:
                best = f
                break
        # Also consider the smallest factor above the target; pick the closer.
        above = None
        for f in range(max(2, target + 1), remaining + 1):
            if remaining % f == 0:
                above = f
                break
        if above is not None and abs(above - target) < abs(best - target):
            best = above
        dims[i] = best
        remaining //= best
    dims[-1] = remaining
    dims.sort(reverse=True)
    if math.prod(dims) != nnodes:
        raise AssertionError("dims_create produced an invalid factorization")
    return dims


class CartComm:
    """A cartesian grid view over a communicator.

    Ranks are laid out in row-major order over ``dims`` (matching MPI's
    default).  ``periods[d]`` makes dimension ``d`` wrap around.
    """

    def __init__(
        self,
        comm: Communicator,
        dims: Sequence[int],
        periods: Optional[Sequence[bool]] = None,
    ) -> None:
        if math.prod(dims) != comm.Get_size():
            raise ValueError(
                f"grid {tuple(dims)} needs {math.prod(dims)} ranks, "
                f"world has {comm.Get_size()}"
            )
        self.comm = comm
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in (periods or [False] * len(dims)))
        if len(self.periods) != len(self.dims):
            raise ValueError("periods must match dims in length")

    # -- coordinate arithmetic ------------------------------------------------
    def Get_coords(self, rank: Optional[int] = None) -> Tuple[int, ...]:
        """Grid coordinates of ``rank`` (default: the calling rank)."""
        r = self.comm.Get_rank() if rank is None else rank
        coords = []
        for d in reversed(self.dims):
            coords.append(r % d)
            r //= d
        return tuple(reversed(coords))

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        """Rank at grid ``coords`` (periodic dims wrap; others must be valid)."""
        if len(coords) != len(self.dims):
            raise ValueError("coordinate dimensionality mismatch")
        rank = 0
        for c, d, p in zip(coords, self.dims, self.periods):
            if p:
                c %= d
            elif not 0 <= c < d:
                raise ValueError(f"coordinate {c} out of range for dim {d}")
            rank = rank * d + c
        return rank

    def Shift(self, direction: int, disp: int = 1) -> Tuple[Optional[int], Optional[int]]:
        """Source and destination ranks for a shift along ``direction``.

        Returns ``(source, dest)`` — the rank that would send to me and the
        rank I would send to — with ``None`` standing in for MPI_PROC_NULL
        at non-periodic edges.
        """
        coords = list(self.Get_coords())

        def neighbour(offset: int) -> Optional[int]:
            c = list(coords)
            c[direction] += offset
            if self.periods[direction]:
                c[direction] %= self.dims[direction]
            elif not 0 <= c[direction] < self.dims[direction]:
                return None
            return self.Get_cart_rank(c)

        return neighbour(-disp), neighbour(+disp)

    # -- convenience patterns ----------------------------------------------------
    def neighbor_exchange(self, direction: int, sendobj: Any) -> Tuple[Any, Any]:
        """Halo exchange along one dimension.

        Sends ``sendobj`` to both neighbours and returns
        ``(from_lower, from_upper)``; ``None`` where the grid edge is
        non-periodic.  The two exchanges use distinct tags so opposite
        directions cannot be confused.
        """
        lower, upper = self.Shift(direction)
        tag_up = 2 * direction
        tag_down = 2 * direction + 1
        if upper is not None:
            self.comm.send(sendobj, upper, tag=tag_up)
        if lower is not None:
            self.comm.send(sendobj, lower, tag=tag_down)
        from_lower = self.comm.recv(lower, tag=tag_up) if lower is not None else None
        from_upper = self.comm.recv(upper, tag=tag_down) if upper is not None else None
        return from_lower, from_upper

    def row_ranks(self, dim: int) -> List[int]:
        """Ranks sharing this rank's coordinates except along ``dim``."""
        coords = list(self.Get_coords())
        out = []
        for c in range(self.dims[dim]):
            cc = list(coords)
            cc[dim] = c
            out.append(self.Get_cart_rank(cc))
        return out

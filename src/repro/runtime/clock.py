"""Time as an injected dependency: wall clocks and virtual clocks.

Simulation code that calls ``time.monotonic()`` / ``time.sleep()``
directly is untestable at speed and nondeterministic under load.  A
:class:`Clock` makes time a constructor argument: production paths get
:class:`MonotonicClock` (real time), tests and deterministic lab runs get
:class:`VirtualClock`, where ``sleep`` *advances* time instantly and
``now`` moves only when somebody advances it.

``wait_on`` is the piece that lets blocking code be clock-agnostic: it
waits on a ``threading.Condition`` with a timeout measured in *this
clock's* time, so a deadline under :class:`VirtualClock` is controlled by
the test, not by the wall.
"""

from __future__ import annotations

import abc
import threading
import time
from typing import Optional

__all__ = ["Clock", "MonotonicClock", "VirtualClock"]


class Clock(abc.ABC):
    """The time source interface every subsystem should depend on."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (monotonic within one clock)."""

    @abc.abstractmethod
    def sleep(self, seconds: float) -> None:
        """Pause the caller for ``seconds`` of this clock's time."""

    def wait_on(
        self, condition: threading.Condition, timeout: Optional[float]
    ) -> bool:
        """Wait on an already-held ``condition`` up to ``timeout`` seconds.

        Returns ``True`` if notified, ``False`` on timeout — the
        ``Condition.wait`` contract, but with the timeout interpreted in
        this clock's time.
        """
        return condition.wait(timeout)


class MonotonicClock(Clock):
    """Real time: ``time.monotonic`` / ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()  # pdc-lint: disable=PDC210 -- this IS the injected clock's wall-time implementation

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MonotonicClock()"


class VirtualClock(Clock):
    """Simulated time that moves only when advanced.

    ``sleep(s)`` advances the clock by ``s`` immediately (and yields the
    GIL so sibling threads make progress), which turns wall-clock-shaped
    code into a deterministic discrete-event step.  ``advance`` is the
    test's throttle.  ``wait_on`` polls the condition in short *real* time
    slices while watching the *virtual* deadline, so "timed out" is a
    property of simulated time — two runs see identical timeout behaviour
    regardless of machine load.
    """

    #: Real-time slice used to poll conditions while virtual time is frozen.
    _POLL_SLICE = 0.02

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.advance(seconds)
        time.sleep(0)  # yield the GIL so other threads run

    def wait_on(
        self, condition: threading.Condition, timeout: Optional[float]
    ) -> bool:
        if timeout is None:
            return condition.wait(None)
        deadline = self.now() + timeout
        while True:
            if condition.wait(self._POLL_SLICE):
                return True
            if self.now() >= deadline:
                return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self.now()})"

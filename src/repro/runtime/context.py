"""The run context: one object that makes a whole lab run coherent.

A :class:`RunContext` bundles the four cross-cutting services —
:class:`~repro.runtime.metrics.MetricRegistry`,
:class:`~repro.runtime.clock.Clock`,
:class:`~repro.runtime.rng.RngService`, and
:class:`~repro.runtime.tracing.Tracer` — behind one constructor argument.
Every instrumented subsystem accepts ``context=None``: bare construction
keeps the old standalone behaviour (private counters, wall clock, own
seed); passing one shared context makes the run *observable as a whole*
(one ``snapshot()``, one trace) and *reproducible as a whole* (one root
seed, one clock).

:meth:`RunContext.deterministic` is the instructor-facing entry point:
virtual clock + fixed seed, so two runs of the same lab export
byte-identical traces.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Optional

from repro.runtime.clock import Clock, MonotonicClock, VirtualClock
from repro.runtime.metrics import MetricRegistry, payload_size
from repro.runtime.rng import RngService
from repro.runtime.tracing import Tracer

__all__ = ["RunContext"]


class RunContext:
    """Registry + clock + rng + tracer, threaded through a run."""

    def __init__(
        self,
        seed: int = 0,
        clock: Optional[Clock] = None,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
        label: str = "run",
    ) -> None:
        self.seed = int(seed)
        self.label = label
        self.clock = clock if clock is not None else MonotonicClock()
        self.registry = registry if registry is not None else MetricRegistry()
        self.rng = RngService(self.seed)
        self.tracer = tracer if tracer is not None else Tracer(clock=self.clock)

    @classmethod
    def deterministic(cls, seed: int = 0, label: str = "run") -> "RunContext":
        """A context whose time is virtual: same seed ⇒ same trace bytes."""
        return cls(seed=seed, clock=VirtualClock(), label=label)

    # -- convenience passthroughs ---------------------------------------------
    def payload_size(
        self, payload: Any, counter_name: str = "runtime.unpicklable"
    ) -> int:
        """Size a payload; unpicklable ones bump ``counter_name``."""
        return payload_size(
            payload, on_unpicklable=self.registry.counter(counter_name).inc
        )

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """The registry's full (or prefixed) metrics view."""
        return self.registry.snapshot(prefix)

    # -- run artifacts ----------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """A JSON-ready summary: seed, metrics, trace shape and digest."""
        return {
            "label": self.label,
            "seed": self.seed,
            "metrics": self.snapshot(),
            "trace_events": len(self.tracer),
            "trace_digest": self.tracer.digest(),
        }

    def save(self, directory: str) -> Dict[str, str]:
        """Write ``metrics.json``, ``trace.json``, ``trace.jsonl``.

        Returns the paths written, keyed by artifact name — the one-call
        "give me everything about this lab run" an instructor wants.
        """
        os.makedirs(directory, exist_ok=True)
        paths = {
            "metrics": os.path.join(directory, "metrics.json"),
            "trace": os.path.join(directory, "trace.json"),
            "trace_jsonl": os.path.join(directory, "trace.jsonl"),
        }
        with open(paths["metrics"], "w", encoding="utf-8") as fh:
            json.dump(self.report(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        self.tracer.write_chrome_trace(paths["trace"])
        self.tracer.write_jsonl(paths["trace_jsonl"])
        return paths

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunContext(label={self.label!r}, seed={self.seed}, "
            f"metrics={len(self.registry)}, events={len(self.tracer)})"
        )

"""Structured tracing: spans and instants, exportable to ``chrome://tracing``.

Every subsystem has its own story of "what happened when" — the SPMD
world's message list, the scheduler's Gantt chart, the GPU launcher's
per-launch stats — none of which compose into one timeline.  The
:class:`Tracer` is that timeline: code emits *spans* (``B``/``E`` pairs)
and *instants* (``i``) tagged with a category and a logical thread id,
and the tracer exports the whole run as Chrome-trace JSON (open
``chrome://tracing`` or https://ui.perfetto.dev and drop the file in) or
as JSONL for programmatic diffing.

Determinism is a first-class concern: events carry a per-logical-thread
sequence number, the export is canonically ordered and serialized, and
:meth:`Tracer.digest` hashes the canonical bytes — two runs of the same
seeded lab under a :class:`~repro.runtime.clock.VirtualClock` produce
byte-identical exports, which is what makes "deterministic replay" an
assertable property instead of a slogan.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.runtime.clock import Clock, MonotonicClock

__all__ = ["TraceEvent", "Tracer"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One trace event in (a subset of) the Chrome Trace Event Format.

    ``ph`` is the phase: ``"B"`` span begin, ``"E"`` span end, ``"i"``
    instant.  ``tid`` is a *logical* thread name (``"rank-0"``,
    ``"sched.RR"``), not an OS thread id — logical names are stable
    across runs, OS ids are not.  ``seq`` orders events within one tid.
    """

    name: str
    cat: str
    ph: str
    ts: int  # microseconds since the tracer's epoch
    tid: str
    seq: int
    args: Optional[Dict[str, Any]] = None


class Tracer:
    """Collects :class:`TraceEvent` s; thread-safe; clock-driven timestamps."""

    def __init__(
        self, clock: Optional[Clock] = None, enabled: bool = True
    ) -> None:
        self.clock = clock if clock is not None else MonotonicClock()
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._seq: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._epoch = self.clock.now()

    # -- emission -------------------------------------------------------------
    def _default_tid(self) -> str:
        return threading.current_thread().name

    def _emit(
        self,
        name: str,
        cat: str,
        ph: str,
        tid: Optional[str],
        args: Optional[Dict[str, Any]],
        ts_us: Optional[int],
    ) -> None:
        if not self.enabled:
            return
        logical_tid = tid if tid is not None else self._default_tid()
        if ts_us is None:
            ts_us = int(round((self.clock.now() - self._epoch) * 1e6))
        with self._lock:
            seq = self._seq.get(logical_tid, 0)
            self._seq[logical_tid] = seq + 1
            self._events.append(
                TraceEvent(name, cat, ph, ts_us, logical_tid, seq, args)
            )

    def instant(
        self,
        name: str,
        cat: str = "runtime",
        tid: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
        ts_us: Optional[int] = None,
    ) -> None:
        """Emit a point event.  ``ts_us`` overrides the clock (simulated
        timelines like scheduler ticks pass their own time base)."""
        self._emit(name, cat, "i", tid, args, ts_us)

    def begin(
        self,
        name: str,
        cat: str = "runtime",
        tid: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
        ts_us: Optional[int] = None,
    ) -> None:
        """Open a span explicitly (prefer :meth:`span`)."""
        self._emit(name, cat, "B", tid, args, ts_us)

    def end(
        self,
        name: str,
        cat: str = "runtime",
        tid: Optional[str] = None,
        ts_us: Optional[int] = None,
    ) -> None:
        """Close the innermost span named ``name`` on ``tid``."""
        self._emit(name, cat, "E", tid, None, ts_us)

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        cat: str = "runtime",
        tid: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[None]:
        """``with tracer.span("net.deliver"):`` — a timed, nestable region."""
        logical_tid = tid if tid is not None else self._default_tid()
        self.begin(name, cat, logical_tid, args)
        try:
            yield
        finally:
            self.end(name, cat, logical_tid)

    # -- inspection -----------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """A snapshot of all events emitted so far, in emission order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- export ---------------------------------------------------------------
    def _canonical_events(self) -> List[TraceEvent]:
        """Events in a run-stable order.

        Emission order interleaves nondeterministically across OS threads;
        sorting by ``(ts, tid, seq)`` depends only on each logical
        thread's own (deterministic) behaviour and the clock.
        """
        return sorted(self.events(), key=lambda e: (e.ts, e.tid, e.seq))

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome Trace Event Format object.

        Logical tids become small integers (sorted-name order) and are
        labelled via ``thread_name`` metadata events, which is how the
        format wants named timelines.
        """
        events = self._canonical_events()
        tid_ids = {
            tid: i for i, tid in enumerate(sorted({e.tid for e in events}))
        }
        trace_events: List[Dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid_ids[tid],
                "args": {"name": tid},
            }
            for tid in sorted(tid_ids)
        ]
        for e in events:
            record: Dict[str, Any] = {
                "name": e.name,
                "cat": e.cat,
                "ph": e.ph,
                "ts": e.ts,
                "pid": 1,
                "tid": tid_ids[e.tid],
            }
            if e.ph == "i":
                record["s"] = "t"  # instant scope: thread
            if e.args is not None:
                record["args"] = e.args
            trace_events.append(record)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def canonical_bytes(self) -> bytes:
        """The export serialized canonically (sorted keys, fixed separators)."""
        return json.dumps(
            self.to_chrome_trace(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def digest(self) -> str:
        """SHA-256 over :meth:`canonical_bytes` — the replay-equality check."""
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def write_chrome_trace(self, path: str) -> None:
        """Write the Chrome-trace JSON file (canonical bytes)."""
        with open(path, "wb") as fh:
            fh.write(self.canonical_bytes())

    def write_jsonl(self, path: str) -> None:
        """Write one canonical JSON object per event (diff-friendly)."""
        with open(path, "w", encoding="utf-8") as fh:
            for e in self._canonical_events():
                fh.write(
                    json.dumps(
                        dataclasses.asdict(e),
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                )
                fh.write("\n")

    # -- structural checks (used by tests and the autograder) ------------------
    def validate_nesting(self) -> List[str]:
        """Check ``B``/``E`` stack discipline per tid; returns problems.

        An empty list means every span closed, in LIFO order, on the tid
        that opened it — the well-formedness invariant nesting viewers
        assume.
        """
        problems: List[str] = []
        stacks: Dict[str, List[str]] = {}
        for e in sorted(self.events(), key=lambda ev: (ev.tid, ev.seq)):
            stack = stacks.setdefault(e.tid, [])
            if e.ph == "B":
                stack.append(e.name)
            elif e.ph == "E":
                if not stack:
                    problems.append(f"{e.tid}: E {e.name!r} with no open span")
                elif stack[-1] != e.name:
                    problems.append(
                        f"{e.tid}: E {e.name!r} closes open span {stack[-1]!r}"
                    )
                else:
                    stack.pop()
        for tid, stack in sorted(stacks.items()):
            for name in stack:
                problems.append(f"{tid}: span {name!r} never closed")
        return problems

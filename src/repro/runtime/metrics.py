"""Typed metrics with hierarchical names — the substrate's one meter.

Before this module, every subsystem grew its own counters ad hoc
(``NetworkStats``, ``KernelStats``, scheduler ``Metrics``, the RPC
server's lock-guarded ``calls_served`` …), which made cross-subsystem
questions — "how many messages did *this whole lab* send?" — unanswerable
without bespoke glue.  A :class:`MetricRegistry` holds typed instruments
under dotted hierarchical names (``net.messages``,
``gpu.kernel.transactions``, ``sched.turnaround``), and
:meth:`MetricRegistry.snapshot` reads all of them at once.

The legacy per-subsystem stats classes survive as thin adapters built on
:class:`RegistryStats`: their fields become properties backed by registry
counters, so ``cache.stats.misses`` keeps working while the same number
is visible as ``arch.cache.misses`` in the shared registry.
"""

from __future__ import annotations

import pickle
import sys
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "RegistryStats",
    "payload_size",
]


class Counter:
    """A monotonically-intended integer counter (settable for adapters)."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    def set(self, value: int) -> None:
        """Overwrite the value (used by the legacy-stats adapters)."""
        with self._lock:
            self._value = int(value)

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-write-wins numeric instrument (queue depth, score, load)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Adjust the level by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current level."""
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Streaming summary of observations: count/sum/min/max/mean.

    Deliberately bucket-free — the labs care about aggregate shape
    (mean turnaround, worst waiting time), and a bucket scheme would be
    one more thing to teach before it is needed.
    """

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 before the first)."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """The snapshot form: count, sum, min, max, mean."""
        with self._lock:
            mean = self.total / self.count if self.count else 0.0
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
                "mean": mean,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


class MetricRegistry:
    """A namespace of instruments, created on first use.

    Names are dotted paths; the registry enforces that one name keeps one
    instrument type for its lifetime (asking for ``counter("x")`` after
    ``gauge("x")`` is a bug worth failing loudly on).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory: Callable[[str], Any], kind: str) -> Any:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                existing = factory(name)
                self._instruments[name] = existing
            elif existing.kind != kind:
                raise TypeError(
                    f"metric {name!r} is a {existing.kind}, not a {kind}"
                )
            return existing

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if new)."""
        return self._get(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if new)."""
        return self._get(name, Gauge, "gauge")

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created if new)."""
        return self._get(name, Histogram, "histogram")

    def names(self, prefix: str = "") -> List[str]:
        """Sorted instrument names, optionally under a dotted prefix."""
        with self._lock:
            all_names = sorted(self._instruments)
        if not prefix:
            return all_names
        return [
            n for n in all_names if n == prefix or n.startswith(prefix + ".")
        ]

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """Read every instrument at once: ``{name: value-or-summary}``.

        Counters and gauges snapshot to their scalar value; histograms to
        their :meth:`Histogram.summary` dict.  ``prefix`` restricts the
        view to one subtree (``snapshot("net")``).
        """
        out: Dict[str, Any] = {}
        for name in self.names(prefix):
            with self._lock:
                instrument = self._instruments[name]
            if instrument.kind == "histogram":
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


def _counter_property(field: str) -> property:
    def fget(self: "RegistryStats") -> int:
        return self._counters[field].value

    def fset(self: "RegistryStats", value: int) -> None:
        self._counters[field].set(value)

    return property(fget, fset, doc=f"Registry-backed counter {field!r}.")


class RegistryStats:
    """Base for the legacy stats surfaces: fields backed by counters.

    Subclasses declare ``fields`` (a tuple of counter names) and
    ``default_prefix``; each field becomes a read/write property so
    existing call sites (``stats.misses += 1``) keep working unchanged,
    while the same numbers land in the owning registry under
    ``<prefix>.<field>``.  Constructed bare, an instance carries a private
    registry — the pre-refactor behaviour; constructed with a shared
    registry, it joins the run-wide namespace.
    """

    fields: Tuple[str, ...] = ()
    default_prefix = "stats"

    def __init__(
        self,
        registry: Optional[MetricRegistry] = None,
        prefix: Optional[str] = None,
    ) -> None:
        self._registry = registry if registry is not None else MetricRegistry()
        self._prefix = prefix or self.default_prefix
        self._counters = {
            f: self._registry.counter(f"{self._prefix}.{f}")
            for f in self.fields
        }

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        for field in cls.fields:
            if not isinstance(getattr(cls, field, None), property):
                setattr(cls, field, _counter_property(field))

    @property
    def registry(self) -> MetricRegistry:
        """The registry these counters live in."""
        return self._registry

    def as_dict(self) -> Dict[str, int]:
        """Plain ``{field: value}`` view (what the old dataclasses held)."""
        return {f: self._counters[f].value for f in self.fields}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RegistryStats):
            return (
                type(self) is type(other) and self.as_dict() == other.as_dict()
            )
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({inner})"


def payload_size(
    payload: Any, on_unpicklable: Optional[Callable[[], None]] = None
) -> int:
    """Byte size of a payload as the wire would see it.

    ``len(pickle.dumps(payload))`` when the payload pickles; otherwise
    ``sys.getsizeof`` as an honest approximation, after invoking
    ``on_unpicklable`` (typically an ``unpicklable`` counter's ``inc``) so
    the fallback is *visible* instead of silently dropping byte accounting
    the way the old ``except Exception: pass`` did.
    """
    try:
        return len(pickle.dumps(payload))
    except Exception:  # noqa: BLE001 - any pickling failure takes the fallback
        if on_unpicklable is not None:
            on_unpicklable()
        return int(sys.getsizeof(payload))

"""repro.runtime — the unified deterministic execution & observability substrate.

The cross-cutting services every simulation subsystem needs and used to
reinvent incompatibly:

- :mod:`repro.runtime.metrics` — a :class:`MetricRegistry` of typed
  counters/gauges/histograms under hierarchical dotted names, plus the
  :class:`RegistryStats` adapter base that keeps the legacy per-subsystem
  stats classes API-compatible while routing their numbers into one
  registry, and the :func:`payload_size` helper for honest byte
  accounting.
- :mod:`repro.runtime.clock` — :class:`Clock` /
  :class:`MonotonicClock` / :class:`VirtualClock`: time as an injected
  dependency, so simulations run deterministic and fast.
- :mod:`repro.runtime.rng` — :class:`RngService`: one root seed, named
  child streams, so a single seed reproduces a multi-subsystem lab.
- :mod:`repro.runtime.tracing` — :class:`Tracer`: spans and instants
  with Chrome-trace (``chrome://tracing`` / Perfetto) and JSONL export
  and a canonical digest for replay-equality checks.
- :mod:`repro.runtime.context` — :class:`RunContext`: the bundle of all
  four that instrumented subsystems accept as ``context=``.
"""

from repro.runtime.clock import Clock, MonotonicClock, VirtualClock
from repro.runtime.context import RunContext
from repro.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    RegistryStats,
    payload_size,
)
from repro.runtime.rng import RngService
from repro.runtime.tracing import TraceEvent, Tracer

__all__ = [
    "Clock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MonotonicClock",
    "RegistryStats",
    "RngService",
    "RunContext",
    "TraceEvent",
    "Tracer",
    "VirtualClock",
    "payload_size",
]

"""Seeded randomness as a service: one root seed, named child streams.

The substrate's stochastic pieces (datagram loss, load-balancer probes,
migration workloads …) each used to call ``np.random.default_rng(seed)``
with their own ad-hoc seed, so "reproduce this whole lab run" meant
hunting down every seed argument.  :class:`RngService` derives a child
generator *by name* from one root seed: ``rng.stream("net.drops")`` is a
pure function of ``(root_seed, "net.drops")`` — stable across processes,
platforms, and the order streams are requested in.

Derivation uses ``np.random.SeedSequence`` with the stream name's bytes
as the spawn key, the documented mechanism for independent child streams.
"""

from __future__ import annotations

import threading
from typing import Dict

import numpy as np

__all__ = ["RngService"]


class RngService:
    """Hands out named, independently-seeded ``np.random.Generator`` s."""

    def __init__(self, seed: int = 0) -> None:
        self.root_seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._lock = threading.Lock()

    def _sequence(self, name: str) -> np.random.SeedSequence:
        return np.random.SeedSequence(
            self.root_seed, spawn_key=tuple(name.encode("utf-8"))
        )

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (one instance per name, cached).

        Repeated calls return the *same* generator, so a subsystem that
        draws incrementally keeps its position in the stream.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        with self._lock:
            gen = self._streams.get(name)
            if gen is None:
                gen = np.random.default_rng(self._sequence(name))
                self._streams[name] = gen
            return gen

    def fresh_stream(self, name: str) -> np.random.Generator:
        """A new generator at the start of ``name``'s stream (not cached)."""
        return np.random.default_rng(self._sequence(name))

    def seed_for(self, name: str) -> int:
        """A derived integer seed for APIs that only accept an int."""
        return int(self._sequence(name).generate_state(1, np.uint32)[0])

    def child(self, name: str) -> "RngService":
        """A nested service whose root derives from ``name``."""
        return RngService(self.seed_for(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngService(seed={self.root_seed}, streams={len(self._streams)})"

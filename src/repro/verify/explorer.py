"""Stateless DFS schedule exploration with dynamic partial-order reduction.

The explorer re-executes a program from scratch under successive choice
prefixes (stateless model checking: no state snapshots, the scheduled
runner *is* the state).  Two modes:

``dfs``
    Naive depth-first enumeration of every schedule: at each decision
    node, try every enabled task.  The ground truth the reduction is
    measured against.

``dpor``
    Dynamic partial-order reduction in the Flanagan–Godefroid style.
    Each executed event carries the running task's FastTrack vector
    clock (captured *before* the operation), so two events of different
    tasks are provably ordered exactly when the later one's clock has
    caught up with the earlier task's own entry.  For every pair of
    *conflicting, concurrent* events the explorer plants a backtrack
    point before the earlier one; only backtrack choices are expanded.
    Sleep sets kill the remaining sibling redundancy: a choice fully
    explored at a node stays asleep in later sibling subtrees until a
    dependent operation executes.

Both modes count what they did: ``schedules_explored`` is the number of
complete executions, ``schedules_pruned`` is the number of enabled
branches never expanded — the receipts behind the "DPOR explores N×
fewer schedules at identical verdicts" claim, asserted in the tests and
published by the CI stats artifact.

Disjoint subtrees fan out across a process pool (``split=N``): the
first branching decision of the schedule tree partitions it into one
frozen-prefix subtree per enabled choice (every decision above the
first branch is forced, so no backtrack point can escape the
partition), workers explore independently, and verdicts merge
deterministically in branch order.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.report import Finding
from repro.sanitizers.runner import RunResult, run_source
from repro.verify.scheduler import ReplayScheduler, ScheduleEvent, SchedulerError
from repro.verify.token import decode_token, encode_token

__all__ = [
    "ExploreBudget",
    "VerifyResult",
    "explore_fixture",
    "explore_source",
    "replay_fixture",
    "replay_source",
]

DEFAULT_MAX_SCHEDULES = 2000
DEFAULT_MAX_STEPS = 400


@dataclasses.dataclass(frozen=True)
class ExploreBudget:
    """Bounds on one exploration (spin loops admit infinite schedules)."""

    #: Stop after this many complete executions.
    max_schedules: int = DEFAULT_MAX_SCHEDULES
    #: Per-task step cap within one execution (busy-wait bound).
    max_steps_per_task: int = DEFAULT_MAX_STEPS


@dataclasses.dataclass
class VerifyResult:
    """The checker's verdict over every schedule it explored."""

    target: str
    mode: str
    schedules_explored: int
    schedules_pruned: int
    #: Executions cut short by the per-task step cap (spin loops).
    truncated_runs: int
    #: True when the schedule tree was drained within budget — with
    #: ``truncated_runs == 0`` this is a *proof* over all interleavings,
    #: otherwise a bounded (CHESS-style) exploration.
    complete: bool
    findings: List[Finding]
    errors: List[str]
    #: First schedule token that produced each finding rule — replay it
    #: with :func:`replay_fixture` for the byte-identical execution.
    tokens: Dict[str, str]

    @property
    def rules(self) -> Set[str]:
        return {f.rule for f in self.findings}

    @property
    def proved(self) -> bool:
        """Exhaustive and untruncated: verdicts hold for *every* schedule."""
        return self.complete and self.truncated_runs == 0

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


@dataclasses.dataclass(frozen=True)
class _Target:
    """A runnable program, picklable for the process-pool workers."""

    source: str
    path: str
    entry: Optional[str]
    entrypoints: Tuple[str, ...]

    def run(self, scheduler: ReplayScheduler) -> RunResult:
        return run_source(
            self.source,
            path=self.path,
            entry=self.entry,
            entrypoints=self.entrypoints,
            scheduler=scheduler,
        )


class _Node:
    """One decision point on the current DFS path."""

    __slots__ = ("enabled", "pending", "chosen", "done", "backtrack", "sleep")

    def __init__(self, event: ScheduleEvent, sleep: Set[int]) -> None:
        self.enabled: Tuple[int, ...] = event.enabled
        self.pending: Dict[int, Tuple[str, str]] = dict(event.pending)
        self.chosen: int = event.task
        self.done: Set[int] = set()
        self.backtrack: Set[int] = {event.task}
        self.sleep: Set[int] = set(sleep)


def _dependent(op_a: Tuple[str, str], op_b: Tuple[str, str]) -> bool:
    """Two operations conflict when they touch the same object and are
    not both reads — the only case where order is observable."""
    if op_a[1] != op_b[1]:
        return False
    return not (op_a[0] == "rd" and op_b[0] == "rd")


def _happens_before(earlier: ScheduleEvent, later: ScheduleEvent) -> bool:
    """Vector-clock test: has ``later``'s task seen ``earlier``'s tick?"""
    if earlier.task == later.task:
        return True
    own = earlier.clock.get(earlier.det, 0)
    return later.clock.get(earlier.det, 0) >= own


def _plant_backtracks(
    nodes: List[_Node], events: List[ScheduleEvent]
) -> None:
    """For every conflicting concurrent pair, request the later task be
    tried before the earlier event — the DPOR backtrack points."""
    for j, later in enumerate(events):
        for i in range(j):
            earlier = events[i]
            if earlier.task == later.task:
                continue
            if not _dependent(
                (earlier.kind, earlier.obj), (later.kind, later.obj)
            ):
                continue
            if _happens_before(earlier, later):
                continue
            node = nodes[i]
            if later.task in node.enabled:
                node.backtrack.add(later.task)
            else:
                node.backtrack.update(node.enabled)


def _absorb_trace(
    nodes: List[_Node], events: List[ScheduleEvent]
) -> None:
    """Fold one executed trace into the node path: reuse the replayed
    prefix, append fresh nodes past it, and recompute sleep sets along
    the way (a sleeping choice wakes when a dependent op executes)."""
    sleep: Set[int] = set()
    for depth, event in enumerate(events):
        if depth < len(nodes):
            node = nodes[depth]
            if node.chosen != event.task:
                raise SchedulerError(
                    f"replay diverged at depth {depth}: expected task "
                    f"{node.chosen}, ran {event.task}"
                )
            node.sleep = set(sleep)
        else:
            node = _Node(event, sleep)
            nodes.append(node)
        chosen_op = node.pending.get(event.task, (event.kind, event.obj))
        sleep = {
            q
            for q in (node.sleep | node.done)
            if q != event.task
            and q in node.pending
            and not _dependent(node.pending[q], chosen_op)
        }
    del nodes[len(events):]


def _explore(
    target: _Target,
    mode: str,
    budget: ExploreBudget,
    pin: Sequence[int] = (),
) -> VerifyResult:
    """Drain the schedule tree below the pinned prefix.

    ``pin`` freezes the first ``len(pin)`` choices: the frontier
    splitter uses it to hand each worker a disjoint subtree (nodes at
    pinned depths are never backtracked).
    """
    if mode not in ("dfs", "dpor"):
        raise ValueError(f"unknown exploration mode {mode!r}")
    nodes: List[_Node] = []
    prefix: List[int] = list(pin)
    explored = 0
    pruned = 0
    truncated = 0
    complete = True
    findings: Dict[Tuple, Finding] = {}
    tokens: Dict[str, str] = {}
    errors: List[str] = []
    while True:
        if explored >= budget.max_schedules:
            complete = False
            break
        scheduler = ReplayScheduler(
            prefix=prefix, max_steps_per_task=budget.max_steps_per_task
        )
        try:
            result = target.run(scheduler)
        except SchedulerError as exc:
            errors.append(f"scheduler error: {exc}")
            complete = False
            break
        explored += 1
        trace = scheduler.trace
        if trace.truncated:
            truncated += 1
        token = result.schedule or encode_token(trace.choices)
        for finding in result.findings:
            key = (
                finding.rule, finding.path, finding.line, finding.col,
                finding.symbol, finding.message,
            )
            if key not in findings:
                findings[key] = finding
            tokens.setdefault(finding.rule, token)
        for error in result.errors:
            if error not in errors:
                errors.append(error)
        _absorb_trace(nodes, trace.events)
        if mode == "dpor":
            _plant_backtracks(nodes, trace.events)
        # Backtrack: pop exhausted nodes, then take the deepest pending
        # choice.  Deepest-first is what makes "pop ⇒ subtree done" true.
        depth = len(nodes) - 1
        descend: Optional[Tuple[int, int]] = None
        while depth >= len(pin):
            node = nodes[depth]
            node.done.add(node.chosen)
            if mode == "dpor":
                candidates = node.backtrack - node.done - node.sleep
            else:
                candidates = set(node.enabled) - node.done
            if candidates:
                descend = (depth, min(candidates))
                break
            pruned += len(node.enabled) - len(node.done)
            del nodes[depth]
            depth -= 1
        if descend is None:
            break
        depth, choice = descend
        node = nodes[depth]
        node.chosen = choice
        del nodes[depth + 1:]
        prefix = [nodes[k].chosen for k in range(depth + 1)]
    return VerifyResult(
        target=target.path,
        mode=mode,
        schedules_explored=explored,
        schedules_pruned=pruned,
        truncated_runs=truncated,
        complete=complete,
        findings=sorted(findings.values()),
        errors=errors,
        tokens=tokens,
    )


def _explore_subtree(
    target: _Target,
    mode: str,
    budget: ExploreBudget,
    pin: Tuple[int, ...],
) -> VerifyResult:
    """Process-pool entry point: one frozen-prefix subtree."""
    return _explore(target, mode, budget, pin=pin)


def _explore_split(
    target: _Target, mode: str, budget: ExploreBudget, split: int
) -> VerifyResult:
    """Partition the tree at its first branching decision and explore
    each branch in its own process; merge verdicts in branch order.

    Sound because every decision above the first branch has exactly one
    enabled task — no backtrack point can land outside the partition —
    and the partition expands *all* enabled choices at the branch node,
    a superset of any backtrack set DPOR could request there.
    """
    probe = ReplayScheduler(max_steps_per_task=budget.max_steps_per_task)
    target.run(probe)
    branch_depth = None
    for event in probe.trace.events:
        if len(event.enabled) > 1:
            branch_depth = event.index
            break
    if branch_depth is None:  # a single-schedule program
        return _explore(target, mode, budget)
    frozen = tuple(probe.trace.choices[:branch_depth])
    branches = sorted(probe.trace.events[branch_depth].enabled)
    share = ExploreBudget(
        max_schedules=max(1, budget.max_schedules // len(branches)),
        max_steps_per_task=budget.max_steps_per_task,
    )
    with ProcessPoolExecutor(max_workers=split) as pool:
        futures = [
            pool.submit(
                _explore_subtree, target, mode, share, frozen + (choice,)
            )
            for choice in branches
        ]
        parts = [future.result() for future in futures]
    findings: Dict[Tuple, Finding] = {}
    tokens: Dict[str, str] = {}
    errors: List[str] = []
    for part in parts:  # branch order: the merge is deterministic
        for finding in part.findings:
            key = (
                finding.rule, finding.path, finding.line, finding.col,
                finding.symbol, finding.message,
            )
            findings.setdefault(key, finding)
        for rule, token in sorted(part.tokens.items()):
            tokens.setdefault(rule, token)
        for error in part.errors:
            if error not in errors:
                errors.append(error)
    return VerifyResult(
        target=target.path,
        mode=mode,
        schedules_explored=sum(p.schedules_explored for p in parts),
        schedules_pruned=sum(p.schedules_pruned for p in parts),
        truncated_runs=sum(p.truncated_runs for p in parts),
        complete=all(p.complete for p in parts),
        findings=sorted(findings.values()),
        errors=errors,
        tokens=tokens,
    )


def explore_source(
    source: str,
    path: str = "<module>",
    entry: Optional[str] = "main",
    entrypoints: Sequence[str] = (),
    mode: str = "dpor",
    budget: Optional[ExploreBudget] = None,
    split: int = 0,
) -> VerifyResult:
    """Model-check ``source`` over every relevant interleaving."""
    budget = budget if budget is not None else ExploreBudget()
    target = _Target(source, path, entry, tuple(entrypoints))
    if split and split > 1:
        return _explore_split(target, mode, budget, split)
    return _explore(target, mode, budget)


def _fixture_of(fix):
    if isinstance(fix, str):
        from repro.smp.fixtures import fixture

        return fixture(fix)
    return fix


def _fixture_target(fix) -> _Target:
    entry = getattr(fix, "dynamic_entry", None)
    entrypoints = tuple(fix.entrypoints) if not entry else ()
    if entry is None and not entrypoints:
        raise ValueError(
            f"fixture {fix.name!r} is not dynamically runnable "
            "(no dynamic_entry or entrypoints)"
        )
    return _Target(fix.source, f"<fixture:{fix.name}>", entry, entrypoints)


def fixture_budget(fix) -> ExploreBudget:
    """The fixture's annotated exploration bounds (defaults otherwise)."""
    return ExploreBudget(
        max_schedules=getattr(fix, "verify_budget", None)
        or DEFAULT_MAX_SCHEDULES,
        max_steps_per_task=getattr(fix, "verify_max_steps", None)
        or DEFAULT_MAX_STEPS,
    )


def explore_fixture(
    fix,
    mode: str = "dpor",
    budget: Optional[ExploreBudget] = None,
    split: int = 0,
) -> VerifyResult:
    """Model-check a twin-corpus fixture (by name or object), honoring
    its machine-readable ``verify_*`` annotations for bounds."""
    fix = _fixture_of(fix)
    target = _fixture_target(fix)
    budget = budget if budget is not None else fixture_budget(fix)
    if split and split > 1:
        return _explore_split(target, mode, budget, split)
    return _explore(target, mode, budget)


def replay_source(
    source: str,
    token: str,
    path: str = "<module>",
    entry: Optional[str] = "main",
    entrypoints: Sequence[str] = (),
) -> RunResult:
    """Re-execute exactly the interleaving ``token`` encodes.

    Strict replay: the program must still accept the schedule (same
    source ⇒ same decisions ⇒ byte-identical findings); a divergence
    raises :class:`repro.verify.scheduler.SchedulerError`.
    """
    scheduler = ReplayScheduler(prefix=decode_token(token), strict=True)
    return run_source(
        source,
        path=path,
        entry=entry,
        entrypoints=entrypoints,
        scheduler=scheduler,
    )


def replay_fixture(fix, token: str) -> RunResult:
    """Replay one schedule of a fixture, byte-identically."""
    fix = _fixture_of(fix)
    target = _fixture_target(fix)
    return replay_source(
        target.source,
        token,
        path=target.path,
        entry=target.entry,
        entrypoints=target.entrypoints,
    )

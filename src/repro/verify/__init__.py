"""PDC-Verify: stateless model checking over the sanitizer runner.

The ladder's last rung.  PDC-Lint reads a program (one abstraction of
every run), PDC-San executes it once (one schedule, really observed),
and this package executes it *under every relevant schedule*: a
cooperative scheduler turns each hook event of the deterministic runner
into a decision point, a depth-first explorer replays schedule prefixes
statelessly, and dynamic partial-order reduction (backtrack sets from
the FastTrack happens-before clocks, plus sleep sets) prunes the
interleavings that only differ in independent steps.

Any failing interleaving serializes to a one-line token
(:mod:`.token`) that replays byte-identically, the twin corpus is
cross-validated schedule-exhaustively (:mod:`.crossval`), and disjoint
schedule subtrees fan out across a process pool
(:func:`.explorer.explore_fixture` with ``split``).
"""

from repro.verify.explorer import (
    ExploreBudget,
    VerifyResult,
    explore_fixture,
    explore_source,
    replay_fixture,
    replay_source,
)
from repro.verify.scheduler import ReplayScheduler, ScheduleTrace
from repro.verify.token import decode_token, encode_token

__all__ = [
    "ExploreBudget",
    "ReplayScheduler",
    "ScheduleTrace",
    "VerifyResult",
    "decode_token",
    "encode_token",
    "explore_fixture",
    "explore_source",
    "replay_fixture",
    "replay_source",
]

"""The ``pdc-verify`` CLI: a thin shell over :mod:`repro.analysis.engine`.

The exhaustive rung of the ladder: where ``pdc-san`` runs a program
once, ``pdc-verify`` model-checks it — every relevant interleaving,
DPOR-pruned — and reports PDC3xx findings in the same formats, with a
replayable schedule token behind every failure.  Exit codes: 0 clean
(over *all* explored schedules), 1 findings (or a ``--crossval``
invariant violation), 2 unrunnable input.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.engine import cli as engine_cli

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdc-verify",
        description=(
            "Stateless model checker for Python teaching code: drives the "
            "PDC-San runner through every relevant thread interleaving "
            "(DFS schedule replay with dynamic partial-order reduction) "
            "and reports any PDC3xx finding reachable on any schedule, "
            "each with a one-line token that replays it byte-identically."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="Python files to model-check")
    parser.add_argument(
        "--entry", default="main",
        help="zero-argument entry function for path runs (default: main)")
    parser.add_argument(
        "--fixture", action="append", default=[], metavar="NAME",
        help="check one corpus fixture by name (repeatable)")
    parser.add_argument(
        "--corpus", action="store_true",
        help="check every runnable fixture in the twin corpus")
    parser.add_argument(
        "--mode", choices=("dpor", "dfs"), default="dpor",
        help="exploration mode: DPOR (default) or naive DFS ground truth")
    parser.add_argument(
        "--max-schedules", type=int, default=None, metavar="N",
        help="schedule budget per unit (default: fixture annotation/2000)")
    parser.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="per-task step cap within one schedule (spin-loop bound)")
    parser.add_argument(
        "--replay", default=None, metavar="TOKEN",
        help="replay one schedule token against a --fixture or path "
             "and print its findings")
    parser.add_argument(
        "--crossval", action="store_true",
        help="checker-vs-sanitizer invariants over the corpus: "
             "reachability of every single-run finding, machine-checked "
             "exonerations, per-fixture explored/pruned stats",
    )
    engine_cli.add_engine_args(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the model checker; returns the process exit code."""
    parser = _build_parser()
    return engine_cli.run_verify(parser, parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Checker-vs-sanitizer cross-validation: reachability and exoneration.

Two invariants tie the ladder's rungs together, and this module
machine-checks both over the twin corpus:

**Reachability** — anything PDC-San observes on its one schedule, the
checker must be able to reach: a single execution is one path through
the schedule tree, and exhaustive (or bounded-superset) search that
misses it has a search bug.  Concretely, every PDC301/PDC302 a single
inline run reports must appear among the checker's findings.

**Exoneration** — a lockset PDC101 the checker *exhausts the schedule
tree* without reproducing as a PDC301 is a confirmed static false
positive.  The sanitizer's exoneration ("the schedule we ran was
clean") is upgraded to a proof ("every schedule is clean") when
exploration is complete and untruncated, and to a bounded CHESS-style
exoneration when the fixture's busy-wait loops force step caps
(``verify_complete=False`` on the fixture says which is expected).
The two known exonerations — ``forkjoin_handoff_twin`` and
``lock_handoff_twin`` — stop being hand-waving here: the first is a
full proof, the second a bounded one, both asserted.

The JSON form carries per-fixture schedules-explored/pruned counts —
the CI stats artifact that shows what the reduction bought.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, FrozenSet, List, Optional

from repro.analysis import analyze_source
from repro.verify.explorer import VerifyResult, explore_fixture

__all__ = [
    "CheckerVerdict",
    "VerifyCrossReport",
    "cross_validate_checker",
    "render_verify_crossval_text",
    "run_verify_crossval_cli",
]

#: Dynamic rules subject to the reachability invariant.
_REACHABLE_RULES = frozenset({"PDC301", "PDC302"})


@dataclasses.dataclass(frozen=True)
class CheckerVerdict:
    """One fixture: single-run sanitizer vs exhaustive checker."""

    name: str
    known_false_positive: bool
    #: True when the fixture annotation promises untruncated exhaustion.
    expect_complete: bool
    #: Rules the checker must reach (fixture's ``checker_expect``).
    expect_rules: FrozenSet[str]
    static_rules: FrozenSet[str]
    #: What one inline (unscheduled) sanitizer run reported.
    single_run_rules: FrozenSet[str]
    #: What the checker found across every schedule it explored.
    checker_rules: FrozenSet[str]
    schedules_explored: int
    schedules_pruned: int
    truncated_runs: int
    complete: bool
    #: First failing schedule token per rule, replayable byte-identically.
    tokens: Dict[str, str]
    errors: List[str]

    @property
    def proved(self) -> bool:
        return self.complete and self.truncated_runs == 0

    @property
    def reachable_ok(self) -> bool:
        """Everything the sanitizer saw on one schedule, search found."""
        observed = self.single_run_rules & _REACHABLE_RULES
        return observed <= self.checker_rules

    @property
    def expect_ok(self) -> bool:
        """The checker reached every rule the corpus says it must."""
        return self.expect_rules <= self.checker_rules

    @property
    def completeness_ok(self) -> bool:
        """Exploration was as exhaustive as the annotation promises.

        ``verify_complete=True`` fixtures must be proved (tree drained,
        no truncation).  ``verify_complete=False`` fixtures have
        infinite schedule trees: there the step caps and schedule
        budget *are* the CHESS-style bound, so any error-free bounded
        exploration satisfies the annotation."""
        if self.expect_complete:
            return self.proved
        return True

    @property
    def exonerated(self) -> bool:
        """A static PDC101 the checker could not reproduce anywhere: the
        machine-checked form of the lockset false-positive claim."""
        return (
            self.known_false_positive
            and "PDC101" in self.static_rules
            and self.complete
            and "PDC301" not in self.checker_rules
        )

    @property
    def ok(self) -> bool:
        return (
            self.reachable_ok
            and self.expect_ok
            and self.completeness_ok
            and not self.errors
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "known_false_positive": self.known_false_positive,
            "static_rules": sorted(self.static_rules),
            "single_run_rules": sorted(self.single_run_rules),
            "checker_rules": sorted(self.checker_rules),
            "expect_rules": sorted(self.expect_rules),
            "schedules_explored": self.schedules_explored,
            "schedules_pruned": self.schedules_pruned,
            "truncated_runs": self.truncated_runs,
            "complete": self.complete,
            "proved": self.proved,
            "reachable_ok": self.reachable_ok,
            "expect_ok": self.expect_ok,
            "completeness_ok": self.completeness_ok,
            "exonerated": self.exonerated,
            "tokens": dict(sorted(self.tokens.items())),
            "errors": list(self.errors),
            "ok": self.ok,
        }


@dataclasses.dataclass(frozen=True)
class VerifyCrossReport:
    """The checker cross-validation over every runnable fixture."""

    verdicts: List[CheckerVerdict]
    mode: str

    @property
    def exonerated(self) -> List[str]:
        return [v.name for v in self.verdicts if v.exonerated]

    @property
    def unreachable(self) -> List[str]:
        """Fixtures with a sanitizer-observed rule the search missed —
        each one is a checker bug, and the CI gate fails on any."""
        return [v.name for v in self.verdicts if not v.reachable_ok]

    @property
    def all_ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def total_explored(self) -> int:
        return sum(v.schedules_explored for v in self.verdicts)

    @property
    def total_pruned(self) -> int:
        return sum(v.schedules_pruned for v in self.verdicts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "fixtures": [v.to_dict() for v in self.verdicts],
            "exonerated": self.exonerated,
            "unreachable": self.unreachable,
            "total_explored": self.total_explored,
            "total_pruned": self.total_pruned,
            "all_ok": self.all_ok,
        }


def cross_validate_checker(mode: str = "dpor") -> VerifyCrossReport:
    """Explore every runnable fixture; compare against static analysis,
    one inline sanitizer run, and the corpus annotations."""
    from repro.sanitizers.runner import run_fixture
    from repro.smp.fixtures import all_fixtures

    verdicts: List[CheckerVerdict] = []
    for fix in all_fixtures():
        if not (fix.dynamic_entry or fix.entrypoints):
            continue
        static = frozenset(
            f.rule for f in analyze_source(fix.source, f"<fixture:{fix.name}>")
        )
        single = frozenset(run_fixture(fix).rules)
        result: VerifyResult = explore_fixture(fix, mode=mode)
        verdicts.append(CheckerVerdict(
            name=fix.name,
            known_false_positive=fix.known_false_positive,
            expect_complete=fix.verify_complete,
            expect_rules=fix.checker_expect,
            static_rules=static,
            single_run_rules=single,
            checker_rules=frozenset(result.rules),
            schedules_explored=result.schedules_explored,
            schedules_pruned=result.schedules_pruned,
            truncated_runs=result.truncated_runs,
            complete=result.complete,
            tokens=dict(result.tokens),
            errors=list(result.errors),
        ))
    return VerifyCrossReport(verdicts=verdicts, mode=mode)


def render_verify_crossval_text(report: VerifyCrossReport) -> str:
    """The checker-vs-sanitizer table, as fixed-width text."""
    headers = (
        "fixture", "single-run", "checker", "explored", "pruned", "verdict",
    )
    rows = []
    for v in report.verdicts:
        marks = []
        marks.append("reach:ok" if v.reachable_ok else "reach:MISSED")
        marks.append("expect:ok" if v.expect_ok else "expect:MISMATCH")
        if v.proved:
            marks.append("proved")
        elif v.complete:
            marks.append("bounded")
        else:
            marks.append("BUDGET-CAPPED")
        if v.exonerated:
            marks.append("EXONERATED")
        if v.errors:
            marks.append(f"errors:{len(v.errors)}")
        rows.append((
            v.name,
            ",".join(sorted(v.single_run_rules)) or "clean",
            ",".join(sorted(v.checker_rules)) or "clean",
            str(v.schedules_explored),
            str(v.schedules_pruned),
            " ".join(marks),
        ))
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines += [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    lines.append("")
    lines.append(
        f"schedules: {report.total_explored} explored, "
        f"{report.total_pruned} pruned ({report.mode})"
    )
    lines.append(
        "exonerated by exhaustive search: "
        + (", ".join(report.exonerated) if report.exonerated else "none")
    )
    if report.unreachable:
        lines.append(
            "UNREACHABLE (search bug): " + ", ".join(report.unreachable)
        )
    return "\n".join(lines)


def run_verify_crossval_cli(
    fmt: str, mode: str = "dpor", stats_path: Optional[str] = None
) -> int:
    """The ``pdc-verify --crossval`` mode: print, optionally write the
    stats artifact, gate on the invariants."""
    report = cross_validate_checker(mode=mode)
    if stats_path:
        with open(stats_path, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_verify_crossval_text(report))
    return 0 if report.all_ok else 1

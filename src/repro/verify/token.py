"""Schedule tokens: one failing interleaving on one line.

A schedule is the sequence of task indices the scheduler chose at each
decision point.  Serialized with run-length compression it fits in a
test name, a CI log line, or a bug report — and
:func:`repro.verify.explorer.replay_fixture` turns it back into the
exact same execution, byte-identical findings included, because the
runner underneath is deterministic given the choice sequence.

Format: ``v1:0x3,1,2x5`` — version prefix, then comma-separated runs,
``TASKxCOUNT`` (count omitted when 1).  The empty schedule is ``v1:``.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["encode_token", "decode_token", "TokenError"]

_PREFIX = "v1:"


class TokenError(ValueError):
    """A schedule token that does not parse."""


def encode_token(choices: Sequence[int]) -> str:
    """Serialize a choice sequence to its one-line token."""
    runs: List[str] = []
    i = 0
    n = len(choices)
    while i < n:
        j = i
        while j < n and choices[j] == choices[i]:
            j += 1
        count = j - i
        runs.append(f"{choices[i]}x{count}" if count > 1 else str(choices[i]))
        i = j
    return _PREFIX + ",".join(runs)


def decode_token(token: str) -> List[int]:
    """Parse a token back into the choice sequence it encodes."""
    if not token.startswith(_PREFIX):
        raise TokenError(f"schedule token must start with {_PREFIX!r}: {token!r}")
    body = token[len(_PREFIX):]
    choices: List[int] = []
    if not body:
        return choices
    for run in body.split(","):
        head, sep, count = run.partition("x")
        try:
            tid = int(head)
            reps = int(count) if sep else 1
        except ValueError:
            raise TokenError(f"bad run {run!r} in schedule token {token!r}") from None
        if tid < 0 or reps < 1:
            raise TokenError(f"bad run {run!r} in schedule token {token!r}")
        choices.extend([tid] * reps)
    return choices

"""The cooperative replay scheduler: one runnable thread at a time.

The sanitizer runner's inline mode executes each logical thread to
completion — exactly one schedule.  In *scheduled* mode every hook
event becomes a **decision point**: the running task publishes the
operation it is about to perform and parks; the driver (the thread
that called :meth:`ReplayScheduler.run`) picks which enabled task runs
next — from a replayed prefix first, then a fixed default policy — and
hands it the baton.  Exactly one task ever runs between decisions, so
the execution is a pure function of the choice sequence: the property
that makes stateless model checking (re-execute from scratch under a
different prefix) and token replay (same prefix ⇒ byte-identical
findings) both work.

Blocking is real here, unlike in the inline runner: a lock acquire on
a held lock, a join on an unfinished task, a wait on an unset event, a
semaphore at zero, a non-final barrier arrival — all *disable* the
task until the state changes.  When every live task is disabled the
program has genuinely deadlocked, and the driver reports the wait-for
cycle instead of hanging.  Per-task step caps bound busy-wait loops
(the schedules a spin admits are infinite; the checker explores them
up to the bound and counts the truncation honestly).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.sanitizers.sites import AccessSite, call_site

__all__ = [
    "DeadlockReached",
    "ReplayScheduler",
    "ScheduleEvent",
    "ScheduleTrace",
    "SchedulerError",
]

#: Operation kinds that never block (always enabled once published).
_NONBLOCKING = frozenset({
    "begin", "rd", "wr", "spawn", "release", "sem_post", "evt_set",
    "resume", "cond_wait",
})

_WAIT_TIMEOUT = 30.0  # seconds; a stuck OS thread is a checker bug, not a hang


class SchedulerError(RuntimeError):
    """The scheduler lost a task or was given an unusable schedule."""


class DeadlockReached(Exception):
    """Internal marker: every live task is blocked."""


class _AbortRun(BaseException):
    """Raised inside a parked task to unwind it after the run is over.

    Derives from ``BaseException`` so user-level ``except Exception``
    blocks in fixture code cannot swallow the unwind.
    """


@dataclasses.dataclass(frozen=True)
class ScheduleEvent:
    """One executed decision: who ran, what they did, under which clock."""

    index: int
    task: int
    kind: str
    obj: str
    #: The task's FastTrack vector clock *before* the operation ran —
    #: the happens-before material DPOR computes backtrack points from.
    clock: Dict[int, int]
    #: Task indices that were enabled when this choice was made.
    enabled: Tuple[int, ...]
    #: The chosen task's detector tid (the key of its own clock entry).
    det: int = 0
    #: Pending ``(kind, obj)`` of *every* enabled task at this decision —
    #: what sleep sets need to judge independence of the roads not taken.
    pending: Dict[int, Tuple[str, str]] = dataclasses.field(
        default_factory=dict
    )


@dataclasses.dataclass
class ScheduleTrace:
    """Everything one scheduled execution produced, scheduler-side."""

    choices: List[int]
    events: List[ScheduleEvent]
    #: ``(cycle, site)`` when the run reached a real deadlock.
    deadlock: Optional[Tuple[List[str], AccessSite]] = None
    #: True when a per-task step cap cut the run short (spin loops).
    truncated: bool = False
    #: ``(task name, exception)`` for every task body that raised.
    crashes: List[Tuple[str, BaseException]] = dataclasses.field(
        default_factory=list
    )


class _Task:
    """One logical thread under the scheduler's control."""

    __slots__ = (
        "index", "name", "fn", "det_tid", "thread", "sem", "state",
        "pending", "site", "abort", "steps",
    )

    def __init__(self, index: int, name: str, fn: Callable[[], None]) -> None:
        self.index = index
        self.name = name
        self.fn = fn
        self.det_tid: Optional[int] = None
        self.thread: Optional[threading.Thread] = None
        self.sem = threading.Semaphore(0)
        self.state = "new"  # new | parked | running | done
        self.pending: Tuple[str, str] = ("begin", name)
        self.site: Optional[AccessSite] = None
        self.abort = False
        self.steps = 0


class ReplayScheduler:
    """Drive a scheduled sanitizer run along a (partial) choice sequence.

    ``prefix`` is replayed verbatim; past its end, ``strict=False`` runs
    the deterministic default policy (lowest enabled task index) to
    completion, while ``strict=True`` treats exhausting the prefix with
    live tasks as an error — the token-replay contract.
    """

    def __init__(
        self,
        prefix: Sequence[int] = (),
        max_steps_per_task: int = 400,
        strict: bool = False,
    ) -> None:
        self.prefix = list(prefix)
        self.max_steps_per_task = max_steps_per_task
        self.strict = strict
        self.trace = ScheduleTrace(choices=[], events=[])
        self.detector: Any = None  # FastTrackDetector, set by the runner
        self._tasks: List[_Task] = []
        self._local = threading.local()
        self._driver_sem = threading.Semaphore(0)
        self._lock_owner: Dict[str, Optional[int]] = {}
        self._sem_count: Dict[str, int] = {}
        self._evt_set: Set[str] = set()
        self._barrier_parties: Dict[str, int] = {}
        self._obj_keys: Dict[int, str] = {}
        self._obj_count = 0
        self._running = False

    # -- object identity ---------------------------------------------------
    def _key(self, kind: str, obj: object) -> str:
        """A stable per-run key for a synchronization object: first-seen
        order, which deterministic execution keeps identical across
        replays of the same program."""
        if isinstance(obj, str):
            return obj
        ident = id(obj)
        key = self._obj_keys.get(ident)
        if key is None:
            name = getattr(obj, "name", None)
            key = name if isinstance(name, str) else f"{kind}#{self._obj_count}"
            self._obj_count += 1
            self._obj_keys[ident] = key
        return key

    # -- the runner-facing surface ----------------------------------------
    def current_task(self) -> _Task:
        task = getattr(self._local, "task", None)
        if task is None:
            raise SchedulerError(
                "scheduler operation from a thread it does not own"
            )
        return task

    def spawn(self, name: str, fn: Callable[[], None], det_tid: int) -> _Task:
        """Register a new logical thread (it runs only when chosen)."""
        task = _Task(len(self._tasks), name, fn)
        task.det_tid = det_tid
        self._tasks.append(task)
        task.thread = threading.Thread(
            target=self._task_body, args=(task,), name=name, daemon=True
        )
        task.thread.start()
        return task

    def op(self, kind: str, obj: object) -> None:
        """A non-blocking decision point (reads, writes, releases...)."""
        self._decision(kind, self._key(kind, obj))

    def lock_acquire(self, lock: object) -> None:
        key = self._key("lock", lock)
        self._decision("acquire", key)

    def lock_release(self, lock: object) -> None:
        key = self._key("lock", lock)
        self._decision("release", key)
        self._lock_owner[key] = None

    def sem_init(self, sem: object, value: int) -> None:
        self._sem_count[self._key("sem", sem)] = value

    def sem_wait(self, sem: object) -> None:
        self._decision("sem_wait", self._key("sem", sem))

    def sem_post(self, sem: object) -> None:
        key = self._key("sem", sem)
        self._decision("sem_post", key)
        self._sem_count[key] = self._sem_count.get(key, 0) + 1

    def event_set(self, event: object) -> None:
        key = self._key("evt", event)
        self._decision("evt_set", key)
        self._evt_set.add(key)

    def event_wait(self, event: object) -> None:
        self._decision("evt_wait", self._key("evt", event))

    def barrier_wait(self, barrier: object, parties: int) -> None:
        key = self._key("barrier", barrier)
        self._barrier_parties[key] = parties
        self._decision("barrier", key)

    def join(self, target: "_Task") -> None:
        self._decision("join", f"task:{target.index}")

    # -- task side ---------------------------------------------------------
    def _task_body(self, task: _Task) -> None:
        task.sem.acquire()  # first resume: the scheduler chose "begin"
        if task.abort:
            return
        if self.detector is not None and task.det_tid is not None:
            self.detector.bind(task.det_tid)
        self._local.task = task
        task.state = "running"
        try:
            task.fn()
        except _AbortRun:
            pass
        except BaseException as exc:  # noqa: BLE001 - surfaced by the driver
            self.trace.crashes.append((task.name, exc))
        finally:
            task.state = "done"
            self._driver_sem.release()

    def _decision(self, kind: str, key: str) -> None:
        task = self.current_task()
        if task.abort:
            # The run is over and this task is unwinding; a decision hit
            # inside a ``finally`` must not park again (nobody resumes).
            raise _AbortRun()
        task.pending = (kind, key)
        task.site = call_site(task.name)
        task.state = "parked"
        self._driver_sem.release()
        task.sem.acquire()
        task.state = "running"
        if task.abort:
            raise _AbortRun()

    # -- enabledness -------------------------------------------------------
    def _enabled(self, task: _Task) -> bool:
        kind, key = task.pending
        if kind in _NONBLOCKING:
            return True
        if kind == "acquire":
            owner = self._lock_owner.get(key)
            return owner is None or owner == task.index
        if kind == "sem_wait":
            return self._sem_count.get(key, 0) > 0
        if kind == "evt_wait":
            return key in self._evt_set
        if kind == "join":
            target = self._tasks[int(key.split(":", 1)[1])]
            return target.state == "done"
        if kind == "barrier":
            waiting = sum(
                1 for t in self._tasks
                if t.state == "parked" and t.pending == ("barrier", key)
            )
            return waiting >= self._barrier_parties.get(key, 1)
        return True

    def _apply(self, task: _Task) -> None:
        """State updates that happen the instant a choice is made."""
        kind, key = task.pending
        if kind == "acquire":
            self._lock_owner[key] = task.index
        elif kind == "sem_wait":
            self._sem_count[key] = self._sem_count.get(key, 0) - 1
        elif kind == "barrier":
            # The chosen arriver completes the generation: every other
            # waiter is released (each still needs its own resume choice,
            # so the departure order stays part of the schedule).
            for t in self._tasks:
                if (
                    t is not task and t.state == "parked"
                    and t.pending == ("barrier", key)
                ):
                    t.pending = ("resume", key)

    # -- deadlock reporting ------------------------------------------------
    def _wait_cycle(self, blocked: List[_Task]) -> List[str]:
        """The wait-for cycle among blocked tasks (canonical rotation),
        or every blocked task's name when no single cycle explains it."""
        waits_on: Dict[int, int] = {}
        for t in blocked:
            kind, key = t.pending
            holder: Optional[int] = None
            if kind == "acquire":
                holder = self._lock_owner.get(key)
            elif kind == "join":
                target = self._tasks[int(key.split(":", 1)[1])]
                if target.state != "done":
                    holder = target.index
            if holder is not None and holder != t.index:
                waits_on[t.index] = holder
        for start in sorted(waits_on):
            seen: List[int] = []
            node = start
            while node in waits_on and node not in seen:
                seen.append(node)
                node = waits_on[node]
            if node in seen:
                cycle = seen[seen.index(node):]
                pivot = min(range(len(cycle)), key=cycle.__getitem__)
                cycle = cycle[pivot:] + cycle[:pivot]
                return [self._tasks[i].name for i in cycle]
        return sorted(t.name for t in blocked)

    # -- the driver --------------------------------------------------------
    def run(self, root_fn: Callable[[], None], root_name: str = "main") -> ScheduleTrace:
        """Execute ``root_fn`` (and every task it spawns) to completion,
        scheduling one task per decision.  Returns the trace."""
        if self._running:
            raise SchedulerError("a ReplayScheduler drives exactly one run")
        self._running = True
        root_tid = None
        if self.detector is not None:
            root_tid = self.detector.fork_child(name=root_name)
        root = _Task(0, root_name, root_fn)
        root.det_tid = root_tid
        self._tasks.append(root)
        root.thread = threading.Thread(
            target=self._task_body, args=(root,), name=root_name, daemon=True
        )
        root.thread.start()
        current: Optional[_Task] = None
        try:
            self._resume(root)
            current = root
            while True:
                if not self._driver_sem.acquire(timeout=_WAIT_TIMEOUT):
                    raise SchedulerError(
                        f"task {current.name if current else '?'} stopped "
                        "responding (missed decision point?)"
                    )
                live = [t for t in self._tasks if t.state != "done"]
                if not live:
                    break
                # "new" tasks (spawned, never yet chosen) park inside
                # their OS thread waiting for a first resume; they are
                # schedulable exactly like parked ones.
                parked = [t for t in live if t.state in ("parked", "new")]
                enabled = [t for t in parked if self._enabled(t)]
                if not enabled:
                    blocked = parked
                    cycle = self._wait_cycle(blocked)
                    # Report the site of a task *in* the cycle (their
                    # frames point at fixture lines; the root task's
                    # join frame would point into the runner plumbing).
                    in_cycle = set(cycle)
                    site = min(
                        (
                            t.site for t in blocked
                            if t.site is not None and t.name in in_cycle
                        ),
                        default=AccessSite("<scheduler>", 0),
                    )
                    self.trace.deadlock = (cycle, site)
                    break
                chosen = self._pick(enabled)
                if chosen is None:  # strict replay ran out of schedule
                    break
                if chosen.steps >= self.max_steps_per_task:
                    self.trace.truncated = True
                    break
                chosen.steps += 1
                self._record(chosen, enabled)
                self._apply(chosen)
                current = chosen
                self._resume(chosen)
        finally:
            self._abort_all()
        return self.trace

    def _pick(self, enabled: List[_Task]) -> Optional[_Task]:
        index = len(self.trace.choices)
        if index < len(self.prefix):
            want = self.prefix[index]
            for t in enabled:
                if t.index == want:
                    return t
            raise SchedulerError(
                f"schedule step {index}: task {want} is not enabled "
                f"(enabled: {[t.index for t in enabled]})"
            )
        if self.strict:
            return None
        return min(enabled, key=lambda t: t.index)

    def _record(self, chosen: _Task, enabled: List[_Task]) -> None:
        clock: Dict[int, int] = {}
        if self.detector is not None and chosen.det_tid is not None:
            clock = self.detector.clock_of(chosen.det_tid)
        kind, key = chosen.pending
        self.trace.events.append(ScheduleEvent(
            index=len(self.trace.choices),
            task=chosen.index,
            kind=kind,
            obj=key,
            clock=clock,
            enabled=tuple(sorted(t.index for t in enabled)),
            det=chosen.det_tid if chosen.det_tid is not None else 0,
            pending={t.index: t.pending for t in enabled},
        ))
        self.trace.choices.append(chosen.index)

    def _resume(self, task: _Task) -> None:
        task.sem.release()

    def _abort_all(self) -> None:
        for task in self._tasks:
            if task.state != "done":
                task.abort = True
                task.sem.release()
        for task in self._tasks:
            if task.thread is not None:
                task.thread.join(timeout=_WAIT_TIMEOUT)

"""CPU/I-O burst scheduling: overlap, utilization, multiprogramming.

The pure-CPU model of :mod:`repro.oskernel.scheduler` isolates policy
behaviour; real workloads alternate CPU bursts with I/O waits, and the
scheduler's job becomes *overlap* — keep the CPU busy while jobs block.
This simulator adds that dimension:

- an :class:`IoProcess` is an alternating burst list
  ``[cpu, io, cpu, io, ..., cpu]``;
- blocked processes wait on an (infinitely parallel) I/O subsystem;
- any :class:`~repro.oskernel.scheduler.Scheduler` policy drives the CPU.

The headline output is the classic lecture curve: **CPU utilization vs
degree of multiprogramming** (:func:`multiprogramming_curve`) — one
I/O-bound job leaves the CPU mostly idle; enough of them saturate it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.oskernel.scheduler import Scheduler

__all__ = ["IoProcess", "IoMetrics", "simulate_io", "multiprogramming_curve"]


@dataclasses.dataclass
class IoProcess:
    """A process as an alternating CPU/I-O burst sequence.

    ``bursts[0], bursts[2], ...`` are CPU bursts; odd indices are I/O
    waits.  The list must start and end with a CPU burst.
    """

    pid: int
    arrival: int
    bursts: List[int]
    priority: int = 0

    # Simulation outputs:
    completion_time: Optional[int] = None
    cpu_time: int = 0
    io_time: int = 0
    first_run: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.bursts or len(self.bursts) % 2 == 0:
            raise ValueError("bursts must be an odd-length list (CPU first/last)")
        if any(b <= 0 for b in self.bursts):
            raise ValueError("bursts must be positive")
        self.cpu_time = sum(self.bursts[0::2])
        self.io_time = sum(self.bursts[1::2])

    @property
    def turnaround(self) -> int:
        assert self.completion_time is not None
        return self.completion_time - self.arrival


@dataclasses.dataclass
class IoMetrics:
    """Outcome of one CPU/I-O simulation."""

    processes: List[IoProcess]
    makespan: int
    cpu_busy: int
    context_switches: int

    @property
    def cpu_utilization(self) -> float:
        """Fraction of the makespan the CPU did useful work."""
        return self.cpu_busy / self.makespan if self.makespan else 0.0

    @property
    def avg_turnaround(self) -> float:
        return sum(p.turnaround for p in self.processes) / len(self.processes)


@dataclasses.dataclass
class _Pcb:
    proc: IoProcess
    burst_index: int = 0
    remaining: int = 0

    def __post_init__(self) -> None:
        self.remaining = self.proc.bursts[0]


class _ReadyShim:
    """Adapts a PCB into the duck type Scheduler policies expect."""

    __slots__ = ("pcb",)

    def __init__(self, pcb: _Pcb) -> None:
        self.pcb = pcb

    @property
    def pid(self) -> int:
        return self.pcb.proc.pid

    @property
    def arrival(self) -> int:
        return self.pcb.proc.arrival

    @property
    def priority(self) -> int:
        return self.pcb.proc.priority

    @property
    def burst(self) -> int:
        return self.pcb.proc.bursts[self.pcb.burst_index]

    @property
    def remaining(self) -> int:
        return self.pcb.remaining


def simulate_io(
    processes: Sequence[IoProcess], scheduler: Scheduler, max_ticks: int = 1_000_000
) -> IoMetrics:
    """Run alternating-burst processes under any scheduling policy."""
    if not processes:
        raise ValueError("need at least one process")
    procs = [
        IoProcess(p.pid, p.arrival, list(p.bursts), p.priority)
        for p in processes
    ]
    pcbs = {p.pid: _Pcb(p) for p in procs}
    pending = sorted(procs, key=lambda p: (p.arrival, p.pid))
    ready: List[_ReadyShim] = []
    blocked: Dict[int, int] = {}  # pid -> io completion time
    current: Optional[_ReadyShim] = None
    quantum_left: Optional[int] = None
    now = 0
    cpu_busy = 0
    switches = 0

    def admit() -> None:
        while pending and pending[0].arrival <= now:
            p = pending.pop(0)
            ready.append(_ReadyShim(pcbs[p.pid]))

    def unblock() -> None:
        for pid, wake in sorted(blocked.items()):
            if wake <= now:
                del blocked[pid]
                pcb = pcbs[pid]
                pcb.burst_index += 1
                pcb.remaining = pcb.proc.bursts[pcb.burst_index]
                ready.append(_ReadyShim(pcb))

    while pending or ready or blocked or current is not None:
        if now > max_ticks:
            raise RuntimeError("simulation exceeded max_ticks")
        admit()
        unblock()

        if current is None and not ready:
            # CPU idle: jump to the next event.
            candidates = []
            if pending:
                candidates.append(pending[0].arrival)
            if blocked:
                candidates.append(min(blocked.values()))
            now = max(now + 1, min(candidates)) if candidates else now + 1
            continue

        reschedule = current is None
        if current is not None:
            if quantum_left == 0:
                scheduler.on_preempt(current)
                ready.append(current)
                current = None
                reschedule = True
            elif scheduler.preemptive and ready:
                best = scheduler.pick(ready + [current], now)
                if best is not current:
                    ready.append(current)
                    current = None
                    reschedule = True

        if reschedule and ready:
            chosen = scheduler.pick(ready, now)
            ready.remove(chosen)
            switches += 1
            if chosen.pcb.proc.first_run is None:
                chosen.pcb.proc.first_run = now
            current = chosen
            quantum_left = scheduler.quantum_for(chosen)

        if current is None:
            now += 1
            continue

        # Execute one tick of the current CPU burst.
        scheduler.on_wait_tick(ready, now)
        current.pcb.remaining -= 1
        cpu_busy += 1
        now += 1
        if quantum_left is not None:
            quantum_left -= 1
        if current.pcb.remaining == 0:
            pcb = current.pcb
            if pcb.burst_index + 1 < len(pcb.proc.bursts):
                # Enter the next I/O wait.
                blocked[pcb.proc.pid] = now + pcb.proc.bursts[pcb.burst_index + 1]
                pcb.burst_index += 1
            else:
                pcb.proc.completion_time = now
            current = None
            quantum_left = None

    return IoMetrics(
        processes=procs,
        makespan=now,
        cpu_busy=cpu_busy,
        context_switches=max(0, switches - 1),
    )


def multiprogramming_curve(
    degrees: Sequence[int],
    scheduler_factory,
    cpu_burst: int = 2,
    io_burst: int = 8,
    cycles: int = 5,
) -> Dict[int, float]:
    """CPU utilization vs number of identical I/O-bound jobs.

    Each job alternates a short CPU burst with a long I/O wait; with one
    job the CPU idles during every wait, with ``io/cpu + 1`` jobs it
    saturates — the curve every OS lecture draws.
    """
    out: Dict[int, float] = {}
    for n in degrees:
        bursts: List[int] = []
        for _ in range(cycles):
            bursts.extend([cpu_burst, io_burst])
        bursts.append(cpu_burst)
        jobs = [IoProcess(pid=i + 1, arrival=0, bursts=list(bursts)) for i in range(n)]
        metrics = simulate_io(jobs, scheduler_factory())
        out[n] = metrics.cpu_utilization
    return out

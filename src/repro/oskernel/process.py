"""Processes and canonical scheduling workloads."""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

import numpy as np

__all__ = ["ProcessState", "Process", "Workloads"]


class ProcessState(enum.Enum):
    """The five-state process lifecycle."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    TERMINATED = "terminated"


@dataclasses.dataclass
class Process:
    """A schedulable process (CPU-burst model).

    ``priority``: lower number = higher priority (Unix convention).
    The mutable fields are filled in by the simulator.
    """

    pid: int
    arrival: int
    burst: int
    priority: int = 0

    # Simulation outputs:
    state: ProcessState = ProcessState.NEW
    remaining: int = dataclasses.field(default=0)
    start_time: Optional[int] = None
    completion_time: Optional[int] = None

    def __post_init__(self) -> None:
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        self.remaining = self.burst

    def reset(self) -> "Process":
        """A fresh copy for re-running under another scheduler."""
        return Process(self.pid, self.arrival, self.burst, self.priority)

    @property
    def turnaround(self) -> int:
        """Completion − arrival."""
        assert self.completion_time is not None
        return self.completion_time - self.arrival

    @property
    def waiting(self) -> int:
        """Turnaround − burst."""
        return self.turnaround - self.burst

    @property
    def response(self) -> int:
        """First-run − arrival."""
        assert self.start_time is not None
        return self.start_time - self.arrival


class Workloads:
    """Workload generators for scheduler benches and tests."""

    @staticmethod
    def textbook() -> List[Process]:
        """The classic 5-process example used in OS lecture notes."""
        return [
            Process(1, arrival=0, burst=10, priority=3),
            Process(2, arrival=1, burst=1, priority=1),
            Process(3, arrival=2, burst=2, priority=4),
            Process(4, arrival=3, burst=1, priority=5),
            Process(5, arrival=4, burst=5, priority=2),
        ]

    @staticmethod
    def convoy() -> List[Process]:
        """One long job ahead of many short ones — the FCFS convoy effect.

        All jobs arrive together; FCFS (pid tie-break) runs the long job
        first and every short job convoys behind it, while SJF runs the
        shorts first.
        """
        return [Process(1, 0, 100)] + [
            Process(i + 2, 0, 2) for i in range(9)
        ]

    @staticmethod
    def random(
        n: int,
        seed: int = 0,
        max_arrival: int = 50,
        max_burst: int = 20,
        priorities: int = 5,
    ) -> List[Process]:
        """A reproducible random workload."""
        rng = np.random.default_rng(seed)
        return [
            Process(
                pid=i + 1,
                arrival=int(rng.integers(0, max_arrival + 1)),
                burst=int(rng.integers(1, max_burst + 1)),
                priority=int(rng.integers(0, priorities)),
            )
            for i in range(n)
        ]

    @staticmethod
    def starvation_prone(n_high: int = 20) -> List[Process]:
        """A low-priority job buried under a stream of high-priority ones.

        Under strict priority scheduling without aging, the pid-0 job's
        waiting time grows with ``n_high`` — the starvation demonstration.
        """
        victim = [Process(999, arrival=0, burst=5, priority=9)]
        hogs = [
            Process(i + 1, arrival=i * 2, burst=4, priority=0)
            for i in range(n_high)
        ]
        return victim + hogs

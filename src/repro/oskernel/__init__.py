"""Operating-systems teaching kit: scheduling and synchronization.

The operating-systems column of Table I covers threads, parallelism and
concurrency, shared memory, IPC, atomicity, and shared-vs-distributed
memory; the AUC case study (§IV-B) details "multi-threading, speedup,
multiprocessing, mutual exclusion, synchronization, deadline and
starvation, and scheduling on single and multiprocessor systems".

- :mod:`repro.oskernel.process` — process control blocks and workloads.
- :mod:`repro.oskernel.scheduler` — single-CPU schedulers (FCFS, SJF,
  SRTF, RR, preemptive priority with optional aging, MLFQ) with exact
  waiting/turnaround/response metrics and Gantt traces.
- :mod:`repro.oskernel.smp` — multiprocessor scheduling: global queue,
  static partitioning, and per-CPU queues with work stealing.
- :mod:`repro.oskernel.syncproblems` — producer–consumer, dining
  philosophers (deadlocking and deadlock-free variants), and
  readers–writers, built on :mod:`repro.smp` primitives.
"""

from repro.oskernel.process import Process, ProcessState, Workloads
from repro.oskernel.scheduler import (
    FCFS,
    MLFQ,
    Metrics,
    PriorityScheduler,
    RoundRobin,
    Scheduler,
    SJF,
    SRTF,
    simulate,
)
from repro.oskernel.iosim import IoProcess, multiprogramming_curve, simulate_io
from repro.oskernel.smp import SmpPolicy, SmpResult, simulate_smp

__all__ = [
    "FCFS",
    "IoProcess",
    "multiprogramming_curve",
    "simulate_io",
    "Metrics",
    "MLFQ",
    "PriorityScheduler",
    "Process",
    "ProcessState",
    "RoundRobin",
    "Scheduler",
    "simulate",
    "simulate_smp",
    "SJF",
    "SmpPolicy",
    "SmpResult",
    "SRTF",
    "Workloads",
]

"""Multiprocessor scheduling: global queue, partitioning, work stealing.

"Scheduling on single and multiprocessor systems" (paper §IV-B).  Tasks
are independent CPU bursts; three placement policies are simulated:

- ``GLOBAL``: one shared ready queue; any idle CPU takes the next task
  (perfect balance, maximal queue contention — contention is *modelled*
  as a per-dequeue overhead).
- ``PARTITIONED``: tasks statically round-robined to per-CPU queues
  (zero contention, imbalance when task sizes skew).
- ``WORK_STEALING``: partitioned start, but an idle CPU steals the
  largest remaining task from the most loaded queue.

The bench compares makespan and imbalance across policies on skewed
workloads — the classic argument for stealing.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["SmpPolicy", "SmpResult", "simulate_smp", "skewed_tasks"]


class SmpPolicy(enum.Enum):
    """Task-placement policy."""

    GLOBAL = "global"
    PARTITIONED = "partitioned"
    WORK_STEALING = "work-stealing"


@dataclasses.dataclass
class SmpResult:
    """Outcome of one multiprocessor run."""

    policy: SmpPolicy
    num_cpus: int
    makespan: float
    busy_time: List[float]
    steals: int
    dequeue_overhead: float

    @property
    def imbalance(self) -> float:
        """Max/mean busy time across CPUs (1.0 = perfectly balanced)."""
        busy = np.asarray(self.busy_time)
        mean = busy.mean()
        return float(busy.max() / mean) if mean > 0 else 1.0

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan each CPU spent busy."""
        if self.makespan == 0:
            return 1.0
        return float(np.mean(self.busy_time) / self.makespan)

    @property
    def speedup(self) -> float:
        """Speedup over running all tasks on one CPU."""
        total = float(np.sum(self.busy_time))
        return total / self.makespan if self.makespan else 1.0


def simulate_smp(
    tasks: Sequence[float],
    num_cpus: int,
    policy: SmpPolicy = SmpPolicy.GLOBAL,
    global_queue_overhead: float = 0.0,
    steal_overhead: float = 0.0,
) -> SmpResult:
    """Schedule independent ``tasks`` (durations) on ``num_cpus`` CPUs.

    ``global_queue_overhead`` is added per dequeue under the GLOBAL policy
    (lock contention model); ``steal_overhead`` per successful steal.
    """
    if num_cpus < 1:
        raise ValueError("num_cpus must be positive")
    durations = [float(t) for t in tasks]
    if any(d <= 0 for d in durations):
        raise ValueError("task durations must be positive")
    busy = [0.0] * num_cpus
    steals = 0
    overhead = 0.0

    if policy is SmpPolicy.GLOBAL:
        # Earliest-available CPU takes the next task (list scheduling).
        heap = [(0.0, cpu) for cpu in range(num_cpus)]
        heapq.heapify(heap)
        for d in durations:
            t, cpu = heapq.heappop(heap)
            cost = d + global_queue_overhead
            overhead += global_queue_overhead
            busy[cpu] += cost
            heapq.heappush(heap, (t + cost, cpu))
        makespan = max(t for t, _ in heap)
        return SmpResult(policy, num_cpus, makespan, busy, 0, overhead)

    # Partitioned start: round-robin assignment.
    queues: List[List[float]] = [[] for _ in range(num_cpus)]
    for i, d in enumerate(durations):
        queues[i % num_cpus].append(d)

    if policy is SmpPolicy.PARTITIONED:
        busy = [sum(q) for q in queues]
        return SmpResult(policy, num_cpus, max(busy) if busy else 0.0, busy, 0, 0.0)

    if policy is SmpPolicy.WORK_STEALING:
        clock = [0.0] * num_cpus
        # Event loop: repeatedly advance the least-loaded CPU.
        while True:
            cpu = min(range(num_cpus), key=lambda c: clock[c])
            if queues[cpu]:
                d = queues[cpu].pop(0)
                clock[cpu] += d
                busy[cpu] += d
                continue
            # Steal: take the largest task from the queue with most pending work.
            victims = [c for c in range(num_cpus) if queues[c]]
            if not victims:
                break
            victim = max(victims, key=lambda c: sum(queues[c]))
            stolen = max(queues[victim])
            queues[victim].remove(stolen)
            steals += 1
            clock[cpu] += steal_overhead
            overhead += steal_overhead
            clock[cpu] += stolen
            busy[cpu] += stolen
        makespan = max(clock)
        return SmpResult(policy, num_cpus, makespan, busy, steals, overhead)

    raise ValueError(f"unknown policy {policy!r}")


def skewed_tasks(n: int, seed: int = 0, skew: float = 2.0) -> List[float]:
    """A reproducible heavy-tailed task-size workload (Pareto-ish).

    Larger ``skew`` concentrates more total work in fewer tasks, which is
    what separates the three policies.
    """
    rng = np.random.default_rng(seed)
    sizes = rng.pareto(max(skew, 0.5), n) + 1.0
    return [float(s) for s in sizes]

"""The classic synchronization problems, on :mod:`repro.smp` primitives.

Every OS course in the paper's survey teaches these three; they exercise
(and are tested against) the semaphores, monitors, and deadlock machinery
of :mod:`repro.smp`:

- **Producer–consumer** via a semaphore triple (empty/full/mutex).
- **Dining philosophers** — a provably deadlock-prone acquisition order,
  analysed *statically* with :class:`repro.smp.deadlock.LockGraph` (no
  flaky "hope the threads interleave badly" tests), plus the resource-
  ordering fix, executed live and verified to complete.
- **Readers–writers** on :class:`repro.smp.locks.ReaderWriterLock`,
  demonstrating reader concurrency and writer-starvation freedom.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Tuple

from repro.smp.deadlock import LockGraph
from repro.smp.locks import CountingSemaphore, InstrumentedLock, ReaderWriterLock

__all__ = [
    "ProducerConsumer",
    "DiningPhilosophers",
    "ReadersWriters",
]


class ProducerConsumer:
    """Bounded-buffer producer–consumer with the semaphore-triple recipe.

    ``empty`` counts free slots, ``full`` counts occupied slots, ``mutex``
    guards the buffer — the exact structure of the Dijkstra solution.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.buffer: List[int] = []
        self.empty = CountingSemaphore(capacity)
        self.full = CountingSemaphore(0)
        self.mutex = CountingSemaphore(1)
        self.produced: List[int] = []
        self.consumed: List[int] = []

    def produce(self, item: int) -> None:
        """Deposit one item (blocks while the buffer is full)."""
        self.empty.P()
        with self.mutex:
            self.buffer.append(item)
            self.produced.append(item)
        self.full.V()

    def consume(self) -> int:
        """Remove one item (blocks while the buffer is empty)."""
        self.full.P()
        with self.mutex:
            item = self.buffer.pop(0)
            self.consumed.append(item)
        self.empty.V()
        return item

    def run(self, producers: int, consumers: int, items_each: int) -> List[int]:
        """Run a full session; returns all consumed items.

        ``producers * items_each`` must be divisible by ``consumers``.
        """
        total = producers * items_each
        if total % consumers:
            raise ValueError("total items must divide evenly among consumers")
        per_consumer = total // consumers

        def producer(base: int) -> None:
            for i in range(items_each):
                self.produce(base * items_each + i)

        def consumer() -> None:
            for _ in range(per_consumer):
                self.consume()

        threads = [
            threading.Thread(target=producer, args=(p,), daemon=True)
            for p in range(producers)
        ] + [threading.Thread(target=consumer, daemon=True) for _ in range(consumers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            if t.is_alive():
                raise TimeoutError("producer-consumer session hung")
        return list(self.consumed)


@dataclasses.dataclass
class PhilosopherReport:
    """Outcome of one dining-philosophers analysis or run."""

    deadlock_possible: bool
    cycles: List[List[object]]
    meals: Dict[int, int]


class DiningPhilosophers:
    """Dijkstra's dining philosophers.

    :meth:`analyze_naive` records the naive left-then-right acquisition
    order into a :class:`LockGraph` and reports the cycle that makes
    deadlock *possible* — deterministic, unlike provoking a live deadlock.
    :meth:`run_ordered` executes the resource-ordering solution (lowest
    fork first) with real threads and verifies everyone eats.
    """

    def __init__(self, n: int = 5) -> None:
        if n < 2:
            raise ValueError("need at least two philosophers")
        self.n = n
        self.forks = [InstrumentedLock(f"fork{i}") for i in range(n)]

    def _fork_pair(self, philosopher: int, ordered: bool) -> Tuple[int, int]:
        left = philosopher
        right = (philosopher + 1) % self.n
        if ordered and left > right:
            left, right = right, left
        return left, right

    def analyze_naive(self) -> PhilosopherReport:
        """Static lock-order analysis of the naive protocol.

        Every philosopher takes the left fork then the right; the lock
        graph contains the cycle 0→1→…→n-1→0, so deadlock is possible.
        """
        graph = LockGraph()
        for p in range(self.n):
            first, second = self._fork_pair(p, ordered=False)
            graph.on_acquire(f"fork{first}")
            graph.on_acquire(f"fork{second}")
            graph.on_release(f"fork{second}")
            graph.on_release(f"fork{first}")
        cycles = graph.order_violations()
        return PhilosopherReport(
            deadlock_possible=bool(cycles), cycles=cycles, meals={}
        )

    def analyze_ordered(self) -> PhilosopherReport:
        """Static analysis of the resource-ordering fix: no cycles."""
        graph = LockGraph()
        for p in range(self.n):
            first, second = self._fork_pair(p, ordered=True)
            graph.on_acquire(f"fork{first}")
            graph.on_acquire(f"fork{second}")
            graph.on_release(f"fork{second}")
            graph.on_release(f"fork{first}")
        cycles = graph.order_violations()
        return PhilosopherReport(
            deadlock_possible=bool(cycles), cycles=cycles, meals={}
        )

    def run_ordered(self, meals_each: int = 10) -> PhilosopherReport:
        """Execute the ordered protocol live; all philosophers finish."""
        meals: Dict[int, int] = {p: 0 for p in range(self.n)}
        meals_lock = threading.Lock()

        def dine(p: int) -> None:
            first, second = self._fork_pair(p, ordered=True)
            for _ in range(meals_each):
                with self.forks[first]:
                    with self.forks[second]:
                        with meals_lock:
                            meals[p] += 1

        threads = [
            threading.Thread(target=dine, args=(p,), daemon=True)
            for p in range(self.n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            if t.is_alive():
                raise TimeoutError("ordered philosophers hung (should not happen)")
        return PhilosopherReport(deadlock_possible=False, cycles=[], meals=meals)


class ReadersWriters:
    """Readers–writers over the writer-preference lock.

    :meth:`run` interleaves reader and writer threads over a shared
    counter; the returned report carries the maximum observed reader
    concurrency (must be able to exceed 1) and the final value (must equal
    the writer count — writers are mutually exclusive).
    """

    def __init__(self) -> None:
        self.lock = ReaderWriterLock()
        self.value = 0
        self.read_values: List[int] = []
        self._log_lock = threading.Lock()

    def run(
        self, readers: int = 8, writers: int = 4, writes_each: int = 25
    ) -> Dict[str, int]:
        """Run the session; returns summary statistics."""
        barrier = threading.Barrier(readers + writers)

        def reader() -> None:
            barrier.wait()
            for _ in range(writes_each):
                with self.lock.read_locked():
                    snapshot = self.value
                with self._log_lock:
                    self.read_values.append(snapshot)

        def writer() -> None:
            barrier.wait()
            for _ in range(writes_each):
                with self.lock.write_locked():
                    current = self.value
                    # write_locked() holds the custom ReaderWriterLock, which
                    # lockset analysis cannot model; exclusivity is asserted
                    # by the session's final-value check.
                    self.value = current + 1  # pdc-lint: disable=PDC101 -- see above

        threads = [threading.Thread(target=reader, daemon=True) for _ in range(readers)]
        threads += [threading.Thread(target=writer, daemon=True) for _ in range(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            if t.is_alive():
                raise TimeoutError("readers-writers session hung")
        return {
            "final_value": self.value,
            "expected_value": writers * writes_each,
            "max_concurrent_readers": self.lock.max_concurrent_readers,
            "reads": len(self.read_values),
        }

    def demonstrate_reader_concurrency(self, readers: int = 4) -> int:
        """Deterministically overlap ``readers`` inside the read lock.

        Each reader enters the shared critical section and waits at a
        barrier *while holding the read lock*, so all of them are provably
        inside at once.  Returns the observed maximum concurrency
        (== ``readers``) — the property a mutex could never exhibit.
        """
        gate = threading.Barrier(readers)

        def reader() -> None:
            with self.lock.read_locked():
                gate.wait(timeout=30)

        threads = [
            threading.Thread(target=reader, daemon=True) for _ in range(readers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            if t.is_alive():
                raise TimeoutError("reader concurrency demo hung")
        return self.lock.max_concurrent_readers

"""Single-CPU scheduling algorithms over a discrete-time simulator.

Each scheduler is a policy object answering one question — *given the
ready set at time t, who runs next, and for how long may they run
unpreempted?* — and :func:`simulate` drives the clock.  This separation
keeps each algorithm a few lines and makes the simulator's accounting
(waiting, turnaround, response, Gantt chart) uniform across policies, so
benches compare policies on identical ground.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.oskernel.process import Process, ProcessState
from repro.runtime import RunContext

__all__ = [
    "Scheduler",
    "FCFS",
    "SJF",
    "SRTF",
    "RoundRobin",
    "PriorityScheduler",
    "MLFQ",
    "Metrics",
    "simulate",
]


class Scheduler:
    """Base policy.  Subclasses override :meth:`pick` (and optionally
    :meth:`quantum_for` / :meth:`on_preempt` for time-sliced policies)."""

    #: Preemptive policies re-evaluate on every arrival/tick.
    preemptive = False
    name = "base"

    def pick(self, ready: List[Process], now: int) -> Process:
        """Choose the next process to run from a non-empty ready list."""
        raise NotImplementedError

    def quantum_for(self, process: Process) -> Optional[int]:
        """Max ticks the pick may run before forced re-scheduling (None = ∞)."""
        return None

    def on_preempt(self, process: Process) -> None:
        """Hook invoked when a quantum expires (MLFQ demotion lives here)."""

    def on_wait_tick(self, ready: List[Process], now: int) -> None:
        """Hook invoked each tick for the waiting set (aging lives here)."""


class FCFS(Scheduler):
    """First-come, first-served (non-preemptive): by arrival, then pid."""

    name = "FCFS"

    def pick(self, ready: List[Process], now: int) -> Process:
        return min(ready, key=lambda p: (p.arrival, p.pid))


class SJF(Scheduler):
    """Shortest job first (non-preemptive): by total burst."""

    name = "SJF"

    def pick(self, ready: List[Process], now: int) -> Process:
        return min(ready, key=lambda p: (p.burst, p.arrival, p.pid))


class SRTF(Scheduler):
    """Shortest remaining time first (preemptive SJF)."""

    name = "SRTF"
    preemptive = True

    def pick(self, ready: List[Process], now: int) -> Process:
        return min(ready, key=lambda p: (p.remaining, p.arrival, p.pid))


class RoundRobin(Scheduler):
    """Round-robin with a fixed quantum; FIFO order among ready processes."""

    name = "RR"

    def __init__(self, quantum: int = 4) -> None:
        if quantum < 1:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._fifo: List[int] = []  # pids in queue order

    def pick(self, ready: List[Process], now: int) -> Process:
        by_pid = {p.pid: p for p in ready}
        # Keep FIFO order; append newly arrived pids in (arrival, pid) order.
        self._fifo = [pid for pid in self._fifo if pid in by_pid]
        known = set(self._fifo)
        for p in sorted(ready, key=lambda p: (p.arrival, p.pid)):
            if p.pid not in known:
                self._fifo.append(p.pid)
        return by_pid[self._fifo[0]]

    def quantum_for(self, process: Process) -> Optional[int]:
        return self.quantum

    def on_preempt(self, process: Process) -> None:
        # Rotate the preempted process to the back of the queue.
        if self._fifo and self._fifo[0] == process.pid:
            self._fifo.append(self._fifo.pop(0))


class PriorityScheduler(Scheduler):
    """Preemptive priority (lower number wins), with optional aging.

    With ``aging_every`` set, a waiting process's *effective* priority
    improves by one level per ``aging_every`` ticks waited — the standard
    starvation fix, ablated by the scheduler benches.
    """

    name = "PRIO"
    preemptive = True

    def __init__(self, aging_every: Optional[int] = None) -> None:
        self.aging_every = aging_every
        self._waited: Dict[int, int] = {}

    def _effective(self, p: Process) -> float:
        if not self.aging_every:
            return p.priority
        return p.priority - self._waited.get(p.pid, 0) / self.aging_every

    def pick(self, ready: List[Process], now: int) -> Process:
        return min(ready, key=lambda p: (self._effective(p), p.arrival, p.pid))

    def on_wait_tick(self, ready: List[Process], now: int) -> None:
        for p in ready:
            self._waited[p.pid] = self._waited.get(p.pid, 0) + 1


class MLFQ(Scheduler):
    """Multi-level feedback queue: RR levels with growing quanta.

    New processes enter the top level; a process that exhausts its quantum
    is demoted one level.  Lower levels run only when higher ones are
    empty.  (No periodic boost — its absence is visible in the starvation
    bench, which is the point.)
    """

    name = "MLFQ"

    def __init__(self, quanta: Sequence[int] = (2, 4, 8)) -> None:
        if not quanta or any(q < 1 for q in quanta):
            raise ValueError("quanta must be positive")
        self.quanta = tuple(quanta)
        self._level: Dict[int, int] = {}

    def _level_of(self, p: Process) -> int:
        return self._level.get(p.pid, 0)

    def pick(self, ready: List[Process], now: int) -> Process:
        return min(ready, key=lambda p: (self._level_of(p), p.arrival, p.pid))

    def quantum_for(self, process: Process) -> Optional[int]:
        return self.quanta[min(self._level_of(process), len(self.quanta) - 1)]

    def on_preempt(self, process: Process) -> None:
        self._level[process.pid] = min(
            self._level_of(process) + 1, len(self.quanta) - 1
        )


@dataclasses.dataclass
class Metrics:
    """Aggregate outcome of one scheduling run."""

    processes: List[Process]
    gantt: List[Tuple[int, int, int]]  # (pid, start, end) slices
    context_switches: int

    def _stat(self, attr: str) -> np.ndarray:
        return np.array([getattr(p, attr) for p in self.processes], dtype=float)

    @property
    def avg_waiting(self) -> float:
        """Mean waiting time."""
        return float(self._stat("waiting").mean())

    @property
    def avg_turnaround(self) -> float:
        """Mean turnaround time."""
        return float(self._stat("turnaround").mean())

    @property
    def avg_response(self) -> float:
        """Mean response time."""
        return float(self._stat("response").mean())

    @property
    def max_waiting(self) -> int:
        """Worst-case waiting time — the starvation indicator."""
        return int(self._stat("waiting").max())

    @property
    def makespan(self) -> int:
        """Completion time of the last process."""
        return max(p.completion_time for p in self.processes)  # type: ignore[type-var]


def _publish(
    metrics: Metrics, scheduler: Scheduler, context: RunContext
) -> None:
    """Mirror one run's outcome into the run-wide registry and trace.

    Gantt slices become spans on a per-policy logical thread whose time
    base is the simulated tick (1 tick = 1 µs in the trace), so the
    schedule renders as a lane in ``chrome://tracing`` next to the other
    subsystems' events.
    """
    registry = context.registry
    registry.counter("sched.runs").inc()
    registry.counter("sched.context_switches").inc(metrics.context_switches)
    for p in metrics.processes:
        registry.histogram("sched.turnaround").observe(float(p.turnaround))
        registry.histogram("sched.waiting").observe(float(p.waiting))
        registry.histogram("sched.response").observe(float(p.response))
    registry.gauge(f"sched.{scheduler.name}.avg_waiting").set(
        metrics.avg_waiting
    )
    registry.gauge(f"sched.{scheduler.name}.avg_turnaround").set(
        metrics.avg_turnaround
    )
    tid = f"sched.{scheduler.name}"
    for pid, start, end in metrics.gantt:
        context.tracer.begin(
            f"pid-{pid}", cat="sched", tid=tid, args={"pid": pid},
            ts_us=start,
        )
        context.tracer.end(f"pid-{pid}", cat="sched", tid=tid, ts_us=end)


def simulate(
    processes: Sequence[Process],
    scheduler: Scheduler,
    context: Optional[RunContext] = None,
) -> Metrics:
    """Run ``processes`` (copied; inputs are untouched) under ``scheduler``.

    With a ``context``, the run's aggregates land in the shared registry
    (``sched.*`` counters/histograms/gauges) and every dispatch decision
    — each Gantt slice — is emitted to the shared trace.
    """
    procs = [p.reset() for p in processes]
    if not procs:
        raise ValueError("need at least one process")
    pending = sorted(procs, key=lambda p: (p.arrival, p.pid))
    ready: List[Process] = []
    gantt: List[Tuple[int, int, int]] = []
    now = 0
    switches = 0
    current: Optional[Process] = None
    slice_start = 0
    quantum_left: Optional[int] = None

    def admit(t: int) -> None:
        while pending and pending[0].arrival <= t:
            p = pending.pop(0)
            p.state = ProcessState.READY
            ready.append(p)

    def close_slice(t: int) -> None:
        nonlocal current
        if current is not None and t > slice_start:
            gantt.append((current.pid, slice_start, t))

    while pending or ready or current is not None:
        admit(now)
        if current is None and not ready:
            # Idle until the next arrival.
            now = pending[0].arrival
            admit(now)

        reschedule = current is None
        if current is not None:
            if quantum_left == 0:
                close_slice(now)
                scheduler.on_preempt(current)
                current.state = ProcessState.READY
                ready.append(current)
                current = None
                reschedule = True
            elif scheduler.preemptive and ready:
                best = scheduler.pick(ready + [current], now)
                if best is not current:
                    close_slice(now)
                    current.state = ProcessState.READY
                    ready.append(current)
                    current = None
                    reschedule = True

        if reschedule and ready:
            chosen = scheduler.pick(ready, now)
            ready.remove(chosen)
            if gantt or current is not None:
                switches += 1
            chosen.state = ProcessState.RUNNING
            if chosen.start_time is None:
                chosen.start_time = now
            current = chosen
            slice_start = now
            quantum_left = scheduler.quantum_for(chosen)

        # One tick of execution.
        assert current is not None
        scheduler.on_wait_tick(ready, now)
        current.remaining -= 1
        now += 1
        if quantum_left is not None:
            quantum_left -= 1
        if current.remaining == 0:
            close_slice(now)
            current.state = ProcessState.TERMINATED
            current.completion_time = now
            current = None
            quantum_left = None

    metrics = Metrics(processes=procs, gantt=gantt, context_switches=switches)
    if context is not None:
        _publish(metrics, scheduler, context)
    return metrics


def compare(
    processes: Sequence[Process], schedulers: Sequence[Scheduler]
) -> Dict[str, Metrics]:
    """Run one workload under several policies; keyed by scheduler name."""
    return {s.name: simulate(processes, s) for s in schedulers}

"""Peer-to-peer overlays: flooding lookup and a consistent-hash ring.

RIT's course description names "peer-to-peer systems" among its topics.
Two canonical designs, as graph simulations (the overlay logic is the
lesson; the message transport below it is :mod:`repro.net.simnet`'s job in
the integrated labs):

- **Unstructured overlay** (:class:`FloodingNetwork`): peers hold local
  items; lookups flood with a TTL; the hop/message counts show why
  flooding does not scale.
- **Structured overlay** (:class:`ConsistentHashRing`): a DHT-style ring
  with virtual nodes; lookups are O(1) given the ring, and the
  rebalancing statistics on node join/leave show the design's point —
  only ~1/n of keys move.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = ["FloodingNetwork", "LookupResult", "ConsistentHashRing"]


@dataclasses.dataclass
class LookupResult:
    """Outcome of one flooding lookup."""

    found_at: Optional[str]
    messages: int
    hops: int
    visited: Set[str]


class FloodingNetwork:
    """An unstructured P2P overlay with TTL-bounded flooding search."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._items: Dict[str, Set[str]] = {}

    def add_peer(self, name: str, neighbors: Sequence[str] = ()) -> None:
        """Join a peer, optionally wiring it to existing neighbors."""
        self.graph.add_node(name)
        self._items.setdefault(name, set())
        for n in neighbors:
            if n not in self.graph:
                raise KeyError(f"unknown neighbor {n}")
            self.graph.add_edge(name, n)

    def store(self, peer: str, item: str) -> None:
        """Place ``item`` on ``peer`` (unstructured: data stays local)."""
        self._items[peer].add(item)

    def lookup(self, origin: str, item: str, ttl: int = 4) -> LookupResult:
        """Breadth-first flood from ``origin`` with the given TTL.

        Message count = every edge traversal attempted (queries are sent
        to all neighbors except the one the query arrived from), the
        metric that explodes as the overlay grows.
        """
        if origin not in self.graph:
            raise KeyError(f"unknown peer {origin}")
        visited: Set[str] = {origin}
        frontier: List[Tuple[str, Optional[str]]] = [(origin, None)]
        messages = 0
        if item in self._items[origin]:
            return LookupResult(origin, 0, 0, visited)
        for hop in range(1, ttl + 1):
            next_frontier: List[Tuple[str, Optional[str]]] = []
            for peer, came_from in frontier:
                for neighbor in sorted(self.graph.neighbors(peer)):
                    if neighbor == came_from:
                        continue
                    messages += 1  # the query is sent even to visited peers
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    if item in self._items[neighbor]:
                        return LookupResult(neighbor, messages, hop, visited)
                    next_frontier.append((neighbor, peer))
            frontier = next_frontier
            if not frontier:
                break
        return LookupResult(None, messages, ttl, visited)


class ConsistentHashRing:
    """Consistent hashing with virtual nodes (the DHT placement function).

    Keys and nodes hash onto a ring; a key lives on the first node
    clockwise from its hash.  ``virtual_nodes`` spreads each physical node
    across the ring, smoothing the load distribution (exposed via
    :meth:`load_distribution`, which the tests bound).
    """

    def __init__(self, nodes: Sequence[str] = (), virtual_nodes: int = 16) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")
        self.virtual_nodes = virtual_nodes
        self._ring: List[Tuple[int, str]] = []
        self._nodes: Set[str] = set()
        for n in nodes:
            self.add_node(n)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode()).digest()[:8], "big"
        )

    def add_node(self, node: str) -> None:
        """Join a node (its ``virtual_nodes`` points enter the ring)."""
        if node in self._nodes:
            raise ValueError(f"node {node} already present")
        self._nodes.add(node)
        for v in range(self.virtual_nodes):
            self._ring.append((self._hash(f"{node}#{v}"), node))
        self._ring.sort()

    def remove_node(self, node: str) -> None:
        """Leave: the node's points vanish; successors absorb its keys."""
        if node not in self._nodes:
            raise KeyError(f"unknown node {node}")
        self._nodes.discard(node)
        self._ring = [(h, n) for h, n in self._ring if n != node]

    def node_for(self, key: str) -> str:
        """The node responsible for ``key``."""
        if not self._ring:
            raise RuntimeError("ring is empty")
        h = self._hash(key)
        # Binary search for the first ring point >= h (wrap to 0).
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < h:
                lo = mid + 1
            else:
                hi = mid
        return self._ring[lo % len(self._ring)][1]

    def placement(self, keys: Sequence[str]) -> Dict[str, str]:
        """Key → node for a batch of keys."""
        return {k: self.node_for(k) for k in keys}

    def load_distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Keys per node."""
        counts: Dict[str, int] = {n: 0 for n in self._nodes}
        for k in keys:
            counts[self.node_for(k)] += 1
        return counts

    @staticmethod
    def moved_keys(
        before: Dict[str, str], after: Dict[str, str]
    ) -> float:
        """Fraction of keys whose node changed between two placements."""
        if not before:
            return 0.0
        moved = sum(1 for k in before if after.get(k) != before[k])
        return moved / len(before)

"""Client–server programming: echo and key-value servers.

Table I maps "client-server programming" to systems-programming and
networking courses; the RIT course builds exactly these servers.  Both
servers spawn one handler thread per connection (the thread-per-client
model — the course's bridge between its threading and networking units).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.net.protocol import ProtocolError, Request, Response
from repro.net.simnet import Address, Network
from repro.net.sockets import Connection, ServerSocket

__all__ = ["EchoServer", "KeyValueServer", "KeyValueClient"]


class _ThreadedServer:
    """Shared accept-loop plumbing: accept, spawn handler, track threads."""

    def __init__(self, network: Network, address: Address) -> None:
        self.network = network
        self.address = address
        self._server = ServerSocket(network, address)
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self.connections_served = 0

    def start(self) -> "_ThreadedServer":
        """Begin accepting connections on a background thread."""
        self._running = True
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn = self._server.accept(timeout=0.2)
            except (TimeoutError, OSError):
                if not self._running:
                    return
                continue
            self.connections_served += 1
            t = threading.Thread(target=self._serve, args=(conn,), daemon=True)
            self._threads.append(t)
            t.start()

    def _serve(self, conn: Connection) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def stop(self) -> None:
        """Stop accepting and wait for in-flight handlers."""
        self._running = False
        self._server.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for t in self._threads:
            t.join(timeout=5)

    def __enter__(self) -> "_ThreadedServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class EchoServer(_ThreadedServer):
    """Echoes every message back until the client closes — the hello-world
    of network programming."""

    def _serve(self, conn: Connection) -> None:
        try:
            while True:
                msg = conn.recv()
                conn.send(msg)
        except EOFError:
            pass
        finally:
            conn.close()


class KeyValueServer(_ThreadedServer):
    """A concurrent key-value store speaking the Request/Response protocol.

    Verbs: ``GET key``, ``PUT key`` (body = value), ``DELETE key``,
    ``KEYS`` (ignored resource), ``INCR key`` (atomic read-modify-write —
    the store lock makes it safe under concurrent clients, which a test
    hammers).
    """

    def __init__(self, network: Network, address: Address) -> None:
        super().__init__(network, address)
        self._store: Dict[str, Any] = {}
        self._store_lock = threading.Lock()

    def _serve(self, conn: Connection) -> None:
        try:
            while True:
                wire = conn.recv()
                try:
                    request = Request.decode(wire)
                    response = self._dispatch(request)
                except ProtocolError as exc:
                    response = Response(400, str(exc))
                conn.send(response)
        except EOFError:
            pass
        finally:
            conn.close()

    def _dispatch(self, request: Request) -> Response:
        with self._store_lock:
            if request.verb == "GET":
                if request.resource in self._store:
                    return Response(200, self._store[request.resource])
                return Response(404, None)
            if request.verb == "PUT":
                self._store[request.resource] = request.body
                return Response(200, None)
            if request.verb == "DELETE":
                existed = self._store.pop(request.resource, None) is not None
                return Response(200 if existed else 404, None)
            if request.verb == "KEYS":
                return Response(200, sorted(self._store))
            if request.verb == "INCR":
                value = self._store.get(request.resource, 0)
                if not isinstance(value, int):
                    return Response(409, "not an integer")
                self._store[request.resource] = value + 1
                return Response(200, value + 1)
        return Response(405, f"unknown verb {request.verb}")


class KeyValueClient:
    """A typed client for :class:`KeyValueServer`."""

    def __init__(
        self, network: Network, server: Address, host: str = "client"
    ) -> None:
        self._conn = Connection.connect(network, server, local_host=host)

    def _call(self, request: Request) -> Response:
        self._conn.send(request.encode())
        reply = self._conn.recv()
        if not isinstance(reply, Response):
            raise ProtocolError(f"unexpected reply: {reply!r}")
        return reply

    def get(self, key: str) -> Optional[Any]:
        """Value at ``key``, or ``None`` if absent."""
        response = self._call(Request("GET", key))
        return response.body if response.ok else None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` at ``key``."""
        self._call(Request("PUT", key, value))

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""
        return self._call(Request("DELETE", key)).ok

    def keys(self) -> List[str]:
        """All keys, sorted."""
        return list(self._call(Request("KEYS", "*")).body or [])

    def incr(self, key: str) -> int:
        """Atomically increment the integer at ``key``; returns the new value."""
        response = self._call(Request("INCR", key))
        if not response.ok:
            raise ValueError(response.body)
        return int(response.body)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "KeyValueClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

"""The simulated network fabric.

A :class:`Network` is a set of named hosts.  Ports on hosts can be bound
to listeners (connection-oriented) or to datagram endpoints.  Delivery is
in-order and reliable for connections; datagram delivery can be configured
with a deterministic (seeded) drop rate, so "UDP is unreliable" labs are
reproducible.

The fabric counts every message and byte it carries, giving labs a
traffic meter (``network.stats``).
"""

from __future__ import annotations

import dataclasses
import pickle
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.smp.squeue import SynchronizedQueue

__all__ = ["Address", "NetworkStats", "Network"]


@dataclasses.dataclass(frozen=True, order=True)
class Address:
    """A (host, port) endpoint."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclasses.dataclass
class NetworkStats:
    """Fabric-wide traffic counters."""

    messages: int = 0
    bytes: int = 0
    dropped: int = 0

    def record(self, payload: Any) -> None:
        """Account one delivered message (pickle size approximates bytes)."""
        self.messages += 1
        try:
            self.bytes += len(pickle.dumps(payload))
        except Exception:  # unpicklable payloads still count as messages
            pass


class Network:
    """The shared fabric connecting simulated hosts.

    ``drop_rate`` applies to datagrams only (connections are reliable, as
    TCP is to applications).  The drop decision stream is seeded, so a
    test that loses the 3rd datagram always loses the 3rd datagram.
    """

    def __init__(self, drop_rate: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.drop_rate = drop_rate
        self._rng = np.random.default_rng(seed)
        self._listeners: Dict[Address, SynchronizedQueue] = {}
        self._datagram_boxes: Dict[Address, SynchronizedQueue] = {}
        self._lock = threading.Lock()
        self.stats = NetworkStats()

    # -- connection-oriented plumbing (used by sockets.ServerSocket) -------
    def bind_listener(self, address: Address) -> SynchronizedQueue:
        """Register a connection-accept queue at ``address``."""
        with self._lock:
            if address in self._listeners:
                raise OSError(f"address already in use: {address}")
            q: SynchronizedQueue = SynchronizedQueue()
            self._listeners[address] = q
            return q

    def unbind_listener(self, address: Address) -> None:
        """Release a listening address."""
        with self._lock:
            q = self._listeners.pop(address, None)
        if q is not None:
            q.close()

    def listener_at(self, address: Address) -> Optional[SynchronizedQueue]:
        """The accept queue at ``address``, if any."""
        with self._lock:
            return self._listeners.get(address)

    # -- datagram plumbing ---------------------------------------------------
    def bind_datagram(self, address: Address) -> SynchronizedQueue:
        """Register a datagram mailbox at ``address``."""
        with self._lock:
            if address in self._datagram_boxes:
                raise OSError(f"address already in use: {address}")
            q: SynchronizedQueue = SynchronizedQueue()
            self._datagram_boxes[address] = q
            return q

    def unbind_datagram(self, address: Address) -> None:
        """Release a datagram address."""
        with self._lock:
            q = self._datagram_boxes.pop(address, None)
        if q is not None:
            q.close()

    def send_datagram(self, source: Address, dest: Address, payload: Any) -> bool:
        """Fire-and-forget delivery; returns whether the datagram survived.

        Unknown destinations silently drop (as UDP does); configured loss
        applies before the address lookup, modelling in-flight loss.
        """
        if self.drop_rate > 0.0 and self._rng.random() < self.drop_rate:
            self.stats.dropped += 1
            return False
        with self._lock:
            box = self._datagram_boxes.get(dest)
        if box is None:
            self.stats.dropped += 1
            return False
        self.stats.record(payload)
        box.put((source, payload))
        return True

"""The simulated network fabric.

A :class:`Network` is a set of named hosts.  Ports on hosts can be bound
to listeners (connection-oriented) or to datagram endpoints.  Delivery is
in-order and reliable for connections; datagram delivery can be configured
with a deterministic (seeded) drop rate, so "UDP is unreliable" labs are
reproducible.

The fabric counts every message and byte it carries, giving labs a
traffic meter (``network.stats``).  Counters live in a
:class:`~repro.runtime.metrics.MetricRegistry` — private to this network
when constructed bare, shared run-wide when constructed with a
:class:`~repro.runtime.RunContext` (which also supplies the drop-decision
RNG stream and receives a trace event per delivery/drop).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.runtime import RunContext
from repro.runtime.metrics import RegistryStats, payload_size
from repro.smp.squeue import SynchronizedQueue

__all__ = ["Address", "NetworkStats", "Network"]


@dataclasses.dataclass(frozen=True, order=True)
class Address:
    """A (host, port) endpoint."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class NetworkStats(RegistryStats):
    """Fabric-wide traffic counters (``net.*`` in the registry)."""

    fields = ("messages", "bytes", "dropped", "unpicklable")
    default_prefix = "net"

    def record(self, payload: Any) -> None:
        """Account one delivered message.

        Pickle size approximates wire bytes; an unpicklable payload falls
        back to ``sys.getsizeof`` and bumps the ``unpicklable`` counter —
        visible degradation instead of the silent drop this used to be.
        """
        self._counters["messages"].inc()
        size = payload_size(
            payload, on_unpicklable=self._counters["unpicklable"].inc
        )
        self._counters["bytes"].inc(size)


class Network:
    """The shared fabric connecting simulated hosts.

    ``drop_rate`` applies to datagrams only (connections are reliable, as
    TCP is to applications).  The drop decision stream is seeded, so a
    test that loses the 3rd datagram always loses the 3rd datagram.  With
    a ``context``, the stream derives from the run's root seed (stream
    name ``net.drops``) and ``seed`` is ignored.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        seed: int = 0,
        context: Optional[RunContext] = None,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.drop_rate = drop_rate
        self.context = context
        if context is not None:
            self._rng = context.rng.stream("net.drops")
            self.stats = NetworkStats(registry=context.registry)
            self._tracer = context.tracer
        else:
            self._rng = np.random.default_rng(seed)
            self.stats = NetworkStats()
            self._tracer = None
        self._listeners: Dict[Address, SynchronizedQueue] = {}
        self._datagram_boxes: Dict[Address, SynchronizedQueue] = {}
        self._lock = threading.Lock()

    def _trace_instant(self, name: str, args: Dict[str, Any]) -> None:
        # No explicit tid: the event lands on the emitting thread's lane,
        # which is deterministic wherever substrate threads carry stable
        # names (rank-N, rpc-serve-N, MainThread).
        if self._tracer is not None:
            self._tracer.instant(name, cat="net", args=args)

    def record_delivery(self, payload: Any, kind: str = "stream") -> None:
        """Account one delivered payload and trace it (sockets call this)."""
        self.stats.record(payload)
        self._trace_instant("net.deliver", {"kind": kind})

    # -- connection-oriented plumbing (used by sockets.ServerSocket) -------
    def bind_listener(self, address: Address) -> SynchronizedQueue:
        """Register a connection-accept queue at ``address``."""
        with self._lock:
            if address in self._listeners:
                raise OSError(f"address already in use: {address}")
            q: SynchronizedQueue = SynchronizedQueue()
            self._listeners[address] = q
            return q

    def unbind_listener(self, address: Address) -> None:
        """Release a listening address."""
        with self._lock:
            q = self._listeners.pop(address, None)
        if q is not None:
            q.close()

    def listener_at(self, address: Address) -> Optional[SynchronizedQueue]:
        """The accept queue at ``address``, if any."""
        with self._lock:
            return self._listeners.get(address)

    # -- datagram plumbing ---------------------------------------------------
    def bind_datagram(self, address: Address) -> SynchronizedQueue:
        """Register a datagram mailbox at ``address``."""
        with self._lock:
            if address in self._datagram_boxes:
                raise OSError(f"address already in use: {address}")
            q: SynchronizedQueue = SynchronizedQueue()
            self._datagram_boxes[address] = q
            return q

    def unbind_datagram(self, address: Address) -> None:
        """Release a datagram address."""
        with self._lock:
            q = self._datagram_boxes.pop(address, None)
        if q is not None:
            q.close()

    def send_datagram(self, source: Address, dest: Address, payload: Any) -> bool:
        """Fire-and-forget delivery; returns whether the datagram survived.

        Unknown destinations silently drop (as UDP does); configured loss
        applies before the address lookup, modelling in-flight loss.
        """
        if self.drop_rate > 0.0 and self._rng.random() < self.drop_rate:
            self.stats.dropped += 1
            self._trace_instant(
                "net.drop", {"src": str(source), "dst": str(dest)}
            )
            return False
        with self._lock:
            box = self._datagram_boxes.get(dest)
        if box is None:
            self.stats.dropped += 1
            self._trace_instant(
                "net.drop", {"src": str(source), "dst": str(dest)}
            )
            return False
        self.stats.record(payload)
        self._trace_instant(
            "net.datagram", {"src": str(source), "dst": str(dest)}
        )
        box.put((source, payload))
        return True

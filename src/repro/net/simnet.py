"""The simulated network fabric.

A :class:`Network` is a set of named hosts.  Ports on hosts can be bound
to listeners (connection-oriented) or to datagram endpoints.  Delivery is
in-order and reliable for connections; datagram delivery can be configured
with a deterministic (seeded) drop rate, so "UDP is unreliable" labs are
reproducible.

The fabric counts every message and byte it carries, giving labs a
traffic meter (``network.stats``).  Counters live in a
:class:`~repro.runtime.metrics.MetricRegistry` — private to this network
when constructed bare, shared run-wide when constructed with a
:class:`~repro.runtime.RunContext` (which also supplies the drop-decision
RNG stream and receives a trace event per delivery/drop).
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

from repro.faults.errors import NodeCrashed, PartitionedError
from repro.runtime import RunContext
from repro.runtime.metrics import RegistryStats, payload_size
from repro.sanitizers import hooks
from repro.smp.squeue import SynchronizedQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = ["Address", "NetworkStats", "Network"]


@dataclasses.dataclass(frozen=True, order=True)
class Address:
    """A (host, port) endpoint."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class NetworkStats(RegistryStats):
    """Fabric-wide traffic counters (``net.*`` in the registry)."""

    fields = ("messages", "bytes", "dropped", "unpicklable")
    default_prefix = "net"

    def record(self, payload: Any) -> None:
        """Account one delivered message.

        Pickle size approximates wire bytes; an unpicklable payload falls
        back to ``sys.getsizeof`` and bumps the ``unpicklable`` counter —
        visible degradation instead of the silent drop this used to be.
        """
        self._counters["messages"].inc()
        size = payload_size(
            payload, on_unpicklable=self._counters["unpicklable"].inc
        )
        self._counters["bytes"].inc(size)


class Network:
    """The shared fabric connecting simulated hosts.

    ``drop_rate`` applies to datagrams only (connections are reliable, as
    TCP is to applications).  The drop decision stream is seeded, so a
    test that loses the 3rd datagram always loses the 3rd datagram.  With
    a ``context``, the stream derives from the run's root seed (stream
    name ``net.drops``) and ``seed`` is ignored.

    A :class:`~repro.faults.plan.FaultPlan` (``fault_plan=`` or
    :meth:`attach_fault_plan`) scripts richer failures on top: bursty
    correlated loss, added delay, reordering, partitions, and node
    crashes.  Datagrams are subject to *all* of them; connections — being
    the reliable transport — bypass the plan's ``MessageLoss``, ``Delay``
    and ``Reorder``, but **not** ``Partition`` or ``Crash``: a stream
    send across a cut link or to a dead host raises (TCP retransmits
    through loss, but no transport survives a severed path).
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        seed: int = 0,
        context: Optional[RunContext] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        drop_rate = float(drop_rate)
        if math.isnan(drop_rate) or not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be a number in [0, 1); NaN rejected")
        self.drop_rate = drop_rate
        self.context = context
        if context is not None:
            self._rng = context.rng.stream("net.drops")
            self.stats = NetworkStats(registry=context.registry)
            self._tracer = context.tracer
        else:
            self._rng = np.random.default_rng(seed)
            self.stats = NetworkStats()
            self._tracer = None
        self._listeners: Dict[Address, SynchronizedQueue] = {}
        self._datagram_boxes: Dict[Address, SynchronizedQueue] = {}
        #: Datagrams held back by an active ``Reorder`` spec, per dest.
        self._held: Dict[Address, Tuple[Address, Any]] = {}
        self._lock = threading.Lock()
        self.fault_plan: Optional["FaultPlan"] = None
        if fault_plan is not None:
            self.attach_fault_plan(fault_plan)

    def attach_fault_plan(self, plan: "FaultPlan") -> "FaultPlan":
        """Activate ``plan`` on this fabric (binding it to the network's
        run context, when there is one).  Returns the plan."""
        if self.context is not None:
            plan.bind(self.context)
        self.fault_plan = plan
        return plan

    def _trace_instant(self, name: str, args: Dict[str, Any]) -> None:
        # No explicit tid: the event lands on the emitting thread's lane,
        # which is deterministic wherever substrate threads carry stable
        # names (rank-N, rpc-serve-N, MainThread).
        if self._tracer is not None:
            self._tracer.instant(name, cat="net", args=args)

    def record_delivery(
        self,
        payload: Any,
        kind: str = "stream",
        source: Optional[Address] = None,
        dest: Optional[Address] = None,
    ) -> None:
        """Account one delivered payload and trace it (sockets call this).

        With endpoints given, an attached message-race sanitizer stamps
        the delivery with the sending host's vector clock.
        """
        self.stats.record(payload)
        self._trace_instant("net.deliver", {"kind": kind})
        if source is not None and dest is not None:
            hooks.on_message(source, dest, kind)

    def check_connected(self, source: Address, dest: Address) -> None:
        """Fault gate for the connection path (sockets call this per send).

        Connections bypass the plan's ``MessageLoss`` (reliable transport
        retransmits through loss) but not its hard failures: raises
        :class:`~repro.faults.errors.PartitionedError` across an active
        partition and :class:`~repro.faults.errors.NodeCrashed` when
        either endpoint's host is fail-stopped.  No plan, no cost.
        """
        plan = self.fault_plan
        if plan is None:
            return
        if plan.partitioned(source.host, dest.host):
            self._trace_instant(
                "net.partitioned", {"src": str(source), "dst": str(dest)}
            )
            raise PartitionedError(
                f"{source.host} and {dest.host} are partitioned"
            )
        for host in (dest.host, source.host):
            if plan.is_crashed(host):
                self._trace_instant(
                    "net.crashed", {"src": str(source), "dst": str(dest)}
                )
                raise NodeCrashed(f"host {host} is crashed")

    # -- connection-oriented plumbing (used by sockets.ServerSocket) -------
    def bind_listener(self, address: Address) -> SynchronizedQueue:
        """Register a connection-accept queue at ``address``."""
        with self._lock:
            if address in self._listeners:
                raise OSError(f"address already in use: {address}")
            q: SynchronizedQueue = SynchronizedQueue()
            self._listeners[address] = q
            return q

    def unbind_listener(self, address: Address) -> None:
        """Release a listening address."""
        with self._lock:
            q = self._listeners.pop(address, None)
        if q is not None:
            q.close()

    def listener_at(self, address: Address) -> Optional[SynchronizedQueue]:
        """The accept queue at ``address``, if any."""
        with self._lock:
            return self._listeners.get(address)

    # -- datagram plumbing ---------------------------------------------------
    def bind_datagram(self, address: Address) -> SynchronizedQueue:
        """Register a datagram mailbox at ``address``."""
        with self._lock:
            if address in self._datagram_boxes:
                raise OSError(f"address already in use: {address}")
            q: SynchronizedQueue = SynchronizedQueue()
            self._datagram_boxes[address] = q
            return q

    def unbind_datagram(self, address: Address) -> None:
        """Release a datagram address (held reordered datagrams are lost)."""
        with self._lock:
            q = self._datagram_boxes.pop(address, None)
            self._held.pop(address, None)
        if q is not None:
            q.close()

    def send_datagram(self, source: Address, dest: Address, payload: Any) -> bool:
        """Fire-and-forget delivery; returns whether the datagram survived.

        Unknown destinations silently drop (as UDP does); configured loss
        applies before the address lookup, modelling in-flight loss.  An
        attached fault plan is consulted first: partitions and scripted
        (possibly bursty) loss drop the datagram, ``Delay``/``SlowNode``
        charge transit time to the sender on the run's clock, and
        ``Reorder`` may hold the datagram back behind the next one to the
        same destination.
        """
        plan = self.fault_plan
        if plan is not None:
            reason = plan.drop_reason(source.host, dest.host)
            if reason is not None:
                self.stats.dropped += 1
                self._trace_instant(
                    "net.drop",
                    {"src": str(source), "dst": str(dest), "why": reason},
                )
                return False
            delay = plan.delay_for(source.host, dest.host)
            if delay > 0.0:
                self._trace_instant(
                    "net.delay",
                    {"src": str(source), "dst": str(dest), "s": delay},
                )
                plan.clock.sleep(delay)
        if self.drop_rate > 0.0 and self._rng.random() < self.drop_rate:
            self.stats.dropped += 1
            self._trace_instant(
                "net.drop", {"src": str(source), "dst": str(dest)}
            )
            return False
        with self._lock:
            box = self._datagram_boxes.get(dest)
        if box is None:
            self.stats.dropped += 1
            self._trace_instant(
                "net.drop", {"src": str(source), "dst": str(dest)}
            )
            return False
        if plan is not None and plan.should_reorder(source.host, dest.host):
            held_prev: Optional[Tuple[Address, Any]] = None
            with self._lock:
                # One hold slot per destination: a second hold releases
                # the first (still one adjacent swap, never starvation).
                held_prev = self._held.get(dest)
                self._held[dest] = (source, payload)
            self._trace_instant(
                "net.reorder.hold", {"src": str(source), "dst": str(dest)}
            )
            if held_prev is not None:
                self._deliver(box, held_prev[0], dest, held_prev[1])
            return True
        self._deliver(box, source, dest, payload)
        with self._lock:
            held = self._held.pop(dest, None)
        if held is not None:
            self._trace_instant(
                "net.reorder.release", {"dst": str(dest)}
            )
            self._deliver(box, held[0], dest, held[1])
        return True

    def _deliver(
        self,
        box: SynchronizedQueue,
        source: Address,
        dest: Address,
        payload: Any,
    ) -> None:
        self.stats.record(payload)
        self._trace_instant(
            "net.datagram", {"src": str(source), "dst": str(dest)}
        )
        hooks.on_message(source, dest, "datagram")
        box.put((source, payload))

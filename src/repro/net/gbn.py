"""Sliding-window ARQ: Go-Back-N and Selective Repeat.

The follow-on to the stop-and-wait lab (:mod:`repro.net.protocol`): a
window of ``N`` packets is in flight at once.  Two receiver disciplines:

- **Go-Back-N**: the receiver accepts only in-order packets and sends
  cumulative ACKs; a timeout resends the whole window — simple, but every
  loss wastes the window's worth of successors.
- **Selective Repeat**: the receiver buffers out-of-order packets and
  ACKs individually; only genuinely lost packets are resent.

Both run in deterministic lockstep (seeded per-transmission loss on data
and ACKs), so the classic curves are exactly reproducible: throughput
rises with window size, GBN's efficiency collapses under loss, and SR
holds it near ``1 - loss_rate``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

__all__ = [
    "GbnReport",
    "simulate_go_back_n",
    "simulate_selective_repeat",
    "window_sweep",
    "protocol_comparison",
]


@dataclasses.dataclass
class GbnReport:
    """Outcome of one Go-Back-N session."""

    num_packets: int
    window: int
    transmissions: int
    acks_sent: int
    timeouts: int
    rounds: int

    @property
    def efficiency(self) -> float:
        """Useful packets per data transmission (1.0 = loss-free)."""
        if self.transmissions == 0:
            return 0.0
        return self.num_packets / self.transmissions


def simulate_go_back_n(
    num_packets: int,
    window: int,
    loss_rate: float = 0.0,
    ack_loss_rate: float = 0.0,
    seed: int = 0,
    max_rounds: int = 100_000,
) -> GbnReport:
    """Run a Go-Back-N session in lockstep rounds.

    One round = the sender transmits every unsent packet in its window,
    the receiver processes arrivals in order and emits one cumulative ACK
    per data packet received, the sender processes surviving ACKs.  If a
    round delivers no new ACK progress, a timeout fires and the window is
    resent — the protocol's defining (and wasteful) recovery.
    """
    if num_packets < 0 or window < 1:
        raise ValueError("need num_packets >= 0 and window >= 1")
    if not (0.0 <= loss_rate < 1.0 and 0.0 <= ack_loss_rate < 1.0):
        raise ValueError("loss rates must be in [0, 1)")
    rng = np.random.default_rng(seed)

    base = 0  # oldest unacked sequence number
    next_seq = 0  # next never-yet-sent sequence number
    expected = 0  # receiver's next in-order sequence number
    transmissions = 0
    acks_sent = 0
    timeouts = 0
    rounds = 0

    while base < num_packets:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("GBN session did not terminate")

        # Sender: fill the window.
        to_send = list(range(next_seq, min(base + window, num_packets)))
        arrivals: List[int] = []
        for seq in to_send:
            transmissions += 1
            if rng.random() >= loss_rate:
                arrivals.append(seq)
        next_seq = max(next_seq, min(base + window, num_packets))

        # Receiver: accept in-order, cumulative-ACK each arrival.
        best_ack = -1
        for seq in arrivals:
            if seq == expected:
                expected += 1
            acks_sent += 1
            # Cumulative ACK carries expected-1; the ACK itself may drop.
            if rng.random() >= ack_loss_rate:
                best_ack = max(best_ack, expected - 1)

        # Sender: advance on the best surviving cumulative ACK.
        if best_ack >= base:
            base = best_ack + 1
        else:
            # No progress: timeout -> go back N (resend from base).
            timeouts += 1
            next_seq = base

    return GbnReport(
        num_packets=num_packets,
        window=window,
        transmissions=transmissions,
        acks_sent=acks_sent,
        timeouts=timeouts,
        rounds=rounds,
    )


def simulate_selective_repeat(
    num_packets: int,
    window: int,
    loss_rate: float = 0.0,
    ack_loss_rate: float = 0.0,
    seed: int = 0,
    max_rounds: int = 100_000,
) -> GbnReport:
    """Run a Selective Repeat session in lockstep rounds.

    Each round the sender transmits every unacked packet in its window
    that is not already known-received; the receiver buffers whatever
    arrives and ACKs each packet individually; surviving ACKs mark
    packets received, and the window slides past the longest acked
    prefix.  Timeouts are implicit — unacked packets simply go out again
    next round — so the ``timeouts`` field counts rounds that made no
    sliding progress.
    """
    if num_packets < 0 or window < 1:
        raise ValueError("need num_packets >= 0 and window >= 1")
    if not (0.0 <= loss_rate < 1.0 and 0.0 <= ack_loss_rate < 1.0):
        raise ValueError("loss rates must be in [0, 1)")
    rng = np.random.default_rng(seed)

    base = 0
    acked = [False] * num_packets
    received = [False] * num_packets
    transmissions = 0
    acks_sent = 0
    timeouts = 0
    rounds = 0

    while base < num_packets:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("SR session did not terminate")

        window_end = min(base + window, num_packets)
        arrivals: List[int] = []
        for seq in range(base, window_end):
            if acked[seq]:
                continue
            transmissions += 1
            if rng.random() >= loss_rate:
                arrivals.append(seq)

        progressed = False
        for seq in arrivals:
            received[seq] = True
            acks_sent += 1
            if rng.random() >= ack_loss_rate:
                if not acked[seq]:
                    acked[seq] = True
                    progressed = True

        if not progressed:
            timeouts += 1
        while base < num_packets and acked[base]:
            base += 1

    return GbnReport(
        num_packets=num_packets,
        window=window,
        transmissions=transmissions,
        acks_sent=acks_sent,
        timeouts=timeouts,
        rounds=rounds,
    )


def window_sweep(
    num_packets: int = 100,
    windows: List[int] = [1, 2, 4, 8, 16],
    loss_rate: float = 0.1,
    seed: int = 0,
) -> Dict[int, GbnReport]:
    """The lab's plot: rounds (≈ time) and transmissions vs window size."""
    return {
        w: simulate_go_back_n(num_packets, w, loss_rate=loss_rate, seed=seed)
        for w in windows
    }


def protocol_comparison(
    num_packets: int = 200,
    window: int = 8,
    loss_rates: List[float] = [0.0, 0.05, 0.1, 0.2, 0.3],
    seed: int = 0,
) -> Dict[float, Dict[str, GbnReport]]:
    """GBN vs SR efficiency as loss grows — the lecture's closing plot."""
    out: Dict[float, Dict[str, GbnReport]] = {}
    for loss in loss_rates:
        out[loss] = {
            "go-back-n": simulate_go_back_n(
                num_packets, window, loss_rate=loss, seed=seed
            ),
            "selective-repeat": simulate_selective_repeat(
                num_packets, window, loss_rate=loss, seed=seed
            ),
        }
    return out

"""Socket programming over the simulated fabric.

The RIT course's "socket and datagram programming" unit, shaped like the
BSD API students later meet in ``import socket``:

- server: ``server = ServerSocket(net, Address("srv", 80))`` then
  ``conn = server.accept()``;
- client: ``conn = Connection.connect(net, Address("srv", 80),
  local_host="cli")``;
- datagrams: ``DatagramSocket(net, Address("a", 9)).sendto(payload, dst)``.

Connections carry whole Python objects as messages (a message-oriented
stream — like a length-prefixed TCP protocol after framing), are
bidirectional, and deliver in order.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Optional, Tuple

from repro.net.simnet import Address, Network
from repro.smp.squeue import QueueClosed, SynchronizedQueue

__all__ = ["ConnectionRefused", "Connection", "ServerSocket", "DatagramSocket"]

_conn_ids = itertools.count(1)


class ConnectionRefused(ConnectionError):
    """No listener at the destination address."""


class Connection:
    """One endpoint of an established, bidirectional, reliable stream."""

    def __init__(
        self,
        network: Network,
        local: Address,
        peer: Address,
        send_q: SynchronizedQueue,
        recv_q: SynchronizedQueue,
        conn_id: int,
    ) -> None:
        self._network = network
        self.local = local
        self.peer = peer
        self._send_q = send_q
        self._recv_q = recv_q
        self.conn_id = conn_id

    @classmethod
    def connect(
        cls,
        network: Network,
        dest: Address,
        local_host: str = "client",
        local_port: Optional[int] = None,
        timeout: Optional[float] = 10.0,
    ) -> "Connection":
        """Open a connection to a listening address (the 3-way handshake,
        abstracted to one rendezvous through the listener's accept queue).

        An active fault plan gates the handshake like any stream traffic:
        connecting across a partition or to a crashed host raises (see
        :meth:`Network.check_connected`).
        """
        local = Address(local_host, 0)
        network.check_connected(local, dest)
        listener = network.listener_at(dest)
        if listener is None:
            raise ConnectionRefused(f"connection refused: {dest}")
        conn_id = next(_conn_ids)
        local = Address(local_host, local_port if local_port is not None else 50_000 + conn_id)
        a_to_b: SynchronizedQueue = SynchronizedQueue()
        b_to_a: SynchronizedQueue = SynchronizedQueue()
        client_end = cls(network, local, dest, a_to_b, b_to_a, conn_id)
        server_end = cls(network, dest, local, b_to_a, a_to_b, conn_id)
        listener.put(server_end, timeout=timeout)
        return client_end

    def send(self, obj: Any) -> None:
        """Send one message; raises ``BrokenPipeError`` after a close.

        Under an active fault plan, a send across a partition or to a
        crashed host raises before anything is delivered — connections
        bypass scripted ``MessageLoss`` (the transport retransmits), but
        not severed links or dead peers.
        """
        self._network.check_connected(self.local, self.peer)
        try:
            self._network.record_delivery(
                obj, kind="stream", source=self.local, dest=self.peer
            )
            self._send_q.put(obj)
        except QueueClosed as exc:
            raise BrokenPipeError(f"connection to {self.peer} closed") from exc

    def recv(self, timeout: Optional[float] = 10.0) -> Any:
        """Receive the next message; ``EOFError`` once the peer closed."""
        try:
            return self._recv_q.get(timeout=timeout)
        except QueueClosed as exc:
            raise EOFError(f"connection from {self.peer} closed") from exc

    def close(self) -> None:
        """Half-close: the peer drains buffered messages then sees EOF."""
        self._send_q.close()

    def abort(self) -> None:
        """Fail-stop both directions at once (a crash, not a goodbye):
        the peer's pending ``recv`` sees EOF after draining, and *our*
        pending ``recv`` fails too — used by crash injection."""
        self._send_q.close()
        self._recv_q.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ServerSocket:
    """A listening socket: bind at construction, then :meth:`accept` peers."""

    def __init__(self, network: Network, address: Address) -> None:
        self.network = network
        self.address = address
        self._accept_q = network.bind_listener(address)
        self._closed = False

    def accept(self, timeout: Optional[float] = 10.0) -> Connection:
        """Block for the next incoming connection."""
        try:
            return self._accept_q.get(timeout=timeout)
        except QueueClosed as exc:
            raise OSError("server socket closed") from exc

    def close(self) -> None:
        """Stop listening; pending connects see a closed queue."""
        if not self._closed:
            self._closed = True
            self.network.unbind_listener(self.address)

    def __enter__(self) -> "ServerSocket":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class DatagramSocket:
    """Connectionless messaging: ``sendto`` / ``recvfrom``.

    Reliability is whatever the fabric's drop rate leaves; there is no
    acknowledgement — labs build stop-and-wait on top of this (see
    :func:`repro.net.protocol.stop_and_wait_send`).
    """

    def __init__(self, network: Network, address: Address) -> None:
        self.network = network
        self.address = address
        self._box = network.bind_datagram(address)
        self._closed = False

    def sendto(self, payload: Any, dest: Address) -> bool:
        """Send one datagram; returns whether the fabric delivered it.

        (Real UDP cannot know — the return value exists for tests and for
        teaching the difference.)
        """
        return self.network.send_datagram(self.address, dest, payload)

    def recvfrom(self, timeout: Optional[float] = 10.0) -> Tuple[Address, Any]:
        """Block for the next datagram; returns ``(source, payload)``."""
        try:
            return self._box.get(timeout=timeout)
        except QueueClosed as exc:
            raise OSError("datagram socket closed") from exc

    def poll(self) -> Optional[Tuple[Address, Any]]:
        """Non-blocking receive; ``None`` when nothing is waiting."""
        return self._box.try_get()

    def close(self) -> None:
        """Release the address."""
        if not self._closed:
            self._closed = True
            self.network.unbind_datagram(self.address)

    def __enter__(self) -> "DatagramSocket":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

"""The network-security teaching unit: classical ciphers and key exchange.

RIT's course includes "principles of network security" at survey depth.
These are the standard classroom artifacts — Caesar/Vigenère ciphers with
a frequency-analysis breaker (to teach *why* they fail), finite-field
Diffie–Hellman over the simulated network (to teach key agreement), and a
hash-based message authenticator.  **None of this is real cryptography**;
it exists to be attacked in labs.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple

from repro.net.simnet import Address, Network
from repro.net.sockets import DatagramSocket

__all__ = [
    "caesar_encrypt",
    "caesar_decrypt",
    "caesar_break",
    "vigenere_encrypt",
    "vigenere_decrypt",
    "DiffieHellman",
    "dh_exchange_over_network",
    "mac_sign",
    "mac_verify",
]

_ALPHA = "abcdefghijklmnopqrstuvwxyz"
# English letter frequencies (percent), for the chi-squared breaker.
_ENGLISH_FREQ = {
    "a": 8.2, "b": 1.5, "c": 2.8, "d": 4.3, "e": 12.7, "f": 2.2, "g": 2.0,
    "h": 6.1, "i": 7.0, "j": 0.15, "k": 0.77, "l": 4.0, "m": 2.4, "n": 6.7,
    "o": 7.5, "p": 1.9, "q": 0.095, "r": 6.0, "s": 6.3, "t": 9.1, "u": 2.8,
    "v": 0.98, "w": 2.4, "x": 0.15, "y": 2.0, "z": 0.074,
}


def _shift_char(ch: str, k: int) -> str:
    if ch.islower():
        return _ALPHA[(_ALPHA.index(ch) + k) % 26]
    if ch.isupper():
        return _ALPHA[(_ALPHA.index(ch.lower()) + k) % 26].upper()
    return ch


def caesar_encrypt(plaintext: str, key: int) -> str:
    """Shift every letter forward by ``key`` (non-letters pass through)."""
    return "".join(_shift_char(c, key) for c in plaintext)


def caesar_decrypt(ciphertext: str, key: int) -> str:
    """Invert :func:`caesar_encrypt`."""
    return caesar_encrypt(ciphertext, -key)


def caesar_break(ciphertext: str) -> Tuple[int, str]:
    """Recover the key by chi-squared fit to English letter frequencies.

    Returns ``(key, plaintext)`` — the lab's punchline: 26 candidates is
    no keyspace at all.
    """
    best_key, best_score = 0, float("inf")
    for key in range(26):
        candidate = caesar_decrypt(ciphertext, key)
        letters = [c for c in candidate.lower() if c in _ALPHA]
        if not letters:
            continue
        counts: Dict[str, int] = {}
        for c in letters:
            counts[c] = counts.get(c, 0) + 1
        n = len(letters)
        score = sum(
            (counts.get(ch, 0) - n * freq / 100.0) ** 2 / (n * freq / 100.0)
            for ch, freq in _ENGLISH_FREQ.items()
        )
        if score < best_score:
            best_key, best_score = key, score
    return best_key, caesar_decrypt(ciphertext, best_key)


def vigenere_encrypt(plaintext: str, key: str) -> str:
    """Polyalphabetic shift; the key repeats over letter positions."""
    if not key or not key.isalpha():
        raise ValueError("key must be non-empty and alphabetic")
    shifts = [_ALPHA.index(c) for c in key.lower()]
    out: List[str] = []
    i = 0
    for ch in plaintext:
        if ch.isalpha():
            out.append(_shift_char(ch, shifts[i % len(shifts)]))
            i += 1
        else:
            out.append(ch)
    return "".join(out)


def vigenere_decrypt(ciphertext: str, key: str) -> str:
    """Invert :func:`vigenere_encrypt`."""
    inverse = "".join(_ALPHA[(26 - _ALPHA.index(c)) % 26] for c in key.lower())
    return vigenere_encrypt(ciphertext, inverse)


class DiffieHellman:
    """Finite-field Diffie–Hellman with a (teaching-sized) safe prime.

    Default parameters use a small prime so labs can brute-force the
    discrete log and *see* why real parameters are 2048+ bits.
    """

    #: A 61-bit safe-ish prime and a generator — fine for teaching only.
    DEFAULT_P = 2305843009213693951  # 2^61 - 1 (Mersenne)
    DEFAULT_G = 3

    def __init__(self, private: int, p: int = DEFAULT_P, g: int = DEFAULT_G) -> None:
        if private < 1:
            raise ValueError("private key must be positive")
        self.p = p
        self.g = g
        self._private = private

    @property
    def public(self) -> int:
        """``g^private mod p`` — safe to send in the clear."""
        return pow(self.g, self._private, self.p)

    def shared_secret(self, other_public: int) -> int:
        """``other_public^private mod p`` — equal on both sides."""
        return pow(other_public, self._private, self.p)


def dh_exchange_over_network(
    network: Network,
    alice_private: int,
    bob_private: int,
    alice_addr: Address = Address("alice", 5000),
    bob_addr: Address = Address("bob", 5000),
) -> Tuple[int, int]:
    """Run the DH exchange as two datagrams over the fabric.

    Returns both computed secrets (equal), demonstrating that only the
    public values crossed the wire.
    """
    alice = DiffieHellman(alice_private)
    bob = DiffieHellman(bob_private)
    with DatagramSocket(network, alice_addr) as a_sock, DatagramSocket(
        network, bob_addr
    ) as b_sock:
        a_sock.sendto(alice.public, bob_addr)
        b_sock.sendto(bob.public, alice_addr)
        _, bob_public = a_sock.recvfrom()
        _, alice_public = b_sock.recvfrom()
    return alice.shared_secret(bob_public), bob.shared_secret(alice_public)


def mac_sign(key: int, message: Any) -> str:
    """A hash-based message authenticator keyed by the shared secret."""
    data = f"{key}:{message!r}".encode()
    return hashlib.sha256(data).hexdigest()


def mac_verify(key: int, message: Any, tag: str) -> bool:
    """Check a :func:`mac_sign` tag (constant-time comparison skipped —
    and that omission is itself a discussion question in the lab)."""
    return mac_sign(key, message) == tag

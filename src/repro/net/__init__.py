"""Simulated networking: sockets, protocols, client–server, P2P, security.

RIT's *Concepts of Parallel and Distributed Systems* course (paper §IV-C)
interleaves "networked computers (client-server, connections, application
protocol design, socket and datagram programming); network protocols and
security".  This subpackage is that course's substrate, built over an
in-process simulated network so every lab runs deterministically on a
laptop:

- :mod:`repro.net.simnet` — the network fabric: named hosts, ports,
  reliable connections and (optionally lossy) datagrams.
- :mod:`repro.net.sockets` — the socket API: listen/accept/connect
  streams and sendto/recvfrom datagrams.
- :mod:`repro.net.protocol` — layered encapsulation (application /
  transport / network / link headers) and a request–response application
  protocol codec.
- :mod:`repro.net.clientserver` — echo and key-value servers with
  threaded request handling, plus client helpers.
- :mod:`repro.net.p2p` — unstructured flooding lookup and a
  consistent-hashing ring (DHT-style) overlay.
- :mod:`repro.net.security` — the toy ciphers and Diffie–Hellman exchange
  used to teach the security unit (teaching artifacts, *not* cryptography).
"""

from repro.net.clientserver import EchoServer, KeyValueClient, KeyValueServer
from repro.net.gbn import GbnReport, simulate_go_back_n
from repro.net.protocol import (
    Frame,
    LayeredStack,
    ProtocolError,
    Request,
    Response,
)
from repro.net.simnet import Address, Network
from repro.net.sockets import (
    Connection,
    ConnectionRefused,
    DatagramSocket,
    ServerSocket,
)

__all__ = [
    "Address",
    "Connection",
    "ConnectionRefused",
    "DatagramSocket",
    "EchoServer",
    "Frame",
    "GbnReport",
    "KeyValueClient",
    "simulate_go_back_n",
    "KeyValueServer",
    "LayeredStack",
    "Network",
    "ProtocolError",
    "Request",
    "Response",
    "ServerSocket",
]

"""Protocol layering and application protocol design.

Two teaching artifacts from the RIT course's networking unit:

1. **Layered encapsulation** — :class:`LayeredStack` pushes a payload down
   through application/transport/network/link layers, each wrapping it in
   a :class:`Frame` with its own header, and pops it back up on the
   receive side, verifying headers as it goes.  The printable nesting is
   the lecture diagram, executable.

2. **Application protocol design** — :class:`Request`/:class:`Response`
   with a tiny codec (verb, resource, body, status), the shape of every
   RPC/HTTP-ish protocol students design in projects, plus
   :func:`stop_and_wait_send`, the reliability-on-datagrams exercise.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.net.simnet import Address
from repro.net.sockets import DatagramSocket

__all__ = [
    "ProtocolError",
    "Frame",
    "LayeredStack",
    "Request",
    "Response",
    "stop_and_wait_send",
    "stop_and_wait_recv",
]


class ProtocolError(RuntimeError):
    """Malformed frame or protocol violation."""


@dataclasses.dataclass(frozen=True)
class Frame:
    """A payload wrapped with one layer's header."""

    layer: str
    header: Dict[str, Any]
    payload: Any

    def __str__(self) -> str:
        inner = str(self.payload) if isinstance(self.payload, Frame) else repr(self.payload)
        hdr = ",".join(f"{k}={v}" for k, v in sorted(self.header.items()))
        return f"[{self.layer} {hdr} | {inner}]"


class LayeredStack:
    """A protocol stack: encapsulate down the layers, decapsulate up.

    Default layers mirror the 4-layer Internet model.  Each layer stamps
    its header at send time; at receive time headers are stripped in
    reverse order and validated (wrong layer order raises
    :class:`ProtocolError` — the "you can't parse an IP header as
    Ethernet" lesson).
    """

    DEFAULT_LAYERS: Sequence[str] = ("application", "transport", "network", "link")

    def __init__(self, layers: Optional[Sequence[str]] = None) -> None:
        self.layers: Tuple[str, ...] = tuple(
            self.DEFAULT_LAYERS if layers is None else layers
        )
        if not self.layers:
            raise ValueError("need at least one layer")
        self._seq = 0

    def encapsulate(
        self, payload: Any, src: str = "A", dst: str = "B"
    ) -> Frame:
        """Wrap ``payload`` in one frame per layer, top-down."""
        self._seq += 1
        frame: Any = payload
        for depth, layer in enumerate(self.layers):
            header = {"src": src, "dst": dst, "seq": self._seq, "hop": depth}
            frame = Frame(layer=layer, header=header, payload=frame)
        return frame  # outermost == lowest layer

    def decapsulate(self, frame: Frame) -> Any:
        """Strip all layers bottom-up, validating order; returns the payload."""
        current: Any = frame
        for layer in reversed(self.layers):
            if not isinstance(current, Frame):
                raise ProtocolError(f"expected a {layer} frame, got payload early")
            if current.layer != layer:
                raise ProtocolError(
                    f"layer mismatch: expected {layer}, found {current.layer}"
                )
            current = current.payload
        return current

    def trace(self, frame: Frame) -> List[str]:
        """The header nesting as printable lines (outermost first)."""
        lines: List[str] = []
        current: Any = frame
        while isinstance(current, Frame):
            lines.append(f"{current.layer}: {current.header}")
            current = current.payload
        lines.append(f"payload: {current!r}")
        return lines


@dataclasses.dataclass(frozen=True)
class Request:
    """An application-protocol request: VERB resource, plus a body."""

    verb: str
    resource: str
    body: Any = None

    def encode(self) -> Tuple[str, str, Any]:
        """Wire form (kept structured; framing is the connection's job)."""
        return (self.verb.upper(), self.resource, self.body)

    @staticmethod
    def decode(wire: Tuple[str, str, Any]) -> "Request":
        """Parse the wire form; raises :class:`ProtocolError` when malformed."""
        if not isinstance(wire, tuple) or len(wire) != 3:
            raise ProtocolError(f"malformed request: {wire!r}")
        verb, resource, body = wire
        if not isinstance(verb, str) or not isinstance(resource, str):
            raise ProtocolError(f"malformed request fields: {wire!r}")
        return Request(verb.upper(), resource, body)


@dataclasses.dataclass(frozen=True)
class Response:
    """An application-protocol response: status code plus a body."""

    status: int
    body: Any = None

    @property
    def ok(self) -> bool:
        """2xx means success, as convention dictates."""
        return 200 <= self.status < 300


def stop_and_wait_send(
    sock: DatagramSocket,
    dest: Address,
    messages: Sequence[Any],
    max_retries: int = 50,
    ack_timeout: float = 0.05,
) -> int:
    """Reliable transfer over lossy datagrams: the stop-and-wait ARQ lab.

    Sends each message with a sequence number and retransmits until the
    matching ACK arrives.  Returns the total number of transmissions
    (``== len(messages)`` on a loss-free fabric; more under loss — the
    measurable cost of reliability).
    """
    transmissions = 0
    for seq, msg in enumerate(messages):
        for attempt in range(max_retries):
            sock.sendto(("DATA", seq, msg), dest)
            transmissions += 1
            try:
                _src, reply = sock.recvfrom(timeout=ack_timeout)
            except (TimeoutError, OSError):
                continue
            if reply == ("ACK", seq):
                break
        else:
            raise TimeoutError(f"message {seq} not acknowledged after {max_retries} tries")
    return transmissions


def stop_and_wait_recv(
    sock: DatagramSocket, expected: int, timeout: float = 5.0
) -> List[Any]:
    """Receiver side of the ARQ lab: ACK everything, deduplicate by seq.

    After the last message, the receiver lingers and keeps ACKing
    retransmissions until the line goes quiet — without this, a dropped
    final ACK strands the sender forever (the two-generals tail the lab
    asks students to explain).
    """
    received: Dict[int, Any] = {}
    while len(received) < expected:
        src, datagram = sock.recvfrom(timeout=timeout)
        if not (isinstance(datagram, tuple) and len(datagram) == 3 and datagram[0] == "DATA"):
            raise ProtocolError(f"unexpected datagram: {datagram!r}")
        _kind, seq, msg = datagram
        received[seq] = msg  # duplicates overwrite harmlessly
        sock.sendto(("ACK", seq), src)
    # Linger: re-ACK retransmissions until the sender falls silent.
    while True:
        try:
            src, datagram = sock.recvfrom(timeout=0.2)
        except (TimeoutError, OSError):
            break
        if isinstance(datagram, tuple) and len(datagram) == 3 and datagram[0] == "DATA":
            sock.sendto(("ACK", datagram[1]), src)
    return [received[i] for i in sorted(received)]

"""Fault plans: typed, scheduled, seeded failure specifications.

A :class:`FaultPlan` is the instructor's failure script for one lab run:
*which* faults (typed specs — :class:`MessageLoss`, :class:`Delay`,
:class:`Reorder`, :class:`Partition`, :class:`Crash`, :class:`SlowNode`),
*where* (host / rank name filters), and *when* (windows measured on the
run's :class:`~repro.runtime.clock.Clock`).  Every stochastic decision
draws from a named :class:`~repro.runtime.rng.RngService` stream
(``faults.loss``, ``faults.reorder``, …), so with a
:meth:`~repro.runtime.RunContext.deterministic` context the same seed
produces the same drops, the same reorderings, and therefore the same
:class:`~repro.runtime.tracing.Tracer` digest.

The plan is *consulted*, never in control: injection hooks in
:mod:`repro.net.simnet`, :mod:`repro.dist.middleware`, and
:mod:`repro.mp.runtime` ask it what fate a message or node deserves at
the current virtual time.  With no plan attached those hooks are a single
``is None`` test, so fault-free runs pay nothing.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional, Tuple

from repro.runtime import MetricRegistry, RngService, RunContext, VirtualClock
from repro.runtime.clock import Clock

__all__ = [
    "FaultSpec",
    "MessageLoss",
    "Delay",
    "Reorder",
    "Partition",
    "Crash",
    "SlowNode",
    "FaultPlan",
]


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """Base spec: a fault active in the clock window ``[start, stop)``.

    ``stop=None`` means "until the end of the run".  Subclasses add the
    fault's parameters; host filters (``src``/``dst``/``node``) restrict
    which endpoints the fault touches, ``None`` meaning "any".
    """

    start: float = 0.0
    stop: Optional[float] = None

    def active(self, now: float) -> bool:
        """Whether the spec's window covers ``now``."""
        return self.start <= now and (self.stop is None or now < self.stop)


@dataclasses.dataclass(frozen=True)
class MessageLoss(FaultSpec):
    """Bursty, correlated datagram loss.

    ``rate`` is the probability that a datagram *starts* a loss burst;
    once one does, the next ``burst - 1`` matching datagrams are lost
    too — the correlated-loss pattern (interference, congestion drops)
    that a flat per-message drop rate cannot model.  ``burst=1`` recovers
    independent loss.  Supersedes ``Network(drop_rate=...)``, which stays
    for the single-knob labs.
    """

    rate: float = 0.0
    burst: int = 1
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0 or self.rate != self.rate:
            raise ValueError("loss rate must be a number in [0, 1]")
        if self.burst < 1:
            raise ValueError("burst length must be >= 1")

    def matches(self, src: str, dst: str) -> bool:
        """Whether this spec applies to the ``src -> dst`` flow."""
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclasses.dataclass(frozen=True)
class Delay(FaultSpec):
    """Added transit latency: ``seconds`` plus uniform ``jitter``.

    The fabric charges the delay to the sender on the run's clock —
    under a :class:`~repro.runtime.clock.VirtualClock` that is a
    deterministic time step, not a real pause.
    """

    seconds: float = 0.0
    jitter: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.jitter < 0:
            raise ValueError("delay and jitter must be non-negative")

    def matches(self, src: str, dst: str) -> bool:
        """Whether this spec applies to the ``src -> dst`` flow."""
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclasses.dataclass(frozen=True)
class Reorder(FaultSpec):
    """Datagram reordering: with probability ``rate``, a datagram is held
    back and delivered just *after* the next one to the same destination
    (the adjacent swap that breaks naive sequence assumptions)."""

    rate: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0 or self.rate != self.rate:
            raise ValueError("reorder rate must be a number in [0, 1]")

    def matches(self, src: str, dst: str) -> bool:
        """Whether this spec applies to the ``src -> dst`` flow."""
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclasses.dataclass(frozen=True)
class Partition(FaultSpec):
    """A named network partition, healing at ``stop`` (if given).

    ``groups`` are disjoint sets of host names; two hosts in *different*
    groups cannot exchange messages while the partition is active.  Hosts
    named in no group are unaffected (reachable from everyone) — the
    partition cuts exactly the links it names.
    """

    groups: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        seen: set = set()
        for group in self.groups:
            for host in group:
                if host in seen:
                    raise ValueError(
                        f"host {host!r} appears in more than one group"
                    )
                seen.add(host)

    def separates(self, a: str, b: str) -> bool:
        """Whether ``a`` and ``b`` sit in different named groups."""
        side_a = side_b = None
        for i, group in enumerate(self.groups):
            if a in group:
                side_a = i
            if b in group:
                side_b = i
        return side_a is not None and side_b is not None and side_a != side_b


@dataclasses.dataclass(frozen=True)
class Crash(FaultSpec):
    """Fail-stop of a named node at virtual time ``start``.

    ``node`` is a host name (network / RPC faults) or ``"rank-N"`` (SPMD
    faults).  With ``restart_at`` set, the node comes back — processes
    restart from their initial state, which is the textbook crash-recovery
    model (no stable storage unless the algorithm provides it).
    """

    node: str = ""
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.node:
            raise ValueError("Crash needs a node name")
        if self.restart_at is not None and self.restart_at < self.start:
            raise ValueError("restart_at must not precede the crash")

    def crashed(self, now: float) -> bool:
        """Whether the node is down at ``now``."""
        if now < self.start:
            return False
        return self.restart_at is None or now < self.restart_at


@dataclasses.dataclass(frozen=True)
class SlowNode(FaultSpec):
    """A degraded node: every message to or from it pays ``penalty``
    extra seconds of transit — the straggler that breaks synchronous
    assumptions without breaking safety."""

    node: str = ""
    penalty: float = 0.0

    def __post_init__(self) -> None:
        if not self.node:
            raise ValueError("SlowNode needs a node name")
        if self.penalty < 0:
            raise ValueError("penalty must be non-negative")


class FaultPlan:
    """An ordered set of fault specs, bound to one run's services.

    Construction is declarative; :meth:`bind` attaches the plan to a
    :class:`~repro.runtime.RunContext` (clock for windows, named RNG
    streams for decisions, registry for ``faults.*`` counters).  Unbound
    plans self-bind lazily to a private
    :class:`~repro.runtime.clock.VirtualClock` at 0 and seed 0, so a
    bare plan is still deterministic — just not shared with a run.

    Injection hooks call the query methods (:meth:`drop_reason`,
    :meth:`delay_for`, :meth:`should_reorder`, :meth:`is_crashed`,
    :meth:`partitioned`); the plan answers for the *current* clock time.
    """

    def __init__(self, *specs: FaultSpec, context: Optional[RunContext] = None) -> None:
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"not a FaultSpec: {spec!r}")
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._losses = [s for s in specs if isinstance(s, MessageLoss)]
        self._delays = [s for s in specs if isinstance(s, Delay)]
        self._reorders = [s for s in specs if isinstance(s, Reorder)]
        self._partitions = [s for s in specs if isinstance(s, Partition)]
        self._crashes = [s for s in specs if isinstance(s, Crash)]
        self._slow = [s for s in specs if isinstance(s, SlowNode)]
        crashed_names = [c.node for c in self._crashes]
        if len(set(crashed_names)) != len(crashed_names):
            raise ValueError("at most one Crash spec per node")
        self._lock = threading.Lock()
        #: Remaining forced drops per MessageLoss spec (burst state).
        self._burst_left: Dict[int, int] = {}
        self._clock: Optional[Clock] = None
        self._rng: Optional[RngService] = None
        self._registry: Optional[MetricRegistry] = None
        self.context: Optional[RunContext] = None
        if context is not None:
            self.bind(context)

    # -- binding ---------------------------------------------------------------
    def bind(self, context: RunContext) -> "FaultPlan":
        """Attach the plan to a run; idempotent for the same context."""
        if self.context is not None and self.context is not context:
            raise ValueError("fault plan already bound to another run")
        self.context = context
        self._clock = context.clock
        self._rng = context.rng
        self._registry = context.registry
        return self

    def _ensure_bound(self) -> None:
        if self._clock is None:
            self._clock = VirtualClock()
            self._rng = RngService(0)
            self._registry = MetricRegistry()

    @property
    def clock(self) -> Clock:
        """The clock fault windows are measured on."""
        self._ensure_bound()
        assert self._clock is not None
        return self._clock

    def now(self) -> float:
        """Current time on the plan's clock."""
        return self.clock.now()

    def _stream(self, name: str):
        self._ensure_bound()
        assert self._rng is not None
        return self._rng.stream(name)

    def _count(self, name: str) -> None:
        self._ensure_bound()
        assert self._registry is not None
        self._registry.counter(name).inc()

    # -- message fates ---------------------------------------------------------
    def partitioned(self, a: str, b: str) -> bool:
        """Whether hosts ``a`` and ``b`` are separated right now."""
        now = self.now()
        return any(
            p.active(now) and p.separates(a, b) for p in self._partitions
        )

    def drop_reason(self, src: str, dst: str) -> Optional[str]:
        """Why a ``src -> dst`` datagram dies now, or ``None`` to deliver.

        Partition checks come first (a cut link loses everything), then
        each active :class:`MessageLoss` spec draws from the
        ``faults.loss`` stream — continuing a burst before drawing anew,
        which is what makes the loss *correlated*.
        """
        now = self.now()
        if self.partitioned(src, dst):
            self._count("faults.drops.partition")
            return "partition"
        if self.is_crashed(dst) or self.is_crashed(src):
            self._count("faults.drops.crash")
            return "crash"
        for i, spec in enumerate(self._losses):
            if not (spec.active(now) and spec.matches(src, dst)):
                continue
            with self._lock:
                left = self._burst_left.get(i, 0)
                if left > 0:
                    self._burst_left[i] = left - 1
                    self._count("faults.drops.loss")
                    return "loss"
            if spec.rate > 0.0 and self._stream("faults.loss").random() < spec.rate:
                with self._lock:
                    self._burst_left[i] = spec.burst - 1
                self._count("faults.drops.loss")
                return "loss"
        return None

    def delay_for(self, src: str, dst: str) -> float:
        """Extra transit seconds for a ``src -> dst`` message now."""
        now = self.now()
        total = 0.0
        for spec in self._delays:
            if spec.active(now) and spec.matches(src, dst):
                total += spec.seconds
                if spec.jitter > 0.0:
                    total += float(
                        self._stream("faults.delay").uniform(0.0, spec.jitter)
                    )
        for slow in self._slow:
            if slow.active(now) and slow.node in (src, dst):
                total += slow.penalty
        if total > 0.0:
            self._count("faults.delays")
        return total

    def should_reorder(self, src: str, dst: str) -> bool:
        """Whether to hold this datagram back behind the next one."""
        now = self.now()
        for spec in self._reorders:
            if not (spec.active(now) and spec.matches(src, dst)):
                continue
            if spec.rate > 0.0 and self._stream("faults.reorder").random() < spec.rate:
                self._count("faults.reorders")
                return True
        return False

    # -- node fates ------------------------------------------------------------
    def is_crashed(self, node: str) -> bool:
        """Whether ``node`` is fail-stopped at the current time."""
        now = self.now()
        return any(c.node == node and c.crashed(now) for c in self._crashes)

    def restart_at(self, node: str) -> Optional[float]:
        """The scripted restart time of ``node``, if any."""
        for c in self._crashes:
            if c.node == node:
                return c.restart_at
        return None

    def crashed_nodes(self) -> List[str]:
        """Sorted names of every node down right now (election scenarios
        feed this straight into their ``crashed=`` sets)."""
        now = self.now()
        return sorted(c.node for c in self._crashes if c.crashed(now))

    # -- introspection ---------------------------------------------------------
    def describe(self) -> List[str]:
        """One line per spec — the plan as an instructor reads it."""
        return [repr(s) for s in self.specs]

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({len(self.specs)} specs, bound={self.context is not None})"

"""repro.faults — deterministic fault injection & resilience policies.

The substrate's failure layer, in two halves:

- :mod:`repro.faults.plan` — :class:`FaultPlan`: typed fault specs
  (:class:`MessageLoss` with bursts, :class:`Delay`, :class:`Reorder`,
  :class:`Partition` with scheduled heal, :class:`Crash`/restart,
  :class:`SlowNode`) scheduled on the run's clock and decided by named
  seeded RNG streams, so same-seed chaos runs export byte-identical
  traces.  Consulted by injection hooks in :mod:`repro.net.simnet`,
  :mod:`repro.dist.middleware`, and :mod:`repro.mp.runtime`.
- :mod:`repro.faults.policies` — the client-side answers:
  :class:`Timeout`, :class:`Retry` (budget-capped exponential backoff),
  and :class:`CircuitBreaker`, composable wrappers emitting ``faults.*``
  metrics.

:mod:`repro.faults.errors` names the failures both halves speak:
:class:`Unavailable` is what an RPC stub raises whether the cause was a
:class:`Partition`, a :class:`Crash`, or a lost reply.
"""

from repro.faults.errors import (
    CircuitOpen,
    FaultError,
    NodeCrashed,
    PartitionedError,
    RankCrashed,
    RetryBudgetExceeded,
    Unavailable,
)
from repro.faults.plan import (
    Crash,
    Delay,
    FaultPlan,
    FaultSpec,
    MessageLoss,
    Partition,
    Reorder,
    SlowNode,
)
from repro.faults.policies import CircuitBreaker, Retry, Timeout

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "Crash",
    "Delay",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "MessageLoss",
    "NodeCrashed",
    "Partition",
    "PartitionedError",
    "RankCrashed",
    "Reorder",
    "Retry",
    "RetryBudgetExceeded",
    "SlowNode",
    "Timeout",
    "Unavailable",
]

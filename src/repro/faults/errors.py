"""The failure vocabulary: exceptions injected faults surface as.

One small hierarchy so call sites can be precise ("this send crossed a
partition") or broad ("something distributed failed, apply the policy").
:class:`Unavailable` is the union the resilience policies default to
retrying — it is what an RPC stub raises whether the true cause was a
partition, a crashed server, or a lost reply.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "PartitionedError",
    "NodeCrashed",
    "RankCrashed",
    "Unavailable",
    "CircuitOpen",
    "RetryBudgetExceeded",
]


class FaultError(RuntimeError):
    """Base class for every injected-fault failure."""


class PartitionedError(FaultError, ConnectionError):
    """A send crossed an active network partition.

    Also a :class:`ConnectionError`, so code written against the socket
    API's error surface handles it without knowing about fault plans.
    """


class NodeCrashed(FaultError, ConnectionError):
    """The destination node is fail-stopped under the active plan."""


class RankCrashed(FaultError):
    """An SPMD rank hit its scripted fail-stop point."""

    def __init__(self, rank: int) -> None:
        super().__init__(f"rank {rank} crashed (fault plan)")
        self.rank = rank


class Unavailable(FaultError):
    """A remote operation failed for *some* distributed reason.

    The honest client-side truth of partitions, crashes, and timeouts:
    you cannot tell them apart, you can only decide what to do next —
    which is exactly what :mod:`repro.faults.policies` consumes.
    """


class CircuitOpen(Unavailable):
    """A circuit breaker refused the call without attempting it."""


class RetryBudgetExceeded(Unavailable):
    """A retry policy exhausted its attempts or its delay budget."""

"""Resilience policies: timeout, retry with backoff, circuit breaker.

The client side of fault tolerance — the three patterns every
distributed-systems course teaches against the failure modes
:mod:`repro.faults.plan` injects:

- :class:`Timeout` — a deadline on the run's clock; the primitive that
  converts "no answer" into a decision point.
- :class:`Retry` — bounded re-execution with fixed or exponential
  backoff and optional seeded jitter, capped by an attempt count *and* a
  total-delay budget (unbounded retry is an outage amplifier, which is
  the lesson).
- :class:`CircuitBreaker` — the closed/open/half-open state machine that
  stops hammering a dead dependency and probes for recovery.

Each policy is a callable *wrapper*: ``Retry(...)(fn)`` returns a
function with the same signature, so policies compose by nesting —
``Retry(...)(CircuitBreaker(...)(stub.get))`` — around RPC stub methods,
socket sends, or anything else that raises :class:`~repro.faults.errors.Unavailable`.
All sleeping happens on the injected clock (virtual in deterministic
runs) and all counting lands in the run's registry (``faults.retries``,
``faults.giveups``, ``faults.breaker.state``).
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Callable, Optional, Tuple, Type

from repro.faults.errors import CircuitOpen, RetryBudgetExceeded, Unavailable
from repro.runtime import MetricRegistry, MonotonicClock, RunContext
from repro.runtime.clock import Clock

__all__ = ["Timeout", "Retry", "CircuitBreaker"]

#: The failures a policy reacts to unless told otherwise.
_DEFAULT_FAILURES: Tuple[Type[BaseException], ...] = (Unavailable, TimeoutError)


class Timeout:
    """A deadline measured on an injected clock.

    ``Timeout(2.0, clock).start()`` arms the deadline; :attr:`expired`
    and :meth:`remaining` answer against the *clock's* time, so a
    deterministic run times out at a scripted virtual instant.  ``wait()``
    sleeps the rest of the window — on a virtual clock, an instant,
    deterministic time step.
    """

    def __init__(self, seconds: float, clock: Optional[Clock] = None) -> None:
        if seconds < 0:
            raise ValueError("timeout must be non-negative")
        self.seconds = float(seconds)
        self.clock = clock if clock is not None else MonotonicClock()
        self._deadline: Optional[float] = None

    def start(self) -> "Timeout":
        """Arm (or re-arm) the deadline from the clock's current time."""
        self._deadline = self.clock.now() + self.seconds
        return self

    @property
    def expired(self) -> bool:
        """Whether the armed deadline has passed (auto-arms on first use)."""
        if self._deadline is None:
            self.start()
        assert self._deadline is not None
        return self.clock.now() >= self._deadline

    def remaining(self) -> float:
        """Seconds left before expiry (0 once expired; auto-arms)."""
        if self._deadline is None:
            self.start()
        assert self._deadline is not None
        return max(0.0, self._deadline - self.clock.now())

    def wait(self) -> None:
        """Sleep out the remainder of the window on the clock."""
        rest = self.remaining()
        if rest > 0:
            self.clock.sleep(rest)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.seconds}s, expired={self.expired})"


class Retry:
    """Bounded retry with (optionally jittered, exponential) backoff.

    Delay before attempt ``k`` (0-based) is
    ``base_delay * backoff ** (k - 1)`` plus a uniform draw from
    ``[0, jitter)`` — the jitter coming from the run's ``faults.retry``
    RNG stream, so even randomized backoff replays identically under one
    seed.  Gives up after ``attempts`` calls *or* when the next delay
    would push cumulative sleep past ``max_total_delay``, raising
    :class:`~repro.faults.errors.RetryBudgetExceeded` chained to the last
    failure.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.05,
        backoff: float = 2.0,
        jitter: float = 0.0,
        max_total_delay: Optional[float] = None,
        retry_on: Tuple[Type[BaseException], ...] = _DEFAULT_FAILURES,
        context: Optional[RunContext] = None,
        clock: Optional[Clock] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if attempts < 1:
            raise ValueError("need at least one attempt")
        if base_delay < 0 or jitter < 0 or backoff < 1.0:
            raise ValueError("delays must be >= 0 and backoff >= 1")
        self.attempts = attempts
        self.base_delay = base_delay
        self.backoff = backoff
        self.jitter = jitter
        self.max_total_delay = max_total_delay
        self.retry_on = retry_on
        if context is not None:
            clock = clock if clock is not None else context.clock
            registry = registry if registry is not None else context.registry
            self._rng = context.rng.stream("faults.retry")
        else:
            self._rng = None
        self.clock = clock if clock is not None else MonotonicClock()
        self.registry = registry if registry is not None else MetricRegistry()

    def delay_before(self, attempt: int) -> float:
        """The (jitter-free) backoff delay preceding attempt ``attempt``."""
        if attempt <= 0:
            return 0.0
        return self.base_delay * self.backoff ** (attempt - 1)

    def __call__(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap ``fn`` so transient failures are retried under budget."""
        retries = self.registry.counter("faults.retries")
        giveups = self.registry.counter("faults.giveups")

        @functools.wraps(fn)
        def resilient(*args: Any, **kwargs: Any) -> Any:
            slept = 0.0
            last: Optional[BaseException] = None
            for attempt in range(self.attempts):
                if attempt > 0:
                    delay = self.delay_before(attempt)
                    if self.jitter > 0 and self._rng is not None:
                        delay += float(self._rng.uniform(0.0, self.jitter))
                    if (
                        self.max_total_delay is not None
                        and slept + delay > self.max_total_delay
                    ):
                        break
                    slept += delay
                    retries.inc()
                    self.clock.sleep(delay)
                try:
                    return fn(*args, **kwargs)
                except self.retry_on as exc:
                    last = exc
            giveups.inc()
            raise RetryBudgetExceeded(
                f"{getattr(fn, '__name__', fn)!r} still failing after "
                f"{self.attempts} attempts / {slept:.3f}s of backoff"
            ) from last

        return resilient


class CircuitBreaker:
    """The closed → open → half-open breaker state machine.

    ``failure_threshold`` consecutive failures open the circuit: calls
    fail fast with :class:`~repro.faults.errors.CircuitOpen` (no load on
    the dead dependency).  After ``reset_timeout`` seconds on the clock,
    one probe call is admitted (half-open); success closes the circuit,
    failure re-opens it for another window.  The current state is
    exported as the ``faults.breaker.state`` gauge (0 closed, 1 open,
    2 half-open) under ``name`` as a suffix-free shared instrument.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"
    _STATE_LEVEL = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        trip_on: Tuple[Type[BaseException], ...] = _DEFAULT_FAILURES,
        context: Optional[RunContext] = None,
        clock: Optional[Clock] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.trip_on = trip_on
        if context is not None:
            clock = clock if clock is not None else context.clock
            registry = registry if registry is not None else context.registry
        self.clock = clock if clock is not None else MonotonicClock()
        self.registry = registry if registry is not None else MetricRegistry()
        self._gauge = self.registry.gauge("faults.breaker.state")
        self._trips = self.registry.counter("faults.breaker.trips")
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._gauge.set(0)

    @property
    def state(self) -> str:
        """Current breaker state, refreshing open → half-open on expiry."""
        with self._lock:
            return self._admit_locked(peek=True)

    def _admit_locked(self, peek: bool = False) -> str:
        # Caller holds the lock.  Transitions open -> half_open when the
        # reset window has elapsed; with peek, reports without admitting.
        state = self._state
        if state == self.OPEN:
            if self.clock.now() - self._opened_at >= self.reset_timeout:
                state = self.HALF_OPEN
        if peek:
            return state
        if state == self.HALF_OPEN:
            # Half-open admits exactly one probe: while it is in flight
            # every other caller fails fast, otherwise a burst of
            # concurrent probes would hammer the recovering dependency.
            if self._probing:
                return self.OPEN
            self._probing = True
            self._state = self.HALF_OPEN
            self._gauge.set(self._STATE_LEVEL[self.HALF_OPEN])
        return state

    def _record(self, ok: bool) -> None:
        with self._lock:
            self._probing = False
            if ok:
                self._state = self.CLOSED
                self._failures = 0
            else:
                self._failures += 1
                if (
                    self._state == self.HALF_OPEN
                    or self._failures >= self.failure_threshold
                ):
                    self._state = self.OPEN
                    self._opened_at = self.clock.now()
                    self._failures = 0
                    self._trips.inc()
            self._gauge.set(self._STATE_LEVEL[self._state])

    def __call__(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap ``fn`` behind the breaker."""

        @functools.wraps(fn)
        def guarded(*args: Any, **kwargs: Any) -> Any:
            with self._lock:
                admitted = self._admit_locked()
            if admitted == self.OPEN:
                raise CircuitOpen(
                    f"circuit open for {getattr(fn, '__name__', fn)!r}; "
                    f"probes resume after {self.reset_timeout}s"
                )
            try:
                result = fn(*args, **kwargs)
            except self.trip_on:
                self._record(ok=False)
                raise
            self._record(ok=True)
            return result

        return guarded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(state={self.state}, threshold={self.failure_threshold})"

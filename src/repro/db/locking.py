"""Shared/exclusive locking with strict 2PL and deadlock handling.

The lock manager is a deterministic, single-threaded simulation object
(the engine interleaves transactions explicitly), which makes deadlock
scenarios exactly reproducible in tests — the property that makes this a
better lab substrate than "run threads and hope".

Three deadlock policies, ablated in the benches:

- ``DETECTION`` — waits-for graph (:class:`repro.smp.deadlock.WaitForGraph`
  machinery re-expressed for S/X locks); on a cycle the youngest
  transaction in the cycle aborts.
- ``WAIT_DIE`` — non-preemptive prevention: an older requester waits; a
  younger one dies (aborts) immediately.
- ``WOUND_WAIT`` — preemptive prevention: an older requester wounds
  (aborts) the younger holders; a younger requester waits.

Transaction age = transaction id (lower id == older), the standard
timestamp convention.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

__all__ = ["LockMode", "DeadlockPolicy", "TransactionAborted", "LockManager"]


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) lock."""

    S = "S"
    X = "X"


class DeadlockPolicy(enum.Enum):
    """How lock conflicts that could deadlock are resolved."""

    DETECTION = "detection"
    WAIT_DIE = "wait-die"
    WOUND_WAIT = "wound-wait"


class TransactionAborted(RuntimeError):
    """Raised toward the engine when transactions must abort.

    Attributes
    ----------
    txns:
        The aborted transaction ids (wound-wait can wound several shared
        holders at once).
    txn:
        The first victim (convenience for the single-victim policies).
    reason:
        ``"deadlock-victim"``, ``"wait-die"``, or ``"wounded"``.
    """

    def __init__(self, txns: "int | List[int]", reason: str) -> None:
        victims = [txns] if isinstance(txns, int) else list(txns)
        names = ", ".join(f"T{t}" for t in victims)
        super().__init__(f"{names} aborted ({reason})")
        self.txns = victims
        self.txn = victims[0]
        self.reason = reason


@dataclasses.dataclass
class _ItemLock:
    mode: Optional[LockMode] = None
    holders: Set[int] = dataclasses.field(default_factory=set)
    queue: List[int] = dataclasses.field(default_factory=list)  # FIFO waiters


class LockManager:
    """The S/X lock table.

    :meth:`acquire` returns ``True`` (granted) or ``False`` (must wait);
    it raises :class:`TransactionAborted` when the policy kills someone —
    either the requester itself, or (``WOUND_WAIT``) a *different*
    transaction, reported via the exception's ``txn`` field.
    Strict 2PL: locks are only ever released by :meth:`release_all`.
    """

    def __init__(self, policy: DeadlockPolicy = DeadlockPolicy.DETECTION) -> None:
        self.policy = policy
        self._table: Dict[str, _ItemLock] = {}
        self._waits_for: Dict[int, Tuple[str, LockMode]] = {}  # txn -> want
        self.aborts = 0
        self.deadlocks_detected = 0
        self._abort_counts: Dict[int, int] = {}

    # -- compatibility -------------------------------------------------------
    @staticmethod
    def _compatible(mode: LockMode, lock: _ItemLock, txn: int) -> bool:
        if lock.mode is None or not lock.holders:
            return True
        if lock.holders == {txn}:
            return True  # re-entrant / upgrade by the sole holder
        if mode is LockMode.S and lock.mode is LockMode.S:
            return True
        return False

    def holders_of(self, item: str) -> Set[int]:
        """Transactions currently holding a lock on ``item``."""
        return set(self._table.get(item, _ItemLock()).holders)

    def locks_held(self, txn: int) -> List[Tuple[str, LockMode]]:
        """All ``(item, mode)`` locks held by ``txn``."""
        out = []
        for item, lock in self._table.items():
            if txn in lock.holders and lock.mode is not None:
                out.append((item, lock.mode))
        return out

    # -- acquisition ------------------------------------------------------------
    def acquire(self, txn: int, item: str, mode: LockMode) -> bool:
        """Try to take ``mode`` on ``item``; see class docs for outcomes.

        Grants are FIFO-fair: a request compatible with the current holders
        still waits behind earlier waiters (no barging), which is what
        guarantees a restarted deadlock victim cannot starve the older
        transaction it collided with.
        """
        lock = self._table.setdefault(item, _ItemLock())
        ahead = [w for w in lock.queue if w != txn]
        may_grant = (
            not ahead or lock.queue[0] == txn or lock.holders == {txn}
        )
        if self._compatible(mode, lock, txn) and may_grant:
            lock.holders.add(txn)
            if lock.mode is None or mode is LockMode.X:
                lock.mode = mode
            if txn in lock.queue:
                lock.queue.remove(txn)
            self._waits_for.pop(txn, None)
            return True

        # Blockers: current holders plus everyone ahead in the FIFO.
        blockers = (lock.holders | set(ahead)) - {txn}
        if self.policy is DeadlockPolicy.WAIT_DIE:
            if any(txn > other for other in blockers):
                # Younger than some holder: die.
                self.aborts += 1
                raise TransactionAborted(txn, "wait-die")
            self._enqueue(lock, txn)
            self._waits_for[txn] = (item, mode)
            return False
        if self.policy is DeadlockPolicy.WOUND_WAIT:
            younger = sorted(
                (other for other in blockers if other > txn), reverse=True
            )
            if younger:
                # Older requester wounds every younger blocking holder.
                self.aborts += len(younger)
                raise TransactionAborted(younger, "wounded")
            self._enqueue(lock, txn)
            self._waits_for[txn] = (item, mode)
            return False

        # DETECTION: record the wait, look for a cycle.
        self._enqueue(lock, txn)
        self._waits_for[txn] = (item, mode)
        cycle = self._find_cycle()
        if cycle is not None:
            self.deadlocks_detected += 1
            # Victim: fewest prior aborts (prevents picking the same victim
            # forever — the textbook "avoid starving the victim" rule),
            # tie-broken by youth (highest id).
            victim = min(
                cycle, key=lambda t: (self._abort_counts.get(t, 0), -t)
            )
            self.aborts += 1
            self._abort_counts[victim] = self._abort_counts.get(victim, 0) + 1
            raise TransactionAborted(victim, "deadlock-victim")
        return False

    @staticmethod
    def _enqueue(lock: _ItemLock, txn: int) -> None:
        if txn not in lock.queue:
            lock.queue.append(txn)

    def _find_cycle(self) -> Optional[List[int]]:
        g = nx.DiGraph()
        for waiter, (item, _mode) in self._waits_for.items():
            lock = self._table.get(item, _ItemLock())
            # A waiter waits on the holders *and* on earlier queued waiters
            # (FIFO grants mean the predecessor really does block it).
            blockers = set(lock.holders)
            if waiter in lock.queue:
                blockers.update(lock.queue[: lock.queue.index(waiter)])
            for blocker in blockers:
                if blocker != waiter:
                    g.add_edge(waiter, blocker)
        try:
            return [edge[0] for edge in nx.find_cycle(g)]
        except nx.NetworkXNoCycle:
            return None

    # -- release -------------------------------------------------------------------
    def release_all(self, txn: int) -> List[str]:
        """Strict 2PL release at commit/abort; returns the freed items."""
        freed: List[str] = []
        for item, lock in self._table.items():
            if txn in lock.queue:
                lock.queue.remove(txn)
            if txn in lock.holders:
                lock.holders.discard(txn)
                if not lock.holders:
                    lock.mode = None
                    freed.append(item)
                elif lock.mode is LockMode.X:
                    # The remaining holders must have been S-compatible.
                    lock.mode = LockMode.S
        self._waits_for.pop(txn, None)
        return freed

    def waiting(self, txn: int) -> Optional[Tuple[str, LockMode]]:
        """What ``txn`` is currently waiting for, if anything."""
        return self._waits_for.get(txn)

"""Transactions as operation scripts; schedules as histories.

The textbook notation ``r1(x) w1(x) r2(y) c1`` maps directly:
:func:`Op.read`/:func:`Op.write`/:func:`Op.commit` build operations, a
:class:`Transaction` is the per-transaction sequence, and a
:class:`Schedule` is a global interleaving whose properties
(:mod:`repro.db.serializability`) can be checked.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["OpKind", "Op", "Transaction", "Schedule"]


class OpKind(enum.Enum):
    """Operation kinds appearing in histories."""

    READ = "r"
    WRITE = "w"
    COMMIT = "c"
    ABORT = "a"


@dataclasses.dataclass(frozen=True)
class Op:
    """One operation of one transaction on one item (item None for c/a)."""

    txn: int
    kind: OpKind
    item: Optional[str] = None

    @staticmethod
    def read(txn: int, item: str) -> "Op":
        """``r_txn(item)``"""
        return Op(txn, OpKind.READ, item)

    @staticmethod
    def write(txn: int, item: str) -> "Op":
        """``w_txn(item)``"""
        return Op(txn, OpKind.WRITE, item)

    @staticmethod
    def commit(txn: int) -> "Op":
        """``c_txn``"""
        return Op(txn, OpKind.COMMIT)

    @staticmethod
    def abort(txn: int) -> "Op":
        """``a_txn``"""
        return Op(txn, OpKind.ABORT)

    def __str__(self) -> str:
        if self.item is None:
            return f"{self.kind.value}{self.txn}"
        return f"{self.kind.value}{self.txn}({self.item})"

    def conflicts_with(self, other: "Op") -> bool:
        """Two ops conflict: different txns, same item, at least one write."""
        return (
            self.txn != other.txn
            and self.item is not None
            and self.item == other.item
            and (self.kind is OpKind.WRITE or other.kind is OpKind.WRITE)
        )


@dataclasses.dataclass
class Transaction:
    """A transaction's operation script (reads/writes; commit implied).

    ``compute`` optionally transforms the transaction's read snapshot into
    the values it writes, letting the engine run *semantically* meaningful
    transactions (e.g. bank transfers) rather than opaque w/r noise.
    """

    tid: int
    ops: List[Op]
    compute: Optional[object] = None  # Callable[[dict], dict], kept loose

    def __post_init__(self) -> None:
        for op in self.ops:
            if op.txn != self.tid:
                raise ValueError(f"operation {op} does not belong to T{self.tid}")
            if op.kind in (OpKind.COMMIT, OpKind.ABORT):
                raise ValueError("scripts list only reads/writes; commit is implicit")

    def read_set(self) -> List[str]:
        """Items read, in order, without duplicates."""
        seen: List[str] = []
        for op in self.ops:
            if op.kind is OpKind.READ and op.item not in seen:
                seen.append(op.item)  # type: ignore[arg-type]
        return seen

    def write_set(self) -> List[str]:
        """Items written, in order, without duplicates."""
        seen: List[str] = []
        for op in self.ops:
            if op.kind is OpKind.WRITE and op.item not in seen:
                seen.append(op.item)  # type: ignore[arg-type]
        return seen


class Schedule:
    """A history: a global sequence of operations from several transactions."""

    def __init__(self, ops: Iterable[Op]) -> None:
        self.ops: List[Op] = list(ops)

    @classmethod
    def parse(cls, text: str) -> "Schedule":
        """Parse ``"r1(x) w2(x) c1 c2"`` textbook notation."""
        ops: List[Op] = []
        for token in text.split():
            kind = OpKind(token[0])
            rest = token[1:]
            if "(" in rest:
                txn_str, item = rest.split("(")
                ops.append(Op(int(txn_str), kind, item.rstrip(")")))
            else:
                ops.append(Op(int(rest), kind))
        return cls(ops)

    def transactions(self) -> List[int]:
        """Distinct transaction ids in first-appearance order."""
        seen: List[int] = []
        for op in self.ops:
            if op.txn not in seen:
                seen.append(op.txn)
        return seen

    def is_serial(self) -> bool:
        """True when transactions never interleave."""
        order: List[int] = []
        for op in self.ops:
            if not order or order[-1] != op.txn:
                if op.txn in order:
                    return False
                order.append(op.txn)
        return True

    def projected(self, txn: int) -> List[Op]:
        """The sub-history of one transaction."""
        return [op for op in self.ops if op.txn == txn]

    @staticmethod
    def serial(transactions: Sequence[Transaction], order: Sequence[int]) -> "Schedule":
        """The serial schedule executing ``transactions`` in ``order``."""
        by_tid: Dict[int, Transaction] = {t.tid: t for t in transactions}
        ops: List[Op] = []
        for tid in order:
            ops.extend(by_tid[tid].ops)
            ops.append(Op.commit(tid))
        return Schedule(ops)

    def __str__(self) -> str:
        return " ".join(str(op) for op in self.ops)

    def __len__(self) -> int:
        return len(self.ops)

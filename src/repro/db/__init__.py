"""Database transaction concurrency (Table I's database-systems column).

"A database management course can incorporate distributed computing
concepts including transactions processing, scheduling concurrent
transactions, transactions locks, and deadlocks" (paper §III).  This
subpackage is that course's lab substrate:

- :mod:`repro.db.transaction` — transactions as operation scripts, and
  schedules (histories) over them.
- :mod:`repro.db.serializability` — conflict-serializability testing via
  the precedence graph, with an equivalent serial order when one exists.
- :mod:`repro.db.locking` — a shared/exclusive lock manager with strict
  two-phase locking, deadlock detection on the wait-for graph, and
  wait-die / wound-wait prevention variants for the ablation bench.
- :mod:`repro.db.engine` — a deterministic concurrent-transaction
  executor that interleaves scripts under the lock manager, aborts
  deadlock victims, and retries them.
"""

from repro.db.engine import ExecutionReport, TransactionEngine
from repro.db.locking import (
    DeadlockPolicy,
    LockManager,
    LockMode,
    TransactionAborted,
)
from repro.db.serializability import (
    conflicts,
    is_conflict_serializable,
    precedence_graph,
    serial_order,
)
from repro.db.transaction import Op, OpKind, Schedule, Transaction

__all__ = [
    "conflicts",
    "DeadlockPolicy",
    "ExecutionReport",
    "is_conflict_serializable",
    "LockManager",
    "LockMode",
    "Op",
    "OpKind",
    "precedence_graph",
    "Schedule",
    "serial_order",
    "Transaction",
    "TransactionAborted",
    "TransactionEngine",
]

"""Conflict-serializability via the precedence graph.

The decision procedure every database course teaches: build the directed
graph whose nodes are transactions and whose edges follow conflicting
operation pairs; the schedule is conflict-serializable iff the graph is
acyclic, and any topological order is an equivalent serial schedule.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.db.transaction import Op, OpKind, Schedule

__all__ = [
    "conflicts",
    "precedence_graph",
    "is_conflict_serializable",
    "serial_order",
    "is_recoverable",
]


def conflicts(schedule: Schedule) -> List[Tuple[Op, Op]]:
    """All ordered conflicting pairs ``(earlier, later)`` in the history."""
    pairs: List[Tuple[Op, Op]] = []
    ops = [op for op in schedule.ops if op.kind in (OpKind.READ, OpKind.WRITE)]
    for i, earlier in enumerate(ops):
        for later in ops[i + 1 :]:
            if earlier.conflicts_with(later):
                pairs.append((earlier, later))
    return pairs


def precedence_graph(schedule: Schedule) -> nx.DiGraph:
    """The conflict (serialization) graph of the history."""
    g = nx.DiGraph()
    g.add_nodes_from(schedule.transactions())
    for earlier, later in conflicts(schedule):
        g.add_edge(earlier.txn, later.txn)
    return g


def is_conflict_serializable(schedule: Schedule) -> bool:
    """True iff the precedence graph is acyclic."""
    return nx.is_directed_acyclic_graph(precedence_graph(schedule))


def serial_order(schedule: Schedule) -> Optional[List[int]]:
    """An equivalent serial transaction order, or ``None`` if none exists.

    Deterministic: among ready transactions, the lowest id goes first
    (lexicographic topological sort).
    """
    g = precedence_graph(schedule)
    if not nx.is_directed_acyclic_graph(g):
        return None
    return list(nx.lexicographical_topological_sort(g))


def is_recoverable(schedule: Schedule) -> bool:
    """Recoverability: a reader of T's dirty data commits only after T.

    For every read by Tj of an item last written by Ti (i != j), Ti's
    commit must precede Tj's commit in the history.  Histories missing a
    commit for a reading transaction are treated as recoverable-so-far.
    """
    commit_pos = {
        op.txn: pos
        for pos, op in enumerate(schedule.ops)
        if op.kind is OpKind.COMMIT
    }
    last_writer: dict[str, int] = {}
    reads_from: List[Tuple[int, int]] = []  # (reader, writer)
    for op in schedule.ops:
        if op.kind is OpKind.WRITE and op.item is not None:
            last_writer[op.item] = op.txn
        elif op.kind is OpKind.READ and op.item is not None:
            writer = last_writer.get(op.item)
            if writer is not None and writer != op.txn:
                reads_from.append((op.txn, writer))
    for reader, writer in reads_from:
        if reader in commit_pos:
            if writer not in commit_pos or commit_pos[writer] > commit_pos[reader]:
                return False
    return True

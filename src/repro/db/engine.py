"""A deterministic concurrent-transaction executor.

The engine interleaves transaction scripts (round-robin by default, or any
explicit turn order), acquiring strict-2PL locks through the
:class:`~repro.db.locking.LockManager`.  Blocked transactions skip their
turn; deadlock victims abort, roll their writes back, and retry from the
start.  The produced history (with commits) is returned as a
:class:`~repro.db.transaction.Schedule`, so the 2PL serializability
guarantee is directly checkable::

    report = TransactionEngine(txns).run()
    assert is_conflict_serializable(report.history)   # always holds

Writes are *semantic* when the transaction provides ``compute``: at its
first write, the transaction's accumulated read snapshot is passed to
``compute``, which returns the values to write (a bank transfer reads two
balances and writes their updates).  Without ``compute``, each write sets
``item = <txn id marker>``, enough for serializability analysis.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.db.locking import (
    DeadlockPolicy,
    LockManager,
    LockMode,
    TransactionAborted,
)
from repro.db.transaction import Op, OpKind, Schedule, Transaction

__all__ = ["ExecutionReport", "TransactionEngine"]


@dataclasses.dataclass
class ExecutionReport:
    """Outcome of one engine run."""

    history: Schedule
    database: Dict[str, Any]
    aborts: int
    deadlocks: int
    turns: int
    committed: List[int]

    @property
    def abort_rate(self) -> float:
        """Aborts per committed transaction."""
        return self.aborts / len(self.committed) if self.committed else 0.0


@dataclasses.dataclass
class _TxnState:
    txn: Transaction
    pc: int = 0
    snapshot: Dict[str, Any] = dataclasses.field(default_factory=dict)
    pending_writes: Optional[Dict[str, Any]] = None
    undo: Dict[str, Any] = dataclasses.field(default_factory=dict)
    done: bool = False
    restarts: int = 0
    wake_turn: int = 0  # restart backoff: no turns before this global turn


class TransactionEngine:
    """Run transaction scripts concurrently under strict 2PL."""

    def __init__(
        self,
        transactions: Sequence[Transaction],
        database: Optional[Dict[str, Any]] = None,
        policy: DeadlockPolicy = DeadlockPolicy.DETECTION,
    ) -> None:
        tids = [t.tid for t in transactions]
        if len(set(tids)) != len(tids):
            raise ValueError("transaction ids must be unique")
        self.transactions = list(transactions)
        self.database: Dict[str, Any] = dict(database or {})
        self.locks = LockManager(policy)
        self.history: List[Op] = []
        self.deadlocks = 0
        self.aborts = 0

    def run(
        self,
        turn_order: Optional[Sequence[int]] = None,
        max_turns: int = 100_000,
    ) -> ExecutionReport:
        """Execute all transactions to commit.

        ``turn_order``: optional explicit sequence of transaction ids; by
        default a round-robin over unfinished transactions.  Each turn a
        transaction executes (at most) one operation.
        """
        states = {t.tid: _TxnState(t) for t in self.transactions}
        committed: List[int] = []
        turns = 0
        explicit = list(turn_order) if turn_order is not None else None
        explicit_pos = 0

        def next_tid() -> Optional[int]:
            nonlocal explicit_pos
            if explicit is not None:
                while explicit_pos < len(explicit):
                    tid = explicit[explicit_pos]
                    explicit_pos += 1
                    if not states[tid].done:
                        return tid
                # Fall back to round-robin for whatever remains (retries).
            for tid in sorted(states):
                if not states[tid].done:
                    return tid
            return None

        rr_cursor = 0

        def round_robin() -> Optional[int]:
            nonlocal rr_cursor
            live = [tid for tid in sorted(states) if not states[tid].done]
            if not live:
                return None
            # Respect restart backoff; if everyone is backing off, wake the
            # one due soonest rather than spinning.
            eligible = [t for t in live if states[t].wake_turn <= turns]
            if not eligible:
                eligible = [min(live, key=lambda t: states[t].wake_turn)]
            tid = eligible[rr_cursor % len(eligible)]
            rr_cursor += 1
            return tid

        while True:
            if turns >= max_turns:
                raise RuntimeError("engine exceeded max_turns (livelock?)")
            tid = next_tid() if explicit is not None and explicit_pos < len(explicit) else round_robin()
            if tid is None:
                break
            turns += 1
            state = states[tid]
            progressed = False
            # At most two attempts: a wound/abort of *another* transaction
            # frees the lock, and the requester must retry immediately or
            # the victim's restart re-takes the lock first (livelock).
            for _attempt in range(2):
                try:
                    progressed = self._step(state)
                    break
                except TransactionAborted as aborted:
                    self.aborts += len(aborted.txns)
                    if aborted.reason == "deadlock-victim":
                        self.deadlocks += 1
                    for victim in aborted.txns:
                        vstate = states[victim]
                        self._rollback(vstate)
                        # Deterministic, per-victim-distinct backoff: breaks
                        # the lockstep in which a clique of retried
                        # transactions re-forms the identical deadlock
                        # every round-robin period.
                        vstate.wake_turn = turns + (4 + victim) * vstate.restarts
                    if tid in aborted.txns:
                        break  # the current transaction died; yield the turn
            if progressed and state.pc >= len(state.txn.ops):
                self._commit(state)
                committed.append(tid)

        return ExecutionReport(
            history=Schedule(self.history),
            database=dict(self.database),
            aborts=self.aborts,
            deadlocks=self.deadlocks,
            turns=turns,
            committed=committed,
        )

    # -- per-operation execution -----------------------------------------------
    def _step(self, state: _TxnState) -> bool:
        """Execute one operation of one transaction; False if blocked."""
        op = state.txn.ops[state.pc]
        mode = LockMode.S if op.kind is OpKind.READ else LockMode.X
        assert op.item is not None
        if not self.locks.acquire(state.txn.tid, op.item, mode):
            return False
        if op.kind is OpKind.READ:
            state.snapshot[op.item] = self.database.get(op.item, 0)
        else:
            if state.pending_writes is None:
                state.pending_writes = self._computed_writes(state)
            if op.item not in state.undo:
                state.undo[op.item] = self.database.get(op.item, 0)
            value = state.pending_writes.get(op.item, f"T{state.txn.tid}")
            self.database[op.item] = value
        self.history.append(op)
        state.pc += 1
        return True

    def _computed_writes(self, state: _TxnState) -> Dict[str, Any]:
        compute = state.txn.compute
        if compute is None:
            return {}
        fn: Callable[[Dict[str, Any]], Dict[str, Any]] = compute  # type: ignore[assignment]
        return dict(fn(dict(state.snapshot)))

    def _commit(self, state: _TxnState) -> None:
        state.done = True
        self.history.append(Op.commit(state.txn.tid))
        self.locks.release_all(state.txn.tid)

    def _rollback(self, state: _TxnState) -> None:
        """Undo writes, release locks, record the abort, retry from scratch."""
        for item, old in state.undo.items():
            self.database[item] = old
        self.history.append(Op.abort(state.txn.tid))
        self.locks.release_all(state.txn.tid)
        state.pc = 0
        state.snapshot = {}
        state.pending_writes = None
        state.undo = {}
        state.restarts += 1
        if state.restarts > 100:
            raise RuntimeError(
                f"T{state.txn.tid} restarted >100 times (livelock)"
            )


def committed_projection(history: Schedule) -> Schedule:
    """The committed projection of a history.

    Keeps only operations of committed transactions, and for a transaction
    that aborted and retried, only the operations of its *final* (committed)
    attempt — rolled-back work is undone and must not contribute conflict
    edges.
    """
    committed = {op.txn for op in history.ops if op.kind is OpKind.COMMIT}
    last_abort: Dict[int, int] = {}
    for pos, op in enumerate(history.ops):
        if op.kind is OpKind.ABORT:
            last_abort[op.txn] = pos
    kept = [
        op
        for pos, op in enumerate(history.ops)
        if op.txn in committed
        and op.kind is not OpKind.ABORT
        and pos > last_abort.get(op.txn, -1)
    ]
    return Schedule(kept)

"""The message-race sanitizer: nondeterminism candidates in ``dist``/``net``.

Shared-memory races have a message-passing sibling: two causally
*concurrent* deliveries to the same endpoint, whose arrival order the
fabric — not the program — decides.  Every host gets a vector clock
(sparse, dynamic membership, in the style :mod:`repro.dist.clocks`
teaches with fixed width): a send ticks and stamps, a delivery merges
into the destination.  When a delivery's stamp is concurrent with the
last delivery to the same destination from a *different* source, that
pair is flagged as PDC303 — the arrival order was a coin flip.

A PDC303 is a *candidate*, not a proven bug (an idempotent or
commutative receiver absorbs reordering).  The confirmation instrument
is the runtime's trace digest: :func:`digest_crosscheck` runs one
scenario several times and compares
:meth:`repro.runtime.tracing.Tracer.digest` values — divergent digests
mean the nondeterminism reached observable behavior.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.report import Finding
from repro.sanitizers.findings import message_finding
from repro.sanitizers.sites import AccessSite, call_site
from repro.sanitizers.vc import VC, vc_concurrent, vc_merge

__all__ = ["MessageRace", "MessageRaceSanitizer", "digest_crosscheck"]


@dataclasses.dataclass(frozen=True)
class MessageRace:
    """Two causally concurrent deliveries to one destination."""

    dest: str
    sources: Tuple[str, str]
    kind: str
    site: AccessSite


class MessageRaceSanitizer:
    """Tags deliveries with host vector clocks; flags concurrent pairs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._host_vc: Dict[str, VC] = {}
        #: dest endpoint -> source host -> (stamp, kind) of its last delivery.
        self._last: Dict[str, Dict[str, Tuple[VC, str]]] = {}
        self.reports: List[MessageRace] = []
        self._seen: set = set()

    def _clock(self, host: str) -> VC:
        return self._host_vc.setdefault(host, {})

    def record(self, source, dest, kind: str) -> None:
        """One delivery ``source -> dest`` (addresses with ``.host``)."""
        site = call_site()
        with self._lock:
            src_host, dst_host = source.host, dest.host
            src_vc = self._clock(src_host)
            src_vc[src_host] = src_vc.get(src_host, 0) + 1
            stamp = dict(src_vc)
            inbox = self._last.setdefault(str(dest), {})
            for other_host, (other_stamp, other_kind) in inbox.items():
                if other_host == src_host:
                    continue
                if vc_concurrent(stamp, other_stamp):
                    pair = (str(dest), *sorted((src_host, other_host)))
                    if pair not in self._seen:
                        self._seen.add(pair)
                        self.reports.append(MessageRace(
                            dest=str(dest),
                            sources=(other_host, src_host),
                            kind=kind if kind == other_kind else "mixed",
                            site=site,
                        ))
            inbox[src_host] = (stamp, kind)
            # Delivery: the destination host observes the sender's past.
            dst_vc = self._clock(dst_host)
            vc_merge(dst_vc, stamp)
            dst_vc[dst_host] = dst_vc.get(dst_host, 0) + 1

    def findings(self) -> List[Finding]:
        """Every flagged pair as a PDC303 finding."""
        with self._lock:
            return [
                message_finding(r.dest, list(r.sources), r.kind, r.site)
                for r in self.reports
            ]


def digest_crosscheck(
    scenario: Callable[..., None], seeds: Sequence[int]
) -> Dict[int, str]:
    """Run ``scenario(context)`` once per seed; return each run's trace
    digest.

    All-equal digests mean the schedule/delivery nondeterminism PDC303
    flagged never became observable; differing digests confirm it did.
    The import is deferred so this module stays loadable without the
    full runtime.
    """
    from repro.runtime import RunContext

    digests: Dict[int, str] = {}
    for seed in seeds:
        context = RunContext(seed=seed)
        scenario(context)
        digests[seed] = context.tracer.digest()
    return digests

"""Static-vs-dynamic cross-validation over the fixture twin corpus.

PDC-Lint (:mod:`repro.analysis`) judges a fixture's *source*; PDC-San
(:mod:`repro.sanitizers.runner`) judges one deterministic *execution* of
it.  Running both over :data:`repro.smp.fixtures.FIXTURES` — where every
twin carries its ground truth (``expect_rules`` / ``expect_dynamic`` /
``known_false_positive``) — turns the corpus into a measurement
instrument:

- a per-fixture table of what each analyzer said vs. what it should say;
- race-dimension confusion matrices (PDC101 for the static Eraser,
  PDC301 for FastTrack), hence precision/recall for each analyzer;
- the **exonerations**: fixtures the lockset analysis flags as racy that
  FastTrack's happens-before edges prove ordered (fork/join phases, flag
  handoffs through a second lock) — the concrete evidence for the
  lecture claim that vector clocks dominate locksets on false positives,
  at the price of only judging the schedules that actually ran.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, FrozenSet, List, Optional

from repro.analysis import analyze_source

__all__ = ["FixtureVerdict", "ConfusionMatrix", "CrossReport", "cross_validate",
           "render_crossval_text", "run_crossval_cli"]


@dataclasses.dataclass(frozen=True)
class FixtureVerdict:
    """Both analyzers' verdicts on one fixture, next to its ground truth."""

    name: str
    expect_rules: FrozenSet[str]
    expect_dynamic: FrozenSet[str]
    known_false_positive: bool
    static_rules: FrozenSet[str]
    #: ``None`` when the fixture has no dynamic entry (not executed).
    dynamic_rules: Optional[FrozenSet[str]]

    @property
    def executed(self) -> bool:
        return self.dynamic_rules is not None

    @property
    def static_ok(self) -> bool:
        """Did the static analyzer say exactly what the corpus expects?"""
        return self.static_rules == self.expect_rules

    @property
    def dynamic_ok(self) -> bool:
        """Did the sanitizer run say exactly what the corpus expects?
        Vacuously true for a fixture that was never executed — the
        sanitizer has no verdict to be wrong about."""
        if not self.executed:
            return True
        return self.dynamic_rules == self.expect_dynamic

    @property
    def truly_racy(self) -> bool:
        """Ground truth for the race dimension: the corpus expects PDC101
        *and* does not mark the flag as a known lockset false positive."""
        return "PDC101" in self.expect_rules and not self.known_false_positive

    @property
    def exonerated(self) -> bool:
        """Statically flagged racy, marked as a known false positive, and
        the executed sanitizer run observed no race."""
        return (
            self.known_false_positive
            and "PDC101" in self.static_rules
            and self.executed
            and "PDC301" not in (self.dynamic_rules or frozenset())
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "expect_rules": sorted(self.expect_rules),
            "expect_dynamic": sorted(self.expect_dynamic),
            "known_false_positive": self.known_false_positive,
            "static_rules": sorted(self.static_rules),
            "dynamic_rules": (
                sorted(self.dynamic_rules) if self.executed else None
            ),
            "executed": self.executed,
            "static_ok": self.static_ok,
            "dynamic_ok": self.dynamic_ok,
            "exonerated": self.exonerated,
        }


@dataclasses.dataclass(frozen=True)
class ConfusionMatrix:
    """One analyzer's race verdicts against the corpus ground truth."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        flagged = self.tp + self.fp
        return self.tp / flagged if flagged else 1.0

    @property
    def recall(self) -> float:
        racy = self.tp + self.fn
        return self.tp / racy if racy else 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "tp": self.tp, "fp": self.fp, "fn": self.fn, "tn": self.tn,
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
        }


@dataclasses.dataclass(frozen=True)
class CrossReport:
    """The full cross-validation result."""

    verdicts: List[FixtureVerdict]
    static_races: ConfusionMatrix
    dynamic_races: ConfusionMatrix

    @property
    def exonerated(self) -> List[str]:
        """Fixtures where FastTrack cleared a lockset false positive."""
        return [v.name for v in self.verdicts if v.exonerated]

    @property
    def all_ok(self) -> bool:
        """Every verdict matches the corpus ground truth exactly."""
        return all(v.static_ok and v.dynamic_ok for v in self.verdicts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "fixtures": [v.to_dict() for v in self.verdicts],
            "static_races": self.static_races.to_dict(),
            "dynamic_races": self.dynamic_races.to_dict(),
            "exonerated": self.exonerated,
            "all_ok": self.all_ok,
        }


def _race_matrix(
    verdicts: List[FixtureVerdict], *, dynamic: bool
) -> ConfusionMatrix:
    """Race-dimension confusion counts for one analyzer.

    The dynamic matrix only scores executed fixtures — the sanitizer has
    no verdict at all on a program it never ran, which is itself the
    coverage limitation the table is meant to teach.
    """
    tp = fp = fn = tn = 0
    for v in verdicts:
        if dynamic:
            if not v.executed:
                continue
            flagged = "PDC301" in (v.dynamic_rules or frozenset())
        else:
            flagged = "PDC101" in v.static_rules
        if v.truly_racy:
            tp += flagged
            fn += not flagged
        else:
            fp += flagged
            tn += not flagged
    return ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)


def cross_validate() -> CrossReport:
    """Run both analyzers over every registered fixture."""
    from repro.smp.fixtures import all_fixtures
    from repro.sanitizers.runner import run_fixture

    verdicts: List[FixtureVerdict] = []
    for fix in all_fixtures():
        static = frozenset(
            f.rule for f in analyze_source(fix.source, f"<fixture:{fix.name}>")
        )
        dynamic: Optional[FrozenSet[str]] = None
        if fix.dynamic_entry or fix.entrypoints:
            dynamic = frozenset(run_fixture(fix).rules)
        verdicts.append(FixtureVerdict(
            name=fix.name,
            expect_rules=fix.expect_rules,
            expect_dynamic=fix.expect_dynamic,
            known_false_positive=fix.known_false_positive,
            static_rules=static,
            dynamic_rules=dynamic,
        ))
    return CrossReport(
        verdicts=verdicts,
        static_races=_race_matrix(verdicts, dynamic=False),
        dynamic_races=_race_matrix(verdicts, dynamic=True),
    )


def _cell(rules: Optional[FrozenSet[str]]) -> str:
    if rules is None:
        return "—"
    return ",".join(sorted(rules)) if rules else "clean"


def render_crossval_text(report: CrossReport) -> str:
    """The static-vs-dynamic table, as fixed-width text."""
    headers = ("fixture", "static", "dynamic", "verdict")
    rows = []
    for v in report.verdicts:
        marks = []
        marks.append("static:ok" if v.static_ok else "static:MISMATCH")
        if v.executed:
            marks.append("dynamic:ok" if v.dynamic_ok else "dynamic:MISMATCH")
        else:
            marks.append("not-run")
        if v.exonerated:
            marks.append("EXONERATED")
        rows.append((
            v.name, _cell(v.static_rules), _cell(v.dynamic_rules),
            " ".join(marks),
        ))
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(4)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines += [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    sm, dm = report.static_races, report.dynamic_races
    lines.append("")
    lines.append(
        f"race dimension — static  (PDC101): "
        f"tp={sm.tp} fp={sm.fp} fn={sm.fn} tn={sm.tn} "
        f"precision={sm.precision:.2f} recall={sm.recall:.2f}"
    )
    lines.append(
        f"race dimension — dynamic (PDC301): "
        f"tp={dm.tp} fp={dm.fp} fn={dm.fn} tn={dm.tn} "
        f"precision={dm.precision:.2f} recall={dm.recall:.2f} "
        "(executed fixtures only)"
    )
    exonerated = report.exonerated
    lines.append(
        "exonerated by happens-before: "
        + (", ".join(exonerated) if exonerated else "none")
    )
    return "\n".join(lines)


def run_crossval_cli(fmt: str) -> int:
    """The ``pdc-san --crossval`` mode: print the table, return exit code."""
    report = cross_validate()
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_crossval_text(report))
    return 0 if report.all_ok else 1

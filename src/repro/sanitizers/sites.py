"""Access-site capture: where in user code did an event happen?

A race report with both access sites is what separates a sanitizer from
an assertion.  The instrumented primitives all live in known files, so
the site of an event is the innermost stack frame *outside* those files
— the same skip-the-runtime frame walk TSan's symbolizer performs.
"""

from __future__ import annotations

import dataclasses
import os
import sys
from typing import Optional

__all__ = ["AccessSite", "call_site"]

#: Path suffixes (normalized to ``os.sep``) whose frames are runtime
#: machinery, never the user-code site of an event.
_SKIP_SUFFIXES = tuple(
    suffix.replace("/", os.sep)
    for suffix in (
        "repro/sanitizers/hooks.py",
        "repro/sanitizers/sites.py",
        "repro/sanitizers/vc.py",
        "repro/sanitizers/fasttrack.py",
        "repro/sanitizers/sanitizer.py",
        "repro/sanitizers/deadlock.py",
        "repro/sanitizers/msgrace.py",
        "repro/sanitizers/rewrite.py",
        "repro/sanitizers/runner.py",
        "repro/verify/scheduler.py",
        "repro/verify/explorer.py",
        "repro/smp/locks.py",
        "repro/smp/barrier.py",
        "repro/smp/racedetect.py",
        "repro/smp/deadlock.py",
        "repro/net/simnet.py",
        "repro/net/sockets.py",
        "repro/dist/middleware.py",
    )
)


@dataclasses.dataclass(frozen=True, order=True)
class AccessSite:
    """One source location: ``path:line`` (and the thread that was there)."""

    path: str
    line: int
    thread: str = ""

    def __str__(self) -> str:
        return f"{self.path}:{self.line}"


def _is_runtime_frame(filename: str) -> bool:
    return filename.endswith(_SKIP_SUFFIXES)


def call_site(thread: str = "") -> AccessSite:
    """The innermost non-runtime frame of the current stack."""
    frame = sys._getframe(1)
    while frame is not None and _is_runtime_frame(frame.f_code.co_filename):
        frame = frame.f_back
    if frame is None:  # pragma: no cover - only if called from runtime top
        return AccessSite("<unknown>", 0, thread)
    return AccessSite(frame.f_code.co_filename, frame.f_lineno, thread)


def site_or_here(site: Optional[AccessSite], thread: str = "") -> AccessSite:
    """``site`` if given, else capture the caller's site."""
    if site is not None:
        return site
    return call_site(thread)

"""The ``pdc-san`` CLI: ``python -m repro.sanitizers``.

The dynamic counterpart of ``pdc-lint``: instead of reading modules it
*runs* them — under source instrumentation, stand-in primitives, and a
deterministic inline scheduler — and reports what actually happened as
PDC3xx findings in the same formats pdc-lint emits.

Modes
-----
- ``pdc-san prog.py`` — instrument and run a file's ``main()``
  (``--entry`` to pick another zero-argument entry function);
- ``pdc-san --fixture racy_counter_twin`` — run one corpus twin;
- ``pdc-san --corpus`` — run every runnable corpus fixture;
- ``pdc-san --crossval`` — the static-vs-dynamic table over the corpus.

Exit codes: 0 clean, 1 findings (or, under ``--crossval``, a verdict
mismatching the corpus ground truth), 2 unrunnable input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import (
    Finding,
    render_json,
    render_sarif,
    render_text,
)
from repro.sanitizers.crossval import cross_validate, render_crossval_text
from repro.sanitizers.findings import DYNAMIC_RULES
from repro.sanitizers.runner import RunResult, run_fixture, run_source

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdc-san",
        description=(
            "Runtime concurrency sanitizers for Python teaching code: "
            "FastTrack data races (PDC301), deadlock / lock-order cycles "
            "(PDC302), and message races (PDC303).  Programs run "
            "deterministically under an inline scheduler; findings share "
            "pdc-lint's formats and suppression comments."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="Python files to instrument and run"
    )
    parser.add_argument(
        "--entry",
        default="main",
        help="zero-argument entry function for path runs (default: main)",
    )
    parser.add_argument(
        "--fixture",
        action="append",
        default=[],
        metavar="NAME",
        help="run one corpus fixture by name (repeatable)",
    )
    parser.add_argument(
        "--corpus",
        action="store_true",
        help="run every runnable fixture in the twin corpus",
    )
    parser.add_argument(
        "--crossval",
        action="store_true",
        help="static-vs-dynamic cross-validation table over the corpus",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif for CI code scanning)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the dynamic rule table and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rid, (name, severity, summary) in sorted(DYNAMIC_RULES.items()):
        lines.append(f"{rid}  {name:<24} [{severity.value}] {summary}")
    return "\n".join(lines)


def _run_crossval(fmt: str) -> int:
    report = cross_validate()
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_crossval_text(report))
    return 0 if report.all_ok else 1


def _collect_runs(
    args: argparse.Namespace,
) -> Tuple[List[RunResult], List[str]]:
    runs: List[RunResult] = []
    errors: List[str] = []
    from repro.smp.fixtures import all_fixtures, fixture

    names = list(args.fixture)
    if args.corpus:
        names.extend(
            f.name
            for f in all_fixtures()
            if (f.dynamic_entry or f.entrypoints) and f.name not in names
        )
    for name in names:
        runs.append(run_fixture(fixture(name)))
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            errors.append(f"{path}: {exc}")
            continue
        runs.append(run_source(source, path=path, entry=args.entry))
    return runs, errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the sanitizers; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if args.crossval:
        if args.format == "sarif":
            parser.error("--crossval supports text and json only")
        return _run_crossval(args.format)
    if not (args.paths or args.fixture or args.corpus):
        parser.error(
            "nothing to run (give paths, --fixture, --corpus, or --crossval)"
        )

    runs, errors = _collect_runs(args)
    findings: List[Finding] = []
    suppressed = 0
    for run in runs:
        findings.extend(run.findings)
        errors.extend(run.errors)
        suppressed += len(run.suppressed)

    extra = {}
    if args.format == "sarif":
        renderer = render_sarif
        extra["tool"] = "pdc-san"
        extra["rules"] = [
            (rid, name, summary)
            for rid, (name, _sev, summary) in sorted(DYNAMIC_RULES.items())
        ]
    elif args.format == "json":
        renderer = render_json
        extra["tool"] = "pdc-san"
    else:
        renderer = render_text
    try:
        print(
            renderer(
                sorted(findings),
                files=len(runs),
                suppressed=suppressed,
                errors=errors,
                **extra,
            )
        )
    except BrokenPipeError:
        # `pdc-san ... | head` closed the pipe; the verdict still stands.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

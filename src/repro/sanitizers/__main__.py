"""The ``pdc-san`` CLI: a thin shell over :mod:`repro.analysis.engine`.

The dynamic counterpart of ``pdc-lint``: instead of reading modules it
*runs* them — instrumented, deterministically — and reports PDC3xx
findings in the same formats.  Exit codes: 0 clean, 1 findings (or a
``--crossval`` mismatch), 2 unrunnable input.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.engine import cli as engine_cli

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdc-san",
        description=(
            "Runtime concurrency sanitizers for Python teaching code: "
            "FastTrack data races (PDC301), deadlock / lock-order cycles "
            "(PDC302), and message races (PDC303).  Programs run "
            "deterministically under an inline scheduler; findings share "
            "pdc-lint's formats and suppression comments."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="Python files to instrument and run")
    parser.add_argument(
        "--entry", default="main",
        help="zero-argument entry function for path runs (default: main)")
    parser.add_argument(
        "--fixture", action="append", default=[], metavar="NAME",
        help="run one corpus fixture by name (repeatable)")
    parser.add_argument(
        "--corpus", action="store_true",
        help="run every runnable fixture in the twin corpus")
    parser.add_argument(
        "--crossval", action="store_true",
        help="static-vs-dynamic cross-validation table over the corpus",
    )
    engine_cli.add_engine_args(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the sanitizers; returns the process exit code."""
    parser = _build_parser()
    return engine_cli.run_san(parser, parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""The ambient sanitizer hook bus (the TSan-runtime pattern, in small).

Real sanitizers work because the *primitives* are compiled against a
runtime that every synchronization operation reports to.  Here the
``smp``/``net`` primitives call these module-level functions at each
acquire/release/arrive/deliver; when no sanitizer is installed the calls
are a truthiness test and a return — cheap enough to leave in the
production primitives, which is itself the lesson (TSan ships in the
compiler for the same reason).

This module imports nothing from the rest of the package so the
primitives can import it without cycles.  Install/uninstall via
:meth:`repro.sanitizers.sanitizer.Sanitizer.activate`.
"""

from __future__ import annotations

from typing import Any, List

__all__ = [
    "install",
    "uninstall",
    "active",
    "on_acquire",
    "on_release",
    "on_sem_wait",
    "on_sem_post",
    "on_barrier_arrive",
    "on_barrier_depart",
    "on_read",
    "on_write",
    "on_deadlock_cycle",
    "on_message",
]

#: Installed sanitizer runtimes, in installation order.  A list (not a
#: single slot) so nested/overlapping activations compose in tests.
_installed: List[Any] = []


def install(runtime: Any) -> None:
    """Start routing primitive events to ``runtime``."""
    _installed.append(runtime)


def uninstall(runtime: Any) -> None:
    """Stop routing events to ``runtime`` (no-op if not installed)."""
    try:
        _installed.remove(runtime)
    except ValueError:
        pass


def active() -> bool:
    """Whether any sanitizer is currently installed."""
    return bool(_installed)


def on_acquire(key: Any) -> None:
    """A mutual-exclusion lock identified by ``key`` was acquired."""
    for rt in _installed:
        rt.on_acquire(key)


def on_release(key: Any, exclusive: bool = True) -> None:
    """The lock ``key`` is being released (``exclusive=False`` for the
    shared side of a readers–writer lock, which publishes without
    claiming sole authorship of the sync clock)."""
    for rt in _installed:
        rt.on_release(key, exclusive=exclusive)


def on_sem_wait(key: Any) -> None:
    """P/wait on semaphore ``key`` completed (permit taken)."""
    for rt in _installed:
        rt.on_sem_wait(key)


def on_sem_post(key: Any) -> None:
    """V/post on semaphore ``key`` (permit returned)."""
    for rt in _installed:
        rt.on_sem_post(key)


def on_barrier_arrive(key: Any) -> None:
    """The calling thread arrived at barrier ``key``."""
    for rt in _installed:
        rt.on_barrier_arrive(key)


def on_barrier_depart(key: Any) -> None:
    """The calling thread passed barrier ``key`` (all parties arrived)."""
    for rt in _installed:
        rt.on_barrier_depart(key)


def on_read(var: str) -> None:
    """An instrumented read of shared variable ``var``."""
    for rt in _installed:
        rt.on_read(var)


def on_write(var: str) -> None:
    """An instrumented write of shared variable ``var``."""
    for rt in _installed:
        rt.on_write(var)


def on_deadlock_cycle(cycle: Any) -> None:
    """A wait-for graph found ``cycle`` (a list of agents)."""
    for rt in _installed:
        rt.on_deadlock_cycle(cycle)


def on_message(source: Any, dest: Any, kind: str) -> None:
    """The fabric delivered a message ``source`` → ``dest``."""
    for rt in _installed:
        rt.on_message(source, dest, kind)

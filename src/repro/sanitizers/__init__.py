"""PDC-San: runtime concurrency sanitizers for the teaching substrate.

PR 1 shipped the *static* half of the sanitizer story (PDC-Lint's
Eraser-style lockset and lock-order analyses).  This package is the
*dynamic* half — the TSan/FastTrack side of the classic comparison an
instructor actually teaches:

- :mod:`.fasttrack` — a FastTrack (Flanagan & Freund, PLDI 2009)
  vector-clock data-race detector: epoch-optimized read/write metadata,
  read-shared promotion, and happens-before edges from lock
  acquire/release, semaphore post/wait, barriers, and thread fork/join.
  Races are reported with *both* access sites (PDC301).
- :mod:`.deadlock` — surfaces :class:`repro.smp.deadlock.WaitForGraph`
  cycles and observed lock-order cycles as findings (PDC302) instead of
  only raising.
- :mod:`.msgrace` — tags ``dist`` RPC / ``net`` datagram deliveries with
  vector clocks and flags concurrent conflicting deliveries to one
  endpoint as nondeterminism candidates (PDC303).

All dynamic findings flow through the *same*
:class:`repro.analysis.report.Finding` model and renderers as the static
PDC1xx/2xx findings — one pipeline, two analyses, directly comparable.
The ``pdc-san`` CLI (:mod:`.__main__`) runs a target module or the twin
corpus under instrumentation; :mod:`.crossval` runs the corpus under
*both* analyzers and emits the static-vs-dynamic precision/recall table
(FastTrack exonerating Eraser's lockset false positives).

This ``__init__`` stays import-light on purpose: the ``smp``/``net``
primitives import :mod:`.hooks` at module load, and eagerly importing
the detector stack here would create a cycle back through ``smp``.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sanitizers.crossval import CrossReport, cross_validate
    from repro.sanitizers.fasttrack import DynamicRace, FastTrackDetector
    from repro.sanitizers.runner import RunResult, run_fixture, run_source
    from repro.sanitizers.sanitizer import Sanitizer

__all__ = [
    "Sanitizer",
    "FastTrackDetector",
    "DynamicRace",
    "run_source",
    "run_fixture",
    "RunResult",
    "cross_validate",
    "CrossReport",
]

_LAZY = {
    "Sanitizer": "repro.sanitizers.sanitizer",
    "FastTrackDetector": "repro.sanitizers.fasttrack",
    "DynamicRace": "repro.sanitizers.fasttrack",
    "run_source": "repro.sanitizers.runner",
    "run_fixture": "repro.sanitizers.runner",
    "RunResult": "repro.sanitizers.runner",
    "cross_validate": "repro.sanitizers.crossval",
    "CrossReport": "repro.sanitizers.crossval",
}


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.sanitizers' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)

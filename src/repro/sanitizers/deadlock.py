"""The deadlock sanitizer: cycles become findings, not just exceptions.

:class:`repro.smp.deadlock.WaitForGraph` raises ``DeadlockDetected`` at
the moment of the doomed wait — correct for the program, useless for a
report that should survive the exception.  Under an active sanitizer
the graph *also* publishes each detected cycle through the hook bus;
this module collects them with the site of the acquisition that closed
the cycle, and converts them to PDC302 findings.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Hashable, List, Sequence

from repro.analysis.report import Finding
from repro.sanitizers.findings import deadlock_finding
from repro.sanitizers.sites import AccessSite, call_site

__all__ = ["DeadlockReport", "DeadlockSanitizer"]


@dataclasses.dataclass(frozen=True)
class DeadlockReport:
    """One wait-for cycle, and where the closing acquisition happened."""

    cycle: List[Hashable]
    site: AccessSite


class DeadlockSanitizer:
    """Collects wait-for cycles published via ``hooks.on_deadlock_cycle``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reports: List[DeadlockReport] = []

    def record(self, cycle: Sequence[Hashable]) -> None:
        """Record one cycle (called from the hook bus, so the interesting
        stack frame is whoever called ``WaitForGraph.acquire``)."""
        site = call_site()
        with self._lock:
            self.reports.append(DeadlockReport(cycle=list(cycle), site=site))

    def findings(self) -> List[Finding]:
        """Every recorded cycle as a PDC302 finding."""
        with self._lock:
            return [deadlock_finding(r.cycle, r.site) for r in self.reports]

"""Vector clocks and epochs for the dynamic happens-before analyses.

:mod:`repro.dist.clocks` teaches fixed-width vector clocks over a known
process count; the sanitizers need *dynamic membership* (threads appear
as they are forked, hosts as they first send), so this module keeps
clocks as sparse ``{tid: count}`` dicts — absent entries are zero, which
is also FastTrack's trick for keeping most clocks tiny.

An **epoch** ``(tid, clock)`` is FastTrack's scalar compression of "the
single access that matters": for a variable written (or read, while
unshared) by one thread at a time, comparing one epoch against the
current thread's vector clock replaces a full clock join — the O(1) fast
path that gives the algorithm its name.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "VC",
    "Epoch",
    "vc_get",
    "vc_merge",
    "vc_leq",
    "vc_concurrent",
    "epoch_leq",
]

#: A sparse vector clock: missing components are zero.
VC = Dict[int, int]

#: ``(tid, clock)`` — one component of a vector clock, standing alone.
Epoch = Tuple[int, int]


def vc_get(vc: VC, tid: int) -> int:
    """Component ``tid`` of ``vc`` (zero when absent)."""
    return vc.get(tid, 0)


def vc_merge(into: VC, other: Optional[VC]) -> None:
    """Pointwise-maximum join: ``into ⊔= other`` (in place)."""
    if not other:
        return
    for tid, clock in other.items():
        if clock > into.get(tid, 0):
            into[tid] = clock


def vc_leq(a: VC, b: VC) -> bool:
    """``a ⪯ b``: every component of ``a`` is covered by ``b``."""
    for tid, clock in a.items():
        if clock > b.get(tid, 0):
            return False
    return True


def vc_concurrent(a: VC, b: VC) -> bool:
    """Neither clock happens-before the other."""
    return not vc_leq(a, b) and not vc_leq(b, a)


def epoch_leq(epoch: Optional[Epoch], vc: VC) -> bool:
    """``epoch ⪯ vc`` — the FastTrack O(1) comparison (``None`` ⪯ all)."""
    if epoch is None:
        return True
    tid, clock = epoch
    return clock <= vc.get(tid, 0)

"""PDC3xx: dynamic findings in the static pipeline's Finding model.

The unification is the point — a race found by running the program and a
race found by reading it print identically, suppress identically, and
render to the same JSON/SARIF, so students compare *analyses*, not
report formats:

========  ===========================================================
PDC301    data race observed by FastTrack happens-before analysis
PDC302    deadlock: wait-for cycle hit, or lock-order cycle observed
PDC303    message race: concurrent conflicting deliveries (dist/net)
========  ===========================================================

These ids deliberately do *not* register on the static
:class:`repro.analysis.rules.RuleRegistry`: static rules promise a
seeded source example per rule, while dynamic rules fire from execution.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.report import Finding, Severity
from repro.sanitizers.fasttrack import DynamicRace
from repro.sanitizers.sites import AccessSite

__all__ = [
    "PDC301",
    "PDC302",
    "PDC303",
    "DYNAMIC_RULES",
    "race_finding",
    "deadlock_finding",
    "lock_order_finding",
    "message_finding",
]

PDC301 = "PDC301"
PDC302 = "PDC302"
PDC303 = "PDC303"

#: id -> (name, severity, summary) — the dynamic side of the rule table.
DYNAMIC_RULES: Dict[str, tuple] = {
    PDC301: (
        "dynamic-data-race",
        Severity.ERROR,
        "two unordered accesses to one variable, at least one a write "
        "(FastTrack happens-before)",
    ),
    PDC302: (
        "dynamic-deadlock",
        Severity.ERROR,
        "a wait-for cycle was reached, or the observed lock order admits "
        "an ABBA deadlock",
    ),
    PDC303: (
        "message-race",
        Severity.WARNING,
        "concurrent deliveries to one endpoint: arrival order is a "
        "nondeterminism candidate",
    ),
}


def race_finding(race: DynamicRace) -> Finding:
    """A PDC301 finding anchored at the *racing* (second) access."""
    return Finding(
        path=race.current.path,
        line=race.current.line,
        col=0,
        rule=PDC301,
        message=race.message,
        severity=Severity.ERROR,
        symbol=race.variable,
    )


def deadlock_finding(cycle: Sequence[object], site: AccessSite) -> Finding:
    """A PDC302 finding for a wait-for cycle hit at runtime."""
    chain = " -> ".join(str(a) for a in cycle)
    return Finding(
        path=site.path,
        line=site.line,
        col=0,
        rule=PDC302,
        message=(
            f"deadlock: wait-for cycle {chain} reached at runtime "
            "(circular wait among these agents)"
        ),
        severity=Severity.ERROR,
        symbol=chain,
    )


def lock_order_finding(cycle: Sequence[object], site: AccessSite) -> Finding:
    """A PDC302 finding for an *observed* lock-order cycle — no thread
    deadlocked on this run, but some interleaving can."""
    chain = " -> ".join(str(lock) for lock in cycle)
    return Finding(
        path=site.path,
        line=site.line,
        col=0,
        rule=PDC302,
        message=(
            f"lock-order cycle observed: {chain} -> back; two threads "
            "taking these locks in opposite orders can deadlock even "
            "though this run did not"
        ),
        severity=Severity.ERROR,
        symbol=chain,
    )


def message_finding(
    dest: str, sources: Sequence[str], kind: str, site: AccessSite
) -> Finding:
    """A PDC303 finding: deliveries to ``dest`` with no mutual ordering."""
    who = " and ".join(sources)
    return Finding(
        path=site.path,
        line=site.line,
        col=0,
        rule=PDC303,
        message=(
            f"message race at {dest}: {kind} deliveries from {who} are "
            "causally concurrent — arrival order can differ between "
            "runs (nondeterminism candidate)"
        ),
        severity=Severity.WARNING,
        symbol=dest,
    )


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order (path, line, col, rule)."""
    return sorted(findings)

"""The PDC-San facade: one object implementing the whole hook interface.

A :class:`Sanitizer` owns a FastTrack detector, a deadlock collector,
and a message-race tracker, and speaks the
:mod:`repro.sanitizers.hooks` protocol so the instrumented ``smp`` and
``net`` primitives feed all three at once::

    san = Sanitizer()
    with san.activate():
        run_the_program()
    for finding in san.findings():
        print(finding.location(), finding.message)

With a :class:`~repro.runtime.RunContext`, each detection also lands in
the run's metric registry (``san.races`` / ``san.deadlocks`` /
``san.msg_races``) and trace — the sanitizer is an observer *inside*
the observability substrate, not beside it.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Hashable, Iterator, List, Optional, Sequence

from repro.analysis.report import Finding
from repro.runtime import RunContext
from repro.sanitizers import hooks
from repro.sanitizers.deadlock import DeadlockSanitizer
from repro.sanitizers.fasttrack import DynamicRace, FastTrackDetector
from repro.sanitizers.findings import race_finding
from repro.sanitizers.msgrace import MessageRaceSanitizer

__all__ = ["Sanitizer"]


class Sanitizer:
    """Unified dynamic analysis: races, deadlocks, message races."""

    def __init__(self, context: Optional[RunContext] = None) -> None:
        self._context = context
        self.fasttrack = FastTrackDetector(on_race=self._race_observed)
        self.deadlocks = DeadlockSanitizer()
        self.messages = MessageRaceSanitizer()

    def _race_observed(self, race: DynamicRace) -> None:
        if self._context is not None:
            self._context.registry.counter("san.races").inc()
            self._context.tracer.instant(
                "san.race", cat="san",
                args={"var": race.variable, "kind": race.kind},
            )

    # -- the hooks protocol ------------------------------------------------
    def on_acquire(self, key: Any) -> None:
        self.fasttrack.acquire(key)

    def on_release(self, key: Any, exclusive: bool = True) -> None:
        self.fasttrack.release(key, exclusive=exclusive)

    def on_sem_wait(self, key: Any) -> None:
        self.fasttrack.sem_wait(key)

    def on_sem_post(self, key: Any) -> None:
        self.fasttrack.sem_post(key)

    def on_barrier_arrive(self, key: Any) -> None:
        self.fasttrack.barrier_arrive(key)

    def on_barrier_depart(self, key: Any) -> None:
        self.fasttrack.barrier_depart(key)

    def on_read(self, var: str) -> None:
        self.fasttrack.read(var)

    def on_write(self, var: str) -> None:
        self.fasttrack.write(var)

    def on_deadlock_cycle(self, cycle: Sequence[Hashable]) -> None:
        self.deadlocks.record(cycle)
        if self._context is not None:
            self._context.registry.counter("san.deadlocks").inc()
            self._context.tracer.instant(
                "san.deadlock", cat="san",
                args={"cycle": [str(a) for a in cycle]},
            )

    def on_message(self, source: Any, dest: Any, kind: str) -> None:
        before = len(self.messages.reports)
        self.messages.record(source, dest, kind)
        if self._context is not None and len(self.messages.reports) > before:
            self._context.registry.counter("san.msg_races").inc()

    # -- lifecycle ---------------------------------------------------------
    @contextlib.contextmanager
    def activate(self) -> Iterator["Sanitizer"]:
        """Install on the hook bus for the duration of the block."""
        hooks.install(self)
        try:
            yield self
        finally:
            hooks.uninstall(self)

    def thread(
        self,
        target,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        name: Optional[str] = None,
    ) -> threading.Thread:
        """A real ``threading.Thread`` whose fork/join edges this
        sanitizer tracks: ``start()`` was preceded by the fork (the clock
        snapshot happens *here*, at creation-before-start), and
        ``join()`` performs the join merge on the caller's clock."""
        tid = self.fasttrack.fork_child(name=name)
        detector = self.fasttrack

        def run() -> None:
            detector.bind(tid)
            target(*args, **(kwargs or {}))

        thread = threading.Thread(target=run, name=name or f"san-{tid}")
        original_join = thread.join

        def join(timeout: Optional[float] = None) -> None:
            original_join(timeout)
            if not thread.is_alive():
                detector.join_child(tid)

        thread.join = join  # type: ignore[method-assign]
        return thread

    # -- results -----------------------------------------------------------
    def findings(self) -> List[Finding]:
        """Every dynamic finding, in deterministic report order."""
        found = [race_finding(r) for r in self.fasttrack.races]
        found.extend(self.deadlocks.findings())
        found.extend(self.messages.findings())
        return sorted(found)

"""AST instrumentation: make a plain module report its shared accesses.

:class:`repro.smp.racedetect.SharedVariable` instruments code that *opted
in*; real sanitizers instrument code that didn't.  This rewriter is the
compiler pass in miniature: given module source, it finds the
module-global names (assigned at module level, or declared ``global``
in a function) and injects an event call around every statement that
reads or writes one::

    counter += 1          # becomes:
    __pdcsan__.rd('counter')
    counter += 1
    __pdcsan__.wr('counter')

Event calls are *separate statements* carrying the original line number,
so the detector's frame walk reports the right source line, and the
rewritten expression semantics are untouched (the events never evaluate
the variable — no ``NameError`` risk, no double evaluation).

Granularity matches the static analyzer's documented limitation: a
store through a global (``flag[0] = True``, ``results.append(x)``) is
an access to the *name* — object-level, like PDC101's model, so the two
analyzers judge the same abstraction.  ``while`` headers get their read
events both before the loop and at the end of the body (each iteration
re-reads).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.sanitizers.fasttrack import FastTrackDetector

__all__ = ["EventApi", "shared_names", "instrument_source"]


class EventApi:
    """The ``__pdcsan__`` object injected into instrumented namespaces."""

    __slots__ = ("_detector", "_scheduler")

    def __init__(self, detector: FastTrackDetector, scheduler=None) -> None:
        self._detector = detector
        #: Optional cooperative scheduler (repro.verify); when present,
        #: every shared access becomes a preemption/decision point.
        self._scheduler = scheduler

    def rd(self, name: str) -> None:
        """Read event (site = the caller's frame, i.e. the rewritten line)."""
        if self._scheduler is not None:
            self._scheduler.op("rd", name)
        self._detector.read(name)

    def wr(self, name: str) -> None:
        """Write event."""
        if self._scheduler is not None:
            self._scheduler.op("wr", name)
        self._detector.write(name)


def shared_names(tree: ast.Module) -> Set[str]:
    """Names treated as shared state: assigned at module level, or
    declared ``global`` anywhere."""
    shared: Set[str] = set()
    for stmt in tree.body:
        for name in _assigned_names(stmt):
            shared.add(name)
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            shared.update(node.names)
    return shared


def _assigned_names(stmt: ast.stmt) -> Iterable[str]:
    if isinstance(stmt, ast.Assign):
        targets: Sequence[ast.expr] = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    else:
        return
    for target in targets:
        yield from _target_names(target)


def _target_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


def _base_name(node: ast.expr) -> Optional[str]:
    """The leftmost ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _walk_no_lambda(node: ast.AST) -> Iterable[ast.AST]:
    """Walk an expression without descending into lambda bodies (those
    run later, in their own scope)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _header_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """The expressions a statement evaluates *itself* (compound bodies
    excluded — they are instrumented recursively)."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [n for n in ast.iter_child_nodes(stmt) if isinstance(n, ast.expr)]


def _read_names(stmt: ast.stmt, tracked: Set[str]) -> List[str]:
    reads: List[str] = []
    for expr in _header_exprs(stmt):
        for node in _walk_no_lambda(expr):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in tracked
                and node.id not in reads
            ):
                reads.append(node.id)
    return reads


def _write_names(stmt: ast.stmt, tracked: Set[str]) -> List[str]:
    writes: List[str] = []
    if isinstance(stmt, ast.Assign):
        targets: Sequence[ast.expr] = stmt.targets
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target] if stmt.value is not None else []
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    else:
        return writes
    for target in targets:
        for name in _target_names(target):
            if name in tracked and name not in writes:
                writes.append(name)
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = _base_name(target)
            if base is not None and base in tracked and base not in writes:
                writes.append(base)
    return writes


def _event(kind: str, name: str, like: ast.stmt) -> ast.stmt:
    call = ast.Expr(
        value=ast.Call(
            func=ast.Attribute(
                value=ast.Name(id="__pdcsan__", ctx=ast.Load()),
                attr=kind,
                ctx=ast.Load(),
            ),
            args=[ast.Constant(value=name)],
            keywords=[],
        )
    )
    return ast.copy_location(call, like)


class _Scope:
    """Which of the shared names are visible (not shadowed) here."""

    def __init__(self, tracked: Set[str]) -> None:
        self.tracked = tracked


def _function_scope(
    fn: ast.AST, shared: Set[str]
) -> _Scope:
    local: Set[str] = set()
    declared_global: Set[str] = set()
    args = fn.args  # type: ignore[attr-defined]
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        local.add(arg.arg)
    if args.vararg:
        local.add(args.vararg.arg)
    if args.kwarg:
        local.add(args.kwarg.arg)
    for node in _walk_own_statements(fn.body):  # type: ignore[attr-defined]
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            local.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            local.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            local.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                local.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            local.add(node.name)
    tracked = {n for n in shared if n in declared_global or n not in local}
    return _Scope(tracked)


def _walk_own_statements(body: Sequence[ast.stmt]) -> Iterable[ast.AST]:
    """Walk statements without entering nested function/class scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _instrument_body(
    body: List[ast.stmt], scope: _Scope, shared: Set[str]
) -> List[ast.stmt]:
    out: List[ast.stmt] = []
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = _function_scope(stmt, shared)
            stmt.body = _instrument_body(stmt.body, inner, shared)
            out.append(stmt)
            continue
        if isinstance(stmt, ast.ClassDef):
            stmt.body = _instrument_body(stmt.body, scope, shared)
            out.append(stmt)
            continue
        reads = _read_names(stmt, scope.tracked)
        writes = _write_names(stmt, scope.tracked)
        if isinstance(stmt, ast.AugAssign):
            for name in _write_names(stmt, scope.tracked):
                if name not in reads:
                    reads.append(name)  # x += 1 reads x first
        for field in ("body", "orelse", "finalbody"):
            child = getattr(stmt, field, None)
            if isinstance(child, list) and child and isinstance(
                child[0], ast.stmt
            ):
                setattr(stmt, field, _instrument_body(child, scope, shared))
        for handler in getattr(stmt, "handlers", []) or []:
            handler.body = _instrument_body(handler.body, scope, shared)
        if isinstance(stmt, ast.While) and reads:
            # Each iteration re-evaluates the header: re-read at body end.
            stmt.body = list(stmt.body) + [
                _event("rd", name, stmt) for name in reads
            ]
        out.extend(_event("rd", name, stmt) for name in reads)
        out.append(stmt)
        out.extend(_event("wr", name, stmt) for name in writes)
    return out


def instrument_source(
    source: str, filename: str = "<instrumented>"
) -> Tuple[ast.Module, Set[str]]:
    """Parse ``source`` and inject shared-access events.

    Returns the instrumented module (ready for ``compile``) and the set
    of names treated as shared.  The namespace executing the result must
    define ``__pdcsan__`` (an :class:`EventApi`).
    """
    tree = ast.parse(source, filename=filename)
    shared = shared_names(tree)
    tree.body = _instrument_body(tree.body, _Scope(set(shared)), shared)
    ast.fix_missing_locations(tree)
    return tree, shared

"""The FastTrack dynamic data-race detector (Flanagan & Freund, 2009).

Where PDC-Lint's PDC101 reasons about *locksets* ("was there a common
lock?"), FastTrack reasons about *happens-before* ("was there any
ordering at all?").  Every thread carries a vector clock; every
synchronization operation transfers clocks:

========================  ============================================
lock release → acquire    ``L := C_t`` on release, ``C_t ⊔= L`` on
                          acquire (the release *publishes*, the acquire
                          *subscribes*)
semaphore post → wait     ``L ⊔= C_t`` on post (merge — several posters
                          may publish), ``C_t ⊔= L`` on wait
barrier                   all-to-all: arrivals merge into the barrier
                          clock, departures merge it back out
thread fork               child ⊒ parent (the child sees everything the
                          parent did before ``start()``)
thread join               parent ⊔= child (join makes the child's work
                          visible)
========================  ============================================

Two accesses to the same variable race iff neither is ordered before
the other by that relation and at least one is a write.  FastTrack's
contribution is the **epoch**: because non-racy writes are totally
ordered, the full prior-writes clock collapses to a single ``(tid,
clock)`` pair, making the common case O(1).  Reads stay an epoch until
two threads read concurrently, when the read state **promotes** to a
full vector clock (the "read-shared" state) — and a write demotes it
back.

The payoff over lockset analysis is *precision*: a program ordered by
fork/join handoff or by passing data through different locks over time
is provably race-free here, while Eraser-style analysis flags it.  The
twin corpus pins both sides of that comparison (see
:mod:`repro.sanitizers.crossval`).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.sanitizers.sites import AccessSite, call_site
from repro.sanitizers.vc import (
    VC,
    Epoch,
    epoch_leq,
    vc_leq,
    vc_merge,
)

__all__ = ["DynamicRace", "FastTrackDetector"]


@dataclasses.dataclass(frozen=True)
class DynamicRace:
    """One detected race: two unordered accesses, at least one a write."""

    variable: str
    #: ``write-write``, ``write-read`` (prior write, racing read) or
    #: ``read-write`` (prior read, racing write).
    kind: str
    prior: AccessSite
    current: AccessSite

    @property
    def message(self) -> str:
        """The human-facing one-liner, both sites included."""
        return (
            f"data race on `{self.variable}` ({self.kind}): "
            f"{self.current.thread or 'a thread'} at {self.current} is "
            f"unordered with the {self.kind.split('-')[0]} by "
            f"{self.prior.thread or 'another thread'} at {self.prior}"
        )


class _VarState:
    """FastTrack per-variable metadata: a write epoch plus read state
    that is an epoch until promoted to a clock by concurrent readers."""

    __slots__ = (
        "write_epoch", "write_site", "read_epoch", "read_site",
        "read_vc", "read_sites",
    )

    def __init__(self) -> None:
        self.write_epoch: Optional[Epoch] = None
        self.write_site: Optional[AccessSite] = None
        self.read_epoch: Optional[Epoch] = None
        self.read_site: Optional[AccessSite] = None
        #: Populated only in the read-shared state.
        self.read_vc: Optional[VC] = None
        self.read_sites: Dict[int, AccessSite] = {}

    @property
    def shared(self) -> bool:
        return self.read_vc is not None


class FastTrackDetector:
    """Vector-clock race detection over named shared variables.

    Threads are *logical*: real OS threads register lazily by ident, and
    the deterministic fixture runner multiplexes many logical threads
    onto one OS thread via :meth:`push_logical`/:meth:`pop_logical` (so
    verdicts do not depend on the scheduler).  Synchronization objects
    are identified by the object itself (identity hashing) or any
    hashable key.
    """

    def __init__(
        self, on_race: Optional[Callable[[DynamicRace], None]] = None
    ) -> None:
        self._lock = threading.Lock()
        self._clocks: Dict[int, VC] = {}
        self._names: Dict[int, str] = {}
        self._sync: Dict[Any, VC] = {}
        self._vars: Dict[str, _VarState] = {}
        self._os_tids: Dict[int, int] = {}
        self._logical: Dict[int, List[int]] = {}
        self._next_tid = 0
        self._seen: Set[Tuple[str, str, str, int, str, int]] = set()
        self.races: List[DynamicRace] = []
        self._on_race = on_race

    # -- thread identity ---------------------------------------------------
    def _new_tid(self, name: Optional[str]) -> int:
        tid = self._next_tid
        self._next_tid += 1
        self._clocks[tid] = {tid: 1}
        self._names[tid] = name if name else f"T{tid}"
        return tid

    def _current_tid(self) -> int:
        ident = threading.get_ident()
        stack = self._logical.get(ident)
        if stack:
            return stack[-1]
        tid = self._os_tids.get(ident)
        if tid is None:
            tid = self._new_tid(threading.current_thread().name)
            self._os_tids[ident] = tid
        return tid

    def thread_name(self, tid: Optional[int] = None) -> str:
        """Display name of ``tid`` (default: the calling thread's)."""
        with self._lock:
            if tid is None:
                tid = self._current_tid()
            return self._names.get(tid, f"T{tid}")

    # -- fork / join -------------------------------------------------------
    def fork_child(self, name: Optional[str] = None) -> int:
        """Create a child thread id inheriting the caller's clock.

        The fork edge: the child starts at ``C_child ⊒ C_parent``, and
        the parent ticks so its *subsequent* work is unordered with the
        child's — two children forked in a row are concurrent with each
        other, which is exactly why sibling writes still race.
        """
        with self._lock:
            parent = self._current_tid()
            tid = self._new_tid(name)
            child_vc = dict(self._clocks[parent])
            child_vc[tid] = 1
            self._clocks[tid] = child_vc
            self._clocks[parent][parent] += 1
            return tid

    def join_child(self, tid: int) -> None:
        """The join edge: everything ``tid`` did is now visible here."""
        with self._lock:
            parent = self._current_tid()
            vc_merge(self._clocks[parent], self._clocks.get(tid))

    def push_logical(self, tid: int) -> None:
        """Run the calling OS thread *as* logical thread ``tid``."""
        with self._lock:
            self._logical.setdefault(threading.get_ident(), []).append(tid)

    def pop_logical(self) -> None:
        """Undo the innermost :meth:`push_logical`."""
        with self._lock:
            stack = self._logical.get(threading.get_ident())
            if stack:
                stack.pop()

    def bind(self, tid: int) -> None:
        """Identify the calling OS thread with logical thread ``tid``
        (used by :meth:`Sanitizer.thread` for real ``threading`` runs)."""
        with self._lock:
            self._os_tids[threading.get_ident()] = tid

    # -- synchronization edges --------------------------------------------
    def acquire(self, key: Any) -> None:
        """Subscribe: ``C_t ⊔= L``."""
        with self._lock:
            tid = self._current_tid()
            vc_merge(self._clocks[tid], self._sync.get(key))

    def release(self, key: Any, exclusive: bool = True) -> None:
        """Publish: ``L := C_t`` (exclusive) or ``L ⊔= C_t`` (shared
        holders — reader-side releases — must not erase each other)."""
        with self._lock:
            tid = self._current_tid()
            clock = self._clocks[tid]
            if exclusive:
                self._sync[key] = dict(clock)
            else:
                vc_merge(self._sync.setdefault(key, {}), clock)
            clock[tid] = clock.get(tid, 0) + 1

    def sem_wait(self, key: Any) -> None:
        """P: subscribe to every prior post."""
        with self._lock:
            tid = self._current_tid()
            vc_merge(self._clocks[tid], self._sync.get(key))

    def sem_post(self, key: Any) -> None:
        """V: merge-publish (several posters may feed one waiter)."""
        with self._lock:
            tid = self._current_tid()
            clock = self._clocks[tid]
            vc_merge(self._sync.setdefault(key, {}), clock)
            clock[tid] = clock.get(tid, 0) + 1

    def barrier_arrive(self, key: Any) -> None:
        """Merge into the barrier clock; every arrival publishes."""
        with self._lock:
            tid = self._current_tid()
            clock = self._clocks[tid]
            vc_merge(self._sync.setdefault(key, {}), clock)
            clock[tid] = clock.get(tid, 0) + 1

    def barrier_depart(self, key: Any) -> None:
        """Leave with the merged clock: all arrivals precede all
        departures of one generation, the all-to-all barrier edge."""
        with self._lock:
            tid = self._current_tid()
            vc_merge(self._clocks[tid], self._sync.get(key))

    # -- instrumented accesses --------------------------------------------
    def _report(
        self,
        var: str,
        kind: str,
        prior: Optional[AccessSite],
        current: AccessSite,
    ) -> None:
        prior = prior if prior is not None else AccessSite("<unknown>", 0)
        key = (var, kind, prior.path, prior.line, current.path, current.line)
        if key in self._seen:
            return
        self._seen.add(key)
        race = DynamicRace(variable=var, kind=kind, prior=prior, current=current)
        self.races.append(race)
        if self._on_race is not None:
            self._on_race(race)

    def read(self, var: str, site: Optional[AccessSite] = None) -> None:
        """Record one read of ``var`` by the calling (logical) thread."""
        with self._lock:
            tid = self._current_tid()
            clock = self._clocks[tid]
            epoch: Epoch = (tid, clock.get(tid, 0))
            state = self._vars.setdefault(var, _VarState())
            if state.read_epoch == epoch:
                return  # same-epoch fast path
            if state.shared and state.read_vc.get(tid, 0) == epoch[1]:
                return
            here = site if site is not None else call_site(self._names[tid])
            if not epoch_leq(state.write_epoch, clock):
                self._report(var, "write-read", state.write_site, here)
            if state.shared:
                assert state.read_vc is not None
                state.read_vc[tid] = epoch[1]
                state.read_sites[tid] = here
            elif state.read_epoch is None or epoch_leq(state.read_epoch, clock):
                state.read_epoch = epoch  # still one reader at a time
                state.read_site = here
            else:
                # Read-shared promotion: two concurrent readers force the
                # epoch up to a full clock (FastTrack's one slow path).
                prev_tid, prev_clock = state.read_epoch
                state.read_vc = {prev_tid: prev_clock, tid: epoch[1]}
                if state.read_site is not None:
                    state.read_sites[prev_tid] = state.read_site
                state.read_sites[tid] = here
                state.read_epoch = None
                state.read_site = None

    def write(self, var: str, site: Optional[AccessSite] = None) -> None:
        """Record one write of ``var`` by the calling (logical) thread."""
        with self._lock:
            tid = self._current_tid()
            clock = self._clocks[tid]
            epoch: Epoch = (tid, clock.get(tid, 0))
            state = self._vars.setdefault(var, _VarState())
            if state.write_epoch == epoch:
                return  # same-epoch fast path
            here = site if site is not None else call_site(self._names[tid])
            if not epoch_leq(state.write_epoch, clock):
                self._report(var, "write-write", state.write_site, here)
            if state.shared:
                assert state.read_vc is not None
                if not vc_leq(state.read_vc, clock):
                    for r_tid, r_clock in state.read_vc.items():
                        if r_clock > clock.get(r_tid, 0):
                            self._report(
                                var, "read-write",
                                state.read_sites.get(r_tid), here,
                            )
            elif not epoch_leq(state.read_epoch, clock):
                self._report(var, "read-write", state.read_site, here)
            # The write supersedes all read state (FastTrack demotes the
            # variable back to exclusive).
            state.write_epoch = epoch
            state.write_site = here
            state.read_epoch = None
            state.read_site = None
            state.read_vc = None
            state.read_sites = {}

    # -- introspection -----------------------------------------------------
    def clock_of(self, tid: Optional[int] = None) -> VC:
        """A copy of a thread's vector clock (default: the caller's)."""
        with self._lock:
            if tid is None:
                tid = self._current_tid()
            return dict(self._clocks.get(tid, {}))

    def read_state_of(self, var: str) -> Tuple[Optional[Epoch], Optional[VC]]:
        """``(read_epoch, read_vc)`` — exactly one is non-``None`` after a
        read; exposed so tests can pin the epoch→shared promotion."""
        with self._lock:
            state = self._vars.get(var)
            if state is None:
                return None, None
            vc = dict(state.read_vc) if state.read_vc is not None else None
            return state.read_epoch, vc

    @property
    def racy_variables(self) -> Set[str]:
        """Names of variables with at least one reported race."""
        return {r.variable for r in self.races}

"""Run a module under PDC-San instrumentation, deterministically.

The runner executes rewritten source (:mod:`repro.sanitizers.rewrite`)
in a namespace whose ``threading`` module is replaced by sanitized
stand-ins.  The crucial choice is that spawned threads are **logical**:
``Thread.start()`` runs the target *inline, to completion*, on the
calling OS thread, while the FastTrack detector tracks it as a separate
thread via a logical-tid stack.  Sequential execution changes nothing
about the happens-before analysis — the fork edge still orders parent
before child, two children are still mutually unordered — but it makes
the verdict **schedule-independent**: same source in, same findings
out, every run, which is what lets CI assert on sanitizer output and
lets the same-seed determinism criterion hold trivially.

(The trade-off, stated honestly: programs whose *liveness* depends on
real concurrency — a spin loop waiting for another thread, a barrier
with blocking semantics — cannot be replayed inline.  Those are
exercised with real threads in the unit tests instead; the corpus marks
which fixtures are runnable via ``dynamic_entry``/``entrypoints``.)

Lock nesting is simultaneously fed to a lock-order audit, so an ABBA
pattern surfaces as a PDC302 finding even though the sequential replay
can never actually deadlock — the same trick
:func:`repro.smp.fixtures.replay_lock_trace` plays, now unified into
the findings pipeline.
"""

from __future__ import annotations

import builtins
import dataclasses
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.report import Finding, apply_suppressions
from repro.sanitizers.fasttrack import FastTrackDetector
from repro.sanitizers.findings import lock_order_finding
from repro.sanitizers.rewrite import EventApi, instrument_source
from repro.sanitizers.sanitizer import Sanitizer
from repro.sanitizers.sites import AccessSite, call_site

__all__ = ["RunResult", "run_source", "run_fixture"]


@dataclasses.dataclass
class RunResult:
    """Everything one sanitized execution produced."""

    path: str
    findings: List[Finding]
    suppressed: List[Finding]
    errors: List[str]
    #: Return value of the entry function (``None`` without one).
    value: Any
    #: Module-global names that were instrumented.
    shared: Tuple[str, ...]
    sanitizer: Sanitizer

    @property
    def rules(self) -> set:
        """The distinct rule ids among the kept findings."""
        return {f.rule for f in self.findings}

    @property
    def exit_code(self) -> int:
        """Mirror of pdc-lint's convention: 0 clean, 1 findings, 2 errors."""
        if self.errors:
            return 2
        return 1 if self.findings else 0


class _SanLock:
    """A lock stand-in: happens-before edges plus lock-order auditing."""

    kind = "lock"

    def __init__(self, runtime: "_SanRuntime") -> None:
        self._runtime = runtime
        self.name = f"lock{runtime.new_lock_index()}"

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._runtime.lock_acquired(self)
        return True

    def release(self) -> None:
        self._runtime.lock_released(self)

    def locked(self) -> bool:
        return self in self._runtime.held

    def __enter__(self) -> "_SanLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return self.name


class _SanCondition(_SanLock):
    """Condition stand-in: ``wait`` republishes-then-resubscribes (the
    release/acquire pair buried inside a real ``Condition.wait``)."""

    kind = "condition"

    def wait(self, timeout: Optional[float] = None) -> bool:
        detector = self._runtime.detector
        detector.release(self)
        detector.acquire(self)
        return True

    def wait_for(self, predicate, timeout: Optional[float] = None) -> bool:
        self.wait(timeout)
        return bool(predicate())

    def notify(self, n: int = 1) -> None:
        return None  # the surrounding release publishes the clock

    def notify_all(self) -> None:
        return None


class _SanSemaphore:
    """Semaphore stand-in: post merges, wait subscribes."""

    def __init__(self, runtime: "_SanRuntime", value: int = 1) -> None:
        self._runtime = runtime
        self._value = value

    def acquire(self, blocking: bool = True, timeout: Optional[float] = None) -> bool:
        self._runtime.detector.sem_wait(self)
        self._value -= 1
        return True

    def release(self, n: int = 1) -> None:
        self._value += n
        self._runtime.detector.sem_post(self)

    def __enter__(self) -> "_SanSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class _SanEvent:
    """Event stand-in: ``set`` publishes, ``wait`` subscribes."""

    def __init__(self, runtime: "_SanRuntime") -> None:
        self._runtime = runtime
        self._set = False

    def set(self) -> None:
        self._set = True
        self._runtime.detector.sem_post(self)

    def clear(self) -> None:
        self._set = False

    def is_set(self) -> bool:
        return self._set

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._runtime.detector.sem_wait(self)
        return self._set


class _SanBarrier:
    """Barrier stand-in (inline: arrive and depart in one step)."""

    def __init__(self, runtime: "_SanRuntime", parties: int, action=None) -> None:
        self._runtime = runtime
        self.parties = parties
        self._action = action

    def wait(self, timeout: Optional[float] = None) -> int:
        detector = self._runtime.detector
        detector.barrier_arrive(self)
        if self._action is not None:
            self._action()
        detector.barrier_depart(self)
        return 0


class _LogicalThread:
    """``threading.Thread`` stand-in that runs its target inline under a
    forked logical thread id — sequential execution, concurrent clocks."""

    def __init__(
        self,
        runtime: "_SanRuntime",
        group=None,
        target=None,
        name: Optional[str] = None,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        daemon: Optional[bool] = None,
    ) -> None:
        self._runtime = runtime
        self._target = target
        self._args = args
        self._kwargs = kwargs or {}
        self.name = name or f"Thread-{runtime.new_thread_index()}"
        self.daemon = bool(daemon)
        self._tid: Optional[int] = None
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("threads can only be started once")
        self._started = True
        detector = self._runtime.detector
        self._tid = detector.fork_child(name=self.name)
        detector.push_logical(self._tid)
        try:
            if self._target is not None:
                self._target(*self._args, **self._kwargs)
        except Exception as exc:  # noqa: BLE001 - recorded, not fatal
            self._runtime.errors.append(
                f"{self.name} raised {type(exc).__name__}: {exc}"
            )
        finally:
            detector.pop_logical()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._tid is not None:
            self._runtime.detector.join_child(self._tid)

    def is_alive(self) -> bool:
        return False

    def run(self) -> None:  # pragma: no cover - parity with threading API
        if self._target is not None:
            self._target(*self._args, **self._kwargs)


class _SanRuntime:
    """Shared state behind the stand-in ``threading`` module."""

    def __init__(self, detector: FastTrackDetector) -> None:
        self.detector = detector
        self.errors: List[str] = []
        self.held: List[_SanLock] = []
        #: first-seen site per acquired-while-holding edge (name pairs).
        self.lock_edges: Dict[Tuple[str, str], AccessSite] = {}
        self._lock_count = 0
        self._thread_count = 0

    def new_lock_index(self) -> int:
        index = self._lock_count
        self._lock_count += 1
        return index

    def new_thread_index(self) -> int:
        self._thread_count += 1
        return self._thread_count

    def lock_acquired(self, lock: _SanLock) -> None:
        site = call_site(self.detector.thread_name())
        for outer in self.held:
            edge = (outer.name, lock.name)
            if outer is not lock and edge not in self.lock_edges:
                self.lock_edges[edge] = site
        self.held.append(lock)
        self.detector.acquire(lock)

    def lock_released(self, lock: _SanLock) -> None:
        if lock in self.held:
            self.held.remove(lock)
        self.detector.release(lock)

    def order_findings(self) -> List[Finding]:
        """PDC302 findings for cycles in the observed lock order.

        ``nx.simple_cycles`` yields each cycle in an arbitrary rotation
        (and order) that varies with the per-process hash seed; cycles
        are canonicalized — rotated to start at their smallest lock,
        then sorted — so the same run always reports the same finding.
        """
        graph = nx.DiGraph()
        graph.add_edges_from(self.lock_edges)
        cycles = []
        for cycle in nx.simple_cycles(graph):
            pivot = min(range(len(cycle)), key=cycle.__getitem__)
            cycles.append(cycle[pivot:] + cycle[:pivot])
        findings = []
        for cycle in sorted(cycles):
            edge = (cycle[0], cycle[1 % len(cycle)])
            site = self.lock_edges.get(
                edge, next(iter(self.lock_edges.values()))
            )
            findings.append(lock_order_finding(cycle, site))
        return findings


class _SanThreading:
    """The ``threading`` module, as instrumented code sees it."""

    def __init__(self, runtime: _SanRuntime) -> None:
        self._runtime = runtime
        self.TIMEOUT_MAX = threading.TIMEOUT_MAX

    def Thread(self, *args: Any, **kwargs: Any) -> _LogicalThread:  # noqa: N802
        return _LogicalThread(self._runtime, *args, **kwargs)

    def Lock(self) -> _SanLock:  # noqa: N802 - mirrors the threading API
        return _SanLock(self._runtime)

    RLock = Lock

    def Condition(self, lock: Optional[_SanLock] = None) -> _SanCondition:  # noqa: N802
        return _SanCondition(self._runtime)

    def Semaphore(self, value: int = 1) -> _SanSemaphore:  # noqa: N802
        return _SanSemaphore(self._runtime, value)

    BoundedSemaphore = Semaphore

    def Event(self) -> _SanEvent:  # noqa: N802
        return _SanEvent(self._runtime)

    def Barrier(self, parties: int, action=None, timeout=None) -> _SanBarrier:  # noqa: N802
        return _SanBarrier(self._runtime, parties, action)

    def local(self) -> Any:
        return threading.local()

    def current_thread(self) -> Any:
        return threading.current_thread()

    def get_ident(self) -> int:
        return threading.get_ident()


def run_source(
    source: str,
    path: str = "<module>",
    entry: Optional[str] = "main",
    entrypoints: Sequence[str] = (),
    sanitizer: Optional[Sanitizer] = None,
) -> RunResult:
    """Execute ``source`` under full PDC-San instrumentation.

    The module body runs first (on the root logical thread).  Then
    either ``entry`` is called if the module defines it (the common
    "call ``main()``" shape; pass ``entry=None`` to skip), or each name
    in ``entrypoints`` runs as its *own* logical thread — mutually
    concurrent, all joined at the end — which models "these functions
    are the thread bodies" for fixtures without a driver.
    """
    san = sanitizer if sanitizer is not None else Sanitizer()
    detector = san.fasttrack
    runtime = _SanRuntime(detector)
    errors = runtime.errors
    value: Any = None
    shared: Tuple[str, ...] = ()
    try:
        tree, shared_set = instrument_source(source, filename=path)
        shared = tuple(sorted(shared_set))
        code = compile(tree, path, "exec")
    except SyntaxError as exc:
        return RunResult(
            path=path, findings=[], suppressed=[],
            errors=[f"syntax error: {exc}"], value=None, shared=(),
            sanitizer=san,
        )
    traced = _SanThreading(runtime)
    real_import = builtins.__import__

    def import_sanitized(name: str, *args: object, **kwargs: object):
        if name == "threading":
            return traced
        return real_import(name, *args, **kwargs)

    namespace: Dict[str, object] = {
        "__name__": "__pdcsan_target__",
        "__builtins__": {**vars(builtins), "__import__": import_sanitized},
        "__pdcsan__": EventApi(detector),
    }
    with san.activate():
        try:
            exec(code, namespace)
            if entrypoints:
                tids = []
                for name in entrypoints:
                    fn = namespace.get(name)
                    if not callable(fn):
                        errors.append(f"entry point {name!r} is not callable")
                        continue
                    tid = detector.fork_child(name=name)
                    detector.push_logical(tid)
                    try:
                        fn()
                    except Exception as exc:  # noqa: BLE001 - recorded
                        errors.append(
                            f"{name} raised {type(exc).__name__}: {exc}"
                        )
                    finally:
                        detector.pop_logical()
                    tids.append(tid)
                for tid in tids:
                    detector.join_child(tid)
            elif entry is not None:
                fn = namespace.get(entry)
                if callable(fn):
                    value = fn()
        except Exception as exc:  # noqa: BLE001 - surfaced in the result
            errors.append(f"execution failed: {type(exc).__name__}: {exc}")
    findings = san.findings() + runtime.order_findings()
    kept, suppressed = apply_suppressions(sorted(findings), source)
    return RunResult(
        path=path, findings=kept, suppressed=suppressed, errors=errors,
        value=value, shared=shared, sanitizer=san,
    )


def run_fixture(fix, sanitizer: Optional[Sanitizer] = None) -> RunResult:
    """Run one twin-corpus fixture under PDC-San.

    Uses the fixture's ``dynamic_entry`` (a driver to call) or, failing
    that, its ``entrypoints`` (functions run as concurrent logical
    threads).  Raises ``ValueError`` for fixtures marked non-runnable.
    """
    entry = getattr(fix, "dynamic_entry", None)
    entrypoints = fix.entrypoints if not entry else ()
    if entry is None and not entrypoints:
        raise ValueError(
            f"fixture {fix.name!r} is not dynamically runnable "
            "(no dynamic_entry or entrypoints)"
        )
    return run_source(
        fix.source,
        path=f"<fixture:{fix.name}>",
        entry=entry,
        entrypoints=entrypoints,
        sanitizer=sanitizer,
    )

"""Run a module under PDC-San instrumentation, deterministically.

The runner executes rewritten source (:mod:`repro.sanitizers.rewrite`)
in a namespace whose ``threading`` module is replaced by sanitized
stand-ins.  The crucial choice is that spawned threads are **logical**:
``Thread.start()`` runs the target *inline, to completion*, on the
calling OS thread, while the FastTrack detector tracks it as a separate
thread via a logical-tid stack.  Sequential execution changes nothing
about the happens-before analysis — the fork edge still orders parent
before child, two children are still mutually unordered — but it makes
the verdict **schedule-independent**: same source in, same findings
out, every run, which is what lets CI assert on sanitizer output and
lets the same-seed determinism criterion hold trivially.

(The trade-off, stated honestly: programs whose *liveness* depends on
real concurrency — a spin loop waiting for another thread, a barrier
with blocking semantics — cannot be replayed inline.  Those are
exercised with real threads in the unit tests instead; the corpus marks
which fixtures are runnable via ``dynamic_entry``/``entrypoints``.)

Lock nesting is simultaneously fed to a lock-order audit, so an ABBA
pattern surfaces as a PDC302 finding even though the sequential replay
can never actually deadlock — the same trick
:func:`repro.smp.fixtures.replay_lock_trace` plays, now unified into
the findings pipeline.
"""

from __future__ import annotations

import builtins
import dataclasses
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.report import Finding, apply_suppressions
from repro.sanitizers.fasttrack import FastTrackDetector
from repro.sanitizers.findings import deadlock_finding, lock_order_finding
from repro.sanitizers.rewrite import EventApi, instrument_source
from repro.sanitizers.sanitizer import Sanitizer
from repro.sanitizers.sites import AccessSite, call_site

__all__ = ["RunResult", "run_source", "run_fixture", "run_program"]


@dataclasses.dataclass
class RunResult:
    """Everything one sanitized execution produced."""

    path: str
    findings: List[Finding]
    suppressed: List[Finding]
    errors: List[str]
    #: Return value of the entry function (``None`` without one).
    value: Any
    #: Module-global names that were instrumented.
    shared: Tuple[str, ...]
    sanitizer: Sanitizer
    #: The schedule token of the executed interleaving (scheduled runs
    #: only; ``None`` for the classic inline execution).
    schedule: Optional[str] = None

    @property
    def rules(self) -> set:
        """The distinct rule ids among the kept findings."""
        return {f.rule for f in self.findings}

    @property
    def exit_code(self) -> int:
        """Mirror of pdc-lint's convention: 0 clean, 1 findings, 2 errors."""
        if self.errors:
            return 2
        return 1 if self.findings else 0


class _SanLock:
    """A lock stand-in: happens-before edges plus lock-order auditing."""

    kind = "lock"

    def __init__(self, runtime: "_SanRuntime") -> None:
        self._runtime = runtime
        self.name = f"lock{runtime.new_lock_index()}"

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        sched = self._runtime.scheduler
        if sched is not None:
            sched.lock_acquire(self)  # decision point; blocks while held
        self._runtime.lock_acquired(self)
        return True

    def release(self) -> None:
        sched = self._runtime.scheduler
        if sched is not None:
            sched.lock_release(self)
        self._runtime.lock_released(self)

    def locked(self) -> bool:
        return self in self._runtime.held

    def __enter__(self) -> "_SanLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return self.name


class _SanCondition(_SanLock):
    """Condition stand-in: ``wait`` republishes-then-resubscribes (the
    release/acquire pair buried inside a real ``Condition.wait``)."""

    kind = "condition"

    def wait(self, timeout: Optional[float] = None) -> bool:
        sched = self._runtime.scheduler
        if sched is not None:
            sched.op("cond_wait", self)
        detector = self._runtime.detector
        detector.release(self)
        detector.acquire(self)
        return True

    def wait_for(self, predicate, timeout: Optional[float] = None) -> bool:
        self.wait(timeout)
        return bool(predicate())

    def notify(self, n: int = 1) -> None:
        return None  # the surrounding release publishes the clock

    def notify_all(self) -> None:
        return None


class _SanSemaphore:
    """Semaphore stand-in: post merges, wait subscribes."""

    def __init__(self, runtime: "_SanRuntime", value: int = 1) -> None:
        self._runtime = runtime
        self._value = value
        if runtime.scheduler is not None:
            runtime.scheduler.sem_init(self, value)

    def acquire(self, blocking: bool = True, timeout: Optional[float] = None) -> bool:
        sched = self._runtime.scheduler
        if sched is not None:
            sched.sem_wait(self)  # blocks while the count is zero
        self._runtime.detector.sem_wait(self)
        self._value -= 1
        return True

    def release(self, n: int = 1) -> None:
        sched = self._runtime.scheduler
        if sched is not None:
            for _ in range(n):
                sched.sem_post(self)
        self._value += n
        self._runtime.detector.sem_post(self)

    def __enter__(self) -> "_SanSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class _SanEvent:
    """Event stand-in: ``set`` publishes, ``wait`` subscribes."""

    def __init__(self, runtime: "_SanRuntime") -> None:
        self._runtime = runtime
        self._set = False

    def set(self) -> None:
        sched = self._runtime.scheduler
        if sched is not None:
            sched.event_set(self)
        self._set = True
        self._runtime.detector.sem_post(self)

    def clear(self) -> None:
        self._set = False

    def is_set(self) -> bool:
        return self._set

    def wait(self, timeout: Optional[float] = None) -> bool:
        sched = self._runtime.scheduler
        if sched is not None:
            sched.event_wait(self)  # blocks until some task set() it
        self._runtime.detector.sem_wait(self)
        return self._set


class _SanBarrier:
    """Barrier stand-in (inline: arrive and depart in one step)."""

    def __init__(self, runtime: "_SanRuntime", parties: int, action=None) -> None:
        self._runtime = runtime
        self.parties = parties
        self._action = action

    def wait(self, timeout: Optional[float] = None) -> int:
        detector = self._runtime.detector
        sched = self._runtime.scheduler
        # Publish the arrival clock *before* blocking: every party has
        # merged into the barrier clock by the time any of them departs,
        # which is what makes the all-to-all edge hold under scheduling.
        detector.barrier_arrive(self)
        if sched is not None:
            sched.barrier_wait(self, self.parties)
        if self._action is not None:
            self._action()
        detector.barrier_depart(self)
        return 0


class _LogicalThread:
    """``threading.Thread`` stand-in that runs its target inline under a
    forked logical thread id — sequential execution, concurrent clocks."""

    def __init__(
        self,
        runtime: "_SanRuntime",
        group=None,
        target=None,
        name: Optional[str] = None,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        daemon: Optional[bool] = None,
    ) -> None:
        self._runtime = runtime
        self._target = target
        self._args = args
        self._kwargs = kwargs or {}
        self.name = name or f"Thread-{runtime.new_thread_index()}"
        self.daemon = bool(daemon)
        self._tid: Optional[int] = None
        self._task: Optional[Any] = None
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("threads can only be started once")
        self._started = True
        detector = self._runtime.detector
        sched = self._runtime.scheduler
        if sched is not None:
            # Scheduled mode: the child becomes a real schedulable task;
            # it runs only when the scheduler picks it, preemptible at
            # every hook event.  Exceptions its body raises are captured
            # by the scheduler and surfaced by run_source as runner
            # errors with the schedule token attached.
            sched.op("spawn", f"spawn:{self.name}")
            self._tid = detector.fork_child(name=self.name)
            target, args, kwargs = self._target, self._args, self._kwargs

            def body() -> None:
                if target is not None:
                    target(*args, **kwargs)

            self._task = sched.spawn(self.name, body, det_tid=self._tid)
            return
        self._tid = detector.fork_child(name=self.name)
        detector.push_logical(self._tid)
        try:
            if self._target is not None:
                self._target(*self._args, **self._kwargs)
        except Exception as exc:  # noqa: BLE001 - recorded, not fatal
            self._runtime.errors.append(
                f"{self.name} raised {type(exc).__name__}: {exc}"
            )
        finally:
            detector.pop_logical()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._tid is None:
            return
        sched = self._runtime.scheduler
        if sched is not None and self._task is not None:
            sched.join(self._task)  # blocks until the task completes
        self._runtime.detector.join_child(self._tid)

    def is_alive(self) -> bool:
        if self._task is not None:
            return self._task.state != "done"
        return False

    def run(self) -> None:  # pragma: no cover - parity with threading API
        if self._target is not None:
            self._target(*self._args, **self._kwargs)


class _SanRuntime:
    """Shared state behind the stand-in ``threading`` module."""

    def __init__(
        self, detector: FastTrackDetector, scheduler: Optional[Any] = None
    ) -> None:
        self.detector = detector
        #: A :class:`repro.verify.scheduler.ReplayScheduler` (or anything
        #: with its surface) makes every hook event a decision point;
        #: ``None`` keeps the classic inline one-schedule execution.
        self.scheduler = scheduler
        self.errors: List[str] = []
        self.held: List[_SanLock] = []
        #: first-seen site per acquired-while-holding edge (name pairs).
        self.lock_edges: Dict[Tuple[str, str], AccessSite] = {}
        self._lock_count = 0
        self._thread_count = 0

    def new_lock_index(self) -> int:
        index = self._lock_count
        self._lock_count += 1
        return index

    def new_thread_index(self) -> int:
        self._thread_count += 1
        return self._thread_count

    def lock_acquired(self, lock: _SanLock) -> None:
        site = call_site(self.detector.thread_name())
        for outer in self.held:
            edge = (outer.name, lock.name)
            if outer is not lock and edge not in self.lock_edges:
                self.lock_edges[edge] = site
        self.held.append(lock)
        self.detector.acquire(lock)

    def lock_released(self, lock: _SanLock) -> None:
        if lock in self.held:
            self.held.remove(lock)
        self.detector.release(lock)

    def order_findings(self) -> List[Finding]:
        """PDC302 findings for cycles in the observed lock order.

        ``nx.simple_cycles`` yields each cycle in an arbitrary rotation
        (and order) that varies with the per-process hash seed; cycles
        are canonicalized — rotated to start at their smallest lock,
        then sorted — so the same run always reports the same finding.
        """
        graph = nx.DiGraph()
        graph.add_edges_from(self.lock_edges)
        cycles = []
        for cycle in nx.simple_cycles(graph):
            pivot = min(range(len(cycle)), key=cycle.__getitem__)
            cycles.append(cycle[pivot:] + cycle[:pivot])
        findings = []
        for cycle in sorted(cycles):
            edge = (cycle[0], cycle[1 % len(cycle)])
            site = self.lock_edges.get(
                edge, next(iter(self.lock_edges.values()))
            )
            findings.append(lock_order_finding(cycle, site))
        return findings


class _SanThreading:
    """The ``threading`` module, as instrumented code sees it."""

    def __init__(self, runtime: _SanRuntime) -> None:
        self._runtime = runtime
        self.TIMEOUT_MAX = threading.TIMEOUT_MAX

    def Thread(self, *args: Any, **kwargs: Any) -> _LogicalThread:  # noqa: N802
        return _LogicalThread(self._runtime, *args, **kwargs)

    def Lock(self) -> _SanLock:  # noqa: N802 - mirrors the threading API
        return _SanLock(self._runtime)

    RLock = Lock

    def Condition(self, lock: Optional[_SanLock] = None) -> _SanCondition:  # noqa: N802
        return _SanCondition(self._runtime)

    def Semaphore(self, value: int = 1) -> _SanSemaphore:  # noqa: N802
        return _SanSemaphore(self._runtime, value)

    BoundedSemaphore = Semaphore

    def Event(self) -> _SanEvent:  # noqa: N802
        return _SanEvent(self._runtime)

    def Barrier(self, parties: int, action=None, timeout=None) -> _SanBarrier:  # noqa: N802
        return _SanBarrier(self._runtime, parties, action)

    def local(self) -> Any:
        return threading.local()

    def current_thread(self) -> Any:
        return threading.current_thread()

    def get_ident(self) -> int:
        return threading.get_ident()


def run_source(
    source: str,
    path: str = "<module>",
    entry: Optional[str] = "main",
    entrypoints: Sequence[str] = (),
    sanitizer: Optional[Sanitizer] = None,
    scheduler: Optional[Any] = None,
) -> RunResult:
    """Execute ``source`` under full PDC-San instrumentation.

    The module body runs first (on the root logical thread).  Then
    either ``entry`` is called if the module defines it (the common
    "call ``main()``" shape; pass ``entry=None`` to skip), or each name
    in ``entrypoints`` runs as its *own* logical thread — mutually
    concurrent, all joined at the end — which models "these functions
    are the thread bodies" for fixtures without a driver.

    With a ``scheduler`` (:class:`repro.verify.ReplayScheduler`), the
    execution is *scheduled* instead of inline: every hook event is a
    decision point, spawned threads are genuinely preemptible, blocking
    blocks, and the whole run is a pure function of the scheduler's
    choice sequence — the substrate the model checker replays.
    """
    san = sanitizer if sanitizer is not None else Sanitizer()
    detector = san.fasttrack
    runtime = _SanRuntime(detector, scheduler=scheduler)
    errors = runtime.errors
    value: Any = None
    shared: Tuple[str, ...] = ()
    try:
        tree, shared_set = instrument_source(source, filename=path)
        shared = tuple(sorted(shared_set))
        code = compile(tree, path, "exec")
    except SyntaxError as exc:
        return RunResult(
            path=path, findings=[], suppressed=[],
            errors=[f"syntax error: {exc}"], value=None, shared=(),
            sanitizer=san,
        )
    traced = _SanThreading(runtime)
    real_import = builtins.__import__

    def import_sanitized(name: str, *args: object, **kwargs: object):
        if name == "threading":
            return traced
        return real_import(name, *args, **kwargs)

    namespace: Dict[str, object] = {
        "__name__": "__pdcsan_target__",
        "__builtins__": {**vars(builtins), "__import__": import_sanitized},
        "__pdcsan__": EventApi(detector, scheduler=scheduler),
    }
    schedule: Optional[str] = None
    extra_findings: List[Finding] = []

    def _call_entries() -> None:
        """Module body, then the entry/entrypoints protocol."""
        nonlocal value
        exec(code, namespace)
        if entrypoints:
            workers: List[_LogicalThread] = []
            for name in entrypoints:
                fn = namespace.get(name)
                if not callable(fn):
                    errors.append(f"entry point {name!r} is not callable")
                    continue
                workers.append(
                    _LogicalThread(runtime, target=fn, name=name)
                )
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        elif entry is not None:
            fn = namespace.get(entry)
            if callable(fn):
                value = fn()

    with san.activate():
        if scheduler is not None:
            from repro.verify.token import encode_token  # local: no cycle

            scheduler.detector = detector
            trace = scheduler.run(_call_entries)
            schedule = encode_token(trace.choices)
            for name, exc in trace.crashes:
                errors.append(
                    f"{name} raised {type(exc).__name__}: {exc} "
                    f"[schedule {schedule}]"
                )
            if trace.deadlock is not None:
                cycle, site = trace.deadlock
                extra_findings.append(deadlock_finding(cycle, site))
        else:
            # Inline mode: logical threads run to completion on this OS
            # thread; entrypoints become sibling logical threads via the
            # fork/push protocol (no real concurrency, concurrent clocks).
            try:
                exec(code, namespace)
                if entrypoints:
                    tids = []
                    for name in entrypoints:
                        fn = namespace.get(name)
                        if not callable(fn):
                            errors.append(
                                f"entry point {name!r} is not callable"
                            )
                            continue
                        tid = detector.fork_child(name=name)
                        detector.push_logical(tid)
                        try:
                            fn()
                        except Exception as exc:  # noqa: BLE001 - recorded
                            errors.append(
                                f"{name} raised {type(exc).__name__}: {exc}"
                            )
                        finally:
                            detector.pop_logical()
                        tids.append(tid)
                    for tid in tids:
                        detector.join_child(tid)
                elif entry is not None:
                    fn = namespace.get(entry)
                    if callable(fn):
                        value = fn()
            except Exception as exc:  # noqa: BLE001 - surfaced in the result
                errors.append(f"execution failed: {type(exc).__name__}: {exc}")
    findings = san.findings() + runtime.order_findings() + extra_findings
    kept, suppressed = apply_suppressions(sorted(findings), source)
    return RunResult(
        path=path, findings=kept, suppressed=suppressed, errors=errors,
        value=value, shared=shared, sanitizer=san, schedule=schedule,
    )


class _ModuleEventApi(EventApi):
    """An :class:`EventApi` that namespaces events per module, so
    ``counter`` in ``shared_state`` and ``counter`` in ``worker`` are
    distinct detector variables in one multi-module program."""

    __slots__ = ("_prefix",)

    def __init__(self, detector, prefix: str, scheduler=None) -> None:
        super().__init__(detector, scheduler=scheduler)
        self._prefix = prefix

    def rd(self, name: str) -> None:
        super().rd(f"{self._prefix}.{name}")

    def wr(self, name: str) -> None:
        super().wr(f"{self._prefix}.{name}")


def run_program(
    modules: Dict[str, str],
    entry_module: str,
    entry: Optional[str] = "main",
    sanitizer: Optional[Sanitizer] = None,
) -> RunResult:
    """Execute a multi-module program under PDC-San instrumentation.

    ``modules`` maps module name -> source.  Every module is rewritten
    and compiled up front; an ``__import__`` hook hands instrumented
    sibling modules (and the sanitized ``threading``) to whichever
    module asks, all sharing one detector, one runtime, and one
    happens-before history — so a thread spawned in ``main`` racing a
    write in ``shared_state`` is one race, not two programs.  Inline
    (logical-thread) execution only; findings carry the per-module
    ``<name>.py`` path and honor that module's own suppression comments.
    """
    import types

    san = sanitizer if sanitizer is not None else Sanitizer()
    detector = san.fasttrack
    runtime = _SanRuntime(detector)
    errors = runtime.errors
    value: Any = None
    codes: Dict[str, Any] = {}
    shared_all: List[str] = []
    sources: Dict[str, str] = {}
    for name in sorted(modules):
        path = f"{name}.py"
        sources[path] = modules[name]
        try:
            tree, shared_set = instrument_source(modules[name], filename=path)
            codes[name] = compile(tree, path, "exec")
        except SyntaxError as exc:
            return RunResult(
                path=path, findings=[], suppressed=[],
                errors=[f"syntax error: {exc}"], value=None, shared=(),
                sanitizer=san,
            )
        shared_all.extend(f"{name}.{s}" for s in sorted(shared_set))
    if entry_module not in codes:
        raise ValueError(f"entry module {entry_module!r} not in program")

    traced = _SanThreading(runtime)
    real_import = builtins.__import__
    mods: Dict[str, types.ModuleType] = {}

    def import_sanitized(name: str, *args: object, **kwargs: object):
        if name == "threading":
            return traced
        if name in codes:
            return load_module(name)
        return real_import(name, *args, **kwargs)

    builtins_map = {**vars(builtins), "__import__": import_sanitized}

    def load_module(name: str) -> types.ModuleType:
        if name in mods:
            return mods[name]
        mod = types.ModuleType(name)
        mod.__dict__["__builtins__"] = builtins_map
        mod.__dict__["__pdcsan__"] = _ModuleEventApi(detector, name)
        mods[name] = mod  # registered before exec: import cycles resolve
        exec(codes[name], mod.__dict__)
        return mod

    with san.activate():
        try:
            entry_mod = load_module(entry_module)
            if entry is not None:
                fn = entry_mod.__dict__.get(entry)
                if callable(fn):
                    value = fn()
        except Exception as exc:  # noqa: BLE001 - surfaced in the result
            errors.append(f"execution failed: {type(exc).__name__}: {exc}")

    findings = sorted(san.findings() + runtime.order_findings())
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for path in sorted({f.path for f in findings}):
        group = [f for f in findings if f.path == path]
        if path in sources:
            k, s = apply_suppressions(group, sources[path])
            kept.extend(k)
            suppressed.extend(s)
        else:
            kept.extend(group)
    return RunResult(
        path=f"<program:{entry_module}>",
        findings=sorted(kept),
        suppressed=sorted(suppressed),
        errors=errors,
        value=value,
        shared=tuple(shared_all),
        sanitizer=san,
    )


def run_fixture(
    fix,
    sanitizer: Optional[Sanitizer] = None,
    scheduler: Optional[Any] = None,
) -> RunResult:
    """Run one twin-corpus fixture under PDC-San.

    Uses the fixture's ``dynamic_entry`` (a driver to call) or, failing
    that, its ``entrypoints`` (functions run as concurrent logical
    threads).  Raises ``ValueError`` for fixtures marked non-runnable.
    """
    entry = getattr(fix, "dynamic_entry", None)
    entrypoints = fix.entrypoints if not entry else ()
    if entry is None and not entrypoints:
        raise ValueError(
            f"fixture {fix.name!r} is not dynamically runnable "
            "(no dynamic_entry or entrypoints)"
        )
    return run_source(
        fix.source,
        path=f"<fixture:{fix.name}>",
        entry=entry,
        entrypoints=entrypoints,
        sanitizer=sanitizer,
        scheduler=scheduler,
    )

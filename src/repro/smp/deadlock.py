"""Deadlock detection: wait-for graphs and lock-order audits.

Deadlock appears three times in the paper's topic inventory — CC2020 names
it directly, the AUC operating-systems course covers it (§IV-B), and the
database row of Table I needs it for transaction scheduling.  Two
complementary tools are provided:

- :class:`WaitForGraph` — runtime detection: threads/transactions declare
  "holds" and "waits-for" edges; a cycle is a deadlock (single-instance
  resources, so cycle <=> deadlock).
- :class:`LockGraph` — static prevention: record the *order* in which locks
  are taken; a cycle in the lock-order graph means some interleaving can
  deadlock, even if this run did not.

Both use :mod:`networkx` for cycle detection.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.sanitizers import hooks

__all__ = ["DeadlockDetected", "WaitForGraph", "LockGraph"]


class DeadlockDetected(RuntimeError):
    """Raised when an operation would create a deadlock cycle.

    Attributes
    ----------
    cycle:
        The participants along the detected cycle.
    """

    def __init__(self, cycle: Sequence[Hashable]) -> None:
        super().__init__(f"deadlock cycle: {' -> '.join(map(str, cycle))}")
        self.cycle = list(cycle)


class WaitForGraph:
    """A wait-for graph over agents (threads, processes, transactions).

    Nodes are agents; an edge ``a -> b`` means *a waits for a resource held
    by b*.  With single-instance resources a cycle is exactly a deadlock
    (Coffman's circular-wait condition made checkable).
    """

    def __init__(self, raise_on_cycle: bool = True) -> None:
        self._holds: Dict[Hashable, Hashable] = {}  # resource -> agent
        self._wants: Dict[Hashable, Hashable] = {}  # agent -> resource
        self._lock = threading.Lock()
        self.raise_on_cycle = raise_on_cycle
        self.detected_cycles: List[List[Hashable]] = []

    def acquire(self, agent: Hashable, resource: Hashable) -> bool:
        """Declare that ``agent`` wants ``resource``.

        If the resource is free, the hold is granted immediately and
        ``True`` is returned.  If it is held, the wait edge is recorded and
        the graph is checked; on a cycle, :class:`DeadlockDetected` is
        raised (or ``False`` returned when ``raise_on_cycle`` is off).
        Otherwise ``False`` means "must wait".
        """
        with self._lock:
            holder = self._holds.get(resource)
            if holder is None or holder == agent:
                self._holds[resource] = agent
                self._wants.pop(agent, None)
                return True
            self._wants[agent] = resource
            cycle = self._find_cycle()
            if cycle is not None:
                self.detected_cycles.append(cycle)
                # An attached sanitizer gets the cycle as a finding even
                # when the exception below is caught and discarded.
                hooks.on_deadlock_cycle(cycle)
                if self.raise_on_cycle:
                    self._wants.pop(agent, None)  # roll back the doomed wait
                    raise DeadlockDetected(cycle)
            return False

    def grant_waiting(self, resource: Hashable) -> Optional[Hashable]:
        """After a release, grant ``resource`` to one waiter (if any)."""
        with self._lock:
            if self._holds.get(resource) is not None:
                return None
            for agent, wanted in list(self._wants.items()):
                if wanted == resource:
                    self._holds[resource] = agent
                    del self._wants[agent]
                    return agent
            return None

    def release(self, agent: Hashable, resource: Hashable) -> None:
        """Declare that ``agent`` released ``resource``."""
        with self._lock:
            if self._holds.get(resource) == agent:
                del self._holds[resource]

    def remove_agent(self, agent: Hashable) -> None:
        """Drop every hold and wait of ``agent`` (e.g. an aborted victim)."""
        with self._lock:
            self._wants.pop(agent, None)
            for res in [r for r, a in self._holds.items() if a == agent]:
                del self._holds[res]

    def _graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        for agent, resource in self._wants.items():
            holder = self._holds.get(resource)
            if holder is not None and holder != agent:
                g.add_edge(agent, holder)
        return g

    def _find_cycle(self) -> Optional[List[Hashable]]:
        try:
            cycle_edges = nx.find_cycle(self._graph())
        except nx.NetworkXNoCycle:
            return None
        return [edge[0] for edge in cycle_edges]

    def find_deadlock(self) -> Optional[List[Hashable]]:
        """Return the agents on a deadlock cycle, or ``None``."""
        with self._lock:
            return self._find_cycle()

    def waiting_agents(self) -> Set[Hashable]:
        """Agents currently blocked waiting for a resource."""
        with self._lock:
            return set(self._wants)

    def holder_of(self, resource: Hashable) -> Optional[Hashable]:
        """The agent holding ``resource``, or ``None``."""
        with self._lock:
            return self._holds.get(resource)

    def pick_victim(self, cycle: Sequence[Hashable]) -> Hashable:
        """Victim-selection policy: the youngest agent (max by sort order).

        Deterministic and simple; matches the "abort the youngest
        transaction" heuristic taught in database courses.
        """
        return max(cycle, key=lambda a: (str(type(a)), str(a)))


class LockGraph:
    """Lock-order audit: detects *potential* deadlocks from nesting order.

    Every time a thread acquires lock B while holding lock A, the edge
    ``A -> B`` is recorded.  A cycle in this graph means two threads can
    take the locks in opposite orders — the classic ABBA deadlock — even if
    no run has deadlocked yet.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._held: Dict[int, List[Hashable]] = {}
        self._lock = threading.Lock()

    def on_acquire(self, lock_name: Hashable) -> None:
        """Record an acquisition by the calling thread."""
        tid = threading.get_ident()
        with self._lock:
            stack = self._held.setdefault(tid, [])
            for outer in stack:
                if outer != lock_name:
                    self._graph.add_edge(outer, lock_name)
            stack.append(lock_name)

    def on_release(self, lock_name: Hashable) -> None:
        """Record a release by the calling thread."""
        tid = threading.get_ident()
        with self._lock:
            stack = self._held.get(tid, [])
            if lock_name in stack:
                stack.remove(lock_name)

    def order_violations(self) -> List[List[Hashable]]:
        """All simple cycles in the lock-order graph (empty == safe)."""
        with self._lock:
            return [list(c) for c in nx.simple_cycles(self._graph)]

    def is_safe(self) -> bool:
        """``True`` iff the recorded lock orders admit no ABBA deadlock."""
        return not self.order_violations()

    def edges(self) -> List[Tuple[Hashable, Hashable]]:
        """The recorded "acquired-while-holding" edges."""
        with self._lock:
            return list(self._graph.edges())

    def suggest_order(self) -> Optional[List[Hashable]]:
        """A global lock order consistent with observations, if one exists.

        Returns a topological order of the lock graph, or ``None`` when the
        graph is cyclic (no consistent global order exists).
        """
        with self._lock:
            try:
                return list(nx.topological_sort(self._graph))
            except nx.NetworkXUnfeasible:
                return None

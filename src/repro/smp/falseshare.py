"""A cache-line model that makes false sharing measurable.

"False sharing" is a named topic of the LAU course's shared-memory part
(paper §IV-A).  Demonstrating it on real hardware requires careful
micro-benchmarking; instead, :class:`CacheLineModel` simulates a
line-granular invalidation-based coherence protocol just well enough to
*count* coherence misses, so the padded/unpadded comparison gives a crisp,
deterministic signal.

The model: each core has a private set of "valid lines"; a write to a line
invalidates every other core's copy of that line; a read or write of a line
not valid locally is a coherence miss.  Two counters that live on the same
line therefore thrash each other even though the programs never touch the
same *variable* — false sharing.
"""

from __future__ import annotations

from typing import Dict, List, Set

__all__ = ["CacheLineModel", "SharedCounters", "PaddedCounters"]


class CacheLineModel:
    """Line-granular MSI-flavoured coherence miss counter.

    Addresses are abstract integers; a line holds ``line_size`` consecutive
    addresses.  Not a full protocol (no shared/exclusive distinction — see
    :mod:`repro.arch.coherence` for MESI); this is the minimal machinery
    false sharing needs.
    """

    def __init__(self, num_cores: int, line_size: int = 8) -> None:
        if num_cores < 1 or line_size < 1:
            raise ValueError("num_cores and line_size must be positive")
        self.num_cores = num_cores
        self.line_size = line_size
        self._valid: List[Set[int]] = [set() for _ in range(num_cores)]
        self.coherence_misses: Dict[int, int] = {c: 0 for c in range(num_cores)}
        self.invalidations = 0
        self.accesses = 0

    def line_of(self, address: int) -> int:
        """The line index containing ``address``."""
        return address // self.line_size

    def read(self, core: int, address: int) -> None:
        """Model a load by ``core`` from ``address``."""
        self._touch(core, address, write=False)

    def write(self, core: int, address: int) -> None:
        """Model a store by ``core`` to ``address``; invalidates other copies."""
        self._touch(core, address, write=True)

    def _touch(self, core: int, address: int, write: bool) -> None:
        if not 0 <= core < self.num_cores:
            raise IndexError(f"no such core: {core}")
        line = self.line_of(address)
        self.accesses += 1
        if line not in self._valid[core]:
            self.coherence_misses[core] += 1
            self._valid[core].add(line)
        if write:
            for other in range(self.num_cores):
                if other != core and line in self._valid[other]:
                    self._valid[other].discard(line)
                    self.invalidations += 1

    @property
    def total_misses(self) -> int:
        """Coherence misses summed over all cores."""
        return sum(self.coherence_misses.values())

    def miss_rate(self) -> float:
        """Misses per access (0.0 when nothing has run)."""
        return self.total_misses / self.accesses if self.accesses else 0.0


class SharedCounters:
    """Per-core counters packed adjacently — the false-sharing layout.

    Counter ``i`` lives at address ``i``; with the default line size of 8,
    up to 8 counters share one line and every increment by one core
    invalidates its neighbours' copies.
    """

    def __init__(self, model: CacheLineModel) -> None:
        self.model = model
        self.values = [0] * model.num_cores

    def address_of(self, core: int) -> int:
        """Address of ``core``'s counter (adjacent packing)."""
        return core

    def increment(self, core: int) -> None:
        """core reads-modifies-writes its own counter."""
        addr = self.address_of(core)
        self.model.read(core, addr)
        self.values[core] += 1
        self.model.write(core, addr)


class PaddedCounters(SharedCounters):
    """Per-core counters padded to one per cache line — the fixed layout.

    Identical workload to :class:`SharedCounters`, but counter ``i`` lives
    at ``i * line_size`` so no two counters share a line.  The coherence
    miss count collapses to one cold miss per core.
    """

    def address_of(self, core: int) -> int:
        """Address of ``core``'s counter (one line per counter)."""
        return core * self.model.line_size


def false_sharing_demo(
    num_cores: int = 4, increments: int = 100, line_size: int = 8
) -> Dict[str, int]:
    """Run both layouts round-robin; return their total coherence misses.

    The headline teaching number: the shared layout misses
    ~``num_cores * increments`` times, the padded layout ~``num_cores``
    times (cold misses only).
    """
    shared_model = CacheLineModel(num_cores, line_size)
    padded_model = CacheLineModel(num_cores, line_size)
    shared = SharedCounters(shared_model)
    padded = PaddedCounters(padded_model)
    for _ in range(increments):
        for core in range(num_cores):
            shared.increment(core)
            padded.increment(core)
    return {
        "shared_misses": shared_model.total_misses,
        "padded_misses": padded_model.total_misses,
        "shared_invalidations": shared_model.invalidations,
        "padded_invalidations": padded_model.invalidations,
    }

"""Shared-memory concurrency teaching kit.

This subpackage implements the shared-memory half of the PDC topics mapped in
Table I of the paper (threads, shared-memory programming, atomicity,
inter-process communication, synchronization) as instrumented, deterministic
primitives suitable for coursework:

- :mod:`repro.smp.atomics` — atomic cells, counters, and compare-and-swap.
- :mod:`repro.smp.locks` — spin/ticket/reader-writer locks with contention
  counters.
- :mod:`repro.smp.monitor` — monitors and condition variables (SE2014
  "concurrency primitives (e.g., semaphores and monitors)").
- :mod:`repro.smp.barrier` — cyclic and sense-reversing barriers.
- :mod:`repro.smp.squeue` — properly synchronized bounded queues (a CC2020
  named topic).
- :mod:`repro.smp.pool` — an OpenMP-flavoured ``parallel_for`` /
  ``parallel_reduce`` thread pool with static/dynamic/guided schedules.
- :mod:`repro.smp.racedetect` — an Eraser-style lockset data-race detector.
- :mod:`repro.smp.deadlock` — wait-for-graph deadlock detection and lock
  ordering audits.
- :mod:`repro.smp.falseshare` — a cache-line model for demonstrating false
  sharing without real hardware.
"""

from repro.smp.atomics import AtomicCell, AtomicCounter, AtomicFlag
from repro.smp.barrier import CyclicBarrier, SenseReversingBarrier
from repro.smp.deadlock import DeadlockDetected, LockGraph, WaitForGraph
from repro.smp.falseshare import CacheLineModel, PaddedCounters, SharedCounters
from repro.smp.interleave import (
    Step,
    explore,
    peterson_program,
    racy_counter_program,
)
from repro.smp.locks import (
    CountingSemaphore,
    InstrumentedLock,
    ReaderWriterLock,
    SpinLock,
    TicketLock,
)
from repro.smp.monitor import BoundedBuffer, ConditionVariable, Monitor
from repro.smp.pool import (
    Schedule,
    ThreadTeam,
    parallel_for,
    parallel_map,
    parallel_reduce,
)
from repro.smp.racedetect import LocksetRaceDetector, RaceReport, SharedVariable
from repro.smp.squeue import SynchronizedQueue

__all__ = [
    "AtomicCell",
    "AtomicCounter",
    "AtomicFlag",
    "BoundedBuffer",
    "CacheLineModel",
    "ConditionVariable",
    "CountingSemaphore",
    "CyclicBarrier",
    "DeadlockDetected",
    "explore",
    "InstrumentedLock",
    "LockGraph",
    "LocksetRaceDetector",
    "Monitor",
    "PaddedCounters",
    "parallel_for",
    "parallel_map",
    "parallel_reduce",
    "peterson_program",
    "RaceReport",
    "racy_counter_program",
    "ReaderWriterLock",
    "Schedule",
    "SenseReversingBarrier",
    "SharedCounters",
    "SharedVariable",
    "SpinLock",
    "Step",
    "SynchronizedQueue",
    "ThreadTeam",
    "TicketLock",
    "WaitForGraph",
]

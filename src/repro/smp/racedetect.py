"""An Eraser-style lockset data-race detector.

"Data races" are a named topic of the LAU case-study course (paper §IV-A)
and of CC2020's PDC competencies ("race conditions").  Real race detectors
(TSan, Eraser) instrument loads and stores; here, shared state is wrapped in
:class:`SharedVariable`, whose reads/writes report to a
:class:`LocksetRaceDetector` implementing the classic Eraser state machine:

    Virgin -> Exclusive -> Shared (reads only) -> Shared-Modified

A variable's *candidate lockset* starts as "all locks" and is intersected
with the locks held at each access once the variable leaves the Exclusive
state.  An empty candidate lockset in the Shared-Modified state is reported
as a race.  This catches races even on runs where the threads never actually
interleave badly — the property that makes lockset analysis pedagogically
superior to "run it 1000 times and hope".
"""

from __future__ import annotations

import dataclasses
import enum
import threading
from typing import Dict, FrozenSet, Generic, List, Optional, Set, TypeVar

from repro.sanitizers import hooks

T = TypeVar("T")

__all__ = ["AccessKind", "RaceReport", "LocksetRaceDetector", "SharedVariable"]


class AccessKind(enum.Enum):
    """Whether an instrumented access was a read or a write."""

    READ = "read"
    WRITE = "write"


class _State(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclasses.dataclass(frozen=True)
class RaceReport:
    """A detected (potential) data race on one variable."""

    variable: str
    kind: AccessKind
    thread: int
    locks_held: FrozenSet[str]
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"RACE on {self.variable}: {self.message}"


@dataclasses.dataclass
class _VarInfo:
    state: _State = _State.VIRGIN
    first_thread: Optional[int] = None
    candidate: Optional[FrozenSet[str]] = None  # None == "all locks"
    exclusive_locks: Optional[FrozenSet[str]] = None  # locks at first access


class LocksetRaceDetector:
    """Tracks held locks per thread and runs the Eraser state machine.

    Use :meth:`held` as a context manager around critical sections, or call
    :meth:`on_acquire` / :meth:`on_release` directly; instrumented variables
    call :meth:`record_access`.
    """

    def __init__(self) -> None:
        self._held: Dict[int, Set[str]] = {}
        self._vars: Dict[str, _VarInfo] = {}
        self._lock = threading.Lock()
        self.reports: List[RaceReport] = []

    # -- lock tracking ----------------------------------------------------
    def on_acquire(self, lock_name: str) -> None:
        """Record that the calling thread now holds ``lock_name``."""
        tid = threading.get_ident()
        with self._lock:
            self._held.setdefault(tid, set()).add(lock_name)
        # Declared locks mirror a real serialization order, so they carry
        # happens-before for an attached dynamic sanitizer too.
        hooks.on_acquire(lock_name)

    def on_release(self, lock_name: str) -> None:
        """Record that the calling thread released ``lock_name``."""
        tid = threading.get_ident()
        hooks.on_release(lock_name)
        with self._lock:
            self._held.get(tid, set()).discard(lock_name)

    class _Held:
        def __init__(self, det: "LocksetRaceDetector", name: str) -> None:
            self._det = det
            self._name = name

        def __enter__(self) -> None:
            self._det.on_acquire(self._name)

        def __exit__(self, *exc: object) -> None:
            self._det.on_release(self._name)

    def held(self, lock_name: str) -> "LocksetRaceDetector._Held":
        """Context manager declaring ``lock_name`` held in its body."""
        return LocksetRaceDetector._Held(self, lock_name)

    def locks_of(self, tid: Optional[int] = None) -> FrozenSet[str]:
        """Locks currently held by ``tid`` (default: the calling thread)."""
        tid = threading.get_ident() if tid is None else tid
        with self._lock:
            return frozenset(self._held.get(tid, set()))

    # -- the Eraser state machine -----------------------------------------
    def record_access(self, variable: str, kind: AccessKind) -> Optional[RaceReport]:
        """Advance the state machine for one access; return a report if racy."""
        tid = threading.get_ident()
        with self._lock:
            held = frozenset(self._held.get(tid, set()))
            info = self._vars.setdefault(variable, _VarInfo())

            if info.state is _State.VIRGIN:
                info.state = _State.EXCLUSIVE
                info.first_thread = tid
                info.exclusive_locks = held
                return None

            if info.state is _State.EXCLUSIVE:
                if tid == info.first_thread:
                    # Keep refining the first thread's lockset (its last
                    # consistently-held set is what sharing inherits).
                    assert info.exclusive_locks is not None
                    info.exclusive_locks = info.exclusive_locks & held
                    return None
                # Second thread: the variable becomes shared.  Refinement
                # starts from the *intersection* of the first thread's
                # lockset with the current one — a strengthening of the
                # original Eraser (which forgets the Exclusive phase and
                # thereby misses first-vs-second-thread inconsistencies).
                assert info.exclusive_locks is not None
                info.candidate = info.exclusive_locks & held
                info.state = (
                    _State.SHARED_MODIFIED
                    if kind is AccessKind.WRITE
                    else _State.SHARED
                )
                return self._check(variable, info, kind, tid, held)

            # SHARED or SHARED_MODIFIED: intersect candidate lockset.
            assert info.candidate is not None
            info.candidate = info.candidate & held
            if kind is AccessKind.WRITE:
                info.state = _State.SHARED_MODIFIED
            return self._check(variable, info, kind, tid, held)

    def _check(
        self,
        variable: str,
        info: _VarInfo,
        kind: AccessKind,
        tid: int,
        held: FrozenSet[str],
    ) -> Optional[RaceReport]:
        if info.state is _State.SHARED_MODIFIED and not info.candidate:
            report = RaceReport(
                variable=variable,
                kind=kind,
                thread=tid,
                locks_held=held,
                message=(
                    "written by multiple threads with no common lock "
                    "(candidate lockset is empty)"
                ),
            )
            self.reports.append(report)
            return report
        return None

    def candidate_lockset(self, variable: str) -> Optional[FrozenSet[str]]:
        """The current candidate lockset, or ``None`` before sharing."""
        with self._lock:
            info = self._vars.get(variable)
            return info.candidate if info else None

    @property
    def racy_variables(self) -> Set[str]:
        """Names of variables with at least one race report."""
        return {r.variable for r in self.reports}


class SharedVariable(Generic[T]):
    """A value cell whose reads and writes are race-checked.

    Labs rewrite a racy counter loop twice — once bare, once under
    ``detector.held("m")`` — and watch the detector's verdict flip.
    """

    def __init__(
        self, name: str, value: T, detector: LocksetRaceDetector
    ) -> None:
        self.name = name
        self._value = value
        self._detector = detector

    def read(self) -> T:
        """Instrumented read (reported to both lockset and HB analyses)."""
        self._detector.record_access(self.name, AccessKind.READ)
        hooks.on_read(self.name)
        return self._value

    def write(self, value: T) -> None:
        """Instrumented write (reported to both lockset and HB analyses)."""
        self._detector.record_access(self.name, AccessKind.WRITE)
        hooks.on_write(self.name)
        self._value = value

    @property
    def value(self) -> T:
        """Alias for :meth:`read` (property access is instrumented too)."""
        return self.read()

    @value.setter
    def value(self, v: T) -> None:
        self.write(v)
